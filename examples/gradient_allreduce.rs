//! Data-parallel training: gradient `allreduce` every step.
//!
//! Every rank computes a local gradient, the gradients are summed with a
//! (pipelined, node-leader) allreduce, and all ranks apply the identical
//! update. Gradients are integer-valued `f32`, so the result is exact in
//! any fold order: all three algorithm families must land on bit-identical
//! weights, matching the serial reference.
//!
//! Run with: `cargo run --release --example gradient_allreduce`

use gpu_nc_repro::coll_apps::{run_gradient, serial_gradient, GradParams, Mem};
use gpu_nc_repro::mpi_sim::CollAlgo;

fn main() {
    let (params, steps, ranks, ppn) = (1 << 16, 4usize, 16usize, 4usize);
    let want = serial_gradient(params, steps, ranks);

    for (name, algo) in [
        ("naive funnel ", CollAlgo::Naive),
        ("flat binomial", CollAlgo::Flat),
        ("hierarchical ", CollAlgo::Hier),
    ] {
        let out = run_gradient(GradParams {
            params,
            steps,
            ranks,
            ppn,
            algo,
            mem: Mem::Device,
        });
        for (i, w) in out.weights.iter().enumerate() {
            assert_eq!(w.as_slice(), want.as_slice(), "rank {i} diverged");
        }
        println!(
            "{name}: {steps} steps x {params} params over {ranks} ranks (ppn={ppn}, \
             device) done at t={} — all ranks bit-identical to serial",
            out.wall
        );
    }
}
