//! Distributed matrix transpose: `alltoallv` of strided-column datatypes.
//!
//! Each rank owns a block of rows of a global N×N matrix and ships the
//! tile destined for rank `j` as **non-contiguous columns** described by a
//! derived datatype — no manual packing anywhere. Run once with the flat
//! pairwise exchange and once with the hierarchical (leader-based) path to
//! see the virtual-time difference on a multi-rank-per-node layout.
//!
//! Run with: `cargo run --release --example transpose`

use gpu_nc_repro::coll_apps::{run_transpose, serial_transpose, Mem, TransposeParams};
use gpu_nc_repro::mpi_sim::CollAlgo;

fn main() {
    let (n, ranks, ppn) = (256usize, 16usize, 4usize);
    let want = serial_transpose(n);
    let b = n / ranks;

    for (name, algo) in [
        ("naive p2p loop", CollAlgo::Naive),
        ("flat pairwise ", CollAlgo::Flat),
        ("hierarchical  ", CollAlgo::Hier),
    ] {
        let out = run_transpose(TransposeParams {
            n,
            ranks,
            ppn,
            algo,
            mem: Mem::Device,
        });
        for (i, block) in out.blocks.iter().enumerate() {
            assert_eq!(
                block.as_slice(),
                &want[i * b * n..(i + 1) * b * n],
                "rank {i} block mismatch"
            );
        }
        println!(
            "{name}: {n}x{n} f64 transpose across {ranks} ranks (ppn={ppn}, device) \
             done at t={} — bit-exact vs serial",
            out.wall
        );
    }
}
