//! Platform tuning, the way the paper describes it (§IV-B): the pipeline
//! block size is a configurable library parameter; a system administrator
//! runs a micro-benchmark sweep once at installation time and records the
//! optimum. This example is that micro-benchmark.
//!
//! Run with: `cargo run --release --example block_size_tuning`

use gpu_nc_repro::mv2_gpu_nc::baselines::{fill_vector, recv_mv2, send_mv2, VectorXfer};
use gpu_nc_repro::mv2_gpu_nc::GpuCluster;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn latency_with_block(total: usize, block: usize) -> f64 {
    let out = Arc::new(AtomicU64::new(0));
    let out2 = Arc::clone(&out);
    GpuCluster::new(2).block_size(block).run(move |env| {
        let x = VectorXfer::paper(total);
        let dev = env.gpu.malloc(x.extent());
        if env.comm.rank() == 0 {
            fill_vector(&env.gpu, dev, &x, 1);
            send_mv2(&env.comm, dev, x, 1, 0); // warm up pools
            send_mv2(&env.comm, dev, x, 1, 1);
        } else {
            recv_mv2(&env.comm, dev, x, 0, 0);
            let t0 = sim_core::now();
            recv_mv2(&env.comm, dev, x, 0, 1);
            out2.store((sim_core::now() - t0).as_nanos(), Ordering::SeqCst);
        }
    });
    out.load(Ordering::SeqCst) as f64 / 1e6
}

fn main() {
    let total = 2 << 20;
    println!(
        "Tuning MV2_CUDA_BLOCK_SIZE for a {} MB vector message:\n",
        total >> 20
    );
    let mut best = (0usize, f64::INFINITY);
    for p in 13..=19 {
        let block = 1usize << p;
        let ms = latency_with_block(total, block);
        let bar = "#".repeat((ms * 4.0) as usize);
        println!("{:>6} KB: {:>8.2} ms  {}", block >> 10, ms, bar);
        if ms < best.1 {
            best = (block, ms);
        }
    }
    println!(
        "\nwrite `MV2_CUDA_BLOCK_SIZE={}` into the cluster config ({:.2} ms)",
        best.0, best.1
    );
}
