//! Quickstart: send a non-contiguous matrix column from one GPU to another
//! with a single MPI call.
//!
//! Run with: `cargo run --release --example quickstart`

use gpu_nc_repro::mpi_sim::Datatype;
use gpu_nc_repro::mv2_gpu_nc::GpuCluster;

fn main() {
    // Two nodes, each with a Tesla C2050-like GPU and a QDR InfiniBand HCA.
    let end = GpuCluster::new(2).run(|env| {
        let comm = &env.comm;
        let gpu = &env.gpu;

        // A 1024 x 256 matrix of f32 in device memory (row-major).
        let (rows, cols) = (1024usize, 256usize);
        let matrix = gpu.malloc(rows * cols * 4);

        // Column 7 as an MPI datatype: 1024 elements, one row apart.
        let column = Datatype::hvector(rows, 1, (cols * 4) as isize, &Datatype::float());
        column.commit();

        if comm.rank() == 0 {
            // Fill the matrix so every cell is identifiable.
            let data: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
            gpu.write_scalars(matrix, &data);

            // The entire "pack on the GPU, pipeline over PCIe + RDMA,
            // unpack on the remote GPU" dance is one call:
            comm.send(matrix.add(7 * 4), 1, &column, 1, 0);
            println!("rank 0: column sent at t={}", sim_core::now());
        } else {
            comm.recv(matrix.add(7 * 4), 1, &column, 0, 0);
            // Verify: element r of the column is row r, col 7.
            for r in (0..rows).step_by(123) {
                let v: Vec<f32> = gpu.read_scalars(matrix.add((r * cols + 7) * 4), 1);
                assert_eq!(v[0], (r * cols + 7) as f32);
            }
            println!(
                "rank 1: column received and verified at t={}",
                sim_core::now()
            );
        }
    });
    println!("simulated cluster finished at {end}");
}
