//! The paper's application benchmark in miniature: run SHOC Stencil2D on a
//! 2x2 process grid in both variants, verify they compute identical
//! results, and compare their communication cost.
//!
//! Run with: `cargo run --release --example stencil2d`

use gpu_nc_repro::stencil2d::{
    lines_of_code, run_stencil, Dir, RunOptions, StencilParams, Variant,
};

fn main() {
    let p = StencilParams {
        py: 2,
        px: 2,
        rows: 1024,
        cols: 1024,
        iters: 4,
    };
    let opts = RunOptions {
        timed_breakdown: true,
        collect_interiors: false,
    };

    println!(
        "Stencil2D, {} grid, {} iterations, f32\n",
        p.label(),
        p.iters
    );
    let def = run_stencil::<f32>(p, Variant::Def, opts);
    let mv2 = run_stencil::<f32>(p, Variant::Mv2, opts);

    assert_eq!(
        def.checksum(),
        mv2.checksum(),
        "the two variants must compute bitwise-identical fields"
    );
    println!(
        "checksum (identical across variants): {:.6}",
        def.checksum()
    );
    println!();
    println!("{:<22} {:>12} {:>14}", "", "Def", "MV2-GPU-NC");
    println!(
        "{:<22} {:>12} {:>14}",
        "execution time",
        format!("{}", def.wall),
        format!("{}", mv2.wall)
    );
    for d in [Dir::East, Dir::West, Dir::South, Dir::North] {
        let (a, b) = (def.ranks[0].breakdown.dir(d), mv2.ranks[0].breakdown.dir(d));
        println!(
            "{:<22} {:>12} {:>14}",
            format!("rank0 {} comm", d.name()),
            format!("{}", a.mpi + a.cuda),
            format!("{}", b.mpi + b.cuda),
        );
    }
    println!();
    println!(
        "halo-exchange code size: Def {} lines, MV2-GPU-NC {} lines",
        lines_of_code(Variant::Def),
        lines_of_code(Variant::Mv2)
    );
    println!(
        "speedup: {:.2}x",
        def.wall.as_secs_f64() / mv2.wall.as_secs_f64()
    );
}
