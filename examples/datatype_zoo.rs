//! Derived-datatype tour: every MPI type constructor exercised between two
//! GPUs — vectors, subarrays, indexed scatter patterns and structs — all
//! packed by the device and pipelined transparently.
//!
//! Run with: `cargo run --release --example datatype_zoo`

use gpu_nc_repro::mpi_sim::{Datatype, SubarrayOrder};
use gpu_nc_repro::mv2_gpu_nc::GpuCluster;

fn main() {
    GpuCluster::new(2).run(|env| {
        let comm = &env.comm;
        let gpu = &env.gpu;
        let me = comm.rank();

        // 1. A 2-D subarray: a 64x64 tile at (100, 200) of a 512x512 f64
        //    grid — the "read a tile of the neighbor's field" pattern.
        let grid = Datatype::subarray(
            &[512, 512],
            &[64, 64],
            &[100, 200],
            SubarrayOrder::C,
            &Datatype::double(),
        );
        grid.commit();
        let field = gpu.malloc(512 * 512 * 8);
        if me == 0 {
            let vals: Vec<f64> = (0..512 * 512).map(|i| i as f64 * 0.25).collect();
            gpu.write_scalars(field, &vals);
            comm.send(field, 1, &grid, 1, 0);
            println!("rank 0: sent a 64x64 f64 tile (one strided device pack)");
        } else {
            comm.recv(field, 1, &grid, 0, 0);
            let corner: Vec<f64> = gpu.read_scalars(field.add((100 * 512 + 200) * 8), 1);
            assert_eq!(corner[0], (100 * 512 + 200) as f64 * 0.25);
            println!("rank 1: tile landed at the right offset");
        }

        // 2. An indexed gather: every 17th int block — irregular enough
        //    that the library falls back to its device pack kernel.
        let blocks: Vec<(usize, isize)> = (0..512).map(|i| (3, i * 17)).collect();
        let idx = Datatype::indexed(&blocks, &Datatype::int());
        idx.commit();
        let sparse = gpu.malloc((512 * 17 + 16) * 4);
        if me == 0 {
            let vals: Vec<i32> = (0..512 * 17 + 16).collect();
            gpu.write_scalars(sparse, &vals);
            comm.send(sparse, 1, &idx, 1, 1);
            println!("rank 0: sent {} irregular blocks", blocks.len());
        } else {
            comm.recv(sparse, 1, &idx, 0, 1);
            let v: Vec<i32> = gpu.read_scalars(sparse.add(17 * 4), 3);
            assert_eq!(v, vec![17, 18, 19]);
            println!("rank 1: irregular blocks verified");
        }

        // 3. A struct: interleaved (i32 id, f64 mass) particle records, two
        //    fields at different displacements.
        let particle =
            Datatype::create_struct(&[(1, 0, Datatype::int()), (1, 8, Datatype::double())]);
        let particle = Datatype::resized(&particle, 0, 16);
        particle.commit();
        let particles = gpu.malloc(1000 * 16);
        if me == 0 {
            for i in 0..1000usize {
                gpu.write_scalars(particles.add(i * 16), &[i as i32]);
                gpu.write_scalars(particles.add(i * 16 + 8), &[i as f64 * 1.5]);
            }
            comm.send(particles, 1000, &particle, 1, 2);
            println!("rank 0: sent 1000 particle records");
        } else {
            comm.recv(particles, 1000, &particle, 0, 2);
            let id: Vec<i32> = gpu.read_scalars(particles.add(999 * 16), 1);
            let mass: Vec<f64> = gpu.read_scalars(particles.add(999 * 16 + 8), 1);
            assert_eq!((id[0], mass[0]), (999, 1498.5));
            println!("rank 1: particle records verified");
        }
    });
    println!("datatype zoo complete");
}
