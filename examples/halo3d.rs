//! 3-D halo exchange with subarray datatypes — the paper's machinery
//! generalized beyond 2-D: each face of a 3-D block has a different memory
//! regularity, and the committed layout classification picks the cheapest
//! device-pack strategy for each:
//!
//! * x-face (`[1, ny, nz]` window): one contiguous slab → plain async
//!   copies, no packing at all;
//! * y-face (`[nx, 1, nz]` window): `nx` long rows at a large pitch → one
//!   `cudaMemcpy2DAsync` per chunk;
//! * z-face (`[nx, ny, 1]` window): `nx*ny` single-element rows at a tiny
//!   pitch (the worst case) → also a single strided device copy, exactly
//!   the pathological layout the paper's Figure 2 is about.
//!
//! Run with: `cargo run --release --example halo3d`

use gpu_nc_repro::mpi_sim::{Datatype, SubarrayOrder};
use gpu_nc_repro::mv2_gpu_nc::GpuCluster;

const NX: usize = 64;
const NY: usize = 48;
const NZ: usize = 40;

fn face(dim: usize) -> Datatype {
    let sizes = [NX, NY, NZ];
    let mut subsizes = sizes;
    subsizes[dim] = 1;
    let mut starts = [0usize; 3];
    starts[dim] = sizes[dim] - 1; // the "high" boundary face
    let t = Datatype::subarray(
        &sizes,
        &subsizes,
        &starts,
        SubarrayOrder::C,
        &Datatype::double(),
    );
    t.commit();
    t
}

fn main() {
    let end = GpuCluster::new(2).run(|env| {
        let comm = &env.comm;
        let gpu = &env.gpu;
        let me = comm.rank();
        let cells = NX * NY * NZ;
        let block = gpu.malloc(cells * 8);

        // Fill with a coordinate-coded pattern.
        let vals: Vec<f64> = (0..cells).map(|i| i as f64 + me as f64 * 1e7).collect();
        gpu.write_scalars(block, &vals);

        for (dim, name) in [(0, "x"), (1, "y"), (2, "z")] {
            let f = face(dim);
            let t0 = sim_core::now();
            if me == 0 {
                comm.send(block, 1, &f, 1, dim as u32);
            } else {
                comm.recv(block, 1, &f, 0, dim as u32);
            }
            comm.barrier();
            if me == 1 {
                // Every cell on the received face must now carry rank 0's
                // pattern; everything else keeps rank 1's.
                let got: Vec<f64> = gpu.read_scalars(block, cells);
                let mut on_face = 0usize;
                for x in 0..NX {
                    for y in 0..NY {
                        for z in 0..NZ {
                            let idx = (x * NY + y) * NZ + z;
                            let coord = [x, y, z];
                            let sizes = [NX, NY, NZ];
                            if coord[dim] == sizes[dim] - 1 {
                                assert_eq!(got[idx], idx as f64, "face cell ({x},{y},{z})");
                                on_face += 1;
                            }
                        }
                    }
                }
                println!(
                    "rank 1: {name}-face verified ({on_face} cells, {} data, {})",
                    human(f.size()),
                    sim_core::now() - t0
                );
            }
        }
        if me == 1 {
            // x-face is contiguous (no 2D copies); y- and z-faces each use
            // one strided device copy per chunk.
            println!(
                "device pack ops used: {} cudaMemcpy2DAsync, {} pack kernels",
                gpu.counters().get("cudaMemcpy2DAsync"),
                gpu.counters().get("kernelLaunch"),
            );
            assert_eq!(gpu.counters().get("cudaMemcpy2DAsync"), 2);
        }
    });
    println!("3-D halo exchange finished at {end}");
}

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    }
}
