#!/usr/bin/env bash
# CI gate: formatting, lints, build, and the full test suite.
#
# Everything runs offline — the workspace has no external dependencies.
# Usage: scripts/ci.sh [--release-only]

set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" != "--release-only" ]]; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> pipeline bench smoke (plan cache + adaptive policy guards)"
cargo run --release -q -p bench --bin pipeline_bench -- \
    --iters 4 --out /tmp/BENCH_pipeline_smoke.json > /dev/null

echo "==> fault campaign smoke (retry/recovery byte-identical guard)"
cargo run --release -q -p bench --bin fault_campaign -- \
    --out /tmp/fault_campaign_smoke.json > /dev/null

echo "CI OK"
