#!/usr/bin/env bash
# CI gate: formatting, lints, build, and the full test suite.
#
# Everything runs offline — the workspace has no external dependencies.
# Usage: scripts/ci.sh [--release-only]

set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" != "--release-only" ]]; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> pipeline bench smoke (plan cache + adaptive policy guards)"
cargo run --release -q -p bench --bin pipeline_bench -- \
    --iters 4 --out /tmp/BENCH_pipeline_smoke.json > /dev/null

echo "==> ppn sweep smoke (topology placement + shm traffic guards)"
# The bin asserts that blocked ppn>1 placement beats an all-remote
# round-robin control, sheds HCA traffic, and routes intra-node halos
# over the shm channel.
cargo run --release -q -p bench --bin ppn_sweep -- \
    --out /tmp/BENCH_ppn_smoke.json > /dev/null

echo "==> fault campaign smoke (retry/recovery byte-identical guard)"
cargo run --release -q -p bench --bin fault_campaign -- \
    --out /tmp/fault_campaign_smoke.json > /dev/null

echo "==> model checking smoke (exhaustive protocol pass + seeded-bug rediscovery)"
# The bin itself asserts that all protocol scenarios pass exhaustively
# within the smoke budget and that both reintroduced liveness bugs are
# found with minimized counterexamples.
cargo run --release -q -p bench --bin modelcheck -- \
    --smoke true --out /tmp/modelcheck_smoke.json > /dev/null
[[ -s /tmp/modelcheck_smoke.json ]] || { echo "empty modelcheck report"; exit 1; }

echo "==> trace report smoke (overlap/rdma-utilization guards + Chrome export)"
# The bin itself asserts the overlap factor, rdma-lane utilization and
# that the Chrome export parses back with >0 trace events.
cargo run --release -q -p bench --bin trace_report -- \
    --out /tmp/trace_report_smoke.json \
    --chrome /tmp/trace_smoke.chrome.json > /dev/null
[[ -s /tmp/trace_report_smoke.json ]] || { echo "empty trace report"; exit 1; }
[[ -s /tmp/trace_smoke.chrome.json ]] || { echo "empty chrome trace"; exit 1; }

echo "==> rank scale smoke (event/thread carrier wake-trace cross-check)"
# The bin asserts an 8-rank halo3d run produces bit-identical scheduling
# grants, virtual times and checksums under the event-driven kernel and
# the legacy one-thread-per-rank carrier.
cargo run --release -q -p bench --bin rank_scale_sweep -- --smoke true

echo "==> collective sweep smoke (hier vs flat vs naive regression guards)"
# The bin itself asserts that at ppn >= 4 the hierarchical node-leader
# path beats both the flat single-level algorithms and the naive p2p-loop
# control on virtual time, and sheds HCA bytes onto the shm channel in
# proportion to the intra-node traffic it absorbs.
cargo run --release -q -p bench --bin coll_sweep -- \
    --smoke true --out /tmp/BENCH_coll_smoke.json > /dev/null
[[ -s /tmp/BENCH_coll_smoke.json ]] || { echo "empty coll sweep report"; exit 1; }

echo "==> offload sweep smoke (scheme ablation + crossover/fallback guards)"
# The bin asserts byte identity across staged/offload/auto on every
# layout, that the NIC offload engine beats the staged pipeline on the
# two-level strided layout at >= 256 KiB (crossover at or below it), and
# that the Auto policy on irregular layouts replays Force(Staged)
# event-for-event.
cargo run --release -q -p bench --bin offload_sweep -- \
    --iters 4 --out /tmp/BENCH_offload_smoke.json > /dev/null
[[ -s /tmp/BENCH_offload_smoke.json ]] || { echo "empty offload sweep report"; exit 1; }

echo "==> job mix smoke (multi-job QoS + sole-tenant identity guards)"
# The bin asserts the sole-tenant bit-identity guard (dedicated fast path
# vs multi-tenant arbitration at 100% share), the 4:1 HCA weight shift
# against a 1:1 control, the overload tail ordering, and plan-cache /
# autotuner stability across three campaigns of a seeded 6-job mix.
cargo run --release -q -p bench --bin job_mix -- \
    --smoke true --out /tmp/BENCH_jobmix_smoke.json > /dev/null
[[ -s /tmp/BENCH_jobmix_smoke.json ]] || { echo "empty job mix report"; exit 1; }

echo "CI OK"
