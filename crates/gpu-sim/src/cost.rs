//! Calibrated analytic cost model for GPU copy/launch operations.
//!
//! The model reproduces the latency *structure* the paper measures on a
//! Tesla C2050 (Fermi) behind PCIe 2.0 x16, CUDA 4.0:
//!
//! * 1-D copies across PCIe: `base + bytes/bw`.
//! * 2-D (pitched/strided) copies across PCIe are dominated by a **per-row
//!   cost**: each non-contiguous row is its own small DMA transaction.
//! * 2-D copies *inside* the device are ~20x cheaper per row (the paper's
//!   core observation: pack on the GPU first, then do one contiguous PCIe
//!   copy).
//!
//! Calibration anchors (all from the paper):
//!
//! | anchor | paper value | model value |
//! |---|---|---|
//! | §I-A option (a): D2H nc2nc, 4 KB vector of 4 B elems | 200 µs | ≈200 µs |
//! | §I-A option (b): D2H nc2c, same vector | 281 µs | ≈281 µs |
//! | §I-A option (c): D2D pack + D2H contiguous | 35 µs | ≈33 µs |
//! | Fig. 2: D2D2H at 4 MB vs D2H nc2nc at 4 MB | 4.8 % | ≈4.8 % |
//!
//! The unit tests at the bottom of this file pin those anchors.

use sim_core::SimDur;

/// Direction of a copy with respect to the device.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CopyDir {
    /// Host memory to device memory (PCIe).
    H2D,
    /// Device memory to host memory (PCIe).
    D2H,
    /// Within one device's memory.
    D2D,
}

/// Contiguity shape of a 2-D copy, derived from its pitches.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Shape2D {
    /// Both sides contiguous (degenerates to a 1-D copy).
    Contiguous,
    /// Both sides strided ("nc2nc").
    BothStrided,
    /// Exactly one side strided ("nc2c" / "c2nc"): the DMA engine cannot
    /// reuse one descriptor template, which the paper's measurements show is
    /// *slower* than nc2nc across PCIe (281 µs vs 200 µs at 4 KB).
    OneStrided,
}

/// All model constants, in ns / bytes-per-ns terms. Construct via
/// [`CostModel::tesla_c2050`] (the calibrated default) or build your own for
/// sensitivity studies.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Fixed engine occupancy per PCIe copy operation (ns).
    pub pcie_base_ns: u64,
    /// PCIe effective bandwidth, bytes per second.
    pub pcie_bw_bps: f64,
    /// Per-row cost of a D2H strided copy, both sides strided (ns).
    pub d2h_row_nc2nc_ns: f64,
    /// Per-row cost of a D2H strided copy, one side contiguous (ns).
    pub d2h_row_mixed_ns: f64,
    /// Per-row cost of an H2D strided copy, both sides strided (ns).
    pub h2d_row_nc2nc_ns: f64,
    /// Per-row cost of an H2D strided copy, one side contiguous (ns).
    pub h2d_row_mixed_ns: f64,
    /// Fixed engine occupancy per strided device-internal copy (ns).
    pub d2d_2d_base_ns: u64,
    /// Per-row cost of a strided device-internal copy (ns).
    pub d2d_row_ns: f64,
    /// Device-internal bandwidth for strided copies, bytes per second.
    pub d2d_2d_bw_bps: f64,
    /// Fixed engine occupancy per contiguous device-internal copy (ns).
    pub d2d_contig_base_ns: u64,
    /// Device-internal bandwidth for contiguous copies, bytes per second.
    pub d2d_contig_bw_bps: f64,
    /// CPU time consumed submitting one asynchronous operation (ns).
    pub async_submit_ns: u64,
    /// Fixed cost of launching a kernel (ns).
    pub kernel_launch_ns: u64,
    /// CPU time consumed by a stream/event query (ns).
    pub query_ns: u64,
    /// Per-segment cost of a generic gather/scatter pack kernel (ns).
    pub pack_kernel_per_seg_ns: f64,
    /// Device time consumed by `cudaMalloc` (ns) — why staging pools exist.
    pub malloc_ns: u64,
}

impl CostModel {
    /// The calibrated model for the paper's testbed (Tesla C2050, PCIe 2.0
    /// x16, CUDA 4.0).
    pub fn tesla_c2050() -> Self {
        CostModel {
            pcie_base_ns: 8_000,
            pcie_bw_bps: 5.5e9,
            d2h_row_nc2nc_ns: 187.0,
            d2h_row_mixed_ns: 266.0,
            h2d_row_nc2nc_ns: 45.0,
            h2d_row_mixed_ns: 64.0,
            d2d_2d_base_ns: 16_000,
            d2d_row_ns: 8.0,
            d2d_2d_bw_bps: 20e9,
            d2d_contig_base_ns: 6_000,
            d2d_contig_bw_bps: 80e9,
            async_submit_ns: 1_500,
            kernel_launch_ns: 7_000,
            query_ns: 200,
            pack_kernel_per_seg_ns: 3.0,
            malloc_ns: 60_000,
        }
    }

    fn bw_time(bytes: u64, bw_bps: f64) -> f64 {
        bytes as f64 / bw_bps * 1e9
    }

    /// Engine occupancy of a 1-D copy of `bytes`.
    pub fn copy1d(&self, dir: CopyDir, bytes: u64) -> SimDur {
        let ns = match dir {
            CopyDir::H2D | CopyDir::D2H => {
                self.pcie_base_ns as f64 + Self::bw_time(bytes, self.pcie_bw_bps)
            }
            CopyDir::D2D => {
                self.d2d_contig_base_ns as f64 + Self::bw_time(bytes, self.d2d_contig_bw_bps)
            }
        };
        SimDur::from_nanos(ns.round() as u64)
    }

    /// Execution time of a generic gather/scatter pack kernel moving
    /// `bytes` spread over `segments` runs within device memory.
    pub fn pack_kernel(&self, bytes: u64, segments: usize) -> SimDur {
        let ns = self.pack_kernel_per_seg_ns * segments as f64
            + Self::bw_time(bytes, self.d2d_2d_bw_bps);
        SimDur::from_nanos(ns.round() as u64)
    }

    /// Engine occupancy of a 2-D copy of `height` rows of `width` bytes.
    pub fn copy2d(&self, dir: CopyDir, shape: Shape2D, width: u64, height: u64) -> SimDur {
        let bytes = width * height;
        if shape == Shape2D::Contiguous || height <= 1 {
            return self.copy1d(dir, bytes);
        }
        let ns = match dir {
            CopyDir::D2H => {
                let row = match shape {
                    Shape2D::BothStrided => self.d2h_row_nc2nc_ns,
                    _ => self.d2h_row_mixed_ns,
                };
                self.pcie_base_ns as f64
                    + row * height as f64
                    + Self::bw_time(bytes, self.pcie_bw_bps)
            }
            CopyDir::H2D => {
                let row = match shape {
                    Shape2D::BothStrided => self.h2d_row_nc2nc_ns,
                    _ => self.h2d_row_mixed_ns,
                };
                self.pcie_base_ns as f64
                    + row * height as f64
                    + Self::bw_time(bytes, self.pcie_bw_bps)
            }
            CopyDir::D2D => {
                self.d2d_2d_base_ns as f64
                    + self.d2d_row_ns * height as f64
                    + Self::bw_time(bytes, self.d2d_2d_bw_bps)
            }
        };
        SimDur::from_nanos(ns.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(d: SimDur) -> f64 {
        d.as_micros_f64()
    }

    /// §I-A option (a): 4 KB vector, 4-byte elements → 1024 rows, D2H both
    /// sides strided. Paper: 200 µs.
    #[test]
    fn anchor_option_a_nc2nc_4k() {
        let m = CostModel::tesla_c2050();
        let t = m.copy2d(CopyDir::D2H, Shape2D::BothStrided, 4, 1024);
        assert!((us(t) - 200.0).abs() < 5.0, "got {} us", us(t));
    }

    /// §I-A option (b): same copy but packing into contiguous host memory.
    /// Paper: 281 µs.
    #[test]
    fn anchor_option_b_nc2c_4k() {
        let m = CostModel::tesla_c2050();
        let t = m.copy2d(CopyDir::D2H, Shape2D::OneStrided, 4, 1024);
        assert!((us(t) - 281.0).abs() < 5.0, "got {} us", us(t));
    }

    /// §I-A option (c): D2D pack then contiguous D2H. Paper: 35 µs.
    #[test]
    fn anchor_option_c_d2d2h_4k() {
        let m = CostModel::tesla_c2050();
        let t = m.copy2d(CopyDir::D2D, Shape2D::OneStrided, 4, 1024) + m.copy1d(CopyDir::D2H, 4096);
        assert!((us(t) - 35.0).abs() < 4.0, "got {} us", us(t));
    }

    /// Fig. 2 at 4 MB: D2D2H is ~4.8% of D2H nc2nc.
    #[test]
    fn anchor_fig2_ratio_at_4m() {
        let m = CostModel::tesla_c2050();
        let rows = (4u64 << 20) / 4;
        let nc2nc = m.copy2d(CopyDir::D2H, Shape2D::BothStrided, 4, rows);
        let d2d2h =
            m.copy2d(CopyDir::D2D, Shape2D::OneStrided, 4, rows) + m.copy1d(CopyDir::D2H, 4 << 20);
        let ratio = d2d2h.as_secs_f64() / nc2nc.as_secs_f64();
        assert!(
            (ratio - 0.048).abs() < 0.01,
            "D2D2H/nc2nc at 4MB = {ratio:.3}, paper says 0.048"
        );
    }

    #[test]
    fn contiguous_2d_degenerates_to_1d() {
        let m = CostModel::tesla_c2050();
        assert_eq!(
            m.copy2d(CopyDir::D2H, Shape2D::Contiguous, 64, 1024),
            m.copy1d(CopyDir::D2H, 64 * 1024)
        );
        assert_eq!(
            m.copy2d(CopyDir::H2D, Shape2D::BothStrided, 4096, 1),
            m.copy1d(CopyDir::H2D, 4096)
        );
    }

    #[test]
    fn h2d_strided_is_cheaper_than_d2h_strided() {
        // Host-initiated writes are write-combined; the paper's Fig. 5(a)
        // scale only fits if H2D strided is substantially cheaper.
        let m = CostModel::tesla_c2050();
        let h2d = m.copy2d(CopyDir::H2D, Shape2D::BothStrided, 4, 1024);
        let d2h = m.copy2d(CopyDir::D2H, Shape2D::BothStrided, 4, 1024);
        assert!(h2d < d2h);
    }

    #[test]
    fn d2d_strided_is_much_cheaper_per_row() {
        let m = CostModel::tesla_c2050();
        let d2d = m.copy2d(CopyDir::D2D, Shape2D::BothStrided, 4, 1 << 20);
        let d2h = m.copy2d(CopyDir::D2H, Shape2D::BothStrided, 4, 1 << 20);
        assert!(d2d.as_secs_f64() < 0.1 * d2h.as_secs_f64());
    }

    #[test]
    fn copy_cost_is_monotone_in_size() {
        let m = CostModel::tesla_c2050();
        let mut last = SimDur::ZERO;
        for h in [1u64, 4, 16, 64, 256, 1024, 4096] {
            let t = m.copy2d(CopyDir::D2H, Shape2D::BothStrided, 4, h);
            assert!(t >= last);
            last = t;
        }
    }
}
