//! The CUDA-like device API: memory management, streams, 1-D/2-D copies
//! (sync + async) and kernel launches.
//!
//! # Fidelity notes
//!
//! * **Bytes move eagerly, time settles later.** Enqueuing a copy performs
//!   the byte movement immediately and returns a [`Completion`] for the
//!   modeled finish instant. Because enqueue order equals program order and
//!   simulated code only observes data after waiting/polling completions,
//!   this is indistinguishable from deferred copying for race-free programs
//!   (racy programs are undefined behaviour on real CUDA too).
//! * **Engines.** Fermi exposes two PCIe copy engines (H2D and D2H) that
//!   run concurrently with the compute engine; strided device-internal
//!   copies get their own queue (they execute as small DMA/kernel programs).
//!   An operation starts when both its stream's previous op and its engine
//!   are free.
//! * **Sync vs async.** Synchronous calls (`cudaMemcpy`, `cudaMemcpy2D`)
//!   block the calling process until the engine finishes. Asynchronous calls
//!   cost [`CostModel::async_submit_ns`] of CPU time and return immediately.

use std::sync::Arc;

use hostmem::{HostPtr, Scalar};
use sim_core::lock::Mutex;
use sim_core::san;
use sim_core::{CallCounters, Completion, SimDur, SimTime};

use crate::cost::{CopyDir, CostModel, Shape2D};
use crate::mem::{DevPtr, DeviceMem, DeviceOom};

/// Either side of a copy: host memory or device memory. This is the
/// simulator's Unified Virtual Addressing: any API that accepts a `Loc` can
/// discover where the buffer lives, exactly like `cuPointerGetAttribute`.
#[derive(Clone, Debug)]
pub enum Loc {
    /// Host memory.
    Host(HostPtr),
    /// Device memory.
    Device(DevPtr),
}

impl Loc {
    /// True if the location is in device memory.
    pub fn is_device(&self) -> bool {
        matches!(self, Loc::Device(_))
    }

    /// A location `bytes` further along.
    pub fn add(&self, bytes: usize) -> Loc {
        match self {
            Loc::Host(p) => Loc::Host(p.add(bytes)),
            Loc::Device(p) => Loc::Device(p.add(bytes)),
        }
    }
}

impl From<HostPtr> for Loc {
    fn from(p: HostPtr) -> Self {
        Loc::Host(p)
    }
}

impl From<DevPtr> for Loc {
    fn from(p: DevPtr) -> Self {
        Loc::Device(p)
    }
}

/// Parameters of a 2-D (pitched) copy, mirroring `cudaMemcpy2D`:
/// `height` rows of `width` bytes, rows `dpitch`/`spitch` bytes apart.
#[derive(Clone, Debug)]
pub struct Copy2d {
    /// Destination base address.
    pub dst: Loc,
    /// Destination pitch (bytes between row starts); must be >= `width`.
    pub dpitch: usize,
    /// Source base address.
    pub src: Loc,
    /// Source pitch (bytes between row starts); must be >= `width`.
    pub spitch: usize,
    /// Row width in bytes.
    pub width: usize,
    /// Number of rows.
    pub height: usize,
}

impl Copy2d {
    fn validate(&self) {
        assert!(
            self.spitch >= self.width && self.dpitch >= self.width,
            "Copy2d: pitch smaller than width ({} / {} < {})",
            self.spitch,
            self.dpitch,
            self.width
        );
    }

    fn dir(&self) -> CopyDir {
        match (&self.src, &self.dst) {
            (Loc::Host(_), Loc::Device(_)) => CopyDir::H2D,
            (Loc::Device(_), Loc::Host(_)) => CopyDir::D2H,
            (Loc::Device(_), Loc::Device(_)) => CopyDir::D2D,
            (Loc::Host(_), Loc::Host(_)) => {
                panic!("Copy2d: host-to-host copies do not involve the GPU")
            }
        }
    }

    fn shape(&self) -> Shape2D {
        if self.height <= 1 {
            return Shape2D::Contiguous;
        }
        match (self.spitch == self.width, self.dpitch == self.width) {
            (true, true) => Shape2D::Contiguous,
            (false, false) => Shape2D::BothStrided,
            _ => Shape2D::OneStrided,
        }
    }
}

const ENGINES: usize = 4;
const ENG_H2D: usize = 0;
const ENG_D2H: usize = 1;
const ENG_D2D: usize = 2;
const ENG_COMPUTE: usize = 3;

/// Queue-wait counter name per engine (see [`Gpu::queue_waits`]).
const ENGINE_WAIT: [&str; ENGINES] = [
    "queue_wait.h2d",
    "queue_wait.d2h",
    "queue_wait.d2d",
    "queue_wait.compute",
];

fn engine_for(dir: CopyDir) -> usize {
    match dir {
        CopyDir::H2D => ENG_H2D,
        CopyDir::D2H => ENG_D2H,
        CopyDir::D2D => ENG_D2D,
    }
}

struct Sched {
    engine_free: [SimTime; ENGINES],
    stream_end: Vec<SimTime>,
    /// Sanitizer: last operation scheduled on each engine.
    engine_last: [Option<san::OpId>; ENGINES],
    /// Sanitizer: last operation scheduled on each stream.
    stream_last: Vec<Option<san::OpId>>,
    /// Sanitizer: event ops a stream must order after (from `wait_event`),
    /// drained into the next operation's predecessors.
    stream_pending: Vec<Vec<san::OpId>>,
}

struct GpuInner {
    id: u32,
    cost: CostModel,
    mem: Mutex<DeviceMem>,
    sched: Mutex<Sched>,
    counters: CallCounters,
    /// Engine queue-wait accounting: nanoseconds each operation waited on
    /// a busy engine beyond its stream dependency (`queue_wait.{engine}`
    /// plus the `queue_wait_ns` total). Kept separate from `counters` so
    /// [`Gpu::attach_recorder`]'s metrics namespace is unchanged; sharing
    /// layers (a multi-job cluster) read it via [`Gpu::queue_waits`] and
    /// register it under their own scope.
    queue_wait: CallCounters,
    /// Sanitizer queue domain for this device (unique per instance).
    san_domain: u64,
    /// Trace lanes, one per engine, when a recorder is attached.
    trace: Mutex<Option<[sim_trace::Lane; ENGINES]>>,
    /// Event monitor (see [`Gpu::attach_event_monitor`]): every scheduled
    /// operation's completion also wakes this component. `None` (default)
    /// skips the hook entirely.
    monitor: Mutex<Option<MonitorHook>>,
}

/// An attached completion monitor: the component's waker plus the shared
/// cell where its ticks record the latest completion instant seen.
type MonitorHook = (sim_core::Waker, Arc<Mutex<Option<SimTime>>>);

/// Stackless observer of a device's operation completions: woken (with
/// coalescing) at each operation's finish instant, it records the latest
/// completion it has seen. Purely observational — attaching it never moves
/// an event.
struct EngineMonitor {
    last_seen: Arc<Mutex<Option<SimTime>>>,
}

impl sim_core::Component for EngineMonitor {
    fn tick(&mut self, now: SimTime) -> Option<SimTime> {
        let mut last = self.last_seen.lock();
        if last.is_none_or(|t| t < now) {
            *last = Some(now);
        }
        None
    }
}

/// One simulated GPU. Clones are shallow handles to the same device.
#[derive(Clone)]
pub struct Gpu {
    inner: Arc<GpuInner>,
}

/// An ordered operation queue on a [`Gpu`] (a CUDA stream). Operations on
/// one stream serialize; operations on different streams overlap subject to
/// engine availability.
#[derive(Clone)]
pub struct Stream {
    gpu: Gpu,
    idx: usize,
}

impl Gpu {
    /// Create a device with `mem_bytes` of device memory.
    pub fn new(id: u32, cost: CostModel, mem_bytes: usize) -> Self {
        let gpu = Gpu {
            inner: Arc::new(GpuInner {
                id,
                cost,
                mem: Mutex::new(DeviceMem::new(mem_bytes)),
                sched: Mutex::new(Sched {
                    engine_free: [SimTime::ZERO; ENGINES],
                    stream_end: Vec::new(),
                    engine_last: [None; ENGINES],
                    stream_last: Vec::new(),
                    stream_pending: Vec::new(),
                }),
                counters: CallCounters::new(),
                queue_wait: CallCounters::new(),
                san_domain: san::new_queue_domain(),
                trace: Mutex::new(None),
                monitor: Mutex::new(None),
            }),
        };
        // Stream 0: used by the synchronous copy API.
        gpu.create_stream();
        gpu
    }

    /// A Tesla C2050-like device: calibrated cost model, 3 GB of memory.
    pub fn tesla_c2050(id: u32) -> Self {
        Gpu::new(id, CostModel::tesla_c2050(), 3 << 30)
    }

    /// Device id.
    pub fn id(&self) -> u32 {
        self.inner.id
    }

    /// This device's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.inner.cost
    }

    /// API call counters (for code-complexity instrumentation).
    pub fn counters(&self) -> &CallCounters {
        &self.inner.counters
    }

    /// Engine queue-wait accounting: total nanoseconds operations spent
    /// waiting on a busy engine beyond their stream dependency, as
    /// `queue_wait_ns` plus a per-engine `queue_wait.{h2d,d2h,d2d,compute}`
    /// breakdown. On a device shared by several jobs this is the
    /// contention a tenant actually felt; sharing layers register the set
    /// under their own metrics scope. Not part of
    /// [`Gpu::attach_recorder`]'s namespace.
    pub fn queue_waits(&self) -> &CallCounters {
        &self.inner.queue_wait
    }

    /// Attach a trace recorder: every scheduled operation emits a busy span
    /// on its engine's lane (`gpu<id>/{h2d,d2h,d2d,compute}`), and this
    /// device's call counters join the recorder's metrics registry. Purely
    /// observational — virtual-time behavior is unchanged.
    pub fn attach_recorder(&self, rec: &sim_trace::Recorder) {
        let scope = format!("gpu{}", self.inner.id);
        let lane = |name| rec.lane(&scope, name, sim_trace::LaneKind::GpuEngine);
        *self.inner.trace.lock() = Some([lane("h2d"), lane("d2h"), lane("d2d"), lane("compute")]);
        rec.register_counters(&scope, &self.inner.counters);
    }

    /// Register a stackless completion monitor on `sim`'s kernel: every
    /// operation scheduled on this device wakes the component at its finish
    /// instant (coalesced), turning stream/copy completions into component
    /// wakes. Observational only — attaching it never changes the timing of
    /// any operation, completion, or waiter. Returns the monitor's waker
    /// (its tick count = distinct completion instants observed).
    pub fn attach_event_monitor(&self, sim: &sim_core::Sim) -> sim_core::Waker {
        let last_seen = Arc::new(Mutex::new(None));
        let w = sim.add_component(
            format!("gpu{}.events", self.inner.id),
            EngineMonitor {
                last_seen: Arc::clone(&last_seen),
            },
        );
        *self.inner.monitor.lock() = Some((w.clone(), last_seen));
        w
    }

    /// Latest completion instant the event monitor has observed (`None`
    /// without [`attach_event_monitor`](Gpu::attach_event_monitor) or before
    /// the first completion).
    pub fn last_completion_seen(&self) -> Option<SimTime> {
        self.inner
            .monitor
            .lock()
            .as_ref()
            .and_then(|(_, last)| *last.lock())
    }

    // --- memory management -------------------------------------------------

    /// Allocate `len` bytes of device memory (`cudaMalloc`). Panics on OOM.
    pub fn malloc(&self, len: usize) -> DevPtr {
        self.try_malloc(len).expect("cudaMalloc failed")
    }

    /// Allocate, reporting OOM as an error. `cudaMalloc` synchronizes with
    /// the device and is expensive — which is why the MPI layer pools its
    /// staging buffers instead of allocating per message.
    pub fn try_malloc(&self, len: usize) -> Result<DevPtr, DeviceOom> {
        self.inner.counters.record("cudaMalloc");
        if sim_core::in_sim() {
            sim_core::sleep(SimDur::from_nanos(self.inner.cost.malloc_ns));
        }
        let offset = self.inner.mem.lock().alloc(len)?;
        Ok(DevPtr {
            gpu_id: self.inner.id,
            offset,
        })
    }

    /// Free a device allocation (`cudaFree`).
    pub fn free(&self, ptr: DevPtr) {
        self.inner.counters.record("cudaFree");
        self.check_owned(ptr);
        self.inner.mem.lock().dealloc(ptr.offset);
    }

    /// Bytes currently allocated.
    pub fn mem_allocated(&self) -> usize {
        self.inner.mem.lock().bytes_allocated()
    }

    /// Total device memory.
    pub fn mem_capacity(&self) -> usize {
        self.inner.mem.lock().capacity()
    }

    /// Number of live allocations (leak checking).
    pub fn live_allocs(&self) -> usize {
        self.inner.mem.lock().live_allocs()
    }

    fn check_owned(&self, ptr: DevPtr) {
        assert_eq!(
            ptr.gpu_id, self.inner.id,
            "device pointer belongs to gpu{}, used on gpu{}",
            ptr.gpu_id, self.inner.id
        );
    }

    // --- streams ------------------------------------------------------------

    /// Create a new stream.
    pub fn create_stream(&self) -> Stream {
        let mut sched = self.inner.sched.lock();
        let idx = sched.stream_end.len();
        sched.stream_end.push(SimTime::ZERO);
        sched.stream_last.push(None);
        sched.stream_pending.push(Vec::new());
        Stream {
            gpu: self.clone(),
            idx,
        }
    }

    fn sync_stream(&self) -> Stream {
        Stream {
            gpu: self.clone(),
            idx: 0,
        }
    }

    /// Block until every engine and stream is idle (`cudaDeviceSynchronize`).
    pub fn synchronize(&self) {
        self.inner.counters.record("cudaDeviceSynchronize");
        let t = {
            let sched = self.inner.sched.lock();
            let mut t = SimTime::ZERO;
            for &e in &sched.engine_free {
                t = t.max(e);
            }
            for &s in &sched.stream_end {
                t = t.max(s);
            }
            t
        };
        if sim_core::now() < t {
            sim_core::sleep_until(t);
        }
        san::acquire_queue(self.inner.san_domain, None);
    }

    /// Sanitizer: the range a side of a pitched copy covers.
    fn loc_range(&self, loc: &Loc, pitch: usize, width: usize, height: usize) -> san::MemRange {
        let len = if width == 0 || height == 0 {
            0
        } else {
            (height - 1) * pitch + width
        };
        match loc {
            Loc::Host(hp) => san::MemRange {
                domain: san::MemDomain::Host { buf: hp.buf().id() },
                start: hp.offset(),
                len,
            },
            Loc::Device(dp) => san::MemRange {
                domain: san::MemDomain::Dev {
                    gpu: self.inner.id as u64,
                },
                start: dp.offset(),
                len,
            },
        }
    }

    /// Sanitizer: the range of a contiguous device-memory operation.
    fn dev_range(&self, ptr: DevPtr, len: usize) -> san::MemRange {
        san::MemRange {
            domain: san::MemDomain::Dev {
                gpu: self.inner.id as u64,
            },
            start: ptr.offset(),
            len,
        }
    }

    /// Sanitizer: register a 1-D/2-D copy as an operation reading the
    /// source extent and writing the destination extent.
    fn san_op_for_copy(
        &self,
        base: &'static str,
        p: &Copy2d,
        stream: &Stream,
    ) -> Option<san::OpId> {
        if !san::enabled() {
            return None;
        }
        let dir = p.dir();
        let kind = match (base, dir) {
            ("memcpy", CopyDir::H2D) => "memcpy(H2D)",
            ("memcpy", CopyDir::D2H) => "memcpy(D2H)",
            ("memcpy", CopyDir::D2D) => "memcpy(D2D)",
            ("memcpy_2d", CopyDir::H2D) => "memcpy_2d(H2D)",
            ("memcpy_2d", CopyDir::D2H) => "memcpy_2d(D2H)",
            ("memcpy_2d", CopyDir::D2D) => "memcpy_2d(D2D)",
            ("memcpy_async", CopyDir::H2D) => "memcpy_async(H2D)",
            ("memcpy_async", CopyDir::D2H) => "memcpy_async(D2H)",
            ("memcpy_async", CopyDir::D2D) => "memcpy_async(D2D)",
            ("memcpy_2d_async", CopyDir::H2D) => "memcpy_2d_async(H2D)",
            ("memcpy_2d_async", CopyDir::D2H) => "memcpy_2d_async(D2H)",
            ("memcpy_2d_async", CopyDir::D2D) => "memcpy_2d_async(D2D)",
            _ => base,
        };
        let reads = vec![self.loc_range(&p.src, p.spitch, p.width, p.height)];
        let writes = vec![self.loc_range(&p.dst, p.dpitch, p.width, p.height)];
        self.san_begin(kind, stream, engine_for(dir), reads, writes)
    }

    /// Sanitizer: register an operation about to be scheduled on
    /// `(stream, engine)`, ordered after the stream's previous op, any
    /// pending event waits, and the engine's previous op.
    fn san_begin(
        &self,
        kind: &'static str,
        stream: &Stream,
        engine: usize,
        reads: Vec<san::MemRange>,
        writes: Vec<san::MemRange>,
    ) -> Option<san::OpId> {
        if !san::enabled() {
            return None;
        }
        let mut preds = Vec::new();
        {
            let mut sched = self.inner.sched.lock();
            if let Some(p) = sched.stream_last[stream.idx] {
                preds.push(p);
            }
            preds.append(&mut sched.stream_pending[stream.idx]);
            if let Some(p) = sched.engine_last[engine] {
                preds.push(p);
            }
        }
        san::begin_op(san::OpDesc {
            kind,
            queue: (self.inner.san_domain, stream.idx as u64),
            preds,
            reads,
            writes,
        })
    }

    /// Reserve time on (stream, engine) and return the completion. The
    /// operation starts when both the stream's previous op and the engine
    /// are free.
    fn schedule(
        &self,
        kind: &'static str,
        stream: &Stream,
        engine: usize,
        dur: SimDur,
        op: Option<san::OpId>,
    ) -> Completion {
        assert!(
            sim_core::in_sim(),
            "GPU operations with timing must run inside a simulation process"
        );
        let now = sim_core::now();
        let (start, end) = {
            let mut sched = self.inner.sched.lock();
            // `ready`: when the op could start were the engine free (its
            // stream dependency); any further delay is queue wait on the
            // engine — contention from other streams or, on a shared
            // device, other jobs.
            let ready = now.max(sched.stream_end[stream.idx]);
            let start = ready.max(sched.engine_free[engine]);
            let wait = (start - ready).as_nanos();
            if wait > 0 {
                self.inner.queue_wait.add(ENGINE_WAIT[engine], wait);
                self.inner.queue_wait.add("queue_wait_ns", wait);
            }
            let end = start + dur;
            sched.stream_end[stream.idx] = end;
            sched.engine_free[engine] = end;
            if op.is_some() {
                sched.stream_last[stream.idx] = op;
                sched.engine_last[engine] = op;
            }
            (start, end)
        };
        san::op_complete_at(op, end);
        if let Some(lanes) = &*self.inner.trace.lock() {
            lanes[engine].span(kind, start, end);
        }
        let c = Completion::ready_between(start, end);
        if let Some(o) = op {
            c.attach_ops(&[o]);
        }
        if let Some((w, _)) = &*self.inner.monitor.lock() {
            c.notify_component(w);
        }
        c
    }

    // --- data plane ----------------------------------------------------------

    /// Move bytes for a 2-D copy right now (no virtual time involved).
    fn do_copy2d_bytes(&self, p: &Copy2d) {
        p.validate();
        if p.width == 0 || p.height == 0 {
            return;
        }
        // The declared ranges were checked when the op was registered; the
        // eager byte movement below must not re-trigger process-level checks.
        let _san = san::suppress();
        let total = p.width * p.height;
        let mut tmp = vec![0u8; total];
        // Gather source rows into tmp.
        match &p.src {
            Loc::Host(hp) => {
                let base = hp.offset();
                hp.buf().with_slice(|s| {
                    for r in 0..p.height {
                        let off = base + r * p.spitch;
                        tmp[r * p.width..(r + 1) * p.width].copy_from_slice(&s[off..off + p.width]);
                    }
                });
            }
            Loc::Device(dp) => {
                self.check_owned(*dp);
                let mem = self.inner.mem.lock();
                let extent = (p.height - 1) * p.spitch + p.width;
                mem.check_access(dp.offset, extent);
                for r in 0..p.height {
                    let off = dp.offset + r * p.spitch;
                    tmp[r * p.width..(r + 1) * p.width]
                        .copy_from_slice(&mem.arena[off..off + p.width]);
                }
            }
        }
        // Scatter tmp into destination rows.
        match &p.dst {
            Loc::Host(hp) => {
                let base = hp.offset();
                hp.buf().with_slice(|s| {
                    for r in 0..p.height {
                        let off = base + r * p.dpitch;
                        s[off..off + p.width].copy_from_slice(&tmp[r * p.width..(r + 1) * p.width]);
                    }
                });
            }
            Loc::Device(dp) => {
                self.check_owned(*dp);
                let mut mem = self.inner.mem.lock();
                let extent = (p.height - 1) * p.dpitch + p.width;
                mem.check_access(dp.offset, extent);
                for r in 0..p.height {
                    let off = dp.offset + r * p.dpitch;
                    mem.arena[off..off + p.width]
                        .copy_from_slice(&tmp[r * p.width..(r + 1) * p.width]);
                }
            }
        }
    }

    fn copy1d_params(dst: Loc, src: Loc, len: usize) -> Copy2d {
        Copy2d {
            dst,
            dpitch: len.max(1),
            src,
            spitch: len.max(1),
            width: len,
            height: 1,
        }
    }

    // --- synchronous copies ---------------------------------------------------

    /// `cudaMemcpy`: contiguous blocking copy. Direction is inferred from the
    /// locations.
    pub fn memcpy(&self, dst: impl Into<Loc>, src: impl Into<Loc>, len: usize) {
        self.inner.counters.record("cudaMemcpy");
        let p = Self::copy1d_params(dst.into(), src.into(), len);
        let dur = self.inner.cost.copy1d(p.dir(), len as u64);
        let stream = self.sync_stream();
        let op = self.san_op_for_copy("memcpy", &p, &stream);
        self.do_copy2d_bytes(&p);
        self.schedule("memcpy", &stream, engine_for(p.dir()), dur, op)
            .wait();
    }

    /// `cudaMemcpy2D`: pitched blocking copy.
    pub fn memcpy_2d(&self, p: Copy2d) {
        self.inner.counters.record("cudaMemcpy2D");
        let dur = self
            .inner
            .cost
            .copy2d(p.dir(), p.shape(), p.width as u64, p.height as u64);
        let stream = self.sync_stream();
        let op = self.san_op_for_copy("memcpy_2d", &p, &stream);
        self.do_copy2d_bytes(&p);
        self.schedule("memcpy_2d", &stream, engine_for(p.dir()), dur, op)
            .wait();
    }

    // --- asynchronous copies ----------------------------------------------------

    /// `cudaMemcpyAsync`: contiguous copy enqueued on `stream`.
    pub fn memcpy_async(
        &self,
        dst: impl Into<Loc>,
        src: impl Into<Loc>,
        len: usize,
        stream: &Stream,
    ) -> Completion {
        self.inner.counters.record("cudaMemcpyAsync");
        sim_core::sleep(SimDur::from_nanos(self.inner.cost.async_submit_ns));
        let p = Self::copy1d_params(dst.into(), src.into(), len);
        let dur = self.inner.cost.copy1d(p.dir(), len as u64);
        let op = self.san_op_for_copy("memcpy_async", &p, stream);
        self.do_copy2d_bytes(&p);
        self.schedule("memcpy_async", stream, engine_for(p.dir()), dur, op)
    }

    /// `cudaMemcpy2DAsync`: pitched copy enqueued on `stream`.
    pub fn memcpy_2d_async(&self, p: Copy2d, stream: &Stream) -> Completion {
        self.inner.counters.record("cudaMemcpy2DAsync");
        sim_core::sleep(SimDur::from_nanos(self.inner.cost.async_submit_ns));
        let dur = self
            .inner
            .cost
            .copy2d(p.dir(), p.shape(), p.width as u64, p.height as u64);
        let op = self.san_op_for_copy("memcpy_2d_async", &p, stream);
        self.do_copy2d_bytes(&p);
        self.schedule("memcpy_2d_async", stream, engine_for(p.dir()), dur, op)
    }

    /// `cudaMemset`: blocking fill of device memory.
    pub fn memset(&self, dst: DevPtr, value: u8, len: usize) {
        self.inner.counters.record("cudaMemset");
        self.check_owned(dst);
        let stream = self.sync_stream();
        let op = self.san_begin(
            "memset",
            &stream,
            ENG_D2D,
            vec![],
            vec![self.dev_range(dst, len)],
        );
        {
            let mut mem = self.inner.mem.lock();
            mem.check_access(dst.offset, len);
            mem.arena[dst.offset..dst.offset + len].fill(value);
        }
        // Memset runs on the device-internal engine at contiguous rate.
        let dur = self.inner.cost.copy1d(CopyDir::D2D, len as u64);
        self.schedule("memset", &stream, ENG_D2D, dur, op).wait();
    }

    /// `cudaMemsetAsync`: fill enqueued on `stream`.
    pub fn memset_async(&self, dst: DevPtr, value: u8, len: usize, stream: &Stream) -> Completion {
        self.inner.counters.record("cudaMemsetAsync");
        sim_core::sleep(SimDur::from_nanos(self.inner.cost.async_submit_ns));
        self.check_owned(dst);
        let op = self.san_begin(
            "memset_async",
            stream,
            ENG_D2D,
            vec![],
            vec![self.dev_range(dst, len)],
        );
        {
            let mut mem = self.inner.mem.lock();
            mem.check_access(dst.offset, len);
            mem.arena[dst.offset..dst.offset + len].fill(value);
        }
        let dur = self.inner.cost.copy1d(CopyDir::D2D, len as u64);
        self.schedule("memset_async", stream, ENG_D2D, dur, op)
    }

    // --- kernels ---------------------------------------------------------------

    /// Launch a kernel on `stream`. `work` runs the kernel's *computation*
    /// (against device memory, via this handle) immediately; the returned
    /// completion fires after the modeled execution time `cost` plus launch
    /// overhead, once the compute engine and the stream are free.
    pub fn launch_kernel(
        &self,
        name: &'static str,
        cost: SimDur,
        stream: &Stream,
        work: impl FnOnce(&Gpu),
    ) -> Completion {
        self.inner.counters.record("kernelLaunch");
        let _ = name;
        sim_core::sleep(SimDur::from_nanos(self.inner.cost.async_submit_ns));
        // Kernels declare no ranges (their footprint is unknown); they still
        // participate in stream/event ordering, and their body's eager
        // execution must not trip process-level checks.
        let op = self.san_begin("launch_kernel", stream, ENG_COMPUTE, vec![], vec![]);
        {
            let _san = san::suppress();
            work(self);
        }
        let dur = SimDur::from_nanos(self.inner.cost.kernel_launch_ns) + cost;
        self.schedule("kernel", stream, ENG_COMPUTE, dur, op)
    }

    // --- untimed access (test setup / verification) ------------------------------

    /// Write bytes directly into device memory (no virtual time; for setup
    /// and verification only).
    pub fn write_bytes(&self, ptr: DevPtr, data: &[u8]) {
        self.check_owned(ptr);
        san::on_dev_access(self.inner.id as u64, ptr.offset, data.len(), true);
        let mut mem = self.inner.mem.lock();
        mem.check_access(ptr.offset, data.len());
        mem.arena[ptr.offset..ptr.offset + data.len()].copy_from_slice(data);
    }

    /// Read bytes directly from device memory (no virtual time).
    pub fn read_bytes(&self, ptr: DevPtr, len: usize) -> Vec<u8> {
        self.check_owned(ptr);
        san::on_dev_access(self.inner.id as u64, ptr.offset, len, false);
        let mem = self.inner.mem.lock();
        mem.check_access(ptr.offset, len);
        mem.arena[ptr.offset..ptr.offset + len].to_vec()
    }

    /// Write a slice of scalars directly into device memory.
    pub fn write_scalars<T: Scalar>(&self, ptr: DevPtr, vals: &[T]) {
        self.write_bytes(ptr, &hostmem::scalars_to_bytes(vals));
    }

    /// Read a slice of scalars directly from device memory.
    pub fn read_scalars<T: Scalar>(&self, ptr: DevPtr, count: usize) -> Vec<T> {
        hostmem::bytes_to_scalars(&self.read_bytes(ptr, count * T::SIZE))
    }

    /// Run `f` with mutable access to the raw device arena (kernel bodies).
    /// The access range is validated like any device access.
    pub fn with_arena<R>(&self, ptr: DevPtr, len: usize, f: impl FnOnce(&mut [u8]) -> R) -> R {
        self.check_owned(ptr);
        san::on_dev_access(self.inner.id as u64, ptr.offset, len, true);
        let mut mem = self.inner.mem.lock();
        mem.check_access(ptr.offset, len);
        let off = ptr.offset;
        f(&mut mem.arena[off..off + len])
    }
}

impl Stream {
    /// The owning device.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// `cudaStreamQuery`: true if every operation enqueued so far has
    /// finished. Costs a sliver of CPU time.
    pub fn query(&self) -> bool {
        self.gpu.inner.counters.record("cudaStreamQuery");
        sim_core::sleep(SimDur::from_nanos(self.gpu.inner.cost.query_ns));
        let end = self.gpu.inner.sched.lock().stream_end[self.idx];
        let done = end <= sim_core::now();
        if done {
            san::acquire_queue(self.gpu.inner.san_domain, Some(self.idx as u64));
        }
        done
    }

    /// `cudaStreamSynchronize`: block until all enqueued work finishes.
    pub fn synchronize(&self) {
        self.gpu.inner.counters.record("cudaStreamSynchronize");
        let end = self.gpu.inner.sched.lock().stream_end[self.idx];
        if sim_core::now() < end {
            sim_core::sleep_until(end);
        }
        san::acquire_queue(self.gpu.inner.san_domain, Some(self.idx as u64));
    }

    /// Record an event capturing all work enqueued so far.
    pub fn record_event(&self) -> Completion {
        let (end, last) = {
            let sched = self.gpu.inner.sched.lock();
            (sched.stream_end[self.idx], sched.stream_last[self.idx])
        };
        let c = Completion::ready_at(end);
        if let Some(op) = last {
            c.attach_ops(&[op]);
        }
        c
    }

    /// `cudaStreamWaitEvent`: future work on this stream starts no earlier
    /// than `event`'s completion. The event must have a known finish time
    /// (all simulated device events do).
    pub fn wait_event(&self, event: &Completion) {
        let at = event
            .done_at()
            .expect("Stream::wait_event requires an event with an assigned finish time");
        let ops = event.attached_ops();
        let mut sched = self.gpu.inner.sched.lock();
        let end = &mut sched.stream_end[self.idx];
        *end = (*end).max(at);
        sched.stream_pending[self.idx].extend(ops);
    }
}
