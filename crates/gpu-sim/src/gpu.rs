//! The CUDA-like device API: memory management, streams, 1-D/2-D copies
//! (sync + async) and kernel launches.
//!
//! # Fidelity notes
//!
//! * **Bytes move eagerly, time settles later.** Enqueuing a copy performs
//!   the byte movement immediately and returns a [`Completion`] for the
//!   modeled finish instant. Because enqueue order equals program order and
//!   simulated code only observes data after waiting/polling completions,
//!   this is indistinguishable from deferred copying for race-free programs
//!   (racy programs are undefined behaviour on real CUDA too).
//! * **Engines.** Fermi exposes two PCIe copy engines (H2D and D2H) that
//!   run concurrently with the compute engine; strided device-internal
//!   copies get their own queue (they execute as small DMA/kernel programs).
//!   An operation starts when both its stream's previous op and its engine
//!   are free.
//! * **Sync vs async.** Synchronous calls (`cudaMemcpy`, `cudaMemcpy2D`)
//!   block the calling process until the engine finishes. Asynchronous calls
//!   cost [`CostModel::async_submit_ns`] of CPU time and return immediately.

use std::sync::Arc;

use hostmem::{HostPtr, Scalar};
use parking_lot::Mutex;
use sim_core::{CallCounters, Completion, SimDur, SimTime};

use crate::cost::{CopyDir, CostModel, Shape2D};
use crate::mem::{DevPtr, DeviceMem, DeviceOom};

/// Either side of a copy: host memory or device memory. This is the
/// simulator's Unified Virtual Addressing: any API that accepts a `Loc` can
/// discover where the buffer lives, exactly like `cuPointerGetAttribute`.
#[derive(Clone, Debug)]
pub enum Loc {
    /// Host memory.
    Host(HostPtr),
    /// Device memory.
    Device(DevPtr),
}

impl Loc {
    /// True if the location is in device memory.
    pub fn is_device(&self) -> bool {
        matches!(self, Loc::Device(_))
    }

    /// A location `bytes` further along.
    pub fn add(&self, bytes: usize) -> Loc {
        match self {
            Loc::Host(p) => Loc::Host(p.add(bytes)),
            Loc::Device(p) => Loc::Device(p.add(bytes)),
        }
    }
}

impl From<HostPtr> for Loc {
    fn from(p: HostPtr) -> Self {
        Loc::Host(p)
    }
}

impl From<DevPtr> for Loc {
    fn from(p: DevPtr) -> Self {
        Loc::Device(p)
    }
}

/// Parameters of a 2-D (pitched) copy, mirroring `cudaMemcpy2D`:
/// `height` rows of `width` bytes, rows `dpitch`/`spitch` bytes apart.
#[derive(Clone, Debug)]
pub struct Copy2d {
    /// Destination base address.
    pub dst: Loc,
    /// Destination pitch (bytes between row starts); must be >= `width`.
    pub dpitch: usize,
    /// Source base address.
    pub src: Loc,
    /// Source pitch (bytes between row starts); must be >= `width`.
    pub spitch: usize,
    /// Row width in bytes.
    pub width: usize,
    /// Number of rows.
    pub height: usize,
}

impl Copy2d {
    fn validate(&self) {
        assert!(
            self.spitch >= self.width && self.dpitch >= self.width,
            "Copy2d: pitch smaller than width ({} / {} < {})",
            self.spitch,
            self.dpitch,
            self.width
        );
    }

    fn dir(&self) -> CopyDir {
        match (&self.src, &self.dst) {
            (Loc::Host(_), Loc::Device(_)) => CopyDir::H2D,
            (Loc::Device(_), Loc::Host(_)) => CopyDir::D2H,
            (Loc::Device(_), Loc::Device(_)) => CopyDir::D2D,
            (Loc::Host(_), Loc::Host(_)) => {
                panic!("Copy2d: host-to-host copies do not involve the GPU")
            }
        }
    }

    fn shape(&self) -> Shape2D {
        if self.height <= 1 {
            return Shape2D::Contiguous;
        }
        match (self.spitch == self.width, self.dpitch == self.width) {
            (true, true) => Shape2D::Contiguous,
            (false, false) => Shape2D::BothStrided,
            _ => Shape2D::OneStrided,
        }
    }
}

const ENGINES: usize = 4;
const ENG_H2D: usize = 0;
const ENG_D2H: usize = 1;
const ENG_D2D: usize = 2;
const ENG_COMPUTE: usize = 3;

fn engine_for(dir: CopyDir) -> usize {
    match dir {
        CopyDir::H2D => ENG_H2D,
        CopyDir::D2H => ENG_D2H,
        CopyDir::D2D => ENG_D2D,
    }
}

struct Sched {
    engine_free: [SimTime; ENGINES],
    stream_end: Vec<SimTime>,
}

struct GpuInner {
    id: u32,
    cost: CostModel,
    mem: Mutex<DeviceMem>,
    sched: Mutex<Sched>,
    counters: CallCounters,
}

/// One simulated GPU. Clones are shallow handles to the same device.
#[derive(Clone)]
pub struct Gpu {
    inner: Arc<GpuInner>,
}

/// An ordered operation queue on a [`Gpu`] (a CUDA stream). Operations on
/// one stream serialize; operations on different streams overlap subject to
/// engine availability.
#[derive(Clone)]
pub struct Stream {
    gpu: Gpu,
    idx: usize,
}

impl Gpu {
    /// Create a device with `mem_bytes` of device memory.
    pub fn new(id: u32, cost: CostModel, mem_bytes: usize) -> Self {
        let gpu = Gpu {
            inner: Arc::new(GpuInner {
                id,
                cost,
                mem: Mutex::new(DeviceMem::new(mem_bytes)),
                sched: Mutex::new(Sched {
                    engine_free: [SimTime::ZERO; ENGINES],
                    stream_end: Vec::new(),
                }),
                counters: CallCounters::new(),
            }),
        };
        // Stream 0: used by the synchronous copy API.
        gpu.create_stream();
        gpu
    }

    /// A Tesla C2050-like device: calibrated cost model, 3 GB of memory.
    pub fn tesla_c2050(id: u32) -> Self {
        Gpu::new(id, CostModel::tesla_c2050(), 3 << 30)
    }

    /// Device id.
    pub fn id(&self) -> u32 {
        self.inner.id
    }

    /// This device's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.inner.cost
    }

    /// API call counters (for code-complexity instrumentation).
    pub fn counters(&self) -> &CallCounters {
        &self.inner.counters
    }

    // --- memory management -------------------------------------------------

    /// Allocate `len` bytes of device memory (`cudaMalloc`). Panics on OOM.
    pub fn malloc(&self, len: usize) -> DevPtr {
        self.try_malloc(len).expect("cudaMalloc failed")
    }

    /// Allocate, reporting OOM as an error. `cudaMalloc` synchronizes with
    /// the device and is expensive — which is why the MPI layer pools its
    /// staging buffers instead of allocating per message.
    pub fn try_malloc(&self, len: usize) -> Result<DevPtr, DeviceOom> {
        self.inner.counters.record("cudaMalloc");
        if sim_core::in_sim() {
            sim_core::sleep(SimDur::from_nanos(self.inner.cost.malloc_ns));
        }
        let offset = self.inner.mem.lock().alloc(len)?;
        Ok(DevPtr {
            gpu_id: self.inner.id,
            offset,
        })
    }

    /// Free a device allocation (`cudaFree`).
    pub fn free(&self, ptr: DevPtr) {
        self.inner.counters.record("cudaFree");
        self.check_owned(ptr);
        self.inner.mem.lock().dealloc(ptr.offset);
    }

    /// Bytes currently allocated.
    pub fn mem_allocated(&self) -> usize {
        self.inner.mem.lock().bytes_allocated()
    }

    /// Total device memory.
    pub fn mem_capacity(&self) -> usize {
        self.inner.mem.lock().capacity()
    }

    /// Number of live allocations (leak checking).
    pub fn live_allocs(&self) -> usize {
        self.inner.mem.lock().live_allocs()
    }

    fn check_owned(&self, ptr: DevPtr) {
        assert_eq!(
            ptr.gpu_id, self.inner.id,
            "device pointer belongs to gpu{}, used on gpu{}",
            ptr.gpu_id, self.inner.id
        );
    }

    // --- streams ------------------------------------------------------------

    /// Create a new stream.
    pub fn create_stream(&self) -> Stream {
        let mut sched = self.inner.sched.lock();
        let idx = sched.stream_end.len();
        sched.stream_end.push(SimTime::ZERO);
        Stream {
            gpu: self.clone(),
            idx,
        }
    }

    fn sync_stream(&self) -> Stream {
        Stream {
            gpu: self.clone(),
            idx: 0,
        }
    }

    /// Block until every engine and stream is idle (`cudaDeviceSynchronize`).
    pub fn synchronize(&self) {
        self.inner.counters.record("cudaDeviceSynchronize");
        let t = {
            let sched = self.inner.sched.lock();
            let mut t = SimTime::ZERO;
            for &e in &sched.engine_free {
                t = t.max(e);
            }
            for &s in &sched.stream_end {
                t = t.max(s);
            }
            t
        };
        if sim_core::now() < t {
            sim_core::sleep_until(t);
        }
    }

    /// Reserve time on (stream, engine) and return the completion. The
    /// operation starts when both the stream's previous op and the engine
    /// are free.
    fn schedule(&self, stream: &Stream, engine: usize, dur: SimDur) -> Completion {
        assert!(
            sim_core::in_sim(),
            "GPU operations with timing must run inside a simulation process"
        );
        let now = sim_core::now();
        let mut sched = self.inner.sched.lock();
        let start = now
            .max(sched.stream_end[stream.idx])
            .max(sched.engine_free[engine]);
        let end = start + dur;
        sched.stream_end[stream.idx] = end;
        sched.engine_free[engine] = end;
        Completion::ready_at(end)
    }

    // --- data plane ----------------------------------------------------------

    /// Move bytes for a 2-D copy right now (no virtual time involved).
    fn do_copy2d_bytes(&self, p: &Copy2d) {
        p.validate();
        if p.width == 0 || p.height == 0 {
            return;
        }
        let total = p.width * p.height;
        let mut tmp = vec![0u8; total];
        // Gather source rows into tmp.
        match &p.src {
            Loc::Host(hp) => {
                let base = hp.offset();
                hp.buf().with_slice(|s| {
                    for r in 0..p.height {
                        let off = base + r * p.spitch;
                        tmp[r * p.width..(r + 1) * p.width]
                            .copy_from_slice(&s[off..off + p.width]);
                    }
                });
            }
            Loc::Device(dp) => {
                self.check_owned(*dp);
                let mem = self.inner.mem.lock();
                let extent = (p.height - 1) * p.spitch + p.width;
                mem.check_access(dp.offset, extent);
                for r in 0..p.height {
                    let off = dp.offset + r * p.spitch;
                    tmp[r * p.width..(r + 1) * p.width]
                        .copy_from_slice(&mem.arena[off..off + p.width]);
                }
            }
        }
        // Scatter tmp into destination rows.
        match &p.dst {
            Loc::Host(hp) => {
                let base = hp.offset();
                hp.buf().with_slice(|s| {
                    for r in 0..p.height {
                        let off = base + r * p.dpitch;
                        s[off..off + p.width].copy_from_slice(&tmp[r * p.width..(r + 1) * p.width]);
                    }
                });
            }
            Loc::Device(dp) => {
                self.check_owned(*dp);
                let mut mem = self.inner.mem.lock();
                let extent = (p.height - 1) * p.dpitch + p.width;
                mem.check_access(dp.offset, extent);
                for r in 0..p.height {
                    let off = dp.offset + r * p.dpitch;
                    mem.arena[off..off + p.width]
                        .copy_from_slice(&tmp[r * p.width..(r + 1) * p.width]);
                }
            }
        }
    }

    fn copy1d_params(dst: Loc, src: Loc, len: usize) -> Copy2d {
        Copy2d {
            dst,
            dpitch: len.max(1),
            src,
            spitch: len.max(1),
            width: len,
            height: 1,
        }
    }

    // --- synchronous copies ---------------------------------------------------

    /// `cudaMemcpy`: contiguous blocking copy. Direction is inferred from the
    /// locations.
    pub fn memcpy(&self, dst: impl Into<Loc>, src: impl Into<Loc>, len: usize) {
        self.inner.counters.record("cudaMemcpy");
        let p = Self::copy1d_params(dst.into(), src.into(), len);
        let dur = self.inner.cost.copy1d(p.dir(), len as u64);
        self.do_copy2d_bytes(&p);
        self.schedule(&self.sync_stream(), engine_for(p.dir()), dur).wait();
    }

    /// `cudaMemcpy2D`: pitched blocking copy.
    pub fn memcpy_2d(&self, p: Copy2d) {
        self.inner.counters.record("cudaMemcpy2D");
        let dur = self
            .inner
            .cost
            .copy2d(p.dir(), p.shape(), p.width as u64, p.height as u64);
        self.do_copy2d_bytes(&p);
        self.schedule(&self.sync_stream(), engine_for(p.dir()), dur).wait();
    }

    // --- asynchronous copies ----------------------------------------------------

    /// `cudaMemcpyAsync`: contiguous copy enqueued on `stream`.
    pub fn memcpy_async(
        &self,
        dst: impl Into<Loc>,
        src: impl Into<Loc>,
        len: usize,
        stream: &Stream,
    ) -> Completion {
        self.inner.counters.record("cudaMemcpyAsync");
        sim_core::sleep(SimDur::from_nanos(self.inner.cost.async_submit_ns));
        let p = Self::copy1d_params(dst.into(), src.into(), len);
        let dur = self.inner.cost.copy1d(p.dir(), len as u64);
        self.do_copy2d_bytes(&p);
        self.schedule(stream, engine_for(p.dir()), dur)
    }

    /// `cudaMemcpy2DAsync`: pitched copy enqueued on `stream`.
    pub fn memcpy_2d_async(&self, p: Copy2d, stream: &Stream) -> Completion {
        self.inner.counters.record("cudaMemcpy2DAsync");
        sim_core::sleep(SimDur::from_nanos(self.inner.cost.async_submit_ns));
        let dur = self
            .inner
            .cost
            .copy2d(p.dir(), p.shape(), p.width as u64, p.height as u64);
        self.do_copy2d_bytes(&p);
        self.schedule(stream, engine_for(p.dir()), dur)
    }

    /// `cudaMemset`: blocking fill of device memory.
    pub fn memset(&self, dst: DevPtr, value: u8, len: usize) {
        self.inner.counters.record("cudaMemset");
        self.check_owned(dst);
        {
            let mut mem = self.inner.mem.lock();
            mem.check_access(dst.offset, len);
            mem.arena[dst.offset..dst.offset + len].fill(value);
        }
        // Memset runs on the device-internal engine at contiguous rate.
        let dur = self.inner.cost.copy1d(CopyDir::D2D, len as u64);
        self.schedule(&self.sync_stream(), ENG_D2D, dur).wait();
    }

    /// `cudaMemsetAsync`: fill enqueued on `stream`.
    pub fn memset_async(&self, dst: DevPtr, value: u8, len: usize, stream: &Stream) -> Completion {
        self.inner.counters.record("cudaMemsetAsync");
        sim_core::sleep(SimDur::from_nanos(self.inner.cost.async_submit_ns));
        self.check_owned(dst);
        {
            let mut mem = self.inner.mem.lock();
            mem.check_access(dst.offset, len);
            mem.arena[dst.offset..dst.offset + len].fill(value);
        }
        let dur = self.inner.cost.copy1d(CopyDir::D2D, len as u64);
        self.schedule(stream, ENG_D2D, dur)
    }

    // --- kernels ---------------------------------------------------------------

    /// Launch a kernel on `stream`. `work` runs the kernel's *computation*
    /// (against device memory, via this handle) immediately; the returned
    /// completion fires after the modeled execution time `cost` plus launch
    /// overhead, once the compute engine and the stream are free.
    pub fn launch_kernel(
        &self,
        name: &'static str,
        cost: SimDur,
        stream: &Stream,
        work: impl FnOnce(&Gpu),
    ) -> Completion {
        self.inner.counters.record("kernelLaunch");
        let _ = name;
        sim_core::sleep(SimDur::from_nanos(self.inner.cost.async_submit_ns));
        work(self);
        let dur = SimDur::from_nanos(self.inner.cost.kernel_launch_ns) + cost;
        self.schedule(stream, ENG_COMPUTE, dur)
    }

    // --- untimed access (test setup / verification) ------------------------------

    /// Write bytes directly into device memory (no virtual time; for setup
    /// and verification only).
    pub fn write_bytes(&self, ptr: DevPtr, data: &[u8]) {
        self.check_owned(ptr);
        let mut mem = self.inner.mem.lock();
        mem.check_access(ptr.offset, data.len());
        mem.arena[ptr.offset..ptr.offset + data.len()].copy_from_slice(data);
    }

    /// Read bytes directly from device memory (no virtual time).
    pub fn read_bytes(&self, ptr: DevPtr, len: usize) -> Vec<u8> {
        self.check_owned(ptr);
        let mem = self.inner.mem.lock();
        mem.check_access(ptr.offset, len);
        mem.arena[ptr.offset..ptr.offset + len].to_vec()
    }

    /// Write a slice of scalars directly into device memory.
    pub fn write_scalars<T: Scalar>(&self, ptr: DevPtr, vals: &[T]) {
        self.write_bytes(ptr, &hostmem::scalars_to_bytes(vals));
    }

    /// Read a slice of scalars directly from device memory.
    pub fn read_scalars<T: Scalar>(&self, ptr: DevPtr, count: usize) -> Vec<T> {
        hostmem::bytes_to_scalars(&self.read_bytes(ptr, count * T::SIZE))
    }

    /// Run `f` with mutable access to the raw device arena (kernel bodies).
    /// The access range is validated like any device access.
    pub fn with_arena<R>(&self, ptr: DevPtr, len: usize, f: impl FnOnce(&mut [u8]) -> R) -> R {
        self.check_owned(ptr);
        let mut mem = self.inner.mem.lock();
        mem.check_access(ptr.offset, len);
        let off = ptr.offset;
        f(&mut mem.arena[off..off + len])
    }
}

impl Stream {
    /// The owning device.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// `cudaStreamQuery`: true if every operation enqueued so far has
    /// finished. Costs a sliver of CPU time.
    pub fn query(&self) -> bool {
        self.gpu.inner.counters.record("cudaStreamQuery");
        sim_core::sleep(SimDur::from_nanos(self.gpu.inner.cost.query_ns));
        let end = self.gpu.inner.sched.lock().stream_end[self.idx];
        end <= sim_core::now()
    }

    /// `cudaStreamSynchronize`: block until all enqueued work finishes.
    pub fn synchronize(&self) {
        self.gpu.inner.counters.record("cudaStreamSynchronize");
        let end = self.gpu.inner.sched.lock().stream_end[self.idx];
        if sim_core::now() < end {
            sim_core::sleep_until(end);
        }
    }

    /// Record an event capturing all work enqueued so far.
    pub fn record_event(&self) -> Completion {
        let end = self.gpu.inner.sched.lock().stream_end[self.idx];
        Completion::ready_at(end)
    }

    /// `cudaStreamWaitEvent`: future work on this stream starts no earlier
    /// than `event`'s completion. The event must have a known finish time
    /// (all simulated device events do).
    pub fn wait_event(&self, event: &Completion) {
        let at = event
            .done_at()
            .expect("Stream::wait_event requires an event with an assigned finish time");
        let mut sched = self.gpu.inner.sched.lock();
        let end = &mut sched.stream_end[self.idx];
        *end = (*end).max(at);
    }
}
