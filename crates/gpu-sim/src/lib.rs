//! # gpu-sim — a CUDA-like GPU device simulator
//!
//! Simulates the GPU side of the paper's testbed (NVIDIA Tesla C2050 behind
//! PCIe 2.0 x16): device memory with a real byte arena, streams, dual copy
//! engines, pitched (`cudaMemcpy2D`-style) copies and kernel launches — all
//! in the deterministic virtual time of [`sim_core`].
//!
//! Two things make it a faithful substrate for the paper:
//!
//! 1. **Functional realism** — device memory is real memory; every copy
//!    moves real bytes, so datatype pack/unpack logic built on top is tested
//!    end-to-end.
//! 2. **Temporal realism where it matters** — the [`cost::CostModel`] is
//!    calibrated to the paper's own measurements, in particular the huge
//!    per-row cost gap between strided copies *across PCIe* and strided
//!    copies *inside the device* that motivates GPU-side datatype packing.
//!
//! ```
//! use gpu_sim::Gpu;
//! use hostmem::HostBuf;
//!
//! let sim = sim_core::Sim::new();
//! sim.spawn("main", || {
//!     let gpu = Gpu::tesla_c2050(0);
//!     let dev = gpu.malloc(1024);
//!     let host = HostBuf::from_vec((0..1024).map(|i| (i % 256) as u8).collect());
//!     gpu.memcpy(dev, host.base(), 1024);          // H2D
//!     let back = HostBuf::alloc(1024);
//!     gpu.memcpy(back.base(), dev, 1024);          // D2H
//!     assert_eq!(back.read(0, 1024), host.read(0, 1024));
//!     assert!(sim_core::now().as_nanos() > 0);      // copies took time
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]

pub mod cost;
mod gpu;
mod mem;

pub use cost::{CopyDir, CostModel, Shape2D};
pub use gpu::{Copy2d, Gpu, Loc, Stream};
pub use mem::{DevPtr, DeviceOom, DEVICE_ALLOC_ALIGN};

#[cfg(test)]
mod tests {
    use super::*;
    use hostmem::HostBuf;
    use sim_core::{now, Sim, SimDur, SimTime};

    fn in_sim(f: impl FnOnce() + Send + 'static) {
        let sim = Sim::new();
        sim.spawn("test", f);
        sim.run();
    }

    #[test]
    fn event_monitor_sees_stream_completions() {
        let sim = Sim::new();
        let gpu = Gpu::tesla_c2050(0);
        let waker = gpu.attach_event_monitor(&sim);
        {
            let gpu = gpu.clone();
            sim.spawn("test", move || {
                let dev = gpu.malloc(1 << 20);
                let host = HostBuf::alloc(1 << 20);
                let stream = gpu.create_stream();
                let c = gpu.memcpy_async(dev, host.base(), 1 << 20, &stream);
                let done = c.done_at().unwrap();
                assert!(
                    gpu.last_completion_seen().is_none_or(|t| t < done),
                    "monitor must not observe a completion before it happens"
                );
                c.wait();
                assert_eq!(gpu.last_completion_seen(), Some(done));
            });
        }
        sim.run();
        assert!(waker.ticks() >= 1, "monitor component never ticked");
    }

    #[test]
    fn h2d_d2h_round_trip_moves_bytes() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let dev = gpu.malloc(64);
            let src = HostBuf::from_vec((0u8..64).collect());
            gpu.memcpy(dev, src.base(), 64);
            let dst = HostBuf::alloc(64);
            gpu.memcpy(dst.base(), dev, 64);
            assert_eq!(dst.read(0, 64), src.read(0, 64));
        });
    }

    #[test]
    fn sync_copy_blocks_for_modeled_time() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let dev = gpu.malloc(1 << 20);
            let host = HostBuf::alloc(1 << 20);
            let t0 = now();
            gpu.memcpy(dev, host.base(), 1 << 20);
            let dt = now() - t0;
            let expect = gpu.cost_model().copy1d(CopyDir::H2D, 1 << 20);
            assert_eq!(dt, expect);
        });
    }

    #[test]
    fn memcpy2d_pack_gathers_strided_rows() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            // Device matrix: 4 rows x 8 bytes; extract a 2-byte-wide column
            // block starting at byte 3 of each row.
            let dev = gpu.malloc(32);
            gpu.write_bytes(dev, &(0u8..32).collect::<Vec<_>>());
            let host = HostBuf::alloc(8);
            gpu.memcpy_2d(Copy2d {
                dst: Loc::Host(host.base()),
                dpitch: 2,
                src: Loc::Device(dev.add(3)),
                spitch: 8,
                width: 2,
                height: 4,
            });
            assert_eq!(host.read(0, 8), vec![3, 4, 11, 12, 19, 20, 27, 28]);
        });
    }

    #[test]
    fn memcpy2d_unpack_scatters_rows() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let dev = gpu.malloc(32);
            let host = HostBuf::from_vec(vec![1, 2, 3, 4, 5, 6]);
            gpu.memcpy_2d(Copy2d {
                dst: Loc::Device(dev.add(1)),
                dpitch: 8,
                src: Loc::Host(host.base()),
                spitch: 2,
                width: 2,
                height: 3,
            });
            let out = gpu.read_bytes(dev, 24);
            assert_eq!(&out[1..3], &[1, 2]);
            assert_eq!(&out[9..11], &[3, 4]);
            assert_eq!(&out[17..19], &[5, 6]);
        });
    }

    #[test]
    fn d2d_pack_is_correct_and_fast() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let src = gpu.malloc(1024);
            let dst = gpu.malloc(256);
            gpu.write_bytes(src, &(0..1024).map(|i| (i % 251) as u8).collect::<Vec<_>>());
            let t0 = now();
            // Pack: width 2 of every 8-byte row, 128 rows.
            gpu.memcpy_2d(Copy2d {
                dst: Loc::Device(dst),
                dpitch: 2,
                src: Loc::Device(src),
                spitch: 8,
                width: 2,
                height: 128,
            });
            let d2d_time = now() - t0;
            let got = gpu.read_bytes(dst, 256);
            let src_bytes = gpu.read_bytes(src, 1024);
            for r in 0..128 {
                assert_eq!(&got[r * 2..r * 2 + 2], &src_bytes[r * 8..r * 8 + 2]);
            }
            // Strided inside the device is cheaper than strided over PCIe.
            let pcie = gpu
                .cost_model()
                .copy2d(CopyDir::D2H, Shape2D::OneStrided, 2, 128);
            assert!(d2d_time < pcie);
        });
    }

    #[test]
    fn async_copies_on_different_engines_overlap() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let d1 = gpu.malloc(1 << 20);
            let d2 = gpu.malloc(1 << 20);
            let h1 = HostBuf::alloc(1 << 20);
            let h2 = HostBuf::alloc(1 << 20);
            let s1 = gpu.create_stream();
            let s2 = gpu.create_stream();
            let t0 = now();
            let c1 = gpu.memcpy_async(d1, h1.base(), 1 << 20, &s1); // H2D engine
            let c2 = gpu.memcpy_async(h2.base(), d2, 1 << 20, &s2); // D2H engine
            c1.wait();
            c2.wait();
            let elapsed = (now() - t0).as_micros_f64();
            let one = gpu
                .cost_model()
                .copy1d(CopyDir::H2D, 1 << 20)
                .as_micros_f64();
            assert!(
                elapsed < 1.5 * one,
                "H2D/D2H should overlap: elapsed {elapsed} vs single {one}"
            );
        });
    }

    #[test]
    fn same_engine_serializes() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let d1 = gpu.malloc(1 << 20);
            let d2 = gpu.malloc(1 << 20);
            let h = HostBuf::alloc(2 << 20);
            let s1 = gpu.create_stream();
            let s2 = gpu.create_stream();
            let t0 = now();
            let c1 = gpu.memcpy_async(d1, h.base(), 1 << 20, &s1);
            let c2 = gpu.memcpy_async(d2, h.ptr(1 << 20), 1 << 20, &s2);
            c1.wait();
            c2.wait();
            let elapsed = (now() - t0).as_micros_f64();
            let one = gpu
                .cost_model()
                .copy1d(CopyDir::H2D, 1 << 20)
                .as_micros_f64();
            assert!(
                elapsed > 1.9 * one,
                "two H2D copies share one engine: elapsed {elapsed} vs single {one}"
            );
        });
    }

    #[test]
    fn stream_orders_operations() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let dev = gpu.malloc(4096);
            let h = HostBuf::alloc(4096);
            let s = gpu.create_stream();
            let c1 = gpu.memcpy_async(dev, h.base(), 4096, &s);
            let c2 = gpu.memcpy_async(h.base(), dev, 4096, &s);
            // Different engines, same stream: still ordered.
            assert!(c2.done_at().unwrap() >= c1.done_at().unwrap());
            assert!(!s.query());
            s.synchronize();
            assert!(s.query());
        });
    }

    #[test]
    fn kernel_launch_runs_work_and_takes_time() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let dev = gpu.malloc(16);
            gpu.write_scalars(dev, &[1.0f32, 2.0, 3.0, 4.0]);
            let s = gpu.create_stream();
            let c = gpu.launch_kernel("double", SimDur::from_micros(100), &s, |g| {
                let mut v = g.read_scalars::<f32>(dev, 4);
                for x in &mut v {
                    *x *= 2.0;
                }
                g.write_scalars(dev, &v);
            });
            let t = c.wait();
            assert!(t >= SimTime::from_nanos(100_000));
            assert_eq!(gpu.read_scalars::<f32>(dev, 4), vec![2.0, 4.0, 6.0, 8.0]);
        });
    }

    #[test]
    fn counters_record_api_calls() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let dev = gpu.malloc(64);
            let h = HostBuf::alloc(64);
            gpu.memcpy(dev, h.base(), 64);
            gpu.memcpy_2d(Copy2d {
                dst: Loc::Host(h.base()),
                dpitch: 2,
                src: Loc::Device(dev),
                spitch: 4,
                width: 2,
                height: 8,
            });
            assert_eq!(gpu.counters().get("cudaMalloc"), 1);
            assert_eq!(gpu.counters().get("cudaMemcpy"), 1);
            assert_eq!(gpu.counters().get("cudaMemcpy2D"), 1);
        });
    }

    #[test]
    #[should_panic(expected = "outside any live allocation")]
    fn copy_past_allocation_panics() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let dev = gpu.malloc(64);
            let h = HostBuf::alloc(4096);
            gpu.memcpy(dev, h.base(), 4096);
        });
    }

    #[test]
    #[should_panic(expected = "belongs to gpu")]
    fn cross_gpu_pointer_rejected() {
        in_sim(|| {
            let a = Gpu::tesla_c2050(0);
            let b = Gpu::tesla_c2050(1);
            let pa = a.malloc(64);
            let h = HostBuf::alloc(64);
            b.memcpy(pa, h.base(), 64);
        });
    }

    #[test]
    fn malloc_free_cycle_releases_memory() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let before = gpu.mem_allocated();
            let p = gpu.malloc(1 << 20);
            assert!(gpu.mem_allocated() > before);
            gpu.free(p);
            assert_eq!(gpu.mem_allocated(), before);
            assert_eq!(gpu.live_allocs(), 0);
        });
    }

    #[test]
    fn device_synchronize_waits_for_everything() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let dev = gpu.malloc(1 << 20);
            let h = HostBuf::alloc(1 << 20);
            let s = gpu.create_stream();
            let c = gpu.memcpy_async(dev, h.base(), 1 << 20, &s);
            gpu.synchronize();
            assert!(c.poll());
        });
    }

    #[test]
    fn memset_fills_and_takes_time() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let dev = gpu.malloc(1 << 20);
            let t0 = now();
            gpu.memset(dev, 0xaa, 1 << 20);
            assert!(now() > t0);
            assert_eq!(gpu.read_bytes(dev.add(12345), 4), vec![0xaa; 4]);
            // Async variant on a stream.
            let s = gpu.create_stream();
            let c = gpu.memset_async(dev, 0x55, 4096, &s);
            c.wait();
            assert_eq!(gpu.read_bytes(dev, 4), vec![0x55; 4]);
        });
    }

    #[test]
    fn two_gpus_are_independent_devices() {
        in_sim(|| {
            let a = Gpu::tesla_c2050(0);
            let b = Gpu::tesla_c2050(1);
            let pa = a.malloc(16);
            let pb = b.malloc(16);
            a.write_bytes(pa, &[1u8; 16]);
            b.write_bytes(pb, &[2u8; 16]);
            assert_eq!(a.read_bytes(pa, 16), vec![1u8; 16]);
            assert_eq!(b.read_bytes(pb, 16), vec![2u8; 16]);
        });
    }
}
