//! Device memory: a first-fit allocator with coalescing over a real byte
//! arena.
//!
//! Device memory is backed by an actual `Vec<u8>` so that every simulated
//! copy moves real bytes — pack/unpack correctness in the upper layers is
//! checked end-to-end, not assumed.

use std::collections::BTreeMap;
use std::fmt;

/// Alignment of all device allocations, matching `cudaMalloc`'s 256-byte
/// guarantee.
pub const DEVICE_ALLOC_ALIGN: usize = 256;

/// An address in one GPU's device memory.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct DevPtr {
    pub(crate) gpu_id: u32,
    pub(crate) offset: usize,
}

impl fmt::Debug for DevPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DevPtr(gpu{}+{:#x})", self.gpu_id, self.offset)
    }
}

impl DevPtr {
    /// The owning GPU's id.
    pub fn gpu_id(&self) -> u32 {
        self.gpu_id
    }

    /// Byte offset within device memory.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// A pointer `bytes` further into device memory.
    pub fn add(&self, bytes: usize) -> DevPtr {
        DevPtr {
            gpu_id: self.gpu_id,
            offset: self.offset + bytes,
        }
    }

    /// A pointer displaced by a signed byte offset. Panics if the result
    /// would be before the start of device memory.
    pub fn add_signed(&self, bytes: isize) -> DevPtr {
        let abs = self.offset as isize + bytes;
        assert!(
            abs >= 0,
            "device pointer displaced before the start of device memory"
        );
        DevPtr {
            gpu_id: self.gpu_id,
            offset: abs as usize,
        }
    }
}

/// Device out-of-memory error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceOom {
    /// Bytes requested by the failed allocation.
    pub requested: usize,
    /// Bytes currently free (possibly fragmented).
    pub free: usize,
}

impl fmt::Display for DeviceOom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device out of memory: requested {} bytes, {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for DeviceOom {}

/// First-fit free-list allocator with neighbor coalescing.
pub(crate) struct DeviceMem {
    pub(crate) arena: Vec<u8>,
    /// offset -> length of each free extent, disjoint and non-adjacent.
    free: BTreeMap<usize, usize>,
    /// offset -> length of each live allocation.
    allocs: BTreeMap<usize, usize>,
}

impl DeviceMem {
    pub fn new(capacity: usize) -> Self {
        let mut free = BTreeMap::new();
        if capacity > 0 {
            free.insert(0, capacity);
        }
        DeviceMem {
            arena: vec![0u8; capacity],
            free,
            allocs: BTreeMap::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.arena.len()
    }

    pub fn bytes_free(&self) -> usize {
        self.free.values().sum()
    }

    pub fn bytes_allocated(&self) -> usize {
        self.allocs.values().sum()
    }

    pub fn alloc(&mut self, len: usize) -> Result<usize, DeviceOom> {
        let need = len.max(1).next_multiple_of(DEVICE_ALLOC_ALIGN);
        let found = self
            .free
            .iter()
            .find(|(_, &flen)| flen >= need)
            .map(|(&off, &flen)| (off, flen));
        match found {
            Some((off, flen)) => {
                self.free.remove(&off);
                if flen > need {
                    self.free.insert(off + need, flen - need);
                }
                self.allocs.insert(off, need);
                Ok(off)
            }
            None => Err(DeviceOom {
                requested: len,
                free: self.bytes_free(),
            }),
        }
    }

    pub fn dealloc(&mut self, offset: usize) {
        let len = self
            .allocs
            .remove(&offset)
            .unwrap_or_else(|| panic!("free of unallocated device pointer offset {offset:#x}"));
        // Coalesce with the free extent immediately before, if adjacent.
        let mut start = offset;
        let mut total = len;
        if let Some((&poff, &plen)) = self.free.range(..offset).next_back() {
            if poff + plen == offset {
                self.free.remove(&poff);
                start = poff;
                total += plen;
            }
        }
        // Coalesce with the free extent immediately after, if adjacent.
        if let Some(&nlen) = self.free.get(&(offset + len)) {
            self.free.remove(&(offset + len));
            total += nlen;
        }
        self.free.insert(start, total);
    }

    /// Validate that `[offset, offset+len)` lies within a single live
    /// allocation; panics otherwise. This is the simulator's equivalent of a
    /// device segfault.
    pub fn check_access(&self, offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        let ok = self
            .allocs
            .range(..=offset)
            .next_back()
            .is_some_and(|(&aoff, &alen)| offset + len <= aoff + alen);
        assert!(
            ok,
            "device memory access [{offset:#x}, +{len}) outside any live allocation"
        );
    }

    /// Number of live allocations (for leak tests).
    pub fn live_allocs(&self) -> usize {
        self.allocs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = DeviceMem::new(4096);
        let a = m.alloc(100).unwrap();
        let b = m.alloc(100).unwrap();
        assert_eq!(a % DEVICE_ALLOC_ALIGN, 0);
        assert_eq!(b % DEVICE_ALLOC_ALIGN, 0);
        assert_ne!(a, b);
        assert!(b >= a + 256 || a >= b + 256);
    }

    #[test]
    fn oom_reports_free_bytes() {
        let mut m = DeviceMem::new(1024);
        let _a = m.alloc(512).unwrap();
        let err = m.alloc(1024).unwrap_err();
        assert_eq!(err.requested, 1024);
        assert_eq!(err.free, 512);
    }

    #[test]
    fn free_coalesces_neighbors() {
        let mut m = DeviceMem::new(4096);
        let a = m.alloc(256).unwrap();
        let b = m.alloc(256).unwrap();
        let c = m.alloc(256).unwrap();
        m.dealloc(a);
        m.dealloc(c);
        m.dealloc(b); // middle block must merge both sides
        assert_eq!(m.bytes_free(), 4096);
        assert_eq!(m.free.len(), 1, "free list must be fully coalesced");
        // After full coalescing a capacity-sized alloc succeeds again.
        assert!(m.alloc(4096).is_ok());
    }

    #[test]
    fn reuse_after_free() {
        let mut m = DeviceMem::new(1024);
        let a = m.alloc(1024).unwrap();
        assert!(m.alloc(1).is_err());
        m.dealloc(a);
        assert!(m.alloc(1024).is_ok());
    }

    #[test]
    #[should_panic(expected = "free of unallocated")]
    fn double_free_panics() {
        let mut m = DeviceMem::new(1024);
        let a = m.alloc(10).unwrap();
        m.dealloc(a);
        m.dealloc(a);
    }

    #[test]
    fn check_access_accepts_interior() {
        let mut m = DeviceMem::new(4096);
        let a = m.alloc(1000).unwrap();
        m.check_access(a, 1000);
        m.check_access(a + 100, 900);
        m.check_access(a, 0);
    }

    #[test]
    #[should_panic(expected = "outside any live allocation")]
    fn check_access_rejects_overflow() {
        let mut m = DeviceMem::new(4096);
        // 1000 rounds up to 1024, so 1025 bytes must overflow the alloc.
        let a = m.alloc(1000).unwrap();
        m.check_access(a, 1025);
    }

    #[test]
    #[should_panic(expected = "outside any live allocation")]
    fn check_access_rejects_freed() {
        let mut m = DeviceMem::new(4096);
        let a = m.alloc(256).unwrap();
        m.dealloc(a);
        m.check_access(a, 1);
    }

    #[test]
    fn accounting_adds_up() {
        let mut m = DeviceMem::new(8192);
        let a = m.alloc(300).unwrap(); // rounds to 512
        let _b = m.alloc(256).unwrap();
        assert_eq!(m.bytes_allocated(), 512 + 256);
        assert_eq!(m.bytes_free(), 8192 - 768);
        m.dealloc(a);
        assert_eq!(m.bytes_allocated(), 256);
        assert_eq!(m.live_allocs(), 1);
    }
}
