//! # hostmem — simulated host (CPU) memory regions
//!
//! In the simulated cluster every node's host memory lives in the test
//! process's address space. A [`HostBuf`] is one allocation (a user buffer, a
//! registered staging buffer, an MPI bounce buffer); a [`HostPtr`] is a
//! cheap, cloneable "address" into one. Both the GPU simulator (PCIe DMA)
//! and the InfiniBand simulator (NIC DMA) move bytes between these regions,
//! so the crate sits below both.
//!
//! Buffers carry a process-global unique id used as a registration key by
//! the verbs layer, and a *pinned* flag mirroring page-locked host memory:
//! RDMA requires registration, and registration pins.

#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use sim_core::lock::Mutex;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Zero-filled backing storage that materializes on first write.
///
/// MPI-style workloads register large pools of bounce buffers at init and
/// touch only a few of them; at 1k+ simulated ranks the eager `vec![0; len]`
/// per buffer dominated wall-clock (tens of GB faulted, zeroed and unmapped
/// per run). Reads of an unmaterialized buffer see zeros without
/// allocating; the vector exists only once something is written.
struct Storage {
    len: usize,
    vec: Option<Vec<u8>>,
}

impl Storage {
    fn materialize(&mut self) -> &mut Vec<u8> {
        let len = self.len;
        self.vec.get_or_insert_with(|| vec![0u8; len])
    }
}

struct Inner {
    id: u64,
    data: Mutex<Storage>,
    pinned: AtomicBool,
}

/// One host memory allocation. Clones are shallow (same storage).
#[derive(Clone)]
pub struct HostBuf {
    inner: Arc<Inner>,
}

impl fmt::Debug for HostBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HostBuf#{}[{}B]", self.inner.id, self.len())
    }
}

impl HostBuf {
    /// Allocate a zero-filled buffer of `len` bytes. The backing memory is
    /// not touched until the first write (see [`Storage`]), so large pools
    /// of rarely-used staging buffers cost nothing but address-space
    /// bookkeeping.
    pub fn alloc(len: usize) -> Self {
        HostBuf {
            inner: Arc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                data: Mutex::new(Storage { len, vec: None }),
                pinned: AtomicBool::new(false),
            }),
        }
    }

    /// Wrap an existing byte vector.
    pub fn from_vec(v: Vec<u8>) -> Self {
        HostBuf {
            inner: Arc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                data: Mutex::new(Storage {
                    len: v.len(),
                    vec: Some(v),
                }),
                pinned: AtomicBool::new(false),
            }),
        }
    }

    /// The buffer's process-global unique id (registration key).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.data.lock().len
    }

    /// Whether the backing vector has been materialized by a write (for
    /// diagnostics and the laziness regression test).
    pub fn is_materialized(&self) -> bool {
        self.inner.data.lock().vec.is_some()
    }

    /// True for zero-length buffers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mark as page-locked (done by memory registration).
    pub fn pin(&self) {
        self.inner.pinned.store(true, Ordering::Relaxed);
    }

    /// Whether the buffer is page-locked.
    pub fn is_pinned(&self) -> bool {
        self.inner.pinned.load(Ordering::Relaxed)
    }

    /// A pointer to byte `offset`.
    pub fn ptr(&self, offset: usize) -> HostPtr {
        assert!(
            offset <= self.len(),
            "HostBuf::ptr: offset {offset} out of bounds (len {})",
            self.len()
        );
        HostPtr {
            buf: self.clone(),
            offset,
        }
    }

    /// A pointer to the start of the buffer.
    pub fn base(&self) -> HostPtr {
        self.ptr(0)
    }

    /// Copy `out.len()` bytes starting at `offset` into `out`.
    pub fn read_into(&self, offset: usize, out: &mut [u8]) {
        sim_core::san::on_host_access(self.inner.id, offset, out.len(), false);
        let data = self.inner.data.lock();
        let end = offset
            .checked_add(out.len())
            .filter(|&e| e <= data.len)
            .unwrap_or_else(|| {
                panic!(
                    "HostBuf::read_into: range {offset}..+{} out of bounds (len {})",
                    out.len(),
                    data.len
                )
            });
        match &data.vec {
            Some(v) => out.copy_from_slice(&v[offset..end]),
            // Never written: still all zeros, no need to materialize.
            None => out.fill(0),
        }
    }

    /// Read `len` bytes starting at `offset`.
    pub fn read(&self, offset: usize, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read_into(offset, &mut v);
        v
    }

    /// Write `src` starting at `offset`.
    pub fn write(&self, offset: usize, src: &[u8]) {
        sim_core::san::on_host_access(self.inner.id, offset, src.len(), true);
        let mut data = self.inner.data.lock();
        let end = offset
            .checked_add(src.len())
            .filter(|&e| e <= data.len)
            .unwrap_or_else(|| {
                panic!(
                    "HostBuf::write: range {offset}..+{} out of bounds (len {})",
                    src.len(),
                    data.len
                )
            });
        data.materialize()[offset..end].copy_from_slice(src);
    }

    /// Gather `height` rows of `width` bytes whose starts are `pitch` bytes
    /// apart (first row at `offset`) into the contiguous `out`, under a
    /// single lock acquisition. `out.len()` must equal `width * height`.
    /// Each row is reported to the sanitizer individually, so this is as
    /// precise as `height` separate [`HostBuf::read_into`] calls but much
    /// cheaper.
    pub fn read_strided(
        &self,
        offset: usize,
        pitch: usize,
        width: usize,
        height: usize,
        out: &mut [u8],
    ) {
        assert_eq!(
            out.len(),
            width * height,
            "HostBuf::read_strided: output length {} != width {width} * height {height}",
            out.len()
        );
        if width == 0 || height == 0 {
            return;
        }
        if sim_core::san::enabled() {
            for r in 0..height {
                sim_core::san::on_host_access(self.inner.id, offset + r * pitch, width, false);
            }
        }
        let data = self.inner.data.lock();
        let last_end = offset + (height - 1) * pitch + width;
        assert!(
            last_end <= data.len,
            "HostBuf::read_strided: {height} rows of {width}B at pitch {pitch} from {offset} \
             exceed buffer (len {})",
            data.len
        );
        match &data.vec {
            Some(v) => {
                for (r, row) in out.chunks_exact_mut(width).enumerate() {
                    let s = offset + r * pitch;
                    row.copy_from_slice(&v[s..s + width]);
                }
            }
            None => out.fill(0),
        }
    }

    /// Scatter the contiguous `src` into `height` rows of `width` bytes
    /// whose starts are `pitch` bytes apart (first row at `offset`), under
    /// a single lock acquisition. `src.len()` must equal `width * height`.
    pub fn write_strided(
        &self,
        offset: usize,
        pitch: usize,
        width: usize,
        height: usize,
        src: &[u8],
    ) {
        assert_eq!(
            src.len(),
            width * height,
            "HostBuf::write_strided: source length {} != width {width} * height {height}",
            src.len()
        );
        if width == 0 || height == 0 {
            return;
        }
        if sim_core::san::enabled() {
            for r in 0..height {
                sim_core::san::on_host_access(self.inner.id, offset + r * pitch, width, true);
            }
        }
        let mut data = self.inner.data.lock();
        let last_end = offset + (height - 1) * pitch + width;
        assert!(
            last_end <= data.len,
            "HostBuf::write_strided: {height} rows of {width}B at pitch {pitch} from {offset} \
             exceed buffer (len {})",
            data.len
        );
        let v = data.materialize();
        for (r, row) in src.chunks_exact(width).enumerate() {
            let s = offset + r * pitch;
            v[s..s + width].copy_from_slice(row);
        }
    }

    /// Run `f` over the raw storage (single lock acquisition; used by bulk
    /// operations like strided copies). Conservatively counts as a write of
    /// the whole buffer for the sanitizer.
    pub fn with_slice<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        sim_core::san::on_host_access(self.inner.id, 0, self.len(), true);
        f(self.inner.data.lock().materialize())
    }

    /// Byte-for-byte copy between host buffers (may be the same buffer as
    /// long as the ranges do not overlap).
    pub fn copy(src: &HostPtr, dst: &HostPtr, len: usize) {
        if Arc::ptr_eq(&src.buf.inner, &dst.buf.inner) {
            let mut data = src.buf.inner.data.lock();
            let (s, d, l) = (src.offset, dst.offset, len);
            assert!(
                s + l <= data.len && d + l <= data.len,
                "HostBuf::copy: out of bounds"
            );
            assert!(
                s + l <= d || d + l <= s || l == 0,
                "HostBuf::copy: overlapping ranges within one buffer"
            );
            data.materialize().copy_within(s..s + l, d);
        } else {
            let tmp = src.buf.read(src.offset, len);
            dst.buf.write(dst.offset, &tmp);
        }
    }
}

/// A cheap cloneable address inside a [`HostBuf`].
#[derive(Clone)]
pub struct HostPtr {
    buf: HostBuf,
    offset: usize,
}

impl fmt::Debug for HostPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HostPtr#{}+{}", self.buf.id(), self.offset)
    }
}

impl HostPtr {
    /// The underlying buffer.
    pub fn buf(&self) -> &HostBuf {
        &self.buf
    }

    /// Byte offset within the buffer.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// A pointer `bytes` further into the buffer.
    pub fn add(&self, bytes: usize) -> HostPtr {
        self.buf.ptr(self.offset + bytes)
    }

    /// Bytes remaining between this pointer and the end of the buffer.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.offset
    }

    /// Read `len` bytes at this address.
    pub fn read(&self, len: usize) -> Vec<u8> {
        self.buf.read(self.offset, len)
    }

    /// Write `src` at this address.
    pub fn write(&self, src: &[u8]) {
        self.buf.write(self.offset, src)
    }
}

/// Fixed-size scalars that can live in simulated memory (host or device).
///
/// All storage is little-endian, matching the simulated homogeneous cluster.
pub trait Scalar: Copy + PartialEq + fmt::Debug + Send + 'static {
    /// Size of the encoded scalar in bytes.
    const SIZE: usize;
    /// Encode into `out` (exactly `SIZE` bytes).
    fn write_le(self, out: &mut [u8]);
    /// Decode from `inp` (exactly `SIZE` bytes).
    fn read_le(inp: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            fn write_le(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
            fn read_le(inp: &[u8]) -> Self {
                <$t>::from_le_bytes(inp.try_into().expect("Scalar::read_le: wrong length"))
            }
        }
    )*};
}

impl_scalar!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Encode a slice of scalars into bytes.
pub fn scalars_to_bytes<T: Scalar>(vals: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; vals.len() * T::SIZE];
    for (i, v) in vals.iter().enumerate() {
        v.write_le(&mut out[i * T::SIZE..(i + 1) * T::SIZE]);
    }
    out
}

/// Decode bytes into scalars. Panics if `bytes` is not a whole number of
/// scalars.
pub fn bytes_to_scalars<T: Scalar>(bytes: &[u8]) -> Vec<T> {
    assert_eq!(
        bytes.len() % T::SIZE,
        0,
        "bytes_to_scalars: {} is not a multiple of {}",
        bytes.len(),
        T::SIZE
    );
    bytes.chunks_exact(T::SIZE).map(|c| T::read_le(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xorshift::XorShift64;

    #[test]
    fn alloc_is_zeroed() {
        let b = HostBuf::alloc(16);
        assert_eq!(b.read(0, 16), vec![0u8; 16]);
        assert_eq!(b.len(), 16);
        assert!(!b.is_empty());
        assert!(HostBuf::alloc(0).is_empty());
    }

    #[test]
    fn alloc_is_lazy_until_first_write() {
        let b = HostBuf::alloc(1 << 20);
        assert!(!b.is_materialized(), "fresh buffer must not allocate");
        assert_eq!(b.read(1 << 19, 4), vec![0u8; 4]);
        let mut out = vec![0xffu8; 8];
        b.read_strided(0, 16, 4, 2, &mut out);
        assert_eq!(out, vec![0u8; 8]);
        assert!(!b.is_materialized(), "reads see zeros without allocating");
        b.write(7, &[1]);
        assert!(b.is_materialized());
        assert_eq!(b.read(6, 3), vec![0, 1, 0]);
        assert!(HostBuf::from_vec(vec![1, 2]).is_materialized());
    }

    #[test]
    fn ids_are_unique() {
        let a = HostBuf::alloc(1);
        let b = HostBuf::alloc(1);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.id(), a.clone().id(), "clones share identity");
    }

    #[test]
    fn read_write_round_trip() {
        let b = HostBuf::alloc(8);
        b.write(2, &[1, 2, 3]);
        assert_eq!(b.read(0, 8), vec![0, 0, 1, 2, 3, 0, 0, 0]);
        assert_eq!(b.ptr(2).read(3), vec![1, 2, 3]);
    }

    #[test]
    fn ptr_arithmetic() {
        let b = HostBuf::alloc(10);
        let p = b.ptr(4);
        assert_eq!(p.offset(), 4);
        assert_eq!(p.add(3).offset(), 7);
        assert_eq!(p.remaining(), 6);
        p.write(&[9]);
        assert_eq!(b.read(4, 1), vec![9]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_write_panics() {
        HostBuf::alloc(4).write(2, &[0; 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_ptr_panics() {
        let _ = HostBuf::alloc(4).ptr(5);
    }

    #[test]
    fn copy_between_buffers() {
        let a = HostBuf::from_vec(vec![1, 2, 3, 4]);
        let b = HostBuf::alloc(4);
        HostBuf::copy(&a.ptr(1), &b.ptr(2), 2);
        assert_eq!(b.read(0, 4), vec![0, 0, 2, 3]);
    }

    #[test]
    fn copy_within_one_buffer_disjoint() {
        let a = HostBuf::from_vec(vec![1, 2, 3, 4, 5, 6]);
        HostBuf::copy(&a.ptr(0), &a.ptr(3), 3);
        assert_eq!(a.read(0, 6), vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn copy_overlap_panics() {
        let a = HostBuf::alloc(8);
        HostBuf::copy(&a.ptr(0), &a.ptr(2), 4);
    }

    #[test]
    fn strided_read_write_round_trip() {
        let b = HostBuf::from_vec((0u8..24).collect());
        // 3 rows of 2 bytes, 8 apart, starting at 1: {1,2}, {9,10}, {17,18}.
        let mut out = vec![0u8; 6];
        b.read_strided(1, 8, 2, 3, &mut out);
        assert_eq!(out, vec![1, 2, 9, 10, 17, 18]);
        let c = HostBuf::alloc(24);
        c.write_strided(1, 8, 2, 3, &out);
        assert_eq!(c.read(0, 4), vec![0, 1, 2, 0]);
        assert_eq!(c.read(9, 2), vec![9, 10]);
        assert_eq!(c.read(17, 2), vec![17, 18]);
        // Degenerate shapes are no-ops.
        b.read_strided(0, 8, 0, 3, &mut []);
        c.write_strided(0, 8, 2, 0, &[]);
    }

    #[test]
    #[should_panic(expected = "exceed buffer")]
    fn strided_read_oob_panics() {
        let b = HostBuf::alloc(16);
        let mut out = vec![0u8; 6];
        b.read_strided(0, 8, 2, 3, &mut out);
    }

    #[test]
    #[should_panic(expected = "exceed buffer")]
    fn strided_write_oob_panics() {
        let b = HostBuf::alloc(16);
        b.write_strided(4, 8, 2, 3, &[0u8; 6]);
    }

    #[test]
    fn pinning() {
        let b = HostBuf::alloc(1);
        assert!(!b.is_pinned());
        b.pin();
        assert!(b.is_pinned());
    }

    #[test]
    fn scalar_round_trip_f32() {
        let vals = [1.5f32, -2.25, 0.0, f32::MAX];
        let bytes = scalars_to_bytes(&vals);
        assert_eq!(bytes.len(), 16);
        assert_eq!(bytes_to_scalars::<f32>(&bytes), vals);
    }

    #[test]
    fn scalar_round_trip_f64_u32() {
        let vals = [1.5f64, -0.125];
        assert_eq!(bytes_to_scalars::<f64>(&scalars_to_bytes(&vals)), vals);
        let ints = [7u32, 0xdead_beef];
        assert_eq!(bytes_to_scalars::<u32>(&scalars_to_bytes(&ints)), ints);
    }

    // Deterministic randomized coverage (replaces the former proptest
    // suite; seeds are fixed so every run exercises identical cases).

    #[test]
    fn random_write_then_read() {
        let mut rng = XorShift64::new(0xB0B1);
        for _ in 0..64 {
            let len = rng.gen_range(0, 256);
            let pad = rng.gen_range(0, 32);
            let mut data = vec![0u8; len];
            rng.fill_bytes(&mut data);
            let b = HostBuf::alloc(len + pad);
            b.write(pad / 2, &data);
            assert_eq!(b.read(pad / 2, len), data);
        }
    }

    #[test]
    fn random_scalars_round_trip() {
        let mut rng = XorShift64::new(0xB0B2);
        for _ in 0..64 {
            let n = rng.gen_range(0, 64);
            let vals: Vec<i64> = (0..n).map(|_| rng.next_u64() as i64).collect();
            assert_eq!(bytes_to_scalars::<i64>(&scalars_to_bytes(&vals)), vals);
        }
    }

    #[test]
    fn random_copy_is_exact() {
        let mut rng = XorShift64::new(0xB0B3);
        for _ in 0..64 {
            let len = rng.gen_range(1, 128);
            let doff = rng.gen_range(0, 64);
            let mut src = vec![0u8; len];
            rng.fill_bytes(&mut src);
            let a = HostBuf::from_vec(src.clone());
            let b = HostBuf::alloc(len + doff);
            HostBuf::copy(&a.base(), &b.ptr(doff), len);
            assert_eq!(b.read(doff, len), src);
        }
    }
}
