//! Pipeline timeline analysis: turn a [`PipelineTrace`] into per-stage
//! throughput and overlap statistics.
//!
//! The paper argues its design works because the five stages overlap; this
//! module quantifies that from a real (simulated) run — the kind of
//! evidence Figure 3 sketches.

use sim_core::SimTime;

use crate::stager::{PipelineTrace, TraceEvent};

/// Per-stage summary extracted from a trace.
#[derive(Clone, Debug)]
pub struct StageStats {
    /// Stage name ("pack", "d2h", "h2d", "unpack").
    pub stage: &'static str,
    /// Number of chunk completions observed.
    pub chunks: usize,
    /// First completion instant.
    pub first_done: SimTime,
    /// Last completion instant.
    pub last_done: SimTime,
    /// Mean gap between consecutive completions (the stage's steady-state
    /// period), in microseconds.
    pub period_us: f64,
}

/// Whole-pipeline summary.
#[derive(Clone, Debug)]
pub struct PipelineStats {
    /// Per-stage summaries in pipeline order.
    pub stages: Vec<StageStats>,
    /// Wall span from first to last completion, microseconds.
    pub span_us: f64,
    /// Overlap ratio: sum of stage spans divided by the wall span. A
    /// perfectly serialized pipeline gives ~1.0; full overlap approaches
    /// the number of active stages.
    pub overlap: f64,
}

const STAGE_ORDER: [&str; 4] = ["pack", "d2h", "h2d", "unpack"];

/// Analyze the events of one transfer.
pub fn analyze(trace: &PipelineTrace) -> PipelineStats {
    analyze_events(&trace.events())
}

/// Analyze an explicit event list.
pub fn analyze_events(events: &[TraceEvent]) -> PipelineStats {
    let mut stages = Vec::new();
    let mut total_stage_span = 0.0;
    let mut first = None::<SimTime>;
    let mut last = None::<SimTime>;
    for &stage in &STAGE_ORDER {
        let mut times: Vec<SimTime> = events
            .iter()
            .filter(|e| e.stage == stage)
            .map(|e| e.done_at)
            .collect();
        if times.is_empty() {
            continue;
        }
        times.sort_unstable();
        let (f, l) = (times[0], *times.last().unwrap());
        let span = (l - f).as_micros_f64();
        let period = if times.len() > 1 {
            span / (times.len() - 1) as f64
        } else {
            0.0
        };
        total_stage_span += span;
        first = Some(first.map_or(f, |x: SimTime| x.min(f)));
        last = Some(last.map_or(l, |x: SimTime| x.max(l)));
        stages.push(StageStats {
            stage,
            chunks: times.len(),
            first_done: f,
            last_done: l,
            period_us: period,
        });
    }
    let span_us = match (first, last) {
        (Some(f), Some(l)) => (l - f).as_micros_f64(),
        _ => 0.0,
    };
    PipelineStats {
        stages,
        span_us,
        overlap: if span_us > 0.0 {
            total_stage_span / span_us
        } else {
            0.0
        },
    }
}

/// The slowest stage (largest steady-state period) — the pipeline's
/// bottleneck, which §IV-B's model assumes is the device pack.
pub fn bottleneck(stats: &PipelineStats) -> Option<&StageStats> {
    stats
        .stages
        .iter()
        .max_by(|a, b| a.period_us.total_cmp(&b.period_us))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{fill_vector, recv_mv2, send_mv2, VectorXfer};
    use crate::GpuCluster;
    use std::sync::{Arc, Mutex};

    fn traced_transfer(total: usize) -> Vec<TraceEvent> {
        let out: Arc<Mutex<Vec<TraceEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&out);
        GpuCluster::new(2).run(move |env| {
            let x = VectorXfer::paper(total);
            let dev = env.gpu.malloc(x.extent());
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, 1);
                send_mv2(&env.comm, dev, x, 1, 0);
            } else {
                recv_mv2(&env.comm, dev, x, 0, 0);
                *sink.lock().unwrap() = env.trace.events();
            }
        });
        Arc::try_unwrap(out).unwrap().into_inner().unwrap()
    }

    #[test]
    fn stages_overlap_for_multichunk_transfers() {
        let events = traced_transfer(1 << 20); // 16 chunks
        let stats = analyze_events(&events);
        assert_eq!(stats.stages.len(), 4);
        for s in &stats.stages {
            assert_eq!(s.chunks, 16, "{}", s.stage);
        }
        assert!(
            stats.overlap > 2.0,
            "four stages should overlap substantially, got {:.2}",
            stats.overlap
        );
    }

    #[test]
    fn pack_is_the_bottleneck_stage() {
        let events = traced_transfer(1 << 20);
        let stats = analyze_events(&events);
        let b = bottleneck(&stats).unwrap();
        // §IV-B: "latency of packing data in the GPU is always larger than
        // the RDMA data transfer latency or time for contiguous data
        // movement" — pack or unpack (same cost) must gate the pipeline.
        assert!(
            b.stage == "pack" || b.stage == "unpack",
            "bottleneck was {}",
            b.stage
        );
    }

    #[test]
    fn stage_periods_match_the_cost_model() {
        let events = traced_transfer(1 << 20);
        let stats = analyze_events(&events);
        let pack = stats.stages.iter().find(|s| s.stage == "pack").unwrap();
        // 64 KB chunks of 4-byte rows: 16 µs + 16384*8 ns + bw term ≈ 150 µs.
        assert!(
            (120.0..200.0).contains(&pack.period_us),
            "pack period {:.1} µs",
            pack.period_us
        );
    }

    #[test]
    fn empty_trace_yields_empty_stats() {
        let stats = analyze_events(&[]);
        assert!(stats.stages.is_empty());
        assert_eq!(stats.span_us, 0.0);
        assert_eq!(stats.overlap, 0.0);
    }
}
