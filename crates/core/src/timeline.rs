//! Pipeline timeline analysis: turn recorded stage spans into per-stage
//! throughput and overlap statistics.
//!
//! The paper argues its design works because the five stages overlap; this
//! module quantifies that from a real (simulated) run — the kind of
//! evidence Figure 3 sketches. It consumes the [`sim_trace`] stage lanes
//! (`pack`/`d2h`/`rdma`/`h2d`/`unpack` in each rank's scope) and keeps the
//! original completion-time statistics; for busy-time utilization and
//! critical paths see [`sim_trace::analysis`].

use sim_core::SimTime;
use sim_trace::analysis::{stage_spans, SpanRec};
use sim_trace::Recorder;

/// The five pipeline stages in dependence order (Figure 3).
pub const STAGE_ORDER: [&str; 5] = ["pack", "d2h", "rdma", "h2d", "unpack"];

/// Per-stage summary extracted from a trace.
#[derive(Clone, Debug)]
pub struct StageStats {
    /// Stage name ("pack", "d2h", "rdma", "h2d", "unpack").
    pub stage: &'static str,
    /// Number of chunk completions observed.
    pub chunks: usize,
    /// First completion instant.
    pub first_done: SimTime,
    /// Last completion instant.
    pub last_done: SimTime,
    /// Mean gap between consecutive completions (the stage's steady-state
    /// period), in microseconds.
    pub period_us: f64,
}

/// Whole-pipeline summary.
#[derive(Clone, Debug)]
pub struct PipelineStats {
    /// Per-stage summaries in pipeline order.
    pub stages: Vec<StageStats>,
    /// Wall span from first to last completion, microseconds.
    pub span_us: f64,
    /// Overlap ratio: sum of stage completion-time spans divided by the
    /// wall span. A perfectly serialized pipeline gives ~1.0; full overlap
    /// approaches the number of active stages.
    pub overlap: f64,
}

/// Analyze the stage spans recorded by `rec`.
pub fn analyze(rec: &Recorder) -> PipelineStats {
    analyze_spans(&stage_spans(rec))
}

/// Analyze an explicit stage-span list (spans on lanes not named in
/// [`STAGE_ORDER`] are ignored).
pub fn analyze_spans(spans: &[SpanRec]) -> PipelineStats {
    let mut stages = Vec::new();
    let mut total_stage_span = 0.0;
    let mut first = None::<SimTime>;
    let mut last = None::<SimTime>;
    for &stage in &STAGE_ORDER {
        let mut times: Vec<SimTime> = spans
            .iter()
            .filter(|s| s.lane_name == stage)
            .map(|s| s.end)
            .collect();
        if times.is_empty() {
            continue;
        }
        times.sort_unstable();
        let (f, l) = (times[0], *times.last().unwrap());
        let span = (l - f).as_micros_f64();
        let period = if times.len() > 1 {
            span / (times.len() - 1) as f64
        } else {
            0.0
        };
        total_stage_span += span;
        first = Some(first.map_or(f, |x: SimTime| x.min(f)));
        last = Some(last.map_or(l, |x: SimTime| x.max(l)));
        stages.push(StageStats {
            stage,
            chunks: times.len(),
            first_done: f,
            last_done: l,
            period_us: period,
        });
    }
    let span_us = match (first, last) {
        (Some(f), Some(l)) => (l - f).as_micros_f64(),
        _ => 0.0,
    };
    PipelineStats {
        stages,
        span_us,
        overlap: if span_us > 0.0 {
            total_stage_span / span_us
        } else {
            0.0
        },
    }
}

/// The slowest stage (largest steady-state period) — the pipeline's
/// bottleneck, which §IV-B's model assumes is the device pack.
pub fn bottleneck(stats: &PipelineStats) -> Option<&StageStats> {
    stats
        .stages
        .iter()
        .max_by(|a, b| a.period_us.total_cmp(&b.period_us))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{fill_vector, recv_mv2, send_mv2, VectorXfer};
    use crate::GpuCluster;

    fn traced_transfer(total: usize) -> Vec<SpanRec> {
        let rec = Recorder::new();
        GpuCluster::new(2).recorder(rec.clone()).run(move |env| {
            let x = VectorXfer::paper(total);
            let dev = env.gpu.malloc(x.extent());
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, 1);
                send_mv2(&env.comm, dev, x, 1, 0);
            } else {
                recv_mv2(&env.comm, dev, x, 0, 0);
            }
        });
        stage_spans(&rec)
    }

    #[test]
    fn stages_overlap_for_multichunk_transfers() {
        let spans = traced_transfer(1 << 20); // 16 chunks
        let stats = analyze_spans(&spans);
        assert_eq!(stats.stages.len(), 5);
        for s in &stats.stages {
            assert_eq!(s.chunks, 16, "{}", s.stage);
        }
        assert!(
            stats.overlap > 2.0,
            "five stages should overlap substantially, got {:.2}",
            stats.overlap
        );
    }

    #[test]
    fn pack_is_the_bottleneck_stage() {
        let spans = traced_transfer(1 << 20);
        let stats = analyze_spans(&spans);
        let b = bottleneck(&stats).unwrap();
        // §IV-B: "latency of packing data in the GPU is always larger than
        // the RDMA data transfer latency or time for contiguous data
        // movement" — pack or unpack (same cost) must gate the pipeline.
        assert!(
            b.stage == "pack" || b.stage == "unpack",
            "bottleneck was {}",
            b.stage
        );
    }

    #[test]
    fn stage_periods_match_the_cost_model() {
        let spans = traced_transfer(1 << 20);
        let stats = analyze_spans(&spans);
        let pack = stats.stages.iter().find(|s| s.stage == "pack").unwrap();
        // 64 KB chunks of 4-byte rows: 16 µs + 16384*8 ns + bw term ≈ 150 µs.
        assert!(
            (120.0..200.0).contains(&pack.period_us),
            "pack period {:.1} µs",
            pack.period_us
        );
    }

    #[test]
    fn critical_path_runs_chunk_zero_stages_then_chunk_ladder() {
        let spans = traced_transfer(1 << 20);
        let path = sim_trace::analysis::critical_path(&spans, &STAGE_ORDER);
        assert!(!path.is_empty());
        // The path must start at (pack, 0) and end at (unpack, last chunk).
        assert_eq!(path.first().unwrap().stage, "pack");
        assert_eq!(path.first().unwrap().chunk, 0);
        assert_eq!(path.last().unwrap().stage, "unpack");
        assert_eq!(path.last().unwrap().chunk, 15);
        // Steps never move backward in time.
        for w in path.windows(2) {
            assert!(w[1].end >= w[0].end);
        }
    }

    #[test]
    fn empty_trace_yields_empty_stats() {
        let stats = analyze_spans(&[]);
        assert!(stats.stages.is_empty());
        assert_eq!(stats.span_us, 0.0);
        assert_eq!(stats.overlap, 0.0);
    }
}
