//! The GPU staging implementation: the paper's Figure 3 pipeline.
//!
//! `GpuSendSource` implements the sender half: on `begin` (triggered by the
//! rendezvous CTS) it grabs a device temporary (`tbuf`) and enqueues **all**
//! chunk packs as asynchronous strided device copies, exactly like the
//! paper's `cudaMemcpy2DAsync` loop. As the MPI progress engine requests
//! chunks, each one's D2H copy is enqueued to start no earlier than its
//! pack (a `cudaStreamWaitEvent` dependency), so packing, D2H and the RDMA
//! writes issued by the engine all overlap across chunks.
//!
//! `GpuRecvSink` is the mirrored receiver half: per arriving chunk, an H2D
//! copy into `tbuf` (the staging vbuf is creditable as soon as that
//! finishes) followed by a strided device unpack into the user buffer.
//!
//! Contiguous device buffers skip the tbuf entirely — they still get the
//! chunked PCIe/RDMA pipeline (the paper's "8x1 grid" case, which benefits
//! from pipelining alone).

use std::sync::Arc;

use gpu_sim::{DevPtr, Gpu, Loc, Stream};
use hostmem::{HostBuf, HostPtr};
use mpi_sim::flat::Layout;
use mpi_sim::staging::{BufferStager, RecvSink, SendSource};
use mpi_sim::Datatype;
use sim_core::{Completion, SimTime};
use sim_trace::{Lane, LaneKind, Recorder};

use crate::gpu_pack::{enqueue_gather, enqueue_scatter, SegmentMap};
use crate::pools::{Tbuf, TbufPool};

/// The per-rank pipeline stage lanes (Figure 3's four GPU-side stages; the
/// engine adds the fifth, "rdma", in the same `rank{r}` scope).
#[derive(Clone)]
struct StageLanes {
    pack: Lane,
    d2h: Lane,
    h2d: Lane,
    unpack: Lane,
}

impl StageLanes {
    fn new(rec: &Recorder, scope: &str) -> Self {
        StageLanes {
            pack: rec.lane(scope, "pack", LaneKind::Stage),
            d2h: rec.lane(scope, "d2h", LaneKind::Stage),
            h2d: rec.lane(scope, "h2d", LaneKind::Stage),
            unpack: rec.lane(scope, "unpack", LaneKind::Stage),
        }
    }
}

fn classify(dtype: &Datatype, count: usize, base: DevPtr) -> (SegmentMap, Option<DevPtr>) {
    let plan = dtype.plan(count);
    let contiguous = match *plan.layout() {
        Layout::Contiguous { offset, .. } => Some(base.add_signed(offset)),
        _ => None,
    };
    (SegmentMap::from_plan(plan), contiguous)
}

/// Sender half of the GPU pipeline (plugs into the rendezvous engine).
pub struct GpuSendSource {
    gpu: Gpu,
    pool: Arc<TbufPool>,
    user: DevPtr,
    map: SegmentMap,
    total: usize,
    contiguous: Option<DevPtr>,
    tbuf: Option<Tbuf>,
    pack_stream: Stream,
    d2h_stream: Stream,
    chunk_size: usize,
    packs: Vec<Completion>,
    d2h: Vec<Option<Completion>>,
    lanes: StageLanes,
}

impl GpuSendSource {
    fn new(
        gpu: Gpu,
        pool: Arc<TbufPool>,
        user: DevPtr,
        count: usize,
        dtype: &Datatype,
        lanes: StageLanes,
    ) -> Self {
        let (map, contiguous) = classify(dtype, count, user);
        let total = map.total();
        let pack_stream = gpu.create_stream();
        let d2h_stream = gpu.create_stream();
        GpuSendSource {
            gpu,
            pool,
            user,
            map,
            total,
            contiguous,
            tbuf: None,
            pack_stream,
            d2h_stream,
            chunk_size: 0,
            packs: Vec::new(),
            d2h: Vec::new(),
            lanes,
        }
    }

    fn ensure_tbuf(&mut self) -> DevPtr {
        if self.tbuf.is_none() {
            self.tbuf = Some(self.pool.take(self.total));
        }
        self.tbuf.as_ref().unwrap().ptr
    }
}

impl SendSource for GpuSendSource {
    fn total_bytes(&self) -> usize {
        self.total
    }

    fn begin(&mut self, chunk_size: usize) {
        self.chunk_size = chunk_size;
        let nchunks = self.total.div_ceil(chunk_size).max(1);
        self.d2h = (0..nchunks).map(|_| None).collect();
        if self.contiguous.is_some() {
            return; // no packing needed; D2H reads the user buffer directly
        }
        let tbuf = self.ensure_tbuf();
        // Enqueue every chunk's pack up front (the paper's async 2D-copy
        // loop): the device packs ahead while earlier chunks drain to the
        // host and the wire.
        for i in 0..nchunks {
            let off = i * chunk_size;
            let len = chunk_size.min(self.total - off);
            let pieces = self.map.pieces(off, len);
            let comp = enqueue_gather(
                &self.gpu,
                &self.pack_stream,
                self.user,
                &pieces,
                tbuf.add(off),
            );
            self.lanes.pack.comp_span("pack", Some(i), &comp);
            self.packs.push(comp);
        }
    }

    fn request_chunk(&mut self, idx: usize, dst: HostPtr, len: usize) {
        let off = idx * self.chunk_size;
        let comp = match self.contiguous {
            Some(cptr) => {
                self.gpu
                    .memcpy_async(Loc::Host(dst), cptr.add(off), len, &self.d2h_stream)
            }
            None => {
                let tbuf = self.tbuf.as_ref().expect("begin not called").ptr;
                // The D2H copy may start only after this chunk's pack.
                self.d2h_stream.wait_event(&self.packs[idx]);
                self.gpu
                    .memcpy_async(Loc::Host(dst), tbuf.add(off), len, &self.d2h_stream)
            }
        };
        self.lanes.d2h.comp_span("d2h", Some(idx), &comp);
        self.d2h[idx] = Some(comp);
    }

    fn poll(&mut self) -> bool {
        false // completion times are known; progress is purely time-driven
    }

    fn chunk_ready(&self, idx: usize) -> bool {
        self.d2h[idx].as_ref().is_some_and(Completion::poll)
    }

    fn next_event(&self) -> Option<SimTime> {
        let now = sim_core::now();
        self.d2h
            .iter()
            .flatten()
            .filter_map(Completion::done_at)
            .filter(|&t| t > now)
            .min()
    }

    fn device_gpu(&self) -> Option<u32> {
        Some(self.gpu.id())
    }

    fn stage_device(&mut self) -> Option<(DevPtr, Completion)> {
        // Device rendezvous (co-located ranks sharing this GPU): pack the
        // whole message into a device tbuf in one go — no chunking, the
        // receiver scatters straight from it. Contiguous buffers need no
        // packing at all; the user buffer itself is announced.
        if let Some(cptr) = self.contiguous {
            return Some((cptr, Completion::ready()));
        }
        let tbuf = self.ensure_tbuf();
        let pieces = self.map.pieces(0, self.total);
        let comp = enqueue_gather(&self.gpu, &self.pack_stream, self.user, &pieces, tbuf);
        self.lanes.pack.comp_span("pack", None, &comp);
        Some((tbuf, comp))
    }

    fn pack_eager(&mut self) -> Vec<u8> {
        let host = HostBuf::alloc(self.total);
        if self.total == 0 {
            return Vec::new();
        }
        match self.contiguous {
            Some(cptr) => {
                self.gpu
                    .memcpy_async(Loc::Host(host.base()), cptr, self.total, &self.d2h_stream)
                    .wait();
            }
            None => {
                let tbuf = self.ensure_tbuf();
                let pieces = self.map.pieces(0, self.total);
                let pack = enqueue_gather(&self.gpu, &self.pack_stream, self.user, &pieces, tbuf);
                self.d2h_stream.wait_event(&pack);
                self.gpu
                    .memcpy_async(Loc::Host(host.base()), tbuf, self.total, &self.d2h_stream)
                    .wait();
            }
        }
        host.read(0, self.total)
    }
}

impl Drop for GpuSendSource {
    fn drop(&mut self) {
        if let Some(t) = self.tbuf.take() {
            self.pool.put(t);
        }
    }
}

/// Receiver half of the GPU pipeline.
pub struct GpuRecvSink {
    gpu: Gpu,
    pool: Arc<TbufPool>,
    user: DevPtr,
    map: SegmentMap,
    capacity: usize,
    contiguous: Option<DevPtr>,
    tbuf: Option<Tbuf>,
    h2d_stream: Stream,
    unpack_stream: Stream,
    chunk_size: usize,
    nchunks: usize,
    arrived: usize,
    h2d: Vec<Option<Completion>>,
    unpack: Vec<Option<Completion>>,
    lanes: StageLanes,
}

impl GpuRecvSink {
    fn new(
        gpu: Gpu,
        pool: Arc<TbufPool>,
        user: DevPtr,
        count: usize,
        dtype: &Datatype,
        lanes: StageLanes,
    ) -> Self {
        let (map, contiguous) = classify(dtype, count, user);
        let capacity = map.total();
        let h2d_stream = gpu.create_stream();
        let unpack_stream = gpu.create_stream();
        GpuRecvSink {
            gpu,
            pool,
            user,
            map,
            capacity,
            contiguous,
            tbuf: None,
            h2d_stream,
            unpack_stream,
            chunk_size: 0,
            nchunks: 0,
            arrived: 0,
            h2d: Vec::new(),
            unpack: Vec::new(),
            lanes,
        }
    }
}

impl RecvSink for GpuRecvSink {
    fn total_bytes(&self) -> usize {
        self.capacity
    }

    fn begin(&mut self, chunk_size: usize, actual_total: usize) {
        assert!(
            actual_total <= self.capacity,
            "message truncated: {actual_total} bytes into a {}-byte device layout",
            self.capacity
        );
        self.chunk_size = chunk_size;
        self.nchunks = actual_total.div_ceil(chunk_size).max(1);
        self.h2d = (0..self.nchunks).map(|_| None).collect();
        self.unpack = (0..self.nchunks).map(|_| None).collect();
        if self.contiguous.is_none() && actual_total > 0 {
            self.tbuf = Some(self.pool.take(actual_total));
        }
    }

    fn chunk_arrived(&mut self, idx: usize, src: HostPtr, len: usize) {
        let off = idx * self.chunk_size;
        match self.contiguous {
            Some(cptr) => {
                let comp =
                    self.gpu
                        .memcpy_async(cptr.add(off), Loc::Host(src), len, &self.h2d_stream);
                self.lanes.h2d.comp_span("h2d", Some(idx), &comp);
                self.h2d[idx] = Some(comp);
            }
            None => {
                let tbuf = self.tbuf.as_ref().expect("begin not called").ptr;
                let h2d =
                    self.gpu
                        .memcpy_async(tbuf.add(off), Loc::Host(src), len, &self.h2d_stream);
                self.lanes.h2d.comp_span("h2d", Some(idx), &h2d);
                // Unpack after this chunk's H2D (stream-wait dependency).
                self.unpack_stream.wait_event(&h2d);
                let pieces = self.map.pieces(off, len);
                let up = enqueue_scatter(
                    &self.gpu,
                    &self.unpack_stream,
                    self.user,
                    &pieces,
                    tbuf.add(off),
                );
                self.lanes.unpack.comp_span("unpack", Some(idx), &up);
                self.h2d[idx] = Some(h2d);
                self.unpack[idx] = Some(up);
            }
        }
        self.arrived += 1;
    }

    fn poll(&mut self) -> bool {
        false
    }

    fn chunk_absorbed(&self, idx: usize) -> bool {
        // The staging vbuf is reusable as soon as its H2D copy has read it.
        self.h2d[idx].as_ref().is_some_and(Completion::poll)
    }

    fn finished(&self) -> bool {
        self.arrived == self.nchunks
            && self
                .h2d
                .iter()
                .chain(self.unpack.iter())
                .flatten()
                .all(Completion::poll)
    }

    fn next_event(&self) -> Option<SimTime> {
        let now = sim_core::now();
        self.h2d
            .iter()
            .chain(self.unpack.iter())
            .flatten()
            .filter_map(Completion::done_at)
            .filter(|&t| t > now)
            .min()
    }

    fn device_gpu(&self) -> Option<u32> {
        Some(self.gpu.id())
    }

    fn absorb_device(
        &mut self,
        src: DevPtr,
        total: usize,
        ready: &Completion,
    ) -> Option<Completion> {
        assert!(
            total <= self.capacity,
            "message truncated: {total} bytes into a {}-byte device layout",
            self.capacity
        );
        // One whole-message device-side absorb; the engine completes the
        // receive on this completion, so the chunk bookkeeping collapses to
        // a single entry.
        self.nchunks = 1;
        self.arrived = 1;
        self.h2d = vec![None];
        // Order the reads after the sender's pack (CUDA IPC event).
        self.unpack_stream.wait_event(ready);
        let comp = match self.contiguous {
            Some(cptr) => self.gpu.memcpy_async(cptr, src, total, &self.unpack_stream),
            None => {
                let pieces = self.map.pieces(0, total);
                enqueue_scatter(&self.gpu, &self.unpack_stream, self.user, &pieces, src)
            }
        };
        self.lanes.unpack.comp_span("unpack", None, &comp);
        self.unpack = vec![Some(comp.clone())];
        Some(comp)
    }

    fn unpack_eager(&mut self, data: &[u8]) {
        assert!(
            data.len() <= self.capacity,
            "message truncated: {} bytes into a {}-byte device layout",
            data.len(),
            self.capacity
        );
        self.nchunks = 1;
        self.arrived = 1;
        self.h2d = vec![None];
        self.unpack = vec![None];
        if data.is_empty() {
            return;
        }
        let host = HostBuf::from_vec(data.to_vec());
        match self.contiguous {
            Some(cptr) => {
                self.gpu
                    .memcpy_async(cptr, Loc::Host(host.base()), data.len(), &self.h2d_stream)
                    .wait();
            }
            None => {
                let tbuf = self.pool.take(data.len());
                let h2d = self.gpu.memcpy_async(
                    tbuf.ptr,
                    Loc::Host(host.base()),
                    data.len(),
                    &self.h2d_stream,
                );
                self.unpack_stream.wait_event(&h2d);
                let pieces = self.map.pieces(0, data.len());
                enqueue_scatter(&self.gpu, &self.unpack_stream, self.user, &pieces, tbuf.ptr)
                    .wait();
                self.pool.put(tbuf);
            }
        }
    }
}

impl Drop for GpuRecvSink {
    fn drop(&mut self) {
        if let Some(t) = self.tbuf.take() {
            self.pool.put(t);
        }
    }
}

/// The MV2-GPU-NC staging provider: plugs GPU-offloaded datatype processing
/// into the MPI rendezvous engine for device-resident buffers.
pub struct GpuStager {
    gpu: Gpu,
    pool: Arc<TbufPool>,
    lanes: StageLanes,
}

impl GpuStager {
    /// A stager for `rank`'s device, recording stage spans into `rec`
    /// (pass [`Recorder::off`] for an untraced stager).
    pub fn new(gpu: Gpu, rank: usize, rec: &Recorder) -> Self {
        Self::with_scope(gpu, &format!("rank{rank}"), rec)
    }

    /// Like [`GpuStager::new`], but with an explicit lane scope — e.g.
    /// `job2.rank0` — so each tenant of a shared fabric keeps its stage
    /// spans in its own namespace.
    pub fn with_scope(gpu: Gpu, scope: &str, rec: &Recorder) -> Self {
        let pool = Arc::new(TbufPool::new(gpu.clone()));
        let lanes = StageLanes::new(rec, scope);
        GpuStager { gpu, pool, lanes }
    }

    /// The device temporary pool (exposed for tests/diagnostics).
    pub fn pool(&self) -> &Arc<TbufPool> {
        &self.pool
    }
}

impl BufferStager for GpuStager {
    fn source(&self, buf: &Loc, count: usize, dtype: &Datatype) -> Option<Box<dyn SendSource>> {
        let Loc::Device(p) = buf else { return None };
        assert_eq!(
            p.gpu_id(),
            self.gpu.id(),
            "device buffer belongs to a different GPU than this rank's"
        );
        Some(Box::new(GpuSendSource::new(
            self.gpu.clone(),
            Arc::clone(&self.pool),
            *p,
            count,
            dtype,
            self.lanes.clone(),
        )))
    }

    fn sink(&self, buf: &Loc, count: usize, dtype: &Datatype) -> Option<Box<dyn RecvSink>> {
        let Loc::Device(p) = buf else { return None };
        assert_eq!(
            p.gpu_id(),
            self.gpu.id(),
            "device buffer belongs to a different GPU than this rank's"
        );
        Some(Box::new(GpuRecvSink::new(
            self.gpu.clone(),
            Arc::clone(&self.pool),
            *p,
            count,
            dtype,
            self.lanes.clone(),
        )))
    }
}
