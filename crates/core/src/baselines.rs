//! The user-level baselines of Figure 4, used by the Figure 5 benchmark.
//!
//! * [`send_cpy2d_blocking`] / [`recv_cpy2d_blocking`] — Figure 4(a),
//!   "Cpy2D+Send": blocking `cudaMemcpy2D` staging plus host MPI with the
//!   vector datatype. High productivity, poor performance.
//! * [`send_manual_pipeline`] / [`recv_manual_pipeline`] — Figure 4(b),
//!   "Cpy2DAsync+CpyAsync+Isend": a hand-written chunked pipeline of async
//!   device packs, async PCIe copies and nonblocking MPI. Good performance,
//!   ~40 lines of fragile code per side.
//! * [`send_mv2`] / [`recv_mv2`] — Figure 4(c), MV2-GPU-NC: one MPI call on
//!   the device buffer; the library pipelines internally.

use gpu_sim::{Copy2d, DevPtr, Gpu, Loc};
use hostmem::HostBuf;
use mpi_sim::{Comm, Datatype};

use crate::cluster::GpuRankEnv;

/// Geometry of the benchmark vector: `total` data bytes in `elem`-byte rows
/// spaced `stride` bytes apart in device memory.
#[derive(Copy, Clone, Debug)]
pub struct VectorXfer {
    /// Total data bytes.
    pub total: usize,
    /// Row (block) size in bytes — the paper uses 4 (one float).
    pub elem: usize,
    /// Row pitch in bytes.
    pub stride: usize,
}

impl VectorXfer {
    /// The paper's Figure 5 configuration: 4-byte elements, 4x pitch.
    pub fn paper(total: usize) -> Self {
        VectorXfer {
            total,
            elem: 4,
            stride: 16,
        }
    }

    /// Number of rows.
    pub fn height(&self) -> usize {
        assert_eq!(self.total % self.elem, 0);
        self.total / self.elem
    }

    /// Bytes of device memory the strided layout spans.
    pub fn extent(&self) -> usize {
        self.height() * self.stride
    }

    /// The committed MPI vector datatype for this geometry (element = one
    /// `elem`-byte block, stride in bytes).
    pub fn dtype(&self) -> Datatype {
        let block = Datatype::contiguous(self.elem, &Datatype::byte());
        let t = Datatype::hvector(self.height(), 1, self.stride as isize, &block);
        t.commit();
        t
    }
}

// ---------------------------------------------------------------------------
// Figure 4(a): blocking copies + blocking MPI.
// ---------------------------------------------------------------------------

/// Figure 4(a) sender: `cudaMemcpy2D` D2H (layout preserved), then
/// `MPI_Send` of the host vector datatype.
pub fn send_cpy2d_blocking(env: &GpuRankEnv, buf: DevPtr, x: VectorXfer, dst: usize, tag: u32) {
    let host = HostBuf::alloc(x.extent());
    env.gpu.memcpy_2d(Copy2d {
        dst: Loc::Host(host.base()),
        dpitch: x.stride,
        src: Loc::Device(buf),
        spitch: x.stride,
        width: x.elem,
        height: x.height(),
    });
    env.comm.send(host.base(), 1, &x.dtype(), dst, tag);
}

/// Figure 4(a) receiver: `MPI_Recv` into a host vector layout, then
/// `cudaMemcpy2D` H2D (layout preserved).
pub fn recv_cpy2d_blocking(env: &GpuRankEnv, buf: DevPtr, x: VectorXfer, src: usize, tag: u32) {
    let host = HostBuf::alloc(x.extent());
    env.comm.recv(host.base(), 1, &x.dtype(), src, tag);
    env.gpu.memcpy_2d(Copy2d {
        dst: Loc::Device(buf),
        dpitch: x.stride,
        src: Loc::Host(host.base()),
        spitch: x.stride,
        width: x.elem,
        height: x.height(),
    });
}

// ---------------------------------------------------------------------------
// Figure 4(b): hand-written pipeline.
// ---------------------------------------------------------------------------

fn block_geometry(x: &VectorXfer, block: usize) -> (usize, usize) {
    assert_eq!(
        block % x.elem,
        0,
        "pipeline block must hold whole vector rows"
    );
    let nblocks = x.total.div_ceil(block);
    (block / x.elem, nblocks)
}

/// Figure 4(b) sender: per block — `cudaMemcpy2DAsync` pack in the device,
/// `cudaMemcpyAsync` D2H, `MPI_Isend`; everything overlapped by hand.
pub fn send_manual_pipeline(
    env: &GpuRankEnv,
    buf: DevPtr,
    x: VectorXfer,
    dst: usize,
    tag: u32,
    block: usize,
) {
    let gpu = &env.gpu;
    let (rows_per_block, nblocks) = block_geometry(&x, block);
    let tbuf = gpu.malloc(x.total);
    let host = HostBuf::alloc(x.total);
    let byte = Datatype::byte();
    byte.commit();
    let pack_stream = gpu.create_stream();
    let d2h_stream = gpu.create_stream();

    // Enqueue every block's pack (the `for` loop at the top of Fig. 4(b)).
    let mut packs = Vec::with_capacity(nblocks);
    for i in 0..nblocks {
        let off = i * block;
        let len = block.min(x.total - off);
        packs.push(gpu.memcpy_2d_async(
            Copy2d {
                dst: Loc::Device(tbuf.add(off)),
                dpitch: x.elem,
                src: Loc::Device(buf.add(i * rows_per_block * x.stride)),
                spitch: x.stride,
                width: x.elem,
                height: len / x.elem,
            },
            &pack_stream,
        ));
    }
    // Drain: as packs complete, start D2H; as D2H completes, isend.
    let mut d2h: Vec<Option<sim_core::Completion>> = vec![None; nblocks];
    let mut reqs = Vec::with_capacity(nblocks);
    let mut next_d2h = 0;
    let mut next_send = 0;
    while next_send < nblocks {
        let mut advanced = false;
        if next_d2h < nblocks && packs[next_d2h].poll() {
            let off = next_d2h * block;
            let len = block.min(x.total - off);
            d2h_stream.wait_event(&packs[next_d2h]);
            d2h[next_d2h] =
                Some(gpu.memcpy_async(Loc::Host(host.ptr(off)), tbuf.add(off), len, &d2h_stream));
            next_d2h += 1;
            advanced = true;
        }
        if next_send < next_d2h && d2h[next_send].as_ref().unwrap().poll() {
            let off = next_send * block;
            let len = block.min(x.total - off);
            reqs.push(env.comm.isend(
                host.ptr(off),
                len,
                &byte,
                dst,
                tag * 1000 + next_send as u32,
            ));
            next_send += 1;
            advanced = true;
        }
        if !advanced {
            // Wait for the next device completion (the Fig. 4(b) loop's
            // cudaStreamQuery polling, without busy-burning the CPU).
            let next = d2h
                .iter()
                .flatten()
                .chain(packs.iter())
                .filter_map(sim_core::Completion::done_at)
                .filter(|&t| t > sim_core::now())
                .min();
            match next {
                Some(t) => sim_core::sleep_until(t),
                None => break,
            }
        }
    }
    env.comm.waitall(reqs);
    gpu.free(tbuf);
}

/// Figure 4(b) receiver: per block — `MPI_Irecv`, `cudaMemcpyAsync` H2D,
/// `cudaMemcpy2DAsync` unpack.
pub fn recv_manual_pipeline(
    env: &GpuRankEnv,
    buf: DevPtr,
    x: VectorXfer,
    src: usize,
    tag: u32,
    block: usize,
) {
    let gpu = &env.gpu;
    let (rows_per_block, nblocks) = block_geometry(&x, block);
    let tbuf = gpu.malloc(x.total);
    let host = HostBuf::alloc(x.total);
    let byte = Datatype::byte();
    byte.commit();
    let h2d_stream = gpu.create_stream();
    let unpack_stream = gpu.create_stream();

    let mut reqs = Vec::with_capacity(nblocks);
    for i in 0..nblocks {
        let off = i * block;
        let len = block.min(x.total - off);
        reqs.push(
            env.comm
                .irecv(host.ptr(off), len, &byte, src, tag * 1000 + i as u32),
        );
    }
    let mut unpacks = Vec::with_capacity(nblocks);
    for (i, req) in reqs.into_iter().enumerate() {
        env.comm.wait(req);
        let off = i * block;
        let len = block.min(x.total - off);
        let h2d = gpu.memcpy_async(tbuf.add(off), Loc::Host(host.ptr(off)), len, &h2d_stream);
        unpack_stream.wait_event(&h2d);
        unpacks.push(gpu.memcpy_2d_async(
            Copy2d {
                dst: Loc::Device(buf.add(i * rows_per_block * x.stride)),
                dpitch: x.stride,
                src: Loc::Device(tbuf.add(off)),
                spitch: x.elem,
                width: x.elem,
                height: len / x.elem,
            },
            &unpack_stream,
        ));
    }
    for u in &unpacks {
        u.wait();
    }
    gpu.free(tbuf);
}

// ---------------------------------------------------------------------------
// Figure 4(c): MV2-GPU-NC.
// ---------------------------------------------------------------------------

/// Figure 4(c) sender: one `MPI_Send` on the device buffer.
pub fn send_mv2(comm: &Comm, buf: DevPtr, x: VectorXfer, dst: usize, tag: u32) {
    comm.send(buf, 1, &x.dtype(), dst, tag);
}

/// Figure 4(c) receiver: one `MPI_Recv` on the device buffer.
pub fn recv_mv2(comm: &Comm, buf: DevPtr, x: VectorXfer, src: usize, tag: u32) {
    comm.recv(buf, 1, &x.dtype(), src, tag);
}

/// Fill the strided rows of a device vector layout with a pattern derived
/// from `seed` (test/bench helper).
pub fn fill_vector(gpu: &Gpu, buf: DevPtr, x: &VectorXfer, seed: u8) {
    let mut bytes = vec![0u8; x.extent()];
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(31).wrapping_add(seed);
    }
    gpu.write_bytes(buf, &bytes);
}

/// Check that the receiver's strided rows equal the sender's pattern and
/// that the holes were not touched (test/bench helper).
pub fn verify_vector(gpu: &Gpu, buf: DevPtr, x: &VectorXfer, seed: u8) {
    let bytes = gpu.read_bytes(buf, x.extent());
    for r in 0..x.height() {
        for c in 0..x.elem {
            let i = r * x.stride + c;
            assert_eq!(
                bytes[i],
                (i as u8).wrapping_mul(31).wrapping_add(seed),
                "row {r} byte {c}"
            );
        }
    }
}
