//! GPU cluster launcher: one GPU per *node*, one or more MPI ranks per
//! node (set by [`GpuCluster::ppn`] or an explicit topology), with
//! MV2-GPU-NC staging installed. Co-located ranks share their node's GPU
//! and HCA and talk over the intra-node shared-memory channel.

use std::sync::Arc;

use gpu_sim::{CostModel, Gpu};
use ib_sim::{DeliveryScheduler, Fabric, FaultSpec, NetModel, ShmModel, Topology};
use mpi_sim::staging::BufferStager;
use mpi_sim::{ChunkPolicy, Comm, MpiConfig};
use sim_core::{ExecMode, Report, SanitizerMode, Sim, SimTime, WakeEvent};
use sim_trace::Recorder;

/// Shared sink for a run's scheduling-grant trace (see
/// [`GpuCluster::wake_trace`]).
pub type WakeTraceSink = Arc<std::sync::Mutex<Vec<WakeEvent>>>;

use crate::stager::GpuStager;

/// Everything one rank's program sees: its communicator (GPU-aware), its
/// GPU, and the shared trace recorder.
pub struct GpuRankEnv {
    /// GPU-aware communicator (device buffers allowed in MPI calls).
    pub comm: Comm,
    /// This node's GPU.
    pub gpu: Gpu,
    /// Trace recorder (shared across ranks and all sim layers).
    pub recorder: Recorder,
}

/// A simulated GPU cluster (the paper's testbed: one process per node, one
/// GPU per process).
pub struct GpuCluster {
    n: usize,
    mpi: MpiConfig,
    net: NetModel,
    shm: ShmModel,
    topo: Option<Topology>,
    gpu_cost: CostModel,
    gpu_mem: usize,
    sanitizer: SanitizerMode,
    fault_spec: Option<FaultSpec>,
    recorder: Option<Recorder>,
    scheduler: Option<Arc<dyn DeliveryScheduler>>,
    exec: Option<ExecMode>,
    wake_sink: Option<WakeTraceSink>,
}

impl GpuCluster {
    /// `n` ranks with calibrated defaults (Tesla C2050 + QDR InfiniBand),
    /// one rank per node.
    pub fn new(n: usize) -> Self {
        GpuCluster {
            n,
            mpi: MpiConfig::default(),
            net: NetModel::qdr(),
            shm: ShmModel::westmere(),
            topo: None,
            gpu_cost: CostModel::tesla_c2050(),
            gpu_mem: 3 << 30,
            sanitizer: SanitizerMode::Off,
            fault_spec: None,
            recorder: None,
            scheduler: None,
            exec: None,
            wake_sink: None,
        }
    }

    /// Select the process carrier explicitly (see [`ExecMode`]): fibers on
    /// one kernel thread (`Event`, the default) or one OS thread per rank
    /// (`Threads`). Virtual-time results are identical either way.
    pub fn exec(mut self, mode: ExecMode) -> Self {
        self.exec = Some(mode);
        self
    }

    /// Record every scheduling grant of the run into `sink` (see
    /// [`sim_core::WakeEvent`]). The trace is carrier-independent — runs
    /// under [`ExecMode::Event`] and [`ExecMode::Threads`] must produce
    /// identical traces, which the scale sweep's smoke mode asserts.
    pub fn wake_trace(mut self, sink: WakeTraceSink) -> Self {
        self.wake_sink = Some(sink);
        self
    }

    /// Place `ppn` consecutive ranks per node (blocked mapping). The ranks
    /// of a node share its GPU, its HCA and its PCIe links; they exchange
    /// messages over shared memory instead of the wire. `ppn` must evenly
    /// divide the rank count; checked at job launch.
    pub fn ppn(mut self, ppn: usize) -> Self {
        self.mpi.ppn = ppn;
        self
    }

    /// Use an explicit rank→node map instead of the blocked `ppn` layout.
    /// Overrides [`ppn`](GpuCluster::ppn).
    pub fn topology(mut self, topo: Topology) -> Self {
        self.topo = Some(topo);
        self
    }

    /// Override the intra-node shared-memory channel cost model.
    pub fn shm(mut self, shm: ShmModel) -> Self {
        self.shm = shm;
        self
    }

    /// Set the pipeline block size (the paper's `MV2_CUDA_BLOCK_SIZE`).
    ///
    /// Pins the chunk policy to [`ChunkPolicy::Fixed`] so ablations sweep
    /// exactly the requested block size instead of the adaptive default.
    pub fn block_size(mut self, bytes: usize) -> Self {
        self.mpi.chunk_size = bytes;
        self.mpi.policy = ChunkPolicy::Fixed;
        self
    }

    /// Override the MPI configuration.
    pub fn mpi_config(mut self, cfg: MpiConfig) -> Self {
        self.mpi = cfg;
        self
    }

    /// Override the network model.
    pub fn net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }

    /// Override the GPU cost model.
    pub fn gpu_cost(mut self, cost: CostModel) -> Self {
        self.gpu_cost = cost;
        self
    }

    /// Override per-GPU device memory (default 3 GiB).
    pub fn gpu_mem(mut self, bytes: usize) -> Self {
        self.gpu_mem = bytes;
        self
    }

    /// Run the job under the simulation sanitizer (see [`sim_core::san`]).
    pub fn sanitizer(mut self, mode: SanitizerMode) -> Self {
        self.sanitizer = mode;
        self
    }

    /// Run the job on a fault-injecting fabric (see [`FaultSpec`]): seeded
    /// deterministic control-packet loss/delay, RDMA error CQEs and
    /// registration pin limits. The MPI layer retries and recovers; the
    /// application must observe byte-identical results.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.fault_spec = Some(spec);
        self
    }

    /// Hand control-packet delivery ordering to `s` (see
    /// [`DeliveryScheduler`]) — the hook model checkers drive to explore
    /// interleavings. Without this the fabric's FIFO order applies.
    pub fn scheduler(mut self, s: Arc<dyn DeliveryScheduler>) -> Self {
        self.scheduler = Some(s);
        self
    }

    /// Record spans/counters into `rec` instead of a fresh recorder. Pass
    /// [`Recorder::off`] to disable tracing entirely, or a clone of an
    /// enabled recorder to inspect lanes after the run (via
    /// [`sim_trace::chrome_trace`] or [`sim_trace::analysis`]).
    pub fn recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Run `f` on every rank; returns the virtual completion time.
    pub fn run<F>(self, f: F) -> SimTime
    where
        F: Fn(&GpuRankEnv) + Send + Sync + 'static,
    {
        self.run_with_reports(f).0
    }

    /// Like [`run`](GpuCluster::run), also returning the sanitizer reports
    /// collected during the job (empty when the sanitizer is off).
    pub fn run_with_reports<F>(self, f: F) -> (SimTime, Vec<Report>)
    where
        F: Fn(&GpuRankEnv) + Send + Sync + 'static,
    {
        let (end, reports) = self.try_run_with_reports(f);
        match end {
            Ok(t) => (t, reports),
            Err(msg) => std::panic::panic_any(msg),
        }
    }

    /// Like [`run_with_reports`](GpuCluster::run_with_reports), but a panic
    /// anywhere in the job (protocol violation, sanitizer in `Panic` mode,
    /// deadlock, `MPI_Wait` failure) is caught and returned as `Err` with
    /// its message — together with every report collected up to that point.
    /// This is how a model checker observes a schedule's verdict without
    /// tearing down its own process.
    pub fn try_run_with_reports<F>(self, f: F) -> (Result<SimTime, String>, Vec<Report>)
    where
        F: Fn(&GpuRankEnv) + Send + Sync + 'static,
    {
        let sim = Sim::new();
        if let Some(mode) = self.exec {
            sim.set_exec_mode(mode);
        }
        if self.wake_sink.is_some() {
            sim.record_wake_trace();
        }
        sim.set_sanitizer(self.sanitizer);
        if let Err(e) = self.mpi.try_validate_topology(self.n) {
            panic!("MpiConfig: {e}");
        }
        let topo = self
            .topo
            .clone()
            .unwrap_or_else(|| Topology::uniform(self.n / self.mpi.ppn, self.mpi.ppn));
        assert_eq!(
            topo.num_ranks(),
            self.n,
            "topology places {} endpoint(s) but the job has {} rank(s)",
            topo.num_ranks(),
            self.n
        );
        let fabric = Fabric::with_topology(
            topo.clone(),
            self.net.clone(),
            self.shm.clone(),
            self.fault_spec.clone(),
        );
        if let Some(s) = self.scheduler.clone() {
            fabric.set_delivery_scheduler(s);
        }
        fabric.attach_event_pump(&sim);
        let f = Arc::new(f);
        let rec = self.recorder.clone().unwrap_or_default();
        fabric.attach_recorder(&rec);
        // One physical GPU per *node* (the paper's testbed): co-located
        // ranks share the device, its copy engines and its PCIe links.
        // `Gpu::new` is pure construction, safe outside simulation context.
        let gpus: Vec<Gpu> = (0..topo.num_nodes())
            .map(|node| {
                let gpu = Gpu::new(node as u32, self.gpu_cost.clone(), self.gpu_mem);
                gpu.attach_recorder(&rec);
                if self.wake_sink.is_some() {
                    // Cross-check runs also observe GPU completions through
                    // the component layer; the monitor wakes must replay
                    // identically across carriers like everything else.
                    gpu.attach_event_monitor(&sim);
                }
                gpu
            })
            .collect();
        for rank in 0..self.n {
            let fabric = fabric.clone();
            let cfg = self.mpi.clone();
            let f = Arc::clone(&f);
            let n = self.n;
            let gpu = gpus[topo.node_of(rank)].clone();
            let rec = rec.clone();
            sim.spawn(format!("rank{rank}"), move || {
                let stager = GpuStager::new(gpu.clone(), rank, &rec);
                let stagers: Arc<Vec<Box<dyn BufferStager>>> =
                    Arc::new(vec![Box::new(stager) as Box<dyn BufferStager>]);
                let comm = Comm::create_traced(fabric.nic(rank), rank, n, cfg, stagers, &rec);
                let env = GpuRankEnv {
                    comm,
                    gpu,
                    recorder: rec,
                };
                f(&env);
                env.comm.finalize();
            });
        }
        let end = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run()))
            .map_err(panic_message);
        if let Some(sink) = &self.wake_sink {
            *sink.lock().unwrap() = sim.wake_trace();
        }
        (end, sim.sanitizer_reports())
    }
}

/// Render a caught panic payload as its message (panics carry `String` or
/// `&'static str`; anything else gets a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "<non-string panic payload>".to_string(),
        },
    }
}
