//! GPU cluster launcher: one GPU + one MPI rank per node, with MV2-GPU-NC
//! staging installed.

use std::sync::Arc;

use gpu_sim::{CostModel, Gpu};
use ib_sim::{Fabric, FaultSpec, NetModel};
use mpi_sim::staging::BufferStager;
use mpi_sim::{ChunkPolicy, Comm, MpiConfig};
use sim_core::{Report, SanitizerMode, Sim, SimTime};
use sim_trace::Recorder;

use crate::stager::GpuStager;

/// Everything one rank's program sees: its communicator (GPU-aware), its
/// GPU, and the shared trace recorder.
pub struct GpuRankEnv {
    /// GPU-aware communicator (device buffers allowed in MPI calls).
    pub comm: Comm,
    /// This node's GPU.
    pub gpu: Gpu,
    /// Trace recorder (shared across ranks and all sim layers).
    pub recorder: Recorder,
}

/// A simulated GPU cluster (the paper's testbed: one process per node, one
/// GPU per process).
pub struct GpuCluster {
    n: usize,
    mpi: MpiConfig,
    net: NetModel,
    gpu_cost: CostModel,
    gpu_mem: usize,
    sanitizer: SanitizerMode,
    fault_spec: Option<FaultSpec>,
    recorder: Option<Recorder>,
}

impl GpuCluster {
    /// `n` nodes with calibrated defaults (Tesla C2050 + QDR InfiniBand).
    pub fn new(n: usize) -> Self {
        GpuCluster {
            n,
            mpi: MpiConfig::default(),
            net: NetModel::qdr(),
            gpu_cost: CostModel::tesla_c2050(),
            gpu_mem: 3 << 30,
            sanitizer: SanitizerMode::Off,
            fault_spec: None,
            recorder: None,
        }
    }

    /// Set the pipeline block size (the paper's `MV2_CUDA_BLOCK_SIZE`).
    ///
    /// Pins the chunk policy to [`ChunkPolicy::Fixed`] so ablations sweep
    /// exactly the requested block size instead of the adaptive default.
    pub fn block_size(mut self, bytes: usize) -> Self {
        self.mpi.chunk_size = bytes;
        self.mpi.policy = ChunkPolicy::Fixed;
        self
    }

    /// Override the MPI configuration.
    pub fn mpi_config(mut self, cfg: MpiConfig) -> Self {
        self.mpi = cfg;
        self
    }

    /// Override the network model.
    pub fn net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }

    /// Override the GPU cost model.
    pub fn gpu_cost(mut self, cost: CostModel) -> Self {
        self.gpu_cost = cost;
        self
    }

    /// Override per-GPU device memory (default 3 GiB).
    pub fn gpu_mem(mut self, bytes: usize) -> Self {
        self.gpu_mem = bytes;
        self
    }

    /// Run the job under the simulation sanitizer (see [`sim_core::san`]).
    pub fn sanitizer(mut self, mode: SanitizerMode) -> Self {
        self.sanitizer = mode;
        self
    }

    /// Run the job on a fault-injecting fabric (see [`FaultSpec`]): seeded
    /// deterministic control-packet loss/delay, RDMA error CQEs and
    /// registration pin limits. The MPI layer retries and recovers; the
    /// application must observe byte-identical results.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.fault_spec = Some(spec);
        self
    }

    /// Record spans/counters into `rec` instead of a fresh recorder. Pass
    /// [`Recorder::off`] to disable tracing entirely, or a clone of an
    /// enabled recorder to inspect lanes after the run (via
    /// [`sim_trace::chrome_trace`] or [`sim_trace::analysis`]).
    pub fn recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Run `f` on every rank; returns the virtual completion time.
    pub fn run<F>(self, f: F) -> SimTime
    where
        F: Fn(&GpuRankEnv) + Send + Sync + 'static,
    {
        self.run_with_reports(f).0
    }

    /// Like [`run`](GpuCluster::run), also returning the sanitizer reports
    /// collected during the job (empty when the sanitizer is off).
    pub fn run_with_reports<F>(self, f: F) -> (SimTime, Vec<Report>)
    where
        F: Fn(&GpuRankEnv) + Send + Sync + 'static,
    {
        let sim = Sim::new();
        sim.set_sanitizer(self.sanitizer);
        let fabric = Fabric::with_faults(self.n, self.net.clone(), self.fault_spec.clone());
        let f = Arc::new(f);
        let rec = self.recorder.clone().unwrap_or_default();
        fabric.attach_recorder(&rec);
        for rank in 0..self.n {
            let fabric = fabric.clone();
            let cfg = self.mpi.clone();
            let f = Arc::clone(&f);
            let n = self.n;
            let gpu_cost = self.gpu_cost.clone();
            let gpu_mem = self.gpu_mem;
            let rec = rec.clone();
            sim.spawn(format!("rank{rank}"), move || {
                let gpu = Gpu::new(rank as u32, gpu_cost, gpu_mem);
                gpu.attach_recorder(&rec);
                let stager = GpuStager::new(gpu.clone(), rank, &rec);
                let stagers: Arc<Vec<Box<dyn BufferStager>>> =
                    Arc::new(vec![Box::new(stager) as Box<dyn BufferStager>]);
                let comm = Comm::create_traced(fabric.nic(rank), rank, n, cfg, stagers, &rec);
                let env = GpuRankEnv {
                    comm,
                    gpu,
                    recorder: rec,
                };
                f(&env);
                env.comm.finalize();
            });
        }
        let end = sim.run();
        (end, sim.sanitizer_reports())
    }
}
