//! The three non-contiguous pack schemes of §I-A / Figure 2.
//!
//! * `D2hNc2Nc` — option (a): one `cudaMemcpy2D` device→host, host layout
//!   stays non-contiguous.
//! * `D2hNc2C`  — option (b): one `cudaMemcpy2D` device→host that packs
//!   into contiguous host memory.
//! * `D2d2hNc2C2C` — option (c): pack inside the device with an async
//!   strided copy, then one contiguous async D2H — the paper's winner and
//!   the building block of MV2-GPU-NC.

use gpu_sim::{Copy2d, DevPtr, Gpu, Loc, Stream};
use hostmem::HostBuf;
use sim_core::SimDur;

/// Which §I-A packing option to run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PackScheme {
    /// Option (a): strided D2H, strided host destination.
    D2hNc2Nc,
    /// Option (b): strided D2H packing into contiguous host memory.
    D2hNc2C,
    /// Option (c): strided D2D pack + contiguous D2H, asynchronous.
    D2d2hNc2C2C,
}

impl PackScheme {
    /// All three schemes, in the paper's order.
    pub const ALL: [PackScheme; 3] = [
        PackScheme::D2hNc2Nc,
        PackScheme::D2hNc2C,
        PackScheme::D2d2hNc2C2C,
    ];

    /// The label used in Figure 2.
    pub fn label(&self) -> &'static str {
        match self {
            PackScheme::D2hNc2Nc => "D2H nc2nc",
            PackScheme::D2hNc2C => "D2H nc2c",
            PackScheme::D2d2hNc2C2C => "D2D2H nc2c2c",
        }
    }
}

/// Reusable benchmark state for one (total, elem, stride) configuration:
/// a strided device source, a host destination and a device temporary.
pub struct PackBench {
    gpu: Gpu,
    dev: DevPtr,
    tbuf: DevPtr,
    host: HostBuf,
    elem: usize,
    stride: usize,
    height: usize,
    stream: Stream,
}

impl PackBench {
    /// Set up a vector of `total` data bytes in `elem`-byte rows spaced
    /// `stride` bytes apart, filled with a checkable pattern.
    pub fn new(gpu: &Gpu, total: usize, elem: usize, stride: usize) -> Self {
        assert!(
            total.is_multiple_of(elem),
            "total must be a whole number of rows"
        );
        assert!(stride > elem, "a contiguous 'vector' is not non-contiguous");
        let height = total / elem;
        let dev = gpu.malloc(height * stride);
        let tbuf = gpu.malloc(total);
        let host = HostBuf::alloc(height * stride);
        let pattern: Vec<u8> = (0..height * stride).map(|i| (i % 251) as u8).collect();
        gpu.write_bytes(dev, &pattern);
        let stream = gpu.create_stream();
        PackBench {
            gpu: gpu.clone(),
            dev,
            tbuf,
            host,
            elem,
            stride,
            height,
            stream,
        }
    }

    /// Run one scheme once; returns the elapsed virtual time.
    pub fn run(&self, scheme: PackScheme) -> SimDur {
        let t0 = sim_core::now();
        match scheme {
            PackScheme::D2hNc2Nc => {
                self.gpu.memcpy_2d(Copy2d {
                    dst: Loc::Host(self.host.base()),
                    dpitch: self.stride,
                    src: Loc::Device(self.dev),
                    spitch: self.stride,
                    width: self.elem,
                    height: self.height,
                });
            }
            PackScheme::D2hNc2C => {
                self.gpu.memcpy_2d(Copy2d {
                    dst: Loc::Host(self.host.base()),
                    dpitch: self.elem,
                    src: Loc::Device(self.dev),
                    spitch: self.stride,
                    width: self.elem,
                    height: self.height,
                });
            }
            PackScheme::D2d2hNc2C2C => {
                // Offload the pack to the GPU, then one contiguous D2H;
                // both asynchronous, ordered by the stream.
                self.gpu.memcpy_2d_async(
                    Copy2d {
                        dst: Loc::Device(self.tbuf),
                        dpitch: self.elem,
                        src: Loc::Device(self.dev),
                        spitch: self.stride,
                        width: self.elem,
                        height: self.height,
                    },
                    &self.stream,
                );
                self.gpu
                    .memcpy_async(
                        Loc::Host(self.host.base()),
                        self.tbuf,
                        self.elem * self.height,
                        &self.stream,
                    )
                    .wait();
            }
        }
        sim_core::now() - t0
    }

    /// Check that the packed/copied host bytes equal the device pattern
    /// (layout depends on the scheme).
    pub fn verify(&self, scheme: PackScheme) {
        let dev_bytes = self.gpu.read_bytes(self.dev, self.height * self.stride);
        for r in 0..self.height {
            let src = &dev_bytes[r * self.stride..r * self.stride + self.elem];
            let host_off = match scheme {
                PackScheme::D2hNc2Nc => r * self.stride,
                _ => r * self.elem,
            };
            assert_eq!(
                self.host.read(host_off, self.elem),
                src,
                "row {r} mismatch for {}",
                scheme.label()
            );
        }
    }

    /// Release device memory.
    pub fn free(self) {
        self.gpu.free(self.dev);
        self.gpu.free(self.tbuf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Sim;

    fn in_sim(f: impl FnOnce() + Send + 'static) {
        let sim = Sim::new();
        sim.spawn("t", f);
        sim.run();
    }

    #[test]
    fn all_schemes_move_correct_bytes() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let b = PackBench::new(&gpu, 4096, 4, 16);
            for s in PackScheme::ALL {
                b.run(s);
                b.verify(s);
            }
            b.free();
            assert_eq!(gpu.live_allocs(), 0);
        });
    }

    /// The paper's §I-A anchor numbers at 4 KB: (a) 200 us, (b) 281 us,
    /// (c) 35 us.
    #[test]
    fn motivating_numbers_match_paper() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let b = PackBench::new(&gpu, 4096, 4, 16);
            let a = b.run(PackScheme::D2hNc2Nc).as_micros_f64();
            let bb = b.run(PackScheme::D2hNc2C).as_micros_f64();
            let c = b.run(PackScheme::D2d2hNc2C2C).as_micros_f64();
            assert!((a - 200.0).abs() < 10.0, "option (a) = {a} us, paper 200");
            assert!((bb - 281.0).abs() < 10.0, "option (b) = {bb} us, paper 281");
            assert!((c - 35.0).abs() < 8.0, "option (c) = {c} us, paper 35");
        });
    }

    /// Fig. 2(b)'s headline: at 4 MB the offloaded scheme costs ~4.8% of
    /// option (a).
    #[test]
    fn offload_ratio_at_4mb() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let b = PackBench::new(&gpu, 4 << 20, 4, 16);
            let a = b.run(PackScheme::D2hNc2Nc).as_secs_f64();
            let c = b.run(PackScheme::D2d2hNc2C2C).as_secs_f64();
            let ratio = c / a;
            assert!(
                (ratio - 0.048).abs() < 0.015,
                "D2D2H / nc2nc = {ratio:.3}, paper 0.048"
            );
        });
    }

    #[test]
    fn crossover_small_messages_favor_direct_copy() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            // 64 bytes: the fixed D2D overhead dominates; direct strided
            // D2H wins (visible in Figure 2(a)'s left edge).
            let b = PackBench::new(&gpu, 64, 4, 16);
            let a = b.run(PackScheme::D2hNc2Nc);
            let c = b.run(PackScheme::D2d2hNc2C2C);
            assert!(a < c, "at 64 B direct copy must win: {a} vs {c}");
        });
    }
}
