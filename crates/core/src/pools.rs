//! Device staging-buffer pool (`tbuf` pool).
//!
//! Each in-flight non-contiguous GPU transfer packs through a contiguous
//! device temporary ("tbuf" in the paper). `cudaMalloc` synchronizes the
//! device and costs tens of microseconds, so — like MVAPICH2 — allocation
//! is amortized: freed tbufs are cached by size class and reused.

use std::collections::BTreeMap;

use gpu_sim::{DevPtr, Gpu};
use sim_core::lock::Mutex;
use sim_core::san;

/// Size-classed cache of device temporaries.
pub struct TbufPool {
    gpu: Gpu,
    free: Mutex<BTreeMap<usize, Vec<DevPtr>>>,
    /// Sanitizer pool handle (None when the sanitizer is off).
    san_id: Option<san::PoolId>,
}

/// A pooled device buffer; return it with [`TbufPool::put`].
pub struct Tbuf {
    /// Base pointer of the temporary.
    pub ptr: DevPtr,
    size: usize,
}

impl Tbuf {
    /// The size class this buffer belongs to.
    pub fn size(&self) -> usize {
        self.size
    }
}

fn size_class(len: usize) -> usize {
    // Round up to the next power of two (min 4 KiB) so reuse is likely even
    // when message sizes vary slightly.
    len.max(4096).next_power_of_two()
}

impl TbufPool {
    /// A pool on `gpu`.
    pub fn new(gpu: Gpu) -> Self {
        let san_id = san::pool_register(format!("gpu{}.tbuf_pool", gpu.id()));
        TbufPool {
            gpu,
            free: Mutex::new(BTreeMap::new()),
            san_id,
        }
    }

    /// Take a device temporary of at least `len` bytes. Reuses a cached one
    /// when available; otherwise pays the `cudaMalloc` cost.
    pub fn take(&self, len: usize) -> Tbuf {
        san::pool_take(self.san_id);
        let class = size_class(len);
        if let Some(ptr) = self.free.lock().get_mut(&class).and_then(|v| v.pop()) {
            return Tbuf { ptr, size: class };
        }
        Tbuf {
            ptr: self.gpu.malloc(class),
            size: class,
        }
    }

    /// Return a temporary to the pool.
    pub fn put(&self, tbuf: Tbuf) {
        san::pool_put(self.san_id);
        self.free
            .lock()
            .entry(tbuf.size)
            .or_default()
            .push(tbuf.ptr);
    }

    /// Free every cached temporary back to the device allocator.
    pub fn drain(&self) {
        let mut free = self.free.lock();
        for (_, ptrs) in std::mem::take(&mut *free) {
            for p in ptrs {
                self.gpu.free(p);
            }
        }
    }

    /// Number of cached temporaries (all size classes).
    pub fn cached(&self) -> usize {
        self.free.lock().values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Sim;

    fn in_sim(f: impl FnOnce() + Send + 'static) {
        let sim = Sim::new();
        sim.spawn("t", f);
        sim.run();
    }

    #[test]
    fn take_put_reuses_memory() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let pool = TbufPool::new(gpu.clone());
            let a = pool.take(100 << 10);
            let ptr = a.ptr;
            pool.put(a);
            let b = pool.take(100 << 10);
            assert_eq!(b.ptr.offset(), ptr.offset(), "same buffer reused");
            pool.put(b);
            assert_eq!(pool.cached(), 1);
        });
    }

    #[test]
    fn reuse_skips_malloc_cost() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let pool = TbufPool::new(gpu.clone());
            let a = pool.take(1 << 20);
            pool.put(a);
            let t0 = sim_core::now();
            let b = pool.take(1 << 20);
            assert_eq!(sim_core::now(), t0, "pooled take must be free");
            pool.put(b);
        });
    }

    #[test]
    fn size_classes_round_up() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let pool = TbufPool::new(gpu.clone());
            let a = pool.take(70_000); // class 128 KiB
            pool.put(a);
            let b = pool.take(100_000); // also class 128 KiB — reuse
            assert_eq!(pool.cached(), 0);
            assert_eq!(b.size(), 128 << 10);
            pool.put(b);
        });
    }

    #[test]
    fn drain_releases_device_memory() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let pool = TbufPool::new(gpu.clone());
            let before = gpu.mem_allocated();
            let a = pool.take(1 << 20);
            pool.put(a);
            assert!(gpu.mem_allocated() > before);
            pool.drain();
            assert_eq!(gpu.mem_allocated(), before);
        });
    }
}
