//! # mv2-gpu-nc — GPU-aware non-contiguous MPI datatype communication
//!
//! The paper's contribution (CLUSTER 2011): MPI applications pass device
//! buffers straight into `MPI_Send`/`MPI_Recv` with derived datatypes, and
//! the library
//!
//! 1. **offloads datatype processing to the GPU** — non-contiguous layouts
//!    are packed/unpacked with strided copies *inside* device memory
//!    (~20x cheaper per row than strided copies across PCIe), and
//! 2. **pipelines all five transfer stages** — device pack → D2H copy →
//!    RDMA write → H2D copy → device unpack — chunk by chunk at a tunable
//!    block size (`MV2_CUDA_BLOCK_SIZE`, 64 KB default).
//!
//! The implementation plugs into `mpi-sim`'s rendezvous engine through its
//! staging extension point, mirroring how the real feature lives inside
//! MVAPICH2. [`GpuCluster`] runs programs on a simulated GPU cluster:
//!
//! ```
//! use mv2_gpu_nc::GpuCluster;
//! use mpi_sim::Datatype;
//!
//! GpuCluster::new(2).run(|env| {
//!     // A 256-row column of floats in a 1 KB-pitch device matrix.
//!     let col = Datatype::hvector(256, 1, 1024, &Datatype::float());
//!     col.commit();
//!     let dev = env.gpu.malloc(256 * 1024);
//!     if env.comm.rank() == 0 {
//!         env.comm.send(dev, 1, &col, 1, 0);   // device buffer, vector type
//!     } else {
//!         env.comm.recv(dev, 1, &col, 0, 0);
//!     }
//! });
//! ```
//!
//! The crate also ships the paper's evaluation artifacts: the §I-A pack
//! [`schemes`], the Figure 4 user-level [`baselines`], and the §IV-B
//! analytic pipeline [`model`].

#![warn(missing_docs)]

pub mod baselines;
mod cluster;
pub mod gpu_pack;
pub mod model;
mod pools;
pub mod schemes;
mod stager;
pub mod timeline;

pub use cluster::{GpuCluster, GpuRankEnv, WakeTraceSink};
pub use gpu_pack::SegmentMap;
pub use ib_sim::{FaultSpec, ShmModel, Topology};
pub use pools::{Tbuf, TbufPool};
pub use sim_trace::Recorder;
pub use stager::GpuStager;

#[cfg(test)]
mod tests {
    use super::baselines::{fill_vector, verify_vector, VectorXfer};
    use super::*;
    use mpi_sim::Datatype;

    #[test]
    fn device_vector_send_recv_round_trip() {
        GpuCluster::new(2).run(|env| {
            let x = VectorXfer::paper(256 << 10); // rendezvous, pipelined
            let dev = env.gpu.malloc(x.extent());
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, 7);
                env.comm.send(dev, 1, &x.dtype(), 1, 0);
            } else {
                env.comm.recv(dev, 1, &x.dtype(), 0, 0);
                verify_vector(&env.gpu, dev, &x, 7);
            }
        });
    }

    #[test]
    fn small_device_message_takes_eager_path() {
        GpuCluster::new(2).run(|env| {
            let x = VectorXfer::paper(1 << 10); // below the eager limit
            let dev = env.gpu.malloc(x.extent());
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, 9);
                env.comm.send(dev, 1, &x.dtype(), 1, 0);
            } else {
                env.comm.recv(dev, 1, &x.dtype(), 0, 0);
                verify_vector(&env.gpu, dev, &x, 9);
            }
        });
    }

    #[test]
    fn contiguous_device_buffer_pipelines_without_packing() {
        GpuCluster::new(2).run(|env| {
            let t = Datatype::byte();
            t.commit();
            let n = 512 << 10;
            let dev = env.gpu.malloc(n);
            if env.comm.rank() == 0 {
                let data: Vec<u8> = (0..n).map(|i| (i % 239) as u8).collect();
                env.gpu.write_bytes(dev, &data);
                env.comm.send(dev, n, &t, 1, 0);
                // No strided device copies should have happened.
                assert_eq!(env.gpu.counters().get("cudaMemcpy2DAsync"), 0);
            } else {
                env.comm.recv(dev, n, &t, 0, 0);
                let got = env.gpu.read_bytes(dev, n);
                assert!((0..n).all(|i| got[i] == (i % 239) as u8));
                assert_eq!(env.gpu.counters().get("cudaMemcpy2DAsync"), 0);
            }
        });
    }

    #[test]
    fn device_to_host_and_host_to_device_mixed() {
        GpuCluster::new(2).run(|env| {
            let x = VectorXfer::paper(128 << 10);
            if env.comm.rank() == 0 {
                // Device -> remote host.
                let dev = env.gpu.malloc(x.extent());
                fill_vector(&env.gpu, dev, &x, 3);
                env.comm.send(dev, 1, &x.dtype(), 1, 0);
                // Host -> remote device.
                let host = hostmem::HostBuf::alloc(x.extent());
                let pattern: Vec<u8> = (0..x.extent()).map(|i| (i % 83) as u8).collect();
                host.write(0, &pattern);
                env.comm.send(host.base(), 1, &x.dtype(), 1, 1);
            } else {
                let host = hostmem::HostBuf::alloc(x.extent());
                env.comm.recv(host.base(), 1, &x.dtype(), 0, 0);
                for r in 0..x.height() {
                    let i = r * x.stride;
                    assert_eq!(
                        host.read(i, x.elem),
                        (i..i + x.elem)
                            .map(|j| (j as u8).wrapping_mul(31).wrapping_add(3))
                            .collect::<Vec<_>>()
                    );
                }
                let dev = env.gpu.malloc(x.extent());
                env.comm.recv(dev, 1, &x.dtype(), 0, 1);
                let got = env.gpu.read_bytes(dev, x.extent());
                for r in 0..x.height() {
                    let i = r * x.stride;
                    assert!((0..x.elem).all(|c| got[i + c] == ((i + c) % 83) as u8));
                }
            }
        });
    }

    #[test]
    fn irregular_indexed_type_between_gpus() {
        GpuCluster::new(2).run(|env| {
            // An indexed soup big enough for the staged path.
            let blocks: Vec<(usize, isize)> = (0..3000).map(|i| (7, (i * 13) as isize)).collect();
            let t = Datatype::indexed(&blocks, &Datatype::int());
            t.commit();
            let span = t.ub().max(0) as usize;
            let dev = env.gpu.malloc(span + 64);
            if env.comm.rank() == 0 {
                let pattern: Vec<u8> = (0..span).map(|i| (i % 191) as u8).collect();
                env.gpu.write_bytes(dev, &pattern);
                env.comm.send(dev, 1, &t, 1, 0);
            } else {
                env.comm.recv(dev, 1, &t, 0, 0);
                let got = env.gpu.read_bytes(dev, span);
                for &(bl, disp) in &blocks {
                    let o = disp as usize * 4;
                    for c in 0..bl * 4 {
                        assert_eq!(got[o + c], ((o + c) % 191) as u8);
                    }
                }
            }
        });
    }

    #[test]
    fn colocated_device_ranks_stay_on_the_gpu() {
        // Two ranks on one node share the physical GPU: a device-to-device
        // rendezvous must move zero bytes over the HCA *and* zero bytes
        // over PCIe (no d2h/h2d stages — pack and unpack only).
        let rec = Recorder::new();
        GpuCluster::new(2).ppn(2).recorder(rec.clone()).run(|env| {
            let x = VectorXfer::paper(256 << 10); // rendezvous-sized
            let dev = env.gpu.malloc(x.extent());
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, 11);
                env.comm.send(dev, 1, &x.dtype(), 1, 0);
            } else {
                env.comm.recv(dev, 1, &x.dtype(), 0, 0);
                verify_vector(&env.gpu, dev, &x, 11);
            }
        });
        let m = rec.metrics();
        assert_eq!(
            m.get("node0.hca.tx_bytes").copied().unwrap_or(0),
            0,
            "co-located device transfer crossed the HCA"
        );
        let spans = sim_trace::analysis::stage_spans(&rec);
        for stage in ["d2h", "h2d"] {
            let n = spans.iter().filter(|s| s.lane_name == stage).count();
            assert_eq!(n, 0, "device-to-device transfer crossed PCIe ({stage})");
        }
        for stage in ["pack", "unpack"] {
            let n = spans.iter().filter(|s| s.lane_name == stage).count();
            assert_eq!(n, 1, "one whole-message {stage} expected");
        }
    }

    #[test]
    fn colocated_device_path_matches_remote_bytes() {
        // The same irregular transfer delivered intra-node (D2D) and
        // inter-node (staged pipeline) must produce identical bytes.
        let run = |ppn: usize| {
            use std::sync::Mutex;
            let got = Arc::new(Mutex::new(Vec::new()));
            let g2 = Arc::clone(&got);
            GpuCluster::new(2).ppn(ppn).run(move |env| {
                let blocks: Vec<(usize, isize)> =
                    (0..2000).map(|i| (5, (i * 11) as isize)).collect();
                let t = Datatype::indexed(&blocks, &Datatype::int());
                t.commit();
                let span = t.ub().max(0) as usize;
                let dev = env.gpu.malloc(span + 64);
                if env.comm.rank() == 0 {
                    let pattern: Vec<u8> = (0..span).map(|i| (i % 157) as u8).collect();
                    env.gpu.write_bytes(dev, &pattern);
                    env.comm.send(dev, 1, &t, 1, 0);
                } else {
                    env.comm.recv(dev, 1, &t, 0, 0);
                    *g2.lock().unwrap() = env.gpu.read_bytes(dev, span);
                }
            });
            Arc::try_unwrap(got).unwrap().into_inner().unwrap()
        };
        use std::sync::Arc;
        let intra = run(2);
        let inter = run(1);
        assert!(!intra.is_empty());
        assert_eq!(intra, inter, "transport changed the delivered bytes");
    }

    #[test]
    fn mv2_beats_blocking_baseline_at_large_sizes() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let mv2_time = Arc::new(AtomicU64::new(0));
        let blocking_time = Arc::new(AtomicU64::new(0));
        let (m2, b2) = (Arc::clone(&mv2_time), Arc::clone(&blocking_time));
        GpuCluster::new(2).run(move |env| {
            let x = VectorXfer::paper(1 << 20);
            let dev = env.gpu.malloc(x.extent());
            let me = env.comm.rank();
            // Blocking baseline.
            env.comm.barrier();
            let t0 = sim_core::now();
            if me == 0 {
                fill_vector(&env.gpu, dev, &x, 1);
                baselines::send_cpy2d_blocking(env, dev, x, 1, 0);
            } else {
                baselines::recv_cpy2d_blocking(env, dev, x, 0, 0);
            }
            env.comm.barrier();
            let t_blocking = sim_core::now() - t0;
            // MV2-GPU-NC.
            let t1 = sim_core::now();
            if me == 0 {
                baselines::send_mv2(&env.comm, dev, x, 1, 1);
            } else {
                baselines::recv_mv2(&env.comm, dev, x, 0, 1);
                verify_vector(&env.gpu, dev, &x, 1);
            }
            env.comm.barrier();
            let t_mv2 = sim_core::now() - t1;
            if me == 0 {
                b2.store(t_blocking.as_nanos(), Ordering::SeqCst);
                m2.store(t_mv2.as_nanos(), Ordering::SeqCst);
            }
        });
        let b = blocking_time.load(std::sync::atomic::Ordering::SeqCst);
        let m = mv2_time.load(std::sync::atomic::Ordering::SeqCst);
        assert!(
            m * 4 < b,
            "MV2-GPU-NC ({m} ns) should be several times faster than the \
             blocking baseline ({b} ns) at 1 MB"
        );
    }

    #[test]
    fn manual_pipeline_matches_mv2_shape() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let manual = Arc::new(AtomicU64::new(0));
        let mv2 = Arc::new(AtomicU64::new(0));
        let (ma, mb) = (Arc::clone(&manual), Arc::clone(&mv2));
        GpuCluster::new(2).run(move |env| {
            let x = VectorXfer::paper(1 << 20);
            let block = env.comm.config().chunk_size;
            let dev = env.gpu.malloc(x.extent());
            let me = env.comm.rank();
            env.comm.barrier();
            let t0 = sim_core::now();
            if me == 0 {
                fill_vector(&env.gpu, dev, &x, 5);
                baselines::send_manual_pipeline(env, dev, x, 1, 1, block);
            } else {
                baselines::recv_manual_pipeline(env, dev, x, 0, 1, block);
                verify_vector(&env.gpu, dev, &x, 5);
            }
            env.comm.barrier();
            let t_manual = sim_core::now() - t0;
            let t1 = sim_core::now();
            if me == 0 {
                baselines::send_mv2(&env.comm, dev, x, 1, 2);
            } else {
                baselines::recv_mv2(&env.comm, dev, x, 0, 2);
            }
            env.comm.barrier();
            let t_mv2 = sim_core::now() - t1;
            if me == 0 {
                ma.store(t_manual.as_nanos(), Ordering::SeqCst);
                mb.store(t_mv2.as_nanos(), Ordering::SeqCst);
            }
        });
        let a = manual.load(std::sync::atomic::Ordering::SeqCst) as f64;
        let b = mv2.load(std::sync::atomic::Ordering::SeqCst) as f64;
        let ratio = a / b;
        assert!(
            (0.5..2.0).contains(&ratio),
            "manual pipeline and MV2-GPU-NC should be comparable (paper \
             Fig. 5); got manual/mv2 = {ratio:.2}"
        );
    }

    #[test]
    fn tbuf_pool_is_reused_across_messages() {
        GpuCluster::new(2).run(|env| {
            let x = VectorXfer::paper(256 << 10);
            let dev = env.gpu.malloc(x.extent());
            let me = env.comm.rank();
            for tag in 0..4u32 {
                if me == 0 {
                    fill_vector(&env.gpu, dev, &x, tag as u8);
                    env.comm.send(dev, 1, &x.dtype(), 1, tag);
                } else {
                    env.comm.recv(dev, 1, &x.dtype(), 0, tag);
                    verify_vector(&env.gpu, dev, &x, tag as u8);
                }
            }
            // After the bursts, each rank holds the user matrix plus a
            // recycled tbuf — not one tbuf per message.
            let allocs = env.gpu.live_allocs();
            assert!(
                allocs <= 3,
                "tbuf pool must recycle device temporaries (live allocs: {allocs})"
            );
        });
    }

    #[test]
    fn pipeline_trace_records_all_stages() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let rec = Recorder::new();
        let nchunks = Arc::new(AtomicUsize::new(0));
        let nc = Arc::clone(&nchunks);
        GpuCluster::new(2).recorder(rec.clone()).run(move |env| {
            let x = VectorXfer::paper(256 << 10);
            let dev = env.gpu.malloc(x.extent());
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, 2);
                env.comm.send(dev, 1, &x.dtype(), 1, 0);
                nc.store(
                    (256usize << 10).div_ceil(env.comm.config().chunk_size),
                    Ordering::SeqCst,
                );
            } else {
                env.comm.recv(dev, 1, &x.dtype(), 0, 0);
            }
        });
        let spans = sim_trace::analysis::stage_spans(&rec);
        let nchunks = nchunks.load(std::sync::atomic::Ordering::SeqCst);
        for stage in ["pack", "d2h", "rdma", "h2d", "unpack"] {
            let n = spans.iter().filter(|s| s.lane_name == stage).count();
            assert_eq!(n, nchunks, "stage {stage} spans");
        }
    }

    #[test]
    fn disabling_the_recorder_does_not_change_virtual_time() {
        let run = |rec: Recorder| {
            GpuCluster::new(2).recorder(rec).run(|env| {
                let x = VectorXfer::paper(512 << 10);
                let dev = env.gpu.malloc(x.extent());
                if env.comm.rank() == 0 {
                    fill_vector(&env.gpu, dev, &x, 4);
                    baselines::send_mv2(&env.comm, dev, x, 1, 0);
                } else {
                    baselines::recv_mv2(&env.comm, dev, x, 0, 0);
                }
            })
        };
        assert_eq!(run(Recorder::new()), run(Recorder::off()));
    }

    #[test]
    fn deterministic_gpu_transfer() {
        let run = || {
            GpuCluster::new(2).run(|env| {
                let x = VectorXfer::paper(512 << 10);
                let dev = env.gpu.malloc(x.extent());
                if env.comm.rank() == 0 {
                    fill_vector(&env.gpu, dev, &x, 4);
                    baselines::send_mv2(&env.comm, dev, x, 1, 0);
                } else {
                    baselines::recv_mv2(&env.comm, dev, x, 0, 0);
                }
            })
        };
        assert_eq!(run(), run());
    }
}
