//! The paper's §IV-B analytic pipeline model.
//!
//! For a non-contiguous transfer of `N` bytes split into `n` blocks, the
//! paper models the pipelined latency as `(n + 2) * T_d2d_nc2c(N/n)`: in
//! steady state the strided device pack (the slowest stage) gates the
//! pipeline, and two extra block times cover fill and drain. The block-size
//! ablation compares this model against the simulated pipeline and locates
//! the optimum (64 KB on the paper's testbed).

use gpu_sim::{CopyDir, CostModel, Shape2D};
use sim_core::SimDur;

/// `(n+2) * T_d2d_nc2c(N/n)` for a vector of `elem`-byte rows.
pub fn pipeline_latency_model(cost: &CostModel, total: usize, block: usize, elem: usize) -> SimDur {
    let n = total.div_ceil(block).max(1) as u64;
    let rows_per_block = (block / elem).max(1) as u64;
    let t_block = cost.copy2d(
        CopyDir::D2D,
        Shape2D::OneStrided,
        elem as u64,
        rows_per_block,
    );
    t_block * (n + 2)
}

/// Block size minimizing the model over a set of candidates.
pub fn best_block(cost: &CostModel, total: usize, elem: usize, candidates: &[usize]) -> usize {
    *candidates
        .iter()
        .min_by_key(|&&b| pipeline_latency_model(cost, total, b, elem))
        .expect("no candidates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_matches_paper_optimum() {
        // Sweep power-of-two blocks at 4 MB: the calibrated model's optimum
        // must land at the paper's 64 KB (or its immediate neighbors in the
        // flat basin).
        let cost = CostModel::tesla_c2050();
        let candidates: Vec<usize> = (12..=20).map(|p| 1usize << p).collect();
        let best = best_block(&cost, 4 << 20, 4, &candidates);
        assert!(
            (32 << 10..=128 << 10).contains(&best),
            "model optimum {best} bytes is outside the paper's 64 KB basin"
        );
    }

    #[test]
    fn model_penalizes_extremes() {
        let cost = CostModel::tesla_c2050();
        let at = |b| pipeline_latency_model(&cost, 4 << 20, b, 4);
        assert!(
            at(4 << 10) > at(64 << 10),
            "tiny blocks pay per-op overhead"
        );
        assert!(at(2 << 20) > at(64 << 10), "huge blocks lose pipelining");
    }

    #[test]
    fn model_is_monotone_in_total() {
        let cost = CostModel::tesla_c2050();
        assert!(
            pipeline_latency_model(&cost, 8 << 20, 64 << 10, 4)
                > pipeline_latency_model(&cost, 4 << 20, 64 << 10, 4)
        );
    }
}
