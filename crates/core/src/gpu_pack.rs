//! GPU-offloaded datatype packing: turn flattened datatype segments into
//! device-internal copy operations.
//!
//! This is the paper's first contribution (§IV-A): instead of moving each
//! non-contiguous row across PCIe, the layout is packed *inside* device
//! memory — ideally with a single strided `cudaMemcpy2D` — and then crosses
//! PCIe as one contiguous block.
//!
//! [`SegmentMap`] slices a flattened layout into arbitrary packed-byte
//! ranges (pipeline chunks); [`enqueue_gather`] / [`enqueue_scatter`] emit
//! the cheapest device operation sequence for a range:
//!
//! * one contiguous `memcpy` when the range is a single run,
//! * one strided 2-D copy when the runs are uniform (optionally with
//!   trimmed head/tail runs from chunk boundaries),
//! * a generic gather/scatter pack kernel for irregular layouts
//!   (indexed/struct types — beyond what the paper evaluated, but what its
//!   production descendants do).

use std::sync::Arc;

use gpu_sim::{Copy2d, DevPtr, Gpu, Loc, Stream};
use mpi_sim::flat::Segment;
use mpi_sim::Plan;
use sim_core::Completion;

/// A flattened layout with prefix sums for O(log n) chunk slicing.
///
/// Since the plan cache landed this is a thin view over a shared
/// [`Plan`] — building one from a committed datatype's cached plan
/// (`SegmentMap::from_plan(dt.plan(count))`) allocates nothing.
pub struct SegmentMap {
    plan: Arc<Plan>,
}

/// One run of bytes in the user buffer: (byte offset relative to the buffer
/// address, length).
pub type Piece = mpi_sim::plan::Piece;

impl SegmentMap {
    /// Build from expanded segments (see `FlatType::expanded`).
    pub fn new(segs: Vec<Segment>) -> Self {
        Self::from_plan(Arc::new(Plan::from_segments(segs)))
    }

    /// Wrap a (usually cached) communication plan.
    pub fn from_plan(plan: Arc<Plan>) -> Self {
        SegmentMap { plan }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &Arc<Plan> {
        &self.plan
    }

    /// Total packed bytes.
    pub fn total(&self) -> usize {
        self.plan.total()
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.plan.num_segments()
    }

    /// The user-buffer runs covering packed-byte range `[off, off+len)`.
    pub fn pieces(&self, off: usize, len: usize) -> Vec<Piece> {
        self.plan.pieces(off, len)
    }
}

/// If `pieces` form `height` equal-width runs at a constant pitch, return
/// `(first_offset, pitch, width, height)`.
fn uniform(pieces: &[Piece]) -> Option<(isize, usize, usize, usize)> {
    match pieces {
        [] => None,
        &[(off, len)] => Some((off, len, len, 1)),
        &[(o0, w0), (o1, w1), ref rest @ ..] => {
            if w1 != w0 || o1 <= o0 {
                return None;
            }
            let pitch = (o1 - o0) as usize;
            let mut prev = o1;
            for &(o, w) in rest {
                if w != w0 || o - prev != pitch as isize {
                    return None;
                }
                prev = o;
            }
            Some((o0, pitch, w0, pieces.len()))
        }
    }
}

fn dev_at(base: DevPtr, rel: isize) -> DevPtr {
    base.add_signed(rel)
}

/// Enqueue the device ops that pack `pieces` of the user buffer at `user`
/// into contiguous device memory at `dst`. Returns the completion of the
/// last op.
pub fn enqueue_gather(
    gpu: &Gpu,
    stream: &Stream,
    user: DevPtr,
    pieces: &[Piece],
    dst: DevPtr,
) -> Completion {
    enqueue_strided(gpu, stream, user, pieces, dst, true)
}

/// Enqueue the device ops that scatter contiguous device memory at `src`
/// into `pieces` of the user buffer at `user`.
pub fn enqueue_scatter(
    gpu: &Gpu,
    stream: &Stream,
    user: DevPtr,
    pieces: &[Piece],
    src: DevPtr,
) -> Completion {
    enqueue_strided(gpu, stream, user, pieces, src, false)
}

fn enqueue_strided(
    gpu: &Gpu,
    stream: &Stream,
    user: DevPtr,
    pieces: &[Piece],
    contig: DevPtr,
    gather: bool,
) -> Completion {
    assert!(!pieces.is_empty(), "empty piece list");
    let total: usize = pieces.iter().map(|&(_, l)| l).sum();

    let copy2d = |first: isize, pitch: usize, width: usize, height: usize, cbase: DevPtr| {
        let strided = Loc::Device(dev_at(user, first));
        let contig_loc = Loc::Device(cbase);
        let p = if gather {
            Copy2d {
                dst: contig_loc,
                dpitch: width,
                src: strided,
                spitch: pitch,
                width,
                height,
            }
        } else {
            Copy2d {
                dst: strided,
                dpitch: pitch,
                src: contig_loc,
                spitch: width,
                width,
                height,
            }
        };
        gpu.memcpy_2d_async(p, stream)
    };

    // Whole range uniform: one strided copy (or a plain memcpy for a single
    // run).
    if let Some((first, pitch, width, height)) = uniform(pieces) {
        if height == 1 || pitch == width {
            let (d, s) = if gather {
                (contig, dev_at(user, first))
            } else {
                (dev_at(user, first), contig)
            };
            return gpu.memcpy_async(d, s, total, stream);
        }
        return copy2d(first, pitch, width, height, contig);
    }

    // Chunk boundaries often clip the first/last run of an otherwise
    // uniform pattern: peel them off and 2-D-copy the middle.
    if pieces.len() >= 3 {
        if let Some((first, pitch, width, height)) = uniform(&pieces[1..pieces.len() - 1]) {
            let head = pieces[0];
            let tail = pieces[pieces.len() - 1];
            if height >= 2 && head.1 <= width && tail.1 <= width {
                let mut coff = contig;
                let (hd, hs) = if gather {
                    (coff, dev_at(user, head.0))
                } else {
                    (dev_at(user, head.0), coff)
                };
                gpu.memcpy_async(hd, hs, head.1, stream);
                coff = coff.add(head.1);
                copy2d(first, pitch, width, height, coff);
                coff = coff.add(width * height);
                let (td, ts) = if gather {
                    (coff, dev_at(user, tail.0))
                } else {
                    (dev_at(user, tail.0), coff)
                };
                return gpu.memcpy_async(td, ts, tail.1, stream);
            }
        }
    }

    // Irregular: one generic gather/scatter kernel.
    let cost = gpu.cost_model().pack_kernel(total as u64, pieces.len());
    let pieces: Vec<Piece> = pieces.to_vec();
    let user_c = user;
    let contig_c = contig;
    gpu.launch_kernel(
        if gather {
            "pack_gather"
        } else {
            "unpack_scatter"
        },
        cost,
        stream,
        move |g| {
            let mut coff = contig_c;
            for (rel, len) in pieces {
                let u = dev_at(user_c, rel);
                if gather {
                    let bytes = g.read_bytes(u, len);
                    g.write_bytes(coff, &bytes);
                } else {
                    let bytes = g.read_bytes(coff, len);
                    g.write_bytes(u, &bytes);
                }
                coff = coff.add(len);
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::Datatype;
    use sim_core::Sim;

    fn in_sim(f: impl FnOnce() + Send + 'static) {
        let sim = Sim::new();
        sim.spawn("t", f);
        sim.run();
    }

    fn map_of(dt: &Datatype, count: usize) -> SegmentMap {
        dt.commit();
        SegmentMap::new(dt.flat().expanded(count))
    }

    #[test]
    fn pieces_slices_ranges() {
        let dt = Datatype::vector(4, 1, 4, &Datatype::float());
        let m = map_of(&dt, 1); // runs of 4 at 0,16,32,48
        assert_eq!(m.total(), 16);
        assert_eq!(m.pieces(0, 16), vec![(0, 4), (16, 4), (32, 4), (48, 4)]);
        assert_eq!(m.pieces(2, 4), vec![(2, 2), (16, 2)]);
        assert_eq!(m.pieces(6, 6), vec![(18, 2), (32, 4)]);
        assert!(m.pieces(16, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds packed size")]
    fn pieces_out_of_range_panics() {
        let dt = Datatype::float();
        let m = map_of(&dt, 1);
        let _ = m.pieces(0, 5);
    }

    #[test]
    fn uniform_detection() {
        assert_eq!(uniform(&[(0, 4), (16, 4), (32, 4)]), Some((0, 16, 4, 3)));
        assert_eq!(uniform(&[(8, 4)]), Some((8, 4, 4, 1)));
        assert_eq!(uniform(&[(0, 4), (16, 8)]), None);
        assert_eq!(uniform(&[(0, 4), (16, 4), (30, 4)]), None);
        assert_eq!(uniform(&[]), None);
    }

    #[test]
    fn gather_uniform_uses_one_2d_copy() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let user = gpu.malloc(256);
            let tbuf = gpu.malloc(64);
            gpu.write_bytes(user, &(0..=255).collect::<Vec<u8>>());
            let s = gpu.create_stream();
            let dt = Datatype::vector(8, 1, 8, &Datatype::float());
            let m = map_of(&dt, 1);
            let before = gpu.counters().get("cudaMemcpy2DAsync");
            let c = enqueue_gather(&gpu, &s, user, &m.pieces(0, 32), tbuf);
            c.wait();
            assert_eq!(gpu.counters().get("cudaMemcpy2DAsync"), before + 1);
            let got = gpu.read_bytes(tbuf, 32);
            for r in 0..8 {
                assert_eq!(&got[r * 4..r * 4 + 4], gpu.read_bytes(user.add(r * 32), 4));
            }
        });
    }

    #[test]
    fn gather_with_clipped_head_tail() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let user = gpu.malloc(1024);
            let tbuf = gpu.malloc(256);
            gpu.write_bytes(
                user,
                &(0..1024).map(|i| (i * 7 % 251) as u8).collect::<Vec<_>>(),
            );
            let s = gpu.create_stream();
            let dt = Datatype::vector(32, 1, 8, &Datatype::float());
            let m = map_of(&dt, 1); // 32 runs of 4 bytes
                                    // A range that starts and ends mid-run.
            let pieces = m.pieces(2, 100);
            let c = enqueue_gather(&gpu, &s, user, &pieces, tbuf);
            c.wait();
            // Reference: CPU-computed expected packed bytes.
            let all: Vec<u8> = (0..32)
                .flat_map(|r| gpu.read_bytes(user.add(r * 32), 4))
                .collect();
            assert_eq!(gpu.read_bytes(tbuf, 100), &all[2..102]);
        });
    }

    #[test]
    fn irregular_layout_uses_pack_kernel() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let user = gpu.malloc(256);
            let tbuf = gpu.malloc(64);
            gpu.write_bytes(user, &(0..=255).collect::<Vec<u8>>());
            let s = gpu.create_stream();
            let dt = Datatype::indexed(&[(1, 0), (2, 9), (1, 30), (3, 40)], &Datatype::int());
            let m = map_of(&dt, 1);
            let before = gpu.counters().get("kernelLaunch");
            let c = enqueue_gather(&gpu, &s, user, &m.pieces(0, m.total()), tbuf);
            c.wait();
            assert_eq!(gpu.counters().get("kernelLaunch"), before + 1);
            let mut expect = Vec::new();
            for (bl, disp) in [(1usize, 0usize), (2, 9), (1, 30), (3, 40)] {
                expect.extend(gpu.read_bytes(user.add(disp * 4), bl * 4));
            }
            assert_eq!(gpu.read_bytes(tbuf, m.total()), expect);
        });
    }

    #[test]
    fn scatter_inverts_gather() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let a = gpu.malloc(512);
            let b = gpu.malloc(512);
            let tbuf = gpu.malloc(128);
            gpu.write_bytes(a, &(0..512).map(|i| (i % 241) as u8).collect::<Vec<_>>());
            let s = gpu.create_stream();
            let dt = Datatype::vector(16, 2, 8, &Datatype::float());
            let m = map_of(&dt, 1); // 16 runs of 8 bytes, pitch 32
            let pieces = m.pieces(0, m.total());
            enqueue_gather(&gpu, &s, a, &pieces, tbuf).wait();
            enqueue_scatter(&gpu, &s, b, &pieces, tbuf).wait();
            for r in 0..16 {
                assert_eq!(
                    gpu.read_bytes(b.add(r * 32), 8),
                    gpu.read_bytes(a.add(r * 32), 8),
                    "run {r}"
                );
            }
        });
    }

    #[test]
    fn contiguous_range_uses_1d_copy() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let user = gpu.malloc(128);
            let tbuf = gpu.malloc(128);
            gpu.write_bytes(user, &(0..128).collect::<Vec<u8>>());
            let s = gpu.create_stream();
            let dt = Datatype::contiguous(32, &Datatype::float());
            let m = map_of(&dt, 1);
            let before2d = gpu.counters().get("cudaMemcpy2DAsync");
            enqueue_gather(&gpu, &s, user, &m.pieces(0, 128), tbuf).wait();
            assert_eq!(gpu.counters().get("cudaMemcpy2DAsync"), before2d);
            assert_eq!(gpu.read_bytes(tbuf, 128), gpu.read_bytes(user, 128));
        });
    }
}
