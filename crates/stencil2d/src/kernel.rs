//! The 9-point stencil GPU kernel (SHOC Stencil2D weights) plus its
//! execution-time model.

use gpu_sim::{DevPtr, Gpu, Stream};
use sim_core::SimDur;

use crate::real::Real;

/// SHOC Stencil2D default weights.
pub const W_CENTER: f64 = 0.25;
/// Weight of the four cardinal neighbors.
pub const W_CARDINAL: f64 = 0.15;
/// Weight of the four diagonal neighbors.
pub const W_DIAGONAL: f64 = 0.05;

/// Modeled kernel execution time: the 9-point stencil on a Tesla C2050 is
/// memory-bound; effective traffic is ~6.5 element accesses per cell
/// against ~140 GB/s of device bandwidth.
pub fn kernel_time(cells: usize, elem_size: usize) -> SimDur {
    let ns = cells as f64 * 6.5 * elem_size as f64 / 140e9 * 1e9;
    SimDur::from_nanos(ns.round() as u64)
}

/// One stencil step: read `src` (a `(rows+2) x (cols+2)` matrix including
/// the one-cell halo ring), write the interior of `dst`. Halo cells of
/// `dst` are copied through unchanged. Returns the kernel's completion.
pub fn stencil_step<T: Real>(
    gpu: &Gpu,
    stream: &Stream,
    src: DevPtr,
    dst: DevPtr,
    rows: usize,
    cols: usize,
) -> sim_core::Completion {
    let (h, w) = (rows + 2, cols + 2);
    let cost = kernel_time(rows * cols, T::SIZE);
    gpu.launch_kernel("stencil9", cost, stream, move |g| {
        let src_bytes = g.read_bytes(src, h * w * T::SIZE);
        let mut dst_bytes = src_bytes.clone();
        // Decode once per cell (not once per neighbor access): the matrix
        // can be hundreds of MB, so this inner loop dominates the harness's
        // real (wall-clock) runtime.
        let vals: Vec<f64> = src_bytes
            .chunks_exact(T::SIZE)
            .map(|c| T::read_le(c).to_f64())
            .collect();
        for r in 1..=rows {
            let up = &vals[(r - 1) * w..(r - 1) * w + w];
            let mid = &vals[r * w..r * w + w];
            let down = &vals[(r + 1) * w..(r + 1) * w + w];
            let out_row = &mut dst_bytes[r * w * T::SIZE..(r + 1) * w * T::SIZE];
            for c in 1..=cols {
                let card = up[c] + down[c] + mid[c - 1] + mid[c + 1];
                let diag = up[c - 1] + up[c + 1] + down[c - 1] + down[c + 1];
                let v = W_CENTER * mid[c] + W_CARDINAL * card + W_DIAGONAL * diag;
                T::from_f64(v).write_le(&mut out_row[c * T::SIZE..(c + 1) * T::SIZE]);
            }
        }
        g.write_bytes(dst, &dst_bytes);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Sim;

    fn in_sim(f: impl FnOnce() + Send + 'static) {
        let sim = Sim::new();
        sim.spawn("t", f);
        sim.run();
    }

    #[test]
    fn kernel_time_scales_with_cells_and_precision() {
        assert!(kernel_time(1 << 20, 8) > kernel_time(1 << 20, 4));
        assert!(kernel_time(1 << 22, 4) > kernel_time(1 << 20, 4));
        // 8K x 8K f32: ~12.5 ms (the calibration point for Table II).
        let t = kernel_time(8192 * 8192, 4).as_millis_f64();
        assert!((t - 12.5).abs() < 1.0, "got {t} ms");
    }

    #[test]
    fn single_cell_stencil_value() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let s = gpu.create_stream();
            // 1x1 interior, 3x3 matrix.
            let src = gpu.malloc(9 * 4);
            let dst = gpu.malloc(9 * 4);
            let vals: Vec<f32> = (1..=9).map(|v| v as f32).collect();
            gpu.write_scalars(src, &vals);
            stencil_step::<f32>(&gpu, &s, src, dst, 1, 1).wait();
            let out = gpu.read_scalars::<f32>(dst, 9);
            // center = 5; cardinals 2,4,6,8 = 20; diagonals 1,3,7,9 = 20.
            let expect = (0.25 * 5.0 + 0.15 * 20.0 + 0.05 * 20.0) as f32;
            assert_eq!(out[4], expect);
            // Halo passes through.
            assert_eq!(out[0], 1.0);
            assert_eq!(out[8], 9.0);
        });
    }

    #[test]
    fn interior_only_is_updated() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let s = gpu.create_stream();
            let (rows, cols) = (3usize, 4usize);
            let n = (rows + 2) * (cols + 2);
            let src = gpu.malloc(n * 8);
            let dst = gpu.malloc(n * 8);
            let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
            gpu.write_scalars(src, &vals);
            stencil_step::<f64>(&gpu, &s, src, dst, rows, cols).wait();
            let out = gpu.read_scalars::<f64>(dst, n);
            let w = cols + 2;
            for r in 0..rows + 2 {
                for c in 0..cols + 2 {
                    let boundary = r == 0 || r == rows + 1 || c == 0 || c == cols + 1;
                    if boundary {
                        assert_eq!(out[r * w + c], vals[r * w + c], "halo changed at {r},{c}");
                    } else {
                        assert_ne!(out[r * w + c], vals[r * w + c], "interior not updated");
                    }
                }
            }
        });
    }

    #[test]
    fn kernel_advances_virtual_time() {
        in_sim(|| {
            let gpu = Gpu::tesla_c2050(0);
            let s = gpu.create_stream();
            let src = gpu.malloc(1024 * 4);
            let dst = gpu.malloc(1024 * 4);
            let t0 = sim_core::now();
            stencil_step::<f32>(&gpu, &s, src, dst, 30, 30).wait();
            assert!(sim_core::now() > t0);
        });
    }
}
