//! # stencil2d — the SHOC Stencil2D application benchmark
//!
//! A from-scratch reimplementation of the benchmark the paper evaluates
//! (§V-B): a two-dimensional nine-point stencil over a distributed matrix
//! with halo exchange, in two variants:
//!
//! * **Stencil2D-Def** — the original SHOC pattern: halos staged through
//!   host memory with blocking `cudaMemcpy`/`cudaMemcpy2D` and exchanged
//!   with host MPI;
//! * **Stencil2D-MV2-GPU-NC** — device buffers passed directly to MPI with
//!   a column vector datatype; all staging happens inside the library.
//!
//! Both variants compute for real on simulated device memory and produce
//! bitwise-identical matrices, which the tests verify against a serial CPU
//! reference. The crate also measures what the paper's Table I and
//! Figure 6 report: per-iteration call mixes, lines of code (extracted
//! from this crate's own source), and per-direction communication
//! breakdowns.

#![warn(missing_docs)]

mod driver;
pub mod kernel;
mod loc;
mod params;
mod rank;
mod real;
mod reference;

pub use driver::{
    run_stencil, run_stencil_campaign, run_stencil_reports, run_stencil_topo, run_stencil_traced,
    RankReport, RunOptions, StencilOutcome,
};
pub use loc::{lines_of_code, listing};
pub use params::{initial_value, Dir, StencilParams, Variant};
pub use rank::{Breakdown, DirTimes, StencilRank};
pub use real::Real;
pub use reference::reference_run;

#[cfg(test)]
mod tests {
    use super::*;
    use hostmem::Scalar;

    fn small(py: usize, px: usize, rows: usize, cols: usize, iters: usize) -> StencilParams {
        StencilParams {
            py,
            px,
            rows,
            cols,
            iters,
        }
    }

    fn interiors_equal(a: &StencilOutcome, b: &StencilOutcome) {
        for (ra, rb) in a.ranks.iter().zip(&b.ranks) {
            assert_eq!(
                ra.interior.as_ref().unwrap(),
                rb.interior.as_ref().unwrap(),
                "rank {} interiors differ",
                ra.rank
            );
        }
    }

    fn opts_collect() -> RunOptions {
        RunOptions {
            timed_breakdown: false,
            collect_interiors: true,
        }
    }

    #[test]
    fn def_and_mv2_agree_bitwise_f32() {
        let p = small(2, 2, 12, 10, 3);
        let d = run_stencil::<f32>(p, Variant::Def, opts_collect());
        let m = run_stencil::<f32>(p, Variant::Mv2, opts_collect());
        interiors_equal(&d, &m);
        assert_eq!(d.checksum(), m.checksum());
    }

    #[test]
    fn def_and_mv2_agree_bitwise_f64() {
        let p = small(2, 2, 9, 14, 3);
        let d = run_stencil::<f64>(p, Variant::Def, opts_collect());
        let m = run_stencil::<f64>(p, Variant::Mv2, opts_collect());
        interiors_equal(&d, &m);
    }

    fn check_against_reference<T: Real>(p: StencilParams, variant: Variant) {
        check_against_reference_ppn::<T>(p, variant, 1);
    }

    fn check_against_reference_ppn<T: Real>(p: StencilParams, variant: Variant, ppn: usize) {
        use sim_core::SanitizerMode;
        let out = run_stencil_topo::<T>(
            p,
            variant,
            opts_collect(),
            SanitizerMode::Off,
            None,
            None,
            ppn,
        )
        .0;
        let global = reference_run::<T>(p.py * p.rows, p.px * p.cols, p.iters);
        let gcols = p.px * p.cols;
        for r in &out.ranks {
            let (pr, pc) = p.coords(r.rank);
            let bytes = r.interior.as_ref().unwrap();
            let vals: Vec<T> = bytes.chunks_exact(T::SIZE).map(T::read_le).collect();
            for lr in 0..p.rows {
                for lc in 0..p.cols {
                    let gi = pr * p.rows + lr;
                    let gj = pc * p.cols + lc;
                    assert_eq!(
                        vals[lr * p.cols + lc],
                        global[gi * gcols + gj],
                        "rank {} local ({lr},{lc}) vs global ({gi},{gj})",
                        r.rank
                    );
                }
            }
        }
    }

    #[test]
    fn distributed_def_matches_serial_reference() {
        check_against_reference::<f64>(small(1, 2, 8, 6, 4), Variant::Def);
    }

    #[test]
    fn distributed_mv2_matches_serial_reference() {
        check_against_reference::<f64>(small(2, 2, 6, 5, 4), Variant::Mv2);
        check_against_reference::<f32>(small(2, 1, 5, 9, 3), Variant::Mv2);
    }

    #[test]
    fn mv2_is_faster_on_column_heavy_exchange() {
        // A 1x2 grid with tall, thin matrices: the halo is one long
        // non-contiguous column — the paper's best case.
        let p = small(1, 2, 4096, 64, 2);
        let d = run_stencil::<f32>(p, Variant::Def, RunOptions::default());
        let m = run_stencil::<f32>(p, Variant::Mv2, RunOptions::default());
        assert!(m.wall < d.wall, "MV2 {} must beat Def {}", m.wall, d.wall);
    }

    #[test]
    fn loop_call_mix_matches_table1() {
        // An interior rank (3x3 grid, rank 4) has all four neighbors: the
        // per-iteration call mix must match Table I.
        let p = small(3, 3, 8, 8, 3);
        let d = run_stencil::<f32>(p, Variant::Def, RunOptions::default());
        let calls = &d.ranks[4].loop_calls;
        assert_eq!(calls.get("MPI_Irecv"), Some(&4));
        assert_eq!(calls.get("MPI_Send"), Some(&4));
        assert_eq!(calls.get("MPI_Waitall"), Some(&2));
        assert_eq!(calls.get("cudaMemcpy"), Some(&4));
        assert_eq!(calls.get("cudaMemcpy2D"), Some(&4));

        let m = run_stencil::<f32>(p, Variant::Mv2, RunOptions::default());
        let calls = &m.ranks[4].loop_calls;
        assert_eq!(calls.get("MPI_Irecv"), Some(&4));
        assert_eq!(calls.get("MPI_Send"), Some(&4));
        assert_eq!(calls.get("MPI_Waitall"), Some(&2));
        assert_eq!(calls.get("cudaMemcpy"), None);
        assert_eq!(calls.get("cudaMemcpy2D"), None);
    }

    #[test]
    fn breakdown_shape_at_rank1_of_2x4() {
        // Figure 6: rank 1 of a 2x4 grid — south, west, east neighbors; the
        // strided east/west staging dominates the Def communication time.
        let p = small(2, 4, 128, 128, 2);
        let d = run_stencil::<f32>(
            p,
            Variant::Def,
            RunOptions {
                timed_breakdown: true,
                collect_interiors: false,
            },
        );
        let bd = d.ranks[1].breakdown;
        let north = bd.dir(Dir::North);
        assert_eq!(north.mpi + north.cuda, sim_core::SimDur::ZERO);
        let ew_cuda = bd.dir(Dir::East).cuda + bd.dir(Dir::West).cuda;
        let s_cuda = bd.dir(Dir::South).cuda;
        assert!(
            ew_cuda > s_cuda * 4,
            "strided east/west staging must dominate: e/w {ew_cuda} vs south {s_cuda}"
        );
    }

    #[test]
    fn sixteen_ranks_match_reference_at_every_ppn() {
        // 4x4 = 16 ranks; px=4 means east/west neighbours are one rank
        // apart, so blocked ppn places the strided column exchanges on
        // shared nodes. Every placement computes the same field.
        let p = small(4, 4, 5, 6, 2);
        for ppn in [1, 2, 4] {
            check_against_reference_ppn::<f64>(p, Variant::Mv2, ppn);
        }
        check_against_reference_ppn::<f32>(p, Variant::Def, 4);
    }

    #[test]
    fn deterministic_runs() {
        let p = small(2, 2, 16, 16, 2);
        let a = run_stencil::<f32>(p, Variant::Mv2, RunOptions::default());
        let b = run_stencil::<f32>(p, Variant::Mv2, RunOptions::default());
        assert_eq!(a.wall, b.wall);
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn single_rank_needs_no_communication() {
        let p = small(1, 1, 10, 10, 3);
        let out = run_stencil::<f64>(p, Variant::Mv2, opts_collect());
        let global = reference_run::<f64>(10, 10, 3);
        let vals: Vec<f64> = out.ranks[0]
            .interior
            .as_ref()
            .unwrap()
            .chunks_exact(8)
            .map(f64::read_le)
            .collect();
        assert_eq!(vals, global);
        assert_eq!(out.ranks[0].loop_calls.get("MPI_Send"), None);
    }
}
