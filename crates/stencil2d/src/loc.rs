//! Code-complexity measurement for Table I: extract and count the halo
//! exchange implementations straight from this crate's source, so the
//! numbers can never drift from the code.

use crate::params::Variant;

const RANK_SRC: &str = include_str!("rank.rs");

fn markers(variant: Variant) -> (&'static str, &'static str) {
    match variant {
        Variant::Def => ("// BEGIN:exchange_def", "// END:exchange_def"),
        Variant::Mv2 => ("// BEGIN:exchange_mv2", "// END:exchange_mv2"),
    }
}

/// The exchange implementation's source text.
pub fn listing(variant: Variant) -> &'static str {
    let (b, e) = markers(variant);
    let start = RANK_SRC.find(b).expect("begin marker") + b.len();
    let end = RANK_SRC.find(e).expect("end marker");
    &RANK_SRC[start..end]
}

/// Non-empty, non-comment source lines of the exchange implementation.
pub fn lines_of_code(variant: Variant) -> usize {
    listing(variant)
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("///"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_has_more_code_than_mv2() {
        let def = lines_of_code(Variant::Def);
        let mv2 = lines_of_code(Variant::Mv2);
        assert!(
            def > mv2,
            "MV2-GPU-NC must simplify the exchange: def {def} vs mv2 {mv2}"
        );
        // The paper reports a 36% reduction; ours should be of similar
        // magnitude (at least 20%).
        let reduction = 1.0 - mv2 as f64 / def as f64;
        assert!(reduction > 0.2, "reduction only {:.0}%", reduction * 100.0);
    }

    #[test]
    fn listings_mention_the_right_apis() {
        assert!(listing(Variant::Def).contains("memcpy_2d"));
        assert!(!listing(Variant::Mv2).contains("memcpy"));
        assert!(listing(Variant::Mv2).contains("col_dt"));
    }
}
