//! Benchmark parameters: process grids, neighbor topology, initial data.

/// Halo direction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Dir {
    /// Towards row 0 of the process grid.
    North = 0,
    /// Towards the last row.
    South = 1,
    /// Towards column 0.
    West = 2,
    /// Towards the last column.
    East = 3,
}

impl Dir {
    /// All four directions.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::South, Dir::West, Dir::East];

    /// Lower-case name as used in Figure 6 ("south", "west", "east", ...).
    pub fn name(&self) -> &'static str {
        match self {
            Dir::North => "north",
            Dir::South => "south",
            Dir::West => "west",
            Dir::East => "east",
        }
    }
}

/// Which Stencil2D implementation to run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Variant {
    /// Original SHOC pattern: host staging + host MPI ("Stencil2D-Def").
    Def,
    /// MPI on device buffers ("Stencil2D-MV2-GPU-NC").
    Mv2,
}

impl Variant {
    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Def => "Stencil2D-Def",
            Variant::Mv2 => "Stencil2D-MV2-GPU-NC",
        }
    }
}

/// One benchmark configuration: a `py x px` process grid, each rank owning
/// a `rows x cols` interior, iterated `iters` times.
#[derive(Copy, Clone, Debug)]
pub struct StencilParams {
    /// Process-grid rows.
    pub py: usize,
    /// Process-grid columns.
    pub px: usize,
    /// Interior rows per rank.
    pub rows: usize,
    /// Interior columns per rank.
    pub cols: usize,
    /// Stencil iterations.
    pub iters: usize,
}

impl StencilParams {
    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.py * self.px
    }

    /// Process-grid coordinates of `rank` (row, col); ranks are row-major.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank / self.px, rank % self.px)
    }

    /// The neighboring rank in direction `d`, if any.
    pub fn neighbor(&self, rank: usize, d: Dir) -> Option<usize> {
        let (r, c) = self.coords(rank);
        match d {
            Dir::North => (r > 0).then(|| rank - self.px),
            Dir::South => (r + 1 < self.py).then(|| rank + self.px),
            Dir::West => (c > 0).then(|| rank - 1),
            Dir::East => (c + 1 < self.px).then(|| rank + 1),
        }
    }

    /// The paper's four Table II/III configurations, scaled down by
    /// `scale` in each dimension (scale = 1 reproduces the paper's sizes).
    pub fn paper_grids(scale: usize) -> Vec<StencilParams> {
        let s = scale.max(1);
        vec![
            StencilParams {
                py: 1,
                px: 8,
                rows: (64 << 10) / s,
                cols: (1 << 10) / s,
                iters: 5,
            },
            StencilParams {
                py: 8,
                px: 1,
                rows: (1 << 10) / s,
                cols: (64 << 10) / s,
                iters: 5,
            },
            StencilParams {
                py: 2,
                px: 4,
                rows: (8 << 10) / s,
                cols: (8 << 10) / s,
                iters: 5,
            },
            StencilParams {
                py: 4,
                px: 2,
                rows: (8 << 10) / s,
                cols: (8 << 10) / s,
                iters: 5,
            },
        ]
    }

    /// Short label like "2x4 (8192x8192/proc)".
    pub fn label(&self) -> String {
        format!("{}x{} ({}x{}/proc)", self.py, self.px, self.rows, self.cols)
    }
}

/// Deterministic initial value of global interior cell `(i, j)`.
pub fn initial_value(i: usize, j: usize) -> f64 {
    (((i.wrapping_mul(131) ^ j.wrapping_mul(37)) % 1009) as f64) / 16.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_are_row_major() {
        let p = StencilParams {
            py: 2,
            px: 4,
            rows: 8,
            cols: 8,
            iters: 1,
        };
        assert_eq!(p.coords(0), (0, 0));
        assert_eq!(p.coords(3), (0, 3));
        assert_eq!(p.coords(4), (1, 0));
        assert_eq!(p.nranks(), 8);
    }

    #[test]
    fn rank1_of_2x4_has_south_west_east_only() {
        // The paper's Figure 6 is measured at rank 1 of the 2x4 grid, which
        // has exactly south, west and east neighbors.
        let p = StencilParams {
            py: 2,
            px: 4,
            rows: 8,
            cols: 8,
            iters: 1,
        };
        assert_eq!(p.neighbor(1, Dir::North), None);
        assert_eq!(p.neighbor(1, Dir::South), Some(5));
        assert_eq!(p.neighbor(1, Dir::West), Some(0));
        assert_eq!(p.neighbor(1, Dir::East), Some(2));
    }

    #[test]
    fn edge_ranks_have_no_outside_neighbors() {
        let p = StencilParams {
            py: 8,
            px: 1,
            rows: 4,
            cols: 4,
            iters: 1,
        };
        assert_eq!(p.neighbor(0, Dir::North), None);
        assert_eq!(p.neighbor(0, Dir::West), None);
        assert_eq!(p.neighbor(0, Dir::East), None);
        assert_eq!(p.neighbor(0, Dir::South), Some(1));
        assert_eq!(p.neighbor(7, Dir::South), None);
    }

    #[test]
    fn paper_grids_have_eight_ranks() {
        for p in StencilParams::paper_grids(1) {
            assert_eq!(p.nranks(), 8);
        }
        // Scaling shrinks matrices but keeps grids.
        for p in StencilParams::paper_grids(8) {
            assert_eq!(p.nranks(), 8);
            assert!(p.rows >= 128);
        }
    }

    #[test]
    fn initial_value_is_deterministic() {
        assert_eq!(initial_value(3, 5), initial_value(3, 5));
        assert_ne!(initial_value(3, 5), initial_value(5, 3));
    }
}
