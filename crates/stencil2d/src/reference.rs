//! Serial CPU reference implementation: the whole global matrix on one
//! core, no MPI, no GPU. Ground truth for the distributed variants.

use crate::kernel::{W_CARDINAL, W_CENTER, W_DIAGONAL};
use crate::params::initial_value;
use crate::real::Real;

/// Run `iters` stencil steps on a `rows x cols` global interior with a
/// zero halo ring. Returns the interior, row-major, in storage precision.
pub fn reference_run<T: Real>(rows: usize, cols: usize, iters: usize) -> Vec<T> {
    let (h, w) = (rows + 2, cols + 2);
    let mut cur: Vec<T> = vec![T::from_f64(0.0); h * w];
    for i in 0..rows {
        for j in 0..cols {
            cur[(i + 1) * w + (j + 1)] = T::from_f64(initial_value(i, j));
        }
    }
    let mut next = cur.clone();
    for _ in 0..iters {
        for r in 1..=rows {
            for c in 1..=cols {
                let at = |rr: usize, cc: usize| cur[rr * w + cc].to_f64();
                let card = at(r - 1, c) + at(r + 1, c) + at(r, c - 1) + at(r, c + 1);
                let diag =
                    at(r - 1, c - 1) + at(r - 1, c + 1) + at(r + 1, c - 1) + at(r + 1, c + 1);
                next[r * w + c] =
                    T::from_f64(W_CENTER * at(r, c) + W_CARDINAL * card + W_DIAGONAL * diag);
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    let mut out = Vec::with_capacity(rows * cols);
    for r in 1..=rows {
        out.extend_from_slice(&cur[r * w + 1..r * w + 1 + cols]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_iters_returns_initial_values() {
        let v = reference_run::<f64>(3, 4, 0);
        assert_eq!(v.len(), 12);
        assert_eq!(v[0], initial_value(0, 0));
        assert_eq!(v[11], initial_value(2, 3));
    }

    #[test]
    fn one_iter_matches_hand_computation() {
        let v = reference_run::<f64>(1, 1, 1);
        // Single interior cell with all-zero halo: only the center term.
        assert_eq!(v[0], W_CENTER * initial_value(0, 0));
    }

    #[test]
    fn values_decay_toward_zero_boundary() {
        let a = reference_run::<f64>(8, 8, 1);
        let b = reference_run::<f64>(8, 8, 10);
        let sum = |v: &[f64]| v.iter().map(|x| x.abs()).sum::<f64>();
        assert!(sum(&b) < sum(&a), "zero boundary drains the field");
    }

    #[test]
    fn f32_and_f64_agree_roughly() {
        let a = reference_run::<f32>(6, 6, 3);
        let b = reference_run::<f64>(6, 6, 3);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.to_f64() - y).abs() < 1e-3);
        }
    }
}
