//! Per-rank Stencil2D state and the two halo-exchange implementations.
//!
//! `exchange_def` reproduces the original SHOC communication pattern
//! (Figure 4(a)-style): stage halos through host memory with blocking
//! `cudaMemcpy`/`cudaMemcpy2D`, then host MPI. `exchange_mv2` is the
//! MV2-GPU-NC version (Figure 4(c)): MPI calls directly on device memory
//! with derived datatypes.
//!
//! The `// BEGIN:`/`// END:` markers delimit the code the Table I
//! line-count comparison measures.

use gpu_sim::{Copy2d, DevPtr, Loc, Stream};
use hostmem::HostBuf;
use mpi_sim::{Datatype, Request};
use mv2_gpu_nc::GpuRankEnv;
use sim_core::SimDur;

use crate::kernel::stencil_step;
use crate::params::{Dir, StencilParams, Variant};
use crate::real::Real;

const TAG_UP: u32 = 100; // travels from south rank to north rank
const TAG_DOWN: u32 = 101;
const TAG_LEFT: u32 = 102; // travels from east rank to west rank
const TAG_RIGHT: u32 = 103;

/// Per-direction accumulated communication time.
#[derive(Clone, Copy, Default, Debug)]
pub struct DirTimes {
    /// Time spent in MPI calls for this direction.
    pub mpi: SimDur,
    /// Time spent in CUDA staging calls for this direction.
    pub cuda: SimDur,
}

/// Communication breakdown per direction (Figure 6).
#[derive(Clone, Copy, Default, Debug)]
pub struct Breakdown {
    dirs: [DirTimes; 4],
}

impl Breakdown {
    /// Times for one direction.
    pub fn dir(&self, d: Dir) -> DirTimes {
        self.dirs[d as usize]
    }

    fn add_mpi(&mut self, d: Dir, dt: SimDur) {
        self.dirs[d as usize].mpi += dt;
    }

    fn add_cuda(&mut self, d: Dir, dt: SimDur) {
        self.dirs[d as usize].cuda += dt;
    }

    /// Total communication time across directions.
    pub fn total(&self) -> SimDur {
        self.dirs.iter().map(|d| d.mpi + d.cuda).sum()
    }
}

/// One rank's Stencil2D state.
pub struct StencilRank<'a, T: Real> {
    env: &'a GpuRankEnv,
    p: StencilParams,
    /// Double buffers, (rows+2) x (cols+2) elements each.
    cur: DevPtr,
    next: DevPtr,
    h: usize,
    w: usize,
    stream: Stream,
    neighbors: [Option<usize>; 4],
    elem: Datatype,
    col_dt: Datatype,
    // Host staging for the Def variant (one buffer per direction/way).
    stage_out: [HostBuf; 4],
    stage_in: [HostBuf; 4],
    /// Per-direction communication times (filled when `timed` is set).
    pub breakdown: Breakdown,
    /// Attribute per-direction wait times (costs per-request waits instead
    /// of one waitall, so only enabled for the Figure 6 harness).
    pub timed: bool,
    _t: std::marker::PhantomData<T>,
}

impl<'a, T: Real> StencilRank<'a, T> {
    /// Allocate and initialize this rank's matrices from the deterministic
    /// global pattern.
    pub fn new(env: &'a GpuRankEnv, p: StencilParams) -> Self {
        let (h, w) = (p.rows + 2, p.cols + 2);
        let bytes = h * w * T::SIZE;
        let cur = env.gpu.malloc(bytes);
        let next = env.gpu.malloc(bytes);
        let rank = env.comm.rank();
        let (my_r, my_c) = p.coords(rank);
        // Interior cell (r, c) holds a function of its *global* coordinates
        // so decompositions are comparable; halos start at zero.
        let mut init = vec![0u8; h * w * T::SIZE];
        for r in 1..=p.rows {
            for c in 1..=p.cols {
                let gi = my_r * p.rows + (r - 1);
                let gj = my_c * p.cols + (c - 1);
                let v = T::from_f64(crate::params::initial_value(gi, gj));
                v.write_le(&mut init[(r * w + c) * T::SIZE..(r * w + c + 1) * T::SIZE]);
            }
        }
        env.gpu.write_bytes(cur, &init);
        env.gpu.write_bytes(next, &init);
        let elem = if T::SIZE == 4 {
            Datatype::float()
        } else {
            Datatype::double()
        };
        elem.commit();
        // A full-height column: `h` single elements, `pitch` bytes apart.
        let col_dt = Datatype::hvector(h, 1, (w * T::SIZE) as isize, &elem);
        col_dt.commit();
        let row_bytes = w * T::SIZE;
        let col_bytes = h * T::SIZE;
        let mk = |n| HostBuf::alloc(n);
        StencilRank {
            env,
            p,
            cur,
            next,
            h,
            w,
            stream: env.gpu.create_stream(),
            neighbors: [
                p.neighbor(rank, Dir::North),
                p.neighbor(rank, Dir::South),
                p.neighbor(rank, Dir::West),
                p.neighbor(rank, Dir::East),
            ],
            elem,
            col_dt,
            stage_out: [mk(row_bytes), mk(row_bytes), mk(col_bytes), mk(col_bytes)],
            stage_in: [mk(row_bytes), mk(row_bytes), mk(col_bytes), mk(col_bytes)],
            breakdown: Breakdown::default(),
            timed: false,
            _t: std::marker::PhantomData,
        }
    }

    fn neighbor(&self, d: Dir) -> Option<usize> {
        self.neighbors[d as usize]
    }

    /// Device pointer to the start of row `r`.
    fn row(&self, r: usize) -> DevPtr {
        self.cur.add(r * self.w * T::SIZE)
    }

    /// Device pointer to the top of column `c`.
    fn col(&self, c: usize) -> DevPtr {
        self.cur.add(c * T::SIZE)
    }

    fn pitch(&self) -> usize {
        self.w * T::SIZE
    }

    fn timed_cuda(&mut self, d: Dir, f: impl FnOnce(&Self)) {
        let t0 = sim_core::now();
        f(self);
        let dt = sim_core::now() - t0;
        self.breakdown.add_cuda(d, dt);
    }

    fn timed_mpi(&mut self, d: Dir, f: impl FnOnce(&Self)) {
        let t0 = sim_core::now();
        f(self);
        let dt = sim_core::now() - t0;
        self.breakdown.add_mpi(d, dt);
    }

    fn finish_recvs(&mut self, reqs: Vec<(Dir, Request)>) {
        if self.timed {
            for (d, req) in reqs {
                let t0 = sim_core::now();
                self.env.comm.wait(req);
                let dt = sim_core::now() - t0;
                self.breakdown.add_mpi(d, dt);
            }
        } else {
            self.env
                .comm
                .waitall(reqs.into_iter().map(|(_, r)| r).collect());
        }
    }

    // BEGIN:exchange_def
    /// Original SHOC-style halo exchange: stage through host memory with
    /// blocking CUDA copies, communicate with host MPI.
    pub fn exchange_def(&mut self) {
        let comm = self.env.comm.clone();
        let gpu = self.env.gpu.clone();
        let (h, w, pitch) = (self.h, self.w, self.pitch());
        // --- phase 1: north/south halo rows (contiguous) ---
        let mut reqs: Vec<(Dir, Request)> = Vec::new();
        if let Some(n) = self.neighbor(Dir::North) {
            let buf = self.stage_in[0].base();
            self.timed_mpi(Dir::North, |s| {
                reqs.push((Dir::North, comm.irecv(buf.clone(), w, &s.elem, n, TAG_DOWN)));
            });
        }
        if let Some(sn) = self.neighbor(Dir::South) {
            let buf = self.stage_in[1].base();
            self.timed_mpi(Dir::South, |s| {
                reqs.push((Dir::South, comm.irecv(buf.clone(), w, &s.elem, sn, TAG_UP)));
            });
        }
        if let Some(n) = self.neighbor(Dir::North) {
            self.timed_cuda(Dir::North, |s| {
                gpu.memcpy(s.stage_out[0].base(), s.row(1), w * T::SIZE);
            });
            let buf = self.stage_out[0].base();
            self.timed_mpi(Dir::North, |s| {
                comm.send(buf.clone(), w, &s.elem, n, TAG_UP)
            });
        }
        if let Some(sn) = self.neighbor(Dir::South) {
            self.timed_cuda(Dir::South, |s| {
                gpu.memcpy(s.stage_out[1].base(), s.row(s.p.rows), w * T::SIZE);
            });
            let buf = self.stage_out[1].base();
            self.timed_mpi(Dir::South, |s| {
                comm.send(buf.clone(), w, &s.elem, sn, TAG_DOWN)
            });
        }
        self.finish_recvs(reqs);
        if self.neighbor(Dir::North).is_some() {
            self.timed_cuda(Dir::North, |s| {
                gpu.memcpy(s.row(0), s.stage_in[0].base(), w * T::SIZE);
            });
        }
        if self.neighbor(Dir::South).is_some() {
            self.timed_cuda(Dir::South, |s| {
                gpu.memcpy(s.row(h - 1), s.stage_in[1].base(), w * T::SIZE);
            });
        }
        // --- phase 2: west/east halo columns (strided!) ---
        let mut reqs: Vec<(Dir, Request)> = Vec::new();
        if let Some(wn) = self.neighbor(Dir::West) {
            let buf = self.stage_in[2].base();
            self.timed_mpi(Dir::West, |s| {
                reqs.push((
                    Dir::West,
                    comm.irecv(buf.clone(), h, &s.elem, wn, TAG_RIGHT),
                ));
            });
        }
        if let Some(e) = self.neighbor(Dir::East) {
            let buf = self.stage_in[3].base();
            self.timed_mpi(Dir::East, |s| {
                reqs.push((Dir::East, comm.irecv(buf.clone(), h, &s.elem, e, TAG_LEFT)));
            });
        }
        if let Some(wn) = self.neighbor(Dir::West) {
            self.timed_cuda(Dir::West, |s| {
                gpu.memcpy_2d(Copy2d {
                    dst: Loc::Host(s.stage_out[2].base()),
                    dpitch: T::SIZE,
                    src: Loc::Device(s.col(1)),
                    spitch: pitch,
                    width: T::SIZE,
                    height: h,
                });
            });
            let buf = self.stage_out[2].base();
            self.timed_mpi(Dir::West, |s| {
                comm.send(buf.clone(), h, &s.elem, wn, TAG_LEFT)
            });
        }
        if let Some(e) = self.neighbor(Dir::East) {
            self.timed_cuda(Dir::East, |s| {
                gpu.memcpy_2d(Copy2d {
                    dst: Loc::Host(s.stage_out[3].base()),
                    dpitch: T::SIZE,
                    src: Loc::Device(s.col(s.p.cols)),
                    spitch: pitch,
                    width: T::SIZE,
                    height: h,
                });
            });
            let buf = self.stage_out[3].base();
            self.timed_mpi(Dir::East, |s| {
                comm.send(buf.clone(), h, &s.elem, e, TAG_RIGHT)
            });
        }
        self.finish_recvs(reqs);
        if self.neighbor(Dir::West).is_some() {
            self.timed_cuda(Dir::West, |s| {
                gpu.memcpy_2d(Copy2d {
                    dst: Loc::Device(s.col(0)),
                    dpitch: pitch,
                    src: Loc::Host(s.stage_in[2].base()),
                    spitch: T::SIZE,
                    width: T::SIZE,
                    height: h,
                });
            });
        }
        if self.neighbor(Dir::East).is_some() {
            self.timed_cuda(Dir::East, |s| {
                gpu.memcpy_2d(Copy2d {
                    dst: Loc::Device(s.col(s.w - 1)),
                    dpitch: pitch,
                    src: Loc::Host(s.stage_in[3].base()),
                    spitch: T::SIZE,
                    width: T::SIZE,
                    height: h,
                });
            });
        }
    }
    // END:exchange_def

    // BEGIN:exchange_mv2
    /// MV2-GPU-NC halo exchange: MPI straight on device memory; the column
    /// datatype replaces all staging code.
    pub fn exchange_mv2(&mut self) {
        let comm = self.env.comm.clone();
        let (h, w) = (self.h, self.w);
        // --- phase 1: north/south halo rows ---
        let mut reqs: Vec<(Dir, Request)> = Vec::new();
        if let Some(n) = self.neighbor(Dir::North) {
            self.timed_mpi(Dir::North, |s| {
                reqs.push((Dir::North, comm.irecv(s.row(0), w, &s.elem, n, TAG_DOWN)));
            });
        }
        if let Some(sn) = self.neighbor(Dir::South) {
            self.timed_mpi(Dir::South, |s| {
                reqs.push((Dir::South, comm.irecv(s.row(h - 1), w, &s.elem, sn, TAG_UP)));
            });
        }
        if let Some(n) = self.neighbor(Dir::North) {
            self.timed_mpi(Dir::North, |s| comm.send(s.row(1), w, &s.elem, n, TAG_UP));
        }
        if let Some(sn) = self.neighbor(Dir::South) {
            self.timed_mpi(Dir::South, |s| {
                comm.send(s.row(s.p.rows), w, &s.elem, sn, TAG_DOWN)
            });
        }
        self.finish_recvs(reqs);
        // --- phase 2: west/east halo columns, via the vector datatype ---
        let mut reqs: Vec<(Dir, Request)> = Vec::new();
        if let Some(wn) = self.neighbor(Dir::West) {
            self.timed_mpi(Dir::West, |s| {
                reqs.push((Dir::West, comm.irecv(s.col(0), 1, &s.col_dt, wn, TAG_RIGHT)));
            });
        }
        if let Some(e) = self.neighbor(Dir::East) {
            self.timed_mpi(Dir::East, |s| {
                reqs.push((
                    Dir::East,
                    comm.irecv(s.col(s.w - 1), 1, &s.col_dt, e, TAG_LEFT),
                ));
            });
        }
        if let Some(wn) = self.neighbor(Dir::West) {
            self.timed_mpi(Dir::West, |s| {
                comm.send(s.col(1), 1, &s.col_dt, wn, TAG_LEFT)
            });
        }
        if let Some(e) = self.neighbor(Dir::East) {
            self.timed_mpi(Dir::East, |s| {
                comm.send(s.col(s.p.cols), 1, &s.col_dt, e, TAG_RIGHT)
            });
        }
        self.finish_recvs(reqs);
    }
    // END:exchange_mv2

    /// One full iteration: halo exchange, stencil kernel, buffer swap.
    /// Exchanging first makes the distributed computation equivalent to the
    /// serial reference (the kernel always sees its neighbors' latest
    /// boundary values).
    pub fn step(&mut self, variant: Variant) {
        match variant {
            Variant::Def => self.exchange_def(),
            Variant::Mv2 => self.exchange_mv2(),
        }
        stencil_step::<T>(
            &self.env.gpu,
            &self.stream,
            self.cur,
            self.next,
            self.p.rows,
            self.p.cols,
        )
        .wait();
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// Interior values as raw little-endian bytes (row major, rows x cols).
    pub fn interior_bytes(&self) -> Vec<u8> {
        let all = self.env.gpu.read_bytes(self.cur, self.h * self.w * T::SIZE);
        let mut out = Vec::with_capacity(self.p.rows * self.p.cols * T::SIZE);
        for r in 1..=self.p.rows {
            let start = (r * self.w + 1) * T::SIZE;
            out.extend_from_slice(&all[start..start + self.p.cols * T::SIZE]);
        }
        out
    }

    /// Sum of the interior in f64 (cheap cross-variant checksum).
    pub fn checksum(&self) -> f64 {
        self.interior_bytes()
            .chunks_exact(T::SIZE)
            .map(|c| T::read_le(c).to_f64())
            .sum()
    }

    /// Free device buffers.
    pub fn free(self) {
        self.env.gpu.free(self.cur);
        self.env.gpu.free(self.next);
    }
}
