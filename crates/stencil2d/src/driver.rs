//! Multi-rank driver: run one Stencil2D configuration on the simulated GPU
//! cluster and collect timing, breakdowns, checksums and call counts.

use std::collections::BTreeMap;
use std::sync::Arc;

use mv2_gpu_nc::{FaultSpec, GpuCluster, Recorder};
use sim_core::lock::Mutex;
use sim_core::{Report, SanitizerMode, SimDur};

use crate::params::{StencilParams, Variant};
use crate::rank::{Breakdown, StencilRank};
use crate::real::Real;

/// What one rank reports after a run.
#[derive(Clone, Debug)]
pub struct RankReport {
    /// The rank.
    pub rank: usize,
    /// Time inside the timed region (barrier to barrier).
    pub elapsed: SimDur,
    /// Per-direction communication breakdown (filled when requested).
    pub breakdown: Breakdown,
    /// Interior checksum.
    pub checksum: f64,
    /// Interior bytes (only when requested; large!).
    pub interior: Option<Vec<u8>>,
    /// CUDA+MPI calls made by one steady-state loop iteration.
    pub loop_calls: BTreeMap<String, u64>,
}

/// Aggregated run result.
#[derive(Clone, Debug)]
pub struct StencilOutcome {
    /// Slowest rank's timed region (the benchmark's reported time).
    pub wall: SimDur,
    /// Every rank's report, ordered by rank.
    pub ranks: Vec<RankReport>,
}

impl StencilOutcome {
    /// Sum of rank checksums (global checksum).
    pub fn checksum(&self) -> f64 {
        self.ranks.iter().map(|r| r.checksum).sum()
    }
}

/// Run options.
#[derive(Copy, Clone, Default, Debug)]
pub struct RunOptions {
    /// Attribute per-direction MPI wait times (Figure 6 mode).
    pub timed_breakdown: bool,
    /// Return every rank's interior bytes (tests only).
    pub collect_interiors: bool,
}

/// Run one configuration end to end.
pub fn run_stencil<T: Real>(
    p: StencilParams,
    variant: Variant,
    opts: RunOptions,
) -> StencilOutcome {
    run_stencil_reports::<T>(p, variant, opts, SanitizerMode::Off).0
}

/// Like [`run_stencil`], but runs under the given sanitizer mode and returns
/// the reports it collected (empty when the sanitizer is off).
pub fn run_stencil_reports<T: Real>(
    p: StencilParams,
    variant: Variant,
    opts: RunOptions,
    sanitizer: SanitizerMode,
) -> (StencilOutcome, Vec<Report>) {
    run_stencil_campaign::<T>(p, variant, opts, sanitizer, None)
}

/// Like [`run_stencil_reports`], optionally on a fault-injecting fabric
/// (fault campaigns: the stencil must produce byte-identical fields while
/// the MPI layer drops, delays and retries underneath it).
pub fn run_stencil_campaign<T: Real>(
    p: StencilParams,
    variant: Variant,
    opts: RunOptions,
    sanitizer: SanitizerMode,
    faults: Option<FaultSpec>,
) -> (StencilOutcome, Vec<Report>) {
    run_stencil_traced::<T>(p, variant, opts, sanitizer, faults, None)
}

/// Like [`run_stencil_campaign`], recording spans and counters into the
/// given [`Recorder`] (for `trace_report` and Perfetto export).
pub fn run_stencil_traced<T: Real>(
    p: StencilParams,
    variant: Variant,
    opts: RunOptions,
    sanitizer: SanitizerMode,
    faults: Option<FaultSpec>,
    recorder: Option<Recorder>,
) -> (StencilOutcome, Vec<Report>) {
    run_stencil_topo::<T>(p, variant, opts, sanitizer, faults, recorder, 1)
}

/// Like [`run_stencil_traced`], placing `ppn` consecutive ranks on each
/// node (blocked mapping). Co-located ranks share the node's GPU and HCA
/// and exchange halos over the intra-node shared-memory channel.
#[allow(clippy::too_many_arguments)]
pub fn run_stencil_topo<T: Real>(
    p: StencilParams,
    variant: Variant,
    opts: RunOptions,
    sanitizer: SanitizerMode,
    faults: Option<FaultSpec>,
    recorder: Option<Recorder>,
    ppn: usize,
) -> (StencilOutcome, Vec<Report>) {
    let reports: Arc<Mutex<Vec<RankReport>>> = Arc::new(Mutex::new(Vec::new()));
    let collector = Arc::clone(&reports);
    let mut cluster = GpuCluster::new(p.nranks()).sanitizer(sanitizer).ppn(ppn);
    if let Some(spec) = faults {
        cluster = cluster.faults(spec);
    }
    if let Some(rec) = recorder {
        cluster = cluster.recorder(rec);
    }
    let (_, san) = cluster.run_with_reports(move |env| {
        let mut rk = StencilRank::<T>::new(env, p);
        rk.timed = opts.timed_breakdown;
        env.comm.barrier();
        let t0 = sim_core::now();
        // Measure the call mix of one steady-state iteration (the second,
        // to skip any warm-up effects like tbuf pool population).
        let probe_iter = 1.min(p.iters.saturating_sub(1));
        let mut base = None;
        let mut loop_calls = BTreeMap::new();
        for it in 0..p.iters {
            if it == probe_iter {
                let mut snap = env.gpu.counters().snapshot();
                snap.extend(env.comm.counters().snapshot());
                base = Some(snap);
            }
            rk.step(variant);
            if it == probe_iter {
                let base = base.take().unwrap();
                let mut now = env.gpu.counters().snapshot();
                now.extend(env.comm.counters().snapshot());
                for (k, v) in now {
                    let b = base.get(k).copied().unwrap_or(0);
                    if v > b {
                        loop_calls.insert(k.to_string(), v - b);
                    }
                }
            }
        }
        env.comm.barrier();
        let elapsed = sim_core::now() - t0;
        let report = RankReport {
            rank: env.comm.rank(),
            elapsed,
            breakdown: rk.breakdown,
            checksum: rk.checksum(),
            interior: opts.collect_interiors.then(|| rk.interior_bytes()),
            loop_calls,
        };
        rk.free();
        collector.lock().push(report);
    });
    let mut ranks = Arc::try_unwrap(reports)
        .map(|m| m.into_inner())
        .unwrap_or_else(|a| a.lock().clone());
    ranks.sort_by_key(|r| r.rank);
    let wall = ranks
        .iter()
        .map(|r| r.elapsed)
        .max()
        .unwrap_or(SimDur::ZERO);
    (StencilOutcome { wall, ranks }, san)
}
