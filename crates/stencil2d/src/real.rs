//! Floating-point element abstraction: the benchmark runs in single and
//! double precision (paper Tables II and III).

use hostmem::Scalar;

/// A real number type storable in simulated device memory.
pub trait Real: Scalar + Send + Sync {
    /// Human-readable precision name ("single" / "double").
    const NAME: &'static str;
    /// Convert from f64 (computation happens in f64 on the simulated GPU,
    /// then rounds to the storage precision — deterministic and identical
    /// across the Def and MV2-GPU-NC variants).
    fn from_f64(v: f64) -> Self;
    /// Convert to f64.
    fn to_f64(self) -> f64;
}

impl Real for f32 {
    const NAME: &'static str = "single";
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Real for f64 {
    const NAME: &'static str = "double";
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        assert_eq!(f32::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(f64::from_f64(-0.25).to_f64(), -0.25);
        assert_eq!(f32::NAME, "single");
        assert_eq!(f64::NAME, "double");
    }

    #[test]
    fn f32_rounds() {
        let v = f32::from_f64(1.0 + 1e-12);
        assert_eq!(v, 1.0f32);
    }
}
