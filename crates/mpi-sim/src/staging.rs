//! Staging abstraction: how message bytes get between the user buffer and
//! the registered host staging buffers the wire protocol operates on.
//!
//! The rendezvous engine is generic over [`SendSource`] / [`RecvSink`].
//! This crate ships the host implementations (CPU pack/unpack); the
//! `mv2-gpu-nc` crate plugs in device implementations (GPU-offloaded pack +
//! PCIe pipeline) through the [`BufferStager`] extension point — the same
//! layering as MVAPICH2's datatype/staging hooks.

use gpu_sim::Loc;
use hostmem::HostPtr;
use sim_core::SimTime;

use crate::datatype::Datatype;
use crate::pack::{CpuModel, PackCursor, UnpackCursor};

/// Produces the packed byte stream of a send buffer, chunk by chunk, into
/// registered host memory.
pub trait SendSource: Send {
    /// Total packed bytes.
    fn total_bytes(&self) -> usize;
    /// Called once with the negotiated chunk size before any chunk request.
    fn begin(&mut self, chunk_size: usize);
    /// Make packed bytes `[idx*chunk_size, +len)` available in `dst`.
    /// Requests arrive in increasing `idx` order.
    fn request_chunk(&mut self, idx: usize, dst: HostPtr, len: usize);
    /// Drive any asynchronous machinery; true if state advanced.
    fn poll(&mut self) -> bool;
    /// True once the requested chunk is fully present in its `dst`.
    fn chunk_ready(&self, idx: usize) -> bool;
    /// Earliest future instant at which [`poll`](Self::poll) could make
    /// progress (None if only external events can).
    fn next_event(&self) -> Option<SimTime>;
    /// Pack the whole message at once (eager path).
    fn pack_eager(&mut self) -> Vec<u8>;
    /// If this source is device memory: the GPU it lives on. Host sources
    /// return `None`, which disables the device rendezvous path.
    fn device_gpu(&self) -> Option<u32> {
        None
    }
    /// Device path: pack the whole message into device memory on
    /// [`device_gpu`](Self::device_gpu) and return (packed base, pack
    /// completion). The pointer must stay valid until this source is
    /// dropped. `None` if unsupported (host sources).
    fn stage_device(&mut self) -> Option<(gpu_sim::DevPtr, sim_core::Completion)> {
        None
    }
}

/// Consumes the packed byte stream chunk by chunk from registered host
/// memory into the user receive buffer.
pub trait RecvSink: Send {
    /// Total packed bytes expected.
    fn total_bytes(&self) -> usize;
    /// Called once with the negotiated chunk size and the *actual*
    /// incoming byte count (which may be smaller than
    /// [`total_bytes`](Self::total_bytes), the buffer's capacity).
    fn begin(&mut self, chunk_size: usize, actual_total: usize);
    /// Packed bytes `[idx*chunk_size, +len)` have landed in `src`.
    fn chunk_arrived(&mut self, idx: usize, src: HostPtr, len: usize);
    /// Drive any asynchronous machinery; true if state advanced.
    fn poll(&mut self) -> bool;
    /// True once the staging buffer of chunk `idx` may be reused.
    fn chunk_absorbed(&self, idx: usize) -> bool;
    /// True once every byte rests in the user buffer.
    fn finished(&self) -> bool;
    /// Earliest future instant at which [`poll`](Self::poll) could make
    /// progress.
    fn next_event(&self) -> Option<SimTime>;
    /// Unpack a whole eager payload at once.
    fn unpack_eager(&mut self, data: &[u8]);
    /// If this sink is device memory: the GPU it lives on. Host sinks
    /// return `None`, which disables the device rendezvous path.
    fn device_gpu(&self) -> Option<u32> {
        None
    }
    /// Device path: scatter `total` packed bytes that sit at `src` on the
    /// shared GPU into the user buffer, ordering the reads after `ready`
    /// (the sender's pack completion). Returns the unpack completion, or
    /// `None` if unsupported (host sinks).
    fn absorb_device(
        &mut self,
        src: gpu_sim::DevPtr,
        total: usize,
        ready: &sim_core::Completion,
    ) -> Option<sim_core::Completion> {
        let _ = (src, total, ready);
        None
    }
}

/// Extension point: builds sources/sinks for buffer kinds this crate does
/// not handle (device memory). Return `None` to fall through.
pub trait BufferStager: Send + Sync {
    /// Build a send source for `buf` if this stager handles it.
    fn source(&self, buf: &Loc, count: usize, dtype: &Datatype) -> Option<Box<dyn SendSource>>;
    /// Build a receive sink for `buf` if this stager handles it.
    fn sink(&self, buf: &Loc, count: usize, dtype: &Datatype) -> Option<Box<dyn RecvSink>>;
}

// ---------------------------------------------------------------------------
// Host implementations.
// ---------------------------------------------------------------------------

/// CPU pack source for host buffers.
pub struct HostSendSource {
    cursor: PackCursor,
    total: usize,
    segments: usize,
    cpu: CpuModel,
    ready_upto: usize,
}

impl HostSendSource {
    /// Pack `count * dtype` from the host buffer at `base`.
    pub fn new(base: HostPtr, count: usize, dtype: &Datatype, cpu: CpuModel) -> Self {
        let plan = dtype.flat().plan(count);
        HostSendSource {
            segments: plan.num_segments(),
            total: plan.total(),
            cursor: PackCursor::from_plan(base, plan),
            cpu,
            ready_upto: 0,
        }
    }

    fn segs_for(&self, bytes: usize) -> usize {
        // Approximate share of segments touched by a chunk of `bytes`.
        if self.total == 0 {
            return 0;
        }
        (self.segments * bytes).div_ceil(self.total)
    }
}

impl SendSource for HostSendSource {
    fn total_bytes(&self) -> usize {
        self.total
    }

    fn begin(&mut self, _chunk_size: usize) {}

    fn request_chunk(&mut self, idx: usize, dst: HostPtr, len: usize) {
        assert_eq!(
            idx, self.ready_upto,
            "host source: out-of-order chunk request"
        );
        // CPU pack happens synchronously in the progress engine, costing
        // pack time.
        sim_core::sleep(self.cpu.pack_time(len, self.segs_for(len)));
        let mut tmp = vec![0u8; len];
        self.cursor.pack_into(&mut tmp);
        dst.write(&tmp);
        self.ready_upto = idx + 1;
    }

    fn poll(&mut self) -> bool {
        false
    }

    fn chunk_ready(&self, idx: usize) -> bool {
        idx < self.ready_upto
    }

    fn next_event(&self) -> Option<SimTime> {
        None
    }

    fn pack_eager(&mut self) -> Vec<u8> {
        sim_core::sleep(self.cpu.pack_time(self.total, self.segments));
        self.cursor.pack_all()
    }
}

/// CPU unpack sink for host buffers.
pub struct HostRecvSink {
    cursor: UnpackCursor,
    total: usize,
    segments: usize,
    cpu: CpuModel,
    absorbed_upto: usize,
    consumed: usize,
    expected: usize,
}

impl HostRecvSink {
    /// Unpack into `count * dtype` at the host buffer `base`.
    pub fn new(base: HostPtr, count: usize, dtype: &Datatype, cpu: CpuModel) -> Self {
        let plan = dtype.flat().plan(count);
        let total = plan.total();
        HostRecvSink {
            segments: plan.num_segments(),
            cursor: UnpackCursor::from_plan(base, plan),
            total,
            cpu,
            absorbed_upto: 0,
            consumed: 0,
            expected: total,
        }
    }

    fn segs_for(&self, bytes: usize) -> usize {
        if self.total == 0 {
            return 0;
        }
        (self.segments * bytes).div_ceil(self.total)
    }
}

impl RecvSink for HostRecvSink {
    fn total_bytes(&self) -> usize {
        self.total
    }

    fn begin(&mut self, _chunk_size: usize, actual_total: usize) {
        assert!(
            actual_total <= self.total,
            "message truncated: {actual_total} bytes into a {}-byte layout",
            self.total
        );
        self.expected = actual_total;
    }

    fn chunk_arrived(&mut self, idx: usize, src: HostPtr, len: usize) {
        assert_eq!(idx, self.absorbed_upto, "host sink: out-of-order chunk");
        sim_core::sleep(self.cpu.pack_time(len, self.segs_for(len)));
        let data = src.read(len);
        self.cursor.unpack_from(&data);
        self.absorbed_upto = idx + 1;
        self.consumed += len;
    }

    fn poll(&mut self) -> bool {
        false
    }

    fn chunk_absorbed(&self, idx: usize) -> bool {
        idx < self.absorbed_upto
    }

    fn finished(&self) -> bool {
        self.consumed == self.expected
    }

    fn next_event(&self) -> Option<SimTime> {
        None
    }

    fn unpack_eager(&mut self, data: &[u8]) {
        assert!(
            data.len() <= self.total,
            "message truncated: {} bytes into a {}-byte layout",
            data.len(),
            self.total
        );
        self.expected = data.len();
        sim_core::sleep(self.cpu.pack_time(data.len(), self.segments));
        self.cursor.unpack_from(data);
        self.consumed = data.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostmem::HostBuf;
    use sim_core::Sim;

    fn in_sim(f: impl FnOnce() + Send + 'static) {
        let sim = Sim::new();
        sim.spawn("t", f);
        sim.run();
    }

    #[test]
    fn host_source_chunks_match_whole_pack() {
        in_sim(|| {
            let dt = Datatype::vector(8, 1, 3, &Datatype::float());
            dt.commit();
            let buf = HostBuf::from_vec((0..8 * 3 * 4).map(|i| (i % 256) as u8).collect());
            let cpu = CpuModel::westmere();
            let mut whole = HostSendSource::new(buf.base(), 1, &dt, cpu.clone());
            let expect = whole.pack_eager();
            assert_eq!(expect.len(), 32);

            let mut chunked = HostSendSource::new(buf.base(), 1, &dt, cpu);
            chunked.begin(12);
            let stage = HostBuf::alloc(64);
            let mut got = Vec::new();
            for (i, len) in [(0usize, 12usize), (1, 12), (2, 8)] {
                chunked.request_chunk(i, stage.base(), len);
                assert!(chunked.chunk_ready(i));
                got.extend(stage.read(0, len));
            }
            assert_eq!(got, expect);
        });
    }

    #[test]
    fn host_sink_reassembles() {
        in_sim(|| {
            let dt = Datatype::vector(4, 2, 4, &Datatype::float());
            dt.commit();
            let src_buf = HostBuf::from_vec((0..64).map(|i| i as u8).collect());
            let cpu = CpuModel::westmere();
            let packed = HostSendSource::new(src_buf.base(), 1, &dt, cpu.clone()).pack_eager();

            let dst_buf = HostBuf::alloc(64);
            let mut sink = HostRecvSink::new(dst_buf.base(), 1, &dt, cpu);
            sink.begin(10, 32);
            let stage = HostBuf::alloc(16);
            let mut off = 0;
            let mut idx = 0;
            while off < packed.len() {
                let len = 10.min(packed.len() - off);
                stage.write(0, &packed[off..off + len]);
                sink.chunk_arrived(idx, stage.base(), len);
                assert!(sink.chunk_absorbed(idx));
                off += len;
                idx += 1;
            }
            assert!(sink.finished());
            // Data segments match; holes remain zero.
            for blk in 0..4 {
                let o = blk * 16;
                assert_eq!(dst_buf.read(o, 8), src_buf.read(o, 8));
                assert_eq!(dst_buf.read(o + 8, 8), vec![0u8; 8]);
            }
        });
    }

    #[test]
    fn eager_round_trip() {
        in_sim(|| {
            let dt = Datatype::contiguous(10, &Datatype::int());
            dt.commit();
            let src = HostBuf::from_vec((0..40).map(|i| i as u8).collect());
            let dst = HostBuf::alloc(40);
            let cpu = CpuModel::westmere();
            let data = HostSendSource::new(src.base(), 1, &dt, cpu.clone()).pack_eager();
            let mut sink = HostRecvSink::new(dst.base(), 1, &dt, cpu);
            sink.unpack_eager(&data);
            assert!(sink.finished());
            assert_eq!(dst.read(0, 40), src.read(0, 40));
        });
    }

    #[test]
    fn packing_costs_cpu_time() {
        in_sim(|| {
            let dt = Datatype::contiguous(1 << 18, &Datatype::float());
            dt.commit();
            let buf = HostBuf::alloc(1 << 20);
            let t0 = sim_core::now();
            let _ = HostSendSource::new(buf.base(), 1, &dt, CpuModel::westmere()).pack_eager();
            assert!(sim_core::now() > t0, "packing 1 MiB must take CPU time");
        });
    }
}
