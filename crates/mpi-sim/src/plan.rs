//! Committed communication plans.
//!
//! A [`Plan`] is everything the library needs to move one `(datatype,
//! count)` message: the expanded segment list, its prefix sums (packed-byte
//! offsets) and its [`Layout`] classification. Building one costs an
//! allocation plus a walk over every segment, which is exactly the
//! datatype-processing overhead the paper (and TEMPI after it) identifies
//! as the tax on derived-datatype communication — so committed types carry
//! a small LRU [`PlanCache`] keyed by `count`, and the steady-state send
//! path clones an `Arc<Plan>` instead of re-expanding.
//!
//! Cache traffic is observable two ways: per-type via
//! [`crate::Datatype::plan_cache_stats`], and process-wide through
//! `sim_core::instrument::global()` under the keys `plan_cache_hit`,
//! `plan_cache_miss` and `plan_cache_evict`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sim_core::lock::Mutex;

use crate::flat::{FlatType, Layout, Segment};

/// A piece of a packed-byte range mapped back to buffer space:
/// `(buffer offset, length)`.
pub type Piece = (isize, usize);

/// The immutable, shareable expansion of `count` elements of a committed
/// datatype: segments in pack order, packed-offset prefix sums, and the
/// classified layout.
#[derive(Debug)]
pub struct Plan {
    segments: Vec<Segment>,
    /// `prefix[i]` = packed bytes before segment `i`; last entry = total.
    prefix: Vec<usize>,
    layout: Layout,
}

impl Plan {
    /// Build a plan from an explicit segment list (already in pack order).
    pub fn from_segments(segments: Vec<Segment>) -> Self {
        let mut prefix = Vec::with_capacity(segments.len() + 1);
        let mut acc = 0usize;
        prefix.push(0);
        for s in &segments {
            acc += s.len;
            prefix.push(acc);
        }
        let layout = FlatType::classify(&segments);
        Plan {
            segments,
            prefix,
            layout,
        }
    }

    /// Expand and classify `count` elements of `flat`.
    pub fn build(flat: &FlatType, count: usize) -> Self {
        Plan::from_segments(flat.expanded(count))
    }

    /// Segments in pack order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total packed bytes.
    pub fn total(&self) -> usize {
        *self.prefix.last().unwrap()
    }

    /// Packed bytes before segment `i` (valid for `i <= num_segments()`).
    pub fn packed_offset(&self, i: usize) -> usize {
        self.prefix[i]
    }

    /// The classified layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Map the packed-byte range `[off, off+len)` to buffer-space pieces.
    /// Panics if the range exceeds the packed size.
    pub fn pieces(&self, off: usize, len: usize) -> Vec<Piece> {
        assert!(
            off + len <= self.total(),
            "range [{off}, +{len}) exceeds packed size {}",
            self.total()
        );
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        // Index of the segment containing packed offset `off`.
        let mut i = self.prefix.partition_point(|&p| p <= off) - 1;
        let mut cur = off;
        let end = off + len;
        while cur < end {
            let seg = &self.segments[i];
            let within = cur - self.prefix[i];
            let take = (seg.len - within).min(end - cur);
            out.push((seg.offset + within as isize, take));
            cur += take;
            i += 1;
        }
        out
    }
}

/// TEMPI-style canonical form of a plan: the observation (PAPERS.md) that
/// almost every derived datatype seen in practice collapses into at most
/// two stride levels, so one small descriptor can drive an entire
/// transfer. [`Canonical::of`] recovers the form from the expanded segment
/// list — including two-level patterns the single-level [`Layout`]
/// classifier files under [`Layout::Irregular`] (e.g. `count > 1` of a
/// resized column type, or the rows-within-planes of a 3-D subarray).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Canonical {
    /// One contiguous run at `offset`.
    Contig {
        /// Byte offset of the run, relative to the buffer pointer.
        offset: isize,
        /// Run length, bytes.
        len: usize,
    },
    /// A single stride level: `count` blocks of `block` bytes, `stride`
    /// bytes apart (an `MPI_Type_vector`).
    Strided1D {
        /// Offset of the first block, relative to the buffer pointer.
        first: isize,
        /// Bytes per block.
        block: usize,
        /// Distance between consecutive block starts, bytes.
        stride: usize,
        /// Number of blocks.
        count: usize,
    },
    /// Two stride levels: `outer_count` groups, `outer_stride` apart, each
    /// holding `count` blocks `stride` apart (rows within planes).
    Strided2D {
        /// Offset of the first block of the first group.
        first: isize,
        /// Bytes per block.
        block: usize,
        /// Distance between consecutive blocks within a group, bytes.
        stride: usize,
        /// Blocks per group.
        count: usize,
        /// Distance between consecutive group starts, bytes.
        outer_stride: usize,
        /// Number of groups.
        outer_count: usize,
    },
    /// No bounded strided description exists (deep struct soup).
    Irregular,
}

impl Canonical {
    /// Classify a plan. Cheap for plans the [`Layout`] classifier already
    /// solved; a single `O(segments)` scan for the two-level recovery.
    pub fn of(plan: &Plan) -> Canonical {
        match *plan.layout() {
            Layout::Contiguous { offset, len } => Canonical::Contig { offset, len },
            Layout::Strided2D {
                first,
                pitch,
                width,
                height,
            } => Canonical::Strided1D {
                first,
                block: width,
                stride: pitch,
                count: height,
            },
            Layout::Irregular => two_level(plan.segments()),
        }
    }
}

/// Try to describe an `Irregular` segment list as two stride levels:
/// equal-width blocks forming `g` groups of `r`, constant inner pitch,
/// constant outer pitch. Group extents may interleave (a resized column
/// type restarts below the previous column) — DMA order is the descriptor
/// walk, not address order, so that's fine.
fn two_level(segs: &[Segment]) -> Canonical {
    let n = segs.len();
    if n < 4 {
        return Canonical::Irregular;
    }
    let w = segs[0].len;
    if w == 0 || segs.iter().any(|s| s.len != w) {
        return Canonical::Irregular;
    }
    let p = segs[1].offset - segs[0].offset;
    if p <= 0 {
        return Canonical::Irregular;
    }
    // Inner run length: the first break in the pitch-`p` arithmetic.
    let r = (1..n)
        .find(|&i| segs[i].offset - segs[i - 1].offset != p)
        .unwrap_or(n);
    if r < 2 || r == n || !n.is_multiple_of(r) {
        return Canonical::Irregular;
    }
    let big = segs[r].offset - segs[0].offset;
    if big <= 0 {
        return Canonical::Irregular;
    }
    let g = n / r;
    for k in 0..g {
        if segs[k * r].offset - segs[0].offset != big * k as isize {
            return Canonical::Irregular;
        }
        for i in 1..r {
            if segs[k * r + i].offset - segs[k * r + i - 1].offset != p {
                return Canonical::Irregular;
            }
        }
    }
    Canonical::Strided2D {
        first: segs[0].offset,
        block: w,
        stride: p as usize,
        count: r,
        outer_stride: big as usize,
        outer_count: g,
    }
}

/// One strided run of a [`WireDescriptor`], relative to the message's
/// buffer pointer (the engine rebases it into MR-absolute
/// [`ib_sim::SgEntry`]s once the buffer is registered).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WireEntry {
    /// Byte offset of the first block, relative to the buffer pointer.
    pub offset: isize,
    /// Bytes per block.
    pub len: usize,
    /// Distance between consecutive block starts, bytes.
    pub stride: usize,
    /// Number of blocks in the run.
    pub count: usize,
}

impl WireEntry {
    /// Payload bytes this run moves.
    pub fn bytes(&self) -> usize {
        self.len * self.count
    }
}

/// A bounded scatter/gather descriptor lowered from a [`Canonical`] plan:
/// the entry list a NIC offload engine walks instead of the CPU packing.
/// Entries are in pack order — walking them block by block yields exactly
/// the packed byte stream of the plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireDescriptor {
    entries: Vec<WireEntry>,
    total: usize,
}

impl WireDescriptor {
    /// Lower a plan into a descriptor of at most `budget` entries: one
    /// entry for `Contig`/`Strided1D`, one per group for `Strided2D`.
    /// `None` if the plan is `Irregular`, empty, or needs more entries
    /// than the HCA budget — callers fall back to the staged pipeline.
    pub fn lower(plan: &Plan, budget: usize) -> Option<WireDescriptor> {
        let total = plan.total();
        if total == 0 {
            return None;
        }
        let entries = match Canonical::of(plan) {
            Canonical::Contig { offset, len } => vec![WireEntry {
                offset,
                len,
                stride: len,
                count: 1,
            }],
            Canonical::Strided1D {
                first,
                block,
                stride,
                count,
            } => vec![WireEntry {
                offset: first,
                len: block,
                stride,
                count,
            }],
            Canonical::Strided2D {
                first,
                block,
                stride,
                count,
                outer_stride,
                outer_count,
            } => (0..outer_count)
                .map(|k| WireEntry {
                    offset: first + (k * outer_stride) as isize,
                    len: block,
                    stride,
                    count,
                })
                .collect(),
            Canonical::Irregular => return None,
        };
        if entries.len() > budget {
            return None;
        }
        Some(WireDescriptor { entries, total })
    }

    /// The entry list, in pack order.
    pub fn entries(&self) -> &[WireEntry] {
        &self.entries
    }

    /// Total payload bytes.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Clip to the first `bytes` of the packed stream — the receive-side
    /// descriptor when the posted buffer is larger than the message.
    /// Splitting mid-block may add one tail entry. Panics if `bytes`
    /// exceeds the descriptor's total.
    pub fn prefix(&self, bytes: usize) -> WireDescriptor {
        assert!(
            bytes <= self.total,
            "prefix({bytes}) exceeds descriptor total {}",
            self.total
        );
        let mut entries = Vec::new();
        let mut rem = bytes;
        for e in &self.entries {
            if rem == 0 {
                break;
            }
            if rem >= e.bytes() {
                entries.push(*e);
                rem -= e.bytes();
                continue;
            }
            let k = rem / e.len;
            if k > 0 {
                entries.push(WireEntry { count: k, ..*e });
            }
            let tail = rem % e.len;
            if tail > 0 {
                entries.push(WireEntry {
                    offset: e.offset + (k * e.stride) as isize,
                    len: tail,
                    stride: tail,
                    count: 1,
                });
            }
            rem = 0;
        }
        WireDescriptor {
            entries,
            total: bytes,
        }
    }

    /// Rebase into MR-absolute [`ib_sim::SgEntry`]s: `base` is the buffer
    /// offset of the message's pointer within the registered region.
    /// Panics if an entry would land before the buffer start.
    pub fn to_sg(&self, base: usize) -> Vec<ib_sim::SgEntry> {
        self.entries
            .iter()
            .map(|e| {
                let off = base as isize + e.offset;
                assert!(off >= 0, "descriptor entry before buffer start");
                ib_sim::SgEntry {
                    offset: off as usize,
                    len: e.len,
                    stride: e.stride,
                    count: e.count,
                }
            })
            .collect()
    }
}

/// Counters of one committed type's plan cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
}

/// Plans the LRU keeps per committed type. Real workloads reuse a handful
/// of counts (often exactly one); the bound only matters for adversarial
/// count churn.
const PLAN_CACHE_CAPACITY: usize = 8;

/// Small LRU cache of `count -> Arc<Plan>`, embedded in each committed
/// [`FlatType`]. Dropping the datatype drops the `FlatType` and the cache
/// with it — invalidation is ownership, not epochs.
#[derive(Default)]
pub struct PlanCache {
    /// `(count, plan)`; back = most recently used.
    entries: Mutex<Vec<(usize, Arc<Plan>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// Return the cached plan for `count`, building (and caching) it with
    /// `build` on a miss.
    pub fn get_or_build(&self, count: usize, build: impl FnOnce() -> Plan) -> Arc<Plan> {
        let global = sim_core::instrument::global();
        let mut entries = self.entries.lock();
        if let Some(i) = entries.iter().position(|(c, _)| *c == count) {
            let hit = entries.remove(i);
            let plan = Arc::clone(&hit.1);
            entries.push(hit);
            self.hits.fetch_add(1, Ordering::Relaxed);
            global.record("plan_cache_hit");
            return plan;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        global.record("plan_cache_miss");
        let plan = Arc::new(build());
        if entries.len() >= PLAN_CACHE_CAPACITY {
            entries.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            global.record("plan_cache_evict");
        }
        entries.push((count, Arc::clone(&plan)));
        plan
    }

    /// Current counter values.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("PlanCache")
            .field("entries", &self.entries.lock().len())
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(offset: isize, len: usize) -> Segment {
        Segment { offset, len }
    }

    #[test]
    fn prefix_and_total() {
        let p = Plan::from_segments(vec![seg(0, 4), seg(12, 4), seg(24, 8)]);
        assert_eq!(p.total(), 16);
        assert_eq!(p.packed_offset(0), 0);
        assert_eq!(p.packed_offset(2), 8);
        assert_eq!(p.packed_offset(3), 16);
        assert_eq!(p.num_segments(), 3);
    }

    #[test]
    fn pieces_split_and_clip_segments() {
        let p = Plan::from_segments(vec![seg(0, 4), seg(12, 4), seg(24, 8)]);
        assert_eq!(p.pieces(0, 16), vec![(0, 4), (12, 4), (24, 8)]);
        assert_eq!(p.pieces(2, 4), vec![(2, 2), (12, 2)]);
        assert_eq!(p.pieces(10, 6), vec![(26, 6)]);
        assert_eq!(p.pieces(16, 0), Vec::<Piece>::new());
    }

    #[test]
    #[should_panic(expected = "exceeds packed size")]
    fn pieces_out_of_range_panics() {
        let p = Plan::from_segments(vec![seg(0, 4)]);
        let _ = p.pieces(2, 3);
    }

    #[test]
    fn empty_plan() {
        let p = Plan::from_segments(Vec::new());
        assert_eq!(p.total(), 0);
        assert!(p.pieces(0, 0).is_empty());
        assert_eq!(
            p.layout(),
            &Layout::Contiguous { offset: 0, len: 0 },
            "empty expansion classifies as a zero-length run"
        );
    }

    #[test]
    fn cache_hits_and_lru_eviction() {
        let cache = PlanCache::default();
        let mk = |n: usize| move || Plan::from_segments(vec![seg(0, n.max(1) * 4)]);
        let a = cache.get_or_build(1, mk(1));
        let b = cache.get_or_build(1, mk(1));
        assert!(Arc::ptr_eq(&a, &b), "hit returns the same plan");
        assert_eq!(
            cache.stats(),
            PlanCacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        // Overflow the capacity; count 1 stays hot (re-touched each round).
        for n in 2..=PLAN_CACHE_CAPACITY + 2 {
            cache.get_or_build(n, mk(n));
            cache.get_or_build(1, mk(1));
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "overflow must evict: {s:?}");
        let before = cache.stats().misses;
        let c = cache.get_or_build(1, mk(1));
        assert_eq!(cache.stats().misses, before, "hot count 1 never evicted");
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn canonical_contig_and_vector() {
        let c = Plan::from_segments(vec![seg(8, 32)]);
        assert_eq!(Canonical::of(&c), Canonical::Contig { offset: 8, len: 32 });
        let v = Plan::from_segments(vec![seg(0, 4), seg(16, 4), seg(32, 4)]);
        assert_eq!(
            Canonical::of(&v),
            Canonical::Strided1D {
                first: 0,
                block: 4,
                stride: 16,
                count: 3
            }
        );
    }

    #[test]
    fn canonical_recovers_two_levels_from_irregular() {
        // Two planes of three rows: inner pitch 16, outer pitch 100 — the
        // single-level classifier calls this Irregular.
        let segs: Vec<Segment> = (0..2)
            .flat_map(|pl| (0..3).map(move |r| seg(pl * 100 + r * 16, 8)))
            .collect();
        let p = Plan::from_segments(segs);
        assert_eq!(p.layout(), &Layout::Irregular);
        assert_eq!(
            Canonical::of(&p),
            Canonical::Strided2D {
                first: 0,
                block: 8,
                stride: 16,
                count: 3,
                outer_stride: 100,
                outer_count: 2
            }
        );
        // Interleaved group extents (column restart) still canonicalize.
        let segs: Vec<Segment> = (0..2)
            .flat_map(|col| (0..4).map(move |r| seg(col * 4 + r * 24, 4)))
            .collect();
        let p = Plan::from_segments(segs);
        assert_eq!(
            Canonical::of(&p),
            Canonical::Strided2D {
                first: 0,
                block: 4,
                stride: 24,
                count: 4,
                outer_stride: 4,
                outer_count: 2
            }
        );
    }

    #[test]
    fn canonical_rejects_soup() {
        // Unequal widths.
        let p = Plan::from_segments(vec![seg(0, 4), seg(8, 8), seg(24, 4), seg(32, 8)]);
        assert_eq!(Canonical::of(&p), Canonical::Irregular);
        // Broken outer pitch.
        let p = Plan::from_segments(vec![
            seg(0, 4),
            seg(8, 4),
            seg(100, 4),
            seg(108, 4),
            seg(190, 4),
            seg(198, 4),
        ]);
        assert_eq!(Canonical::of(&p), Canonical::Irregular);
    }

    #[test]
    fn descriptor_walk_matches_pack_order() {
        let segs: Vec<Segment> = (0..2)
            .flat_map(|pl| (0..3).map(move |r| seg(pl * 100 + r * 16, 8)))
            .collect();
        let p = Plan::from_segments(segs.clone());
        let d = WireDescriptor::lower(&p, 16).expect("lowers");
        assert_eq!(d.entries().len(), 2);
        assert_eq!(d.total(), p.total());
        // Walking entry blocks in order reproduces the segment list.
        let mut walked = Vec::new();
        for e in d.entries() {
            for b in 0..e.count {
                walked.push(seg(e.offset + (b * e.stride) as isize, e.len));
            }
        }
        assert_eq!(walked, segs);
        // Entry budget rejection.
        assert!(WireDescriptor::lower(&p, 1).is_none());
    }

    #[test]
    fn descriptor_prefix_clips_and_splits() {
        let p = Plan::from_segments(vec![seg(0, 4), seg(16, 4), seg(32, 4)]);
        let d = WireDescriptor::lower(&p, 8).unwrap();
        // Whole blocks only.
        let head = d.prefix(8);
        assert_eq!(
            head.entries(),
            &[WireEntry {
                offset: 0,
                len: 4,
                stride: 16,
                count: 2
            }]
        );
        // Mid-block split adds a tail entry.
        let head = d.prefix(6);
        assert_eq!(head.total(), 6);
        assert_eq!(
            head.entries(),
            &[
                WireEntry {
                    offset: 0,
                    len: 4,
                    stride: 16,
                    count: 1
                },
                WireEntry {
                    offset: 16,
                    len: 2,
                    stride: 2,
                    count: 1
                }
            ]
        );
        assert_eq!(d.prefix(0).entries().len(), 0);
    }

    #[test]
    fn descriptor_rebases_to_sg() {
        let p = Plan::from_segments(vec![seg(-8, 4), seg(8, 4)]);
        let d = WireDescriptor::lower(&p, 8).unwrap();
        let sg = d.to_sg(64);
        assert_eq!(sg.len(), 1);
        assert_eq!(sg[0].offset, 56);
        assert_eq!(sg[0].bytes(), 8);
    }
}
