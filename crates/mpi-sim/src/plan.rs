//! Committed communication plans.
//!
//! A [`Plan`] is everything the library needs to move one `(datatype,
//! count)` message: the expanded segment list, its prefix sums (packed-byte
//! offsets) and its [`Layout`] classification. Building one costs an
//! allocation plus a walk over every segment, which is exactly the
//! datatype-processing overhead the paper (and TEMPI after it) identifies
//! as the tax on derived-datatype communication — so committed types carry
//! a small LRU [`PlanCache`] keyed by `count`, and the steady-state send
//! path clones an `Arc<Plan>` instead of re-expanding.
//!
//! Cache traffic is observable two ways: per-type via
//! [`crate::Datatype::plan_cache_stats`], and process-wide through
//! `sim_core::instrument::global()` under the keys `plan_cache_hit`,
//! `plan_cache_miss` and `plan_cache_evict`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sim_core::lock::Mutex;

use crate::flat::{FlatType, Layout, Segment};

/// A piece of a packed-byte range mapped back to buffer space:
/// `(buffer offset, length)`.
pub type Piece = (isize, usize);

/// The immutable, shareable expansion of `count` elements of a committed
/// datatype: segments in pack order, packed-offset prefix sums, and the
/// classified layout.
#[derive(Debug)]
pub struct Plan {
    segments: Vec<Segment>,
    /// `prefix[i]` = packed bytes before segment `i`; last entry = total.
    prefix: Vec<usize>,
    layout: Layout,
}

impl Plan {
    /// Build a plan from an explicit segment list (already in pack order).
    pub fn from_segments(segments: Vec<Segment>) -> Self {
        let mut prefix = Vec::with_capacity(segments.len() + 1);
        let mut acc = 0usize;
        prefix.push(0);
        for s in &segments {
            acc += s.len;
            prefix.push(acc);
        }
        let layout = FlatType::classify(&segments);
        Plan {
            segments,
            prefix,
            layout,
        }
    }

    /// Expand and classify `count` elements of `flat`.
    pub fn build(flat: &FlatType, count: usize) -> Self {
        Plan::from_segments(flat.expanded(count))
    }

    /// Segments in pack order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total packed bytes.
    pub fn total(&self) -> usize {
        *self.prefix.last().unwrap()
    }

    /// Packed bytes before segment `i` (valid for `i <= num_segments()`).
    pub fn packed_offset(&self, i: usize) -> usize {
        self.prefix[i]
    }

    /// The classified layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Map the packed-byte range `[off, off+len)` to buffer-space pieces.
    /// Panics if the range exceeds the packed size.
    pub fn pieces(&self, off: usize, len: usize) -> Vec<Piece> {
        assert!(
            off + len <= self.total(),
            "range [{off}, +{len}) exceeds packed size {}",
            self.total()
        );
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        // Index of the segment containing packed offset `off`.
        let mut i = self.prefix.partition_point(|&p| p <= off) - 1;
        let mut cur = off;
        let end = off + len;
        while cur < end {
            let seg = &self.segments[i];
            let within = cur - self.prefix[i];
            let take = (seg.len - within).min(end - cur);
            out.push((seg.offset + within as isize, take));
            cur += take;
            i += 1;
        }
        out
    }
}

/// Counters of one committed type's plan cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
}

/// Plans the LRU keeps per committed type. Real workloads reuse a handful
/// of counts (often exactly one); the bound only matters for adversarial
/// count churn.
const PLAN_CACHE_CAPACITY: usize = 8;

/// Small LRU cache of `count -> Arc<Plan>`, embedded in each committed
/// [`FlatType`]. Dropping the datatype drops the `FlatType` and the cache
/// with it — invalidation is ownership, not epochs.
#[derive(Default)]
pub struct PlanCache {
    /// `(count, plan)`; back = most recently used.
    entries: Mutex<Vec<(usize, Arc<Plan>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// Return the cached plan for `count`, building (and caching) it with
    /// `build` on a miss.
    pub fn get_or_build(&self, count: usize, build: impl FnOnce() -> Plan) -> Arc<Plan> {
        let global = sim_core::instrument::global();
        let mut entries = self.entries.lock();
        if let Some(i) = entries.iter().position(|(c, _)| *c == count) {
            let hit = entries.remove(i);
            let plan = Arc::clone(&hit.1);
            entries.push(hit);
            self.hits.fetch_add(1, Ordering::Relaxed);
            global.record("plan_cache_hit");
            return plan;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        global.record("plan_cache_miss");
        let plan = Arc::new(build());
        if entries.len() >= PLAN_CACHE_CAPACITY {
            entries.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            global.record("plan_cache_evict");
        }
        entries.push((count, Arc::clone(&plan)));
        plan
    }

    /// Current counter values.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("PlanCache")
            .field("entries", &self.entries.lock().len())
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(offset: isize, len: usize) -> Segment {
        Segment { offset, len }
    }

    #[test]
    fn prefix_and_total() {
        let p = Plan::from_segments(vec![seg(0, 4), seg(12, 4), seg(24, 8)]);
        assert_eq!(p.total(), 16);
        assert_eq!(p.packed_offset(0), 0);
        assert_eq!(p.packed_offset(2), 8);
        assert_eq!(p.packed_offset(3), 16);
        assert_eq!(p.num_segments(), 3);
    }

    #[test]
    fn pieces_split_and_clip_segments() {
        let p = Plan::from_segments(vec![seg(0, 4), seg(12, 4), seg(24, 8)]);
        assert_eq!(p.pieces(0, 16), vec![(0, 4), (12, 4), (24, 8)]);
        assert_eq!(p.pieces(2, 4), vec![(2, 2), (12, 2)]);
        assert_eq!(p.pieces(10, 6), vec![(26, 6)]);
        assert_eq!(p.pieces(16, 0), Vec::<Piece>::new());
    }

    #[test]
    #[should_panic(expected = "exceeds packed size")]
    fn pieces_out_of_range_panics() {
        let p = Plan::from_segments(vec![seg(0, 4)]);
        let _ = p.pieces(2, 3);
    }

    #[test]
    fn empty_plan() {
        let p = Plan::from_segments(Vec::new());
        assert_eq!(p.total(), 0);
        assert!(p.pieces(0, 0).is_empty());
        assert_eq!(
            p.layout(),
            &Layout::Contiguous { offset: 0, len: 0 },
            "empty expansion classifies as a zero-length run"
        );
    }

    #[test]
    fn cache_hits_and_lru_eviction() {
        let cache = PlanCache::default();
        let mk = |n: usize| move || Plan::from_segments(vec![seg(0, n.max(1) * 4)]);
        let a = cache.get_or_build(1, mk(1));
        let b = cache.get_or_build(1, mk(1));
        assert!(Arc::ptr_eq(&a, &b), "hit returns the same plan");
        assert_eq!(
            cache.stats(),
            PlanCacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        // Overflow the capacity; count 1 stays hot (re-touched each round).
        for n in 2..=PLAN_CACHE_CAPACITY + 2 {
            cache.get_or_build(n, mk(n));
            cache.get_or_build(1, mk(1));
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "overflow must evict: {s:?}");
        let before = cache.stats().misses;
        let c = cache.get_or_build(1, mk(1));
        assert_eq!(cache.stats().misses, before, "hot count 1 never evicted");
        assert_eq!(c.total(), 4);
    }
}
