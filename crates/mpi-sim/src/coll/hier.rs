//! Topology-aware hierarchical collectives.
//!
//! The flat algorithms treat all P ranks as wire peers, so with ppn
//! co-located ranks per node every inter-node exchange crosses the HCA
//! ppn² times (alltoall) or funnels ppn uncoordinated streams into one
//! port (reduce fan-in). The hierarchical family splits every collective
//! into the natural two levels the fabric actually has:
//!
//! * **intra-node** — co-located ranks fan in/out through their node
//!   leader. The engine routes these transfers over the shared-memory
//!   channel automatically, so they cost shm bandwidth, not HCA bandwidth.
//! * **inter-node** — only node leaders talk across the wire, carrying
//!   each node's *aggregate* (concatenated blocks, or the node-combined
//!   partial reduction), so the HCA sees one stream per node pair.
//!
//! Reductions additionally **pipeline**: the payload is cut into
//! [`CollConfig::pipeline_chunk`](crate::CollConfig) segments, and while
//! segment `s` crosses the leader tree, segment `s+1` is still fanning in
//! over shm — pack, combine and wire time overlap instead of adding up.
//!
//! All intra-node aggregation happens in packed-byte form (the wire
//! representation), so member buffers may be host or device, contiguous
//! or a derived GPU datatype: the pack/unpack cost is paid once at the
//! edges by the normal staging machinery.

use std::collections::HashMap;

use gpu_sim::Loc;
use hostmem::HostBuf;

use super::{
    binomial_bcast_bytes, binomial_bcast_loc, binomial_reduce_bytes, byte_dt, coll_wait,
    combine_bytes, deliver_from_host, host_direct, read_host_block, stage_to_host,
    write_host_block, ReduceOp, ReqWindow,
};
use crate::comm::Comm;
use crate::datatype::Datatype;
use crate::engine::{SrcSel, TagSel};
use crate::proto::ReqId;

/// Upper bound on participating nodes: phase tags are node-indexed with a
/// stride of 4096 inside the per-collective tag window.
pub(crate) const MAX_NODES: usize = 2048;

/// A communicator's members grouped by physical node.
///
/// Node order is first-seen by ascending group rank (so every member
/// derives the identical structure without communication — it depends
/// only on the shared topology and group). `groups[x]` lists node `x`'s
/// members in ascending group-rank order; `groups[x][0]` is the leader.
pub(crate) struct Hierarchy {
    groups: Vec<Vec<usize>>,
    my_node: usize,
}

impl Hierarchy {
    pub(crate) fn build(c: &Comm) -> Hierarchy {
        let eng = c.engine().lock();
        let mut idx_of_node: HashMap<usize, usize> = HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut my_node = 0;
        for g in 0..c.size() {
            let node = eng.node_of(c.world_rank_of(g));
            let idx = *idx_of_node.entry(node).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[idx].push(g);
            if g == c.rank() {
                my_node = idx;
            }
        }
        Hierarchy { groups, my_node }
    }

    /// Whether the two-level shape buys anything: at least two nodes (else
    /// there is no wire to economize) and at least one node hosting two or
    /// more members (else leaders-only == flat).
    pub(crate) fn beneficial(&self) -> bool {
        assert!(
            self.groups.len() <= MAX_NODES,
            "hierarchical collectives support at most {MAX_NODES} nodes ({} in this communicator)",
            self.groups.len()
        );
        self.groups.len() >= 2 && self.groups.iter().any(|g| g.len() >= 2)
    }

    fn leaders(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g[0]).collect()
    }

    /// The node index hosting group rank `g`.
    fn node_of_rank(&self, g: usize) -> usize {
        self.groups
            .iter()
            .position(|grp| grp.binary_search(&g).is_ok())
            .expect("rank is a member of some node group")
    }
}

/// Hierarchical bcast: root → one representative per node over the wire
/// (binomial over representatives), then representative → co-located
/// members over shm (binomial inside the node). On the root's own node the
/// root itself is the representative, so the payload never takes an extra
/// hop.
#[allow(clippy::too_many_arguments)]
pub(super) fn bcast(
    c: &Comm,
    h: &Hierarchy,
    buf: &Loc,
    count: usize,
    dtype: &Datatype,
    root: usize,
    tag: u32,
    ctx: u16,
) {
    let root_node = h.node_of_rank(root);
    let reps: Vec<usize> = h
        .groups
        .iter()
        .enumerate()
        .map(|(x, g)| if x == root_node { root } else { g[0] })
        .collect();
    let mut eng = c.engine().lock();
    binomial_bcast_loc(
        c,
        &mut eng,
        &reps,
        root_node,
        buf,
        count,
        dtype,
        tag + 1,
        ctx,
    );
    let my_group = &h.groups[h.my_node];
    let rep = reps[h.my_node];
    let rep_pos = my_group
        .iter()
        .position(|&g| g == rep)
        .expect("node representative is a member of its node");
    binomial_bcast_loc(
        c,
        &mut eng,
        my_group,
        rep_pos,
        buf,
        count,
        dtype,
        tag + 2,
        ctx,
    );
}

/// Hierarchical gather: members ship their block to their node's
/// representative over shm; each remote representative forwards one
/// concatenated aggregate to the root, which receives it with an hindexed
/// datatype placing every block straight at its `recvbuf` offset — one
/// wire message per remote node, no intermediate copy at the root.
#[allow(clippy::too_many_arguments)]
pub(super) fn gather(
    c: &Comm,
    h: &Hierarchy,
    sendbuf: &Loc,
    recvbuf: &Loc,
    count: usize,
    dtype: &Datatype,
    root: usize,
    tag: u32,
    ctx: u16,
) {
    let me = c.rank();
    let ext = dtype.extent();
    assert!(ext > 0, "gather needs a positive-extent datatype");
    let block = count * ext as usize;
    let bytes = count * dtype.size();
    let byte = byte_dt();
    let root_node = h.node_of_rank(root);
    let rep_of = |x: usize| if x == root_node { root } else { h.groups[x][0] };
    let my_rep = rep_of(h.my_node);
    let root_w = c.world_rank_of(root);
    const T_BLOCK: u32 = 1;
    const T_AGG: u32 = 2;
    let mut eng = c.engine().lock();

    // Every rank ships its block to its node's representative (a
    // self-message for the representative itself).
    let mut ids = vec![eng.isend(
        sendbuf.clone(),
        count,
        dtype,
        c.world_rank_of(my_rep),
        tag + T_BLOCK,
        ctx,
    )];

    if me == root {
        for (x, grp) in h.groups.iter().enumerate() {
            if x == root_node {
                // Blocks from my own node arrive individually, typed.
                for &g in grp {
                    ids.push(eng.irecv(
                        recvbuf.add(g * block),
                        count,
                        dtype,
                        SrcSel(Some(c.world_rank_of(g))),
                        TagSel(Some(tag + T_BLOCK)),
                        ctx,
                    ));
                }
            } else {
                // A remote node's aggregate lands via one hindexed view
                // scattering each member's block to its offset.
                let blocks: Vec<(usize, isize)> =
                    grp.iter().map(|&g| (count, (g * block) as isize)).collect();
                let dt = Datatype::hindexed(&blocks, dtype);
                dt.commit();
                ids.push(eng.irecv(
                    recvbuf.clone(),
                    1,
                    &dt,
                    SrcSel(Some(c.world_rank_of(rep_of(x)))),
                    TagSel(Some(tag + T_AGG)),
                    ctx,
                ));
            }
        }
        coll_wait(&mut eng, ids);
    } else if me == my_rep {
        // Aggregate local blocks (packed, member order) and forward once.
        let grp = &h.groups[h.my_node];
        let scratch = HostBuf::alloc(grp.len() * bytes);
        for (i, &g) in grp.iter().enumerate() {
            ids.push(eng.irecv(
                Loc::Host(scratch.base().add(i * bytes)),
                bytes,
                &byte,
                SrcSel(Some(c.world_rank_of(g))),
                TagSel(Some(tag + T_BLOCK)),
                ctx,
            ));
        }
        coll_wait(&mut eng, ids);
        let fwd = eng.isend(
            Loc::Host(scratch.base()),
            grp.len() * bytes,
            &byte,
            root_w,
            tag + T_AGG,
            ctx,
        );
        coll_wait(&mut eng, vec![fwd]);
    } else {
        coll_wait(&mut eng, ids);
    }
}

/// Hierarchical scatter — the mirror of [`gather`]: the root sends each
/// remote node one hindexed aggregate (gathered straight out of
/// `sendbuf`), whose representative splits it over shm.
#[allow(clippy::too_many_arguments)]
pub(super) fn scatter(
    c: &Comm,
    h: &Hierarchy,
    sendbuf: &Loc,
    recvbuf: &Loc,
    count: usize,
    dtype: &Datatype,
    root: usize,
    tag: u32,
    ctx: u16,
) {
    let me = c.rank();
    let ext = dtype.extent();
    assert!(ext > 0, "scatter needs a positive-extent datatype");
    let block = count * ext as usize;
    let bytes = count * dtype.size();
    let byte = byte_dt();
    let root_node = h.node_of_rank(root);
    let rep_of = |x: usize| if x == root_node { root } else { h.groups[x][0] };
    let my_rep = rep_of(h.my_node);
    let w = c.coll_window();
    const T_BLOCK: u32 = 1;
    const T_AGG: u32 = 2;
    let mut eng = c.engine().lock();

    // My block arrives typed from whoever distributes it to me: the root
    // itself on the root's node, my representative elsewhere.
    let feeder = if h.my_node == root_node { root } else { my_rep };
    let my_recv = eng.irecv(
        recvbuf.clone(),
        count,
        dtype,
        SrcSel(Some(c.world_rank_of(feeder))),
        TagSel(Some(tag + T_BLOCK)),
        ctx,
    );

    if me == root {
        let mut win = ReqWindow::new(w);
        for (x, grp) in h.groups.iter().enumerate() {
            if x == root_node {
                for &g in grp {
                    let id = eng.isend(
                        sendbuf.add(g * block),
                        count,
                        dtype,
                        c.world_rank_of(g),
                        tag + T_BLOCK,
                        ctx,
                    );
                    win.push(&mut eng, vec![id]);
                }
            } else {
                let blocks: Vec<(usize, isize)> =
                    grp.iter().map(|&g| (count, (g * block) as isize)).collect();
                let dt = Datatype::hindexed(&blocks, dtype);
                dt.commit();
                let id = eng.isend(
                    sendbuf.clone(),
                    1,
                    &dt,
                    c.world_rank_of(rep_of(x)),
                    tag + T_AGG,
                    ctx,
                );
                win.push(&mut eng, vec![id]);
            }
        }
        win.drain(&mut eng);
    } else if me == my_rep {
        let grp = &h.groups[h.my_node];
        let scratch = HostBuf::alloc(grp.len() * bytes);
        let agg = eng.irecv(
            Loc::Host(scratch.base()),
            grp.len() * bytes,
            &byte,
            SrcSel(Some(c.world_rank_of(root))),
            TagSel(Some(tag + T_AGG)),
            ctx,
        );
        coll_wait(&mut eng, vec![agg]);
        let mut win = ReqWindow::new(w);
        for (i, &g) in grp.iter().enumerate() {
            let id = eng.isend(
                Loc::Host(scratch.base().add(i * bytes)),
                bytes,
                &byte,
                c.world_rank_of(g),
                tag + T_BLOCK,
                ctx,
            );
            win.push(&mut eng, vec![id]);
        }
        win.drain(&mut eng);
    }
    coll_wait(&mut eng, vec![my_recv]);
}

/// Hierarchical allgatherv: members ship their block to the node leader
/// over shm; leaders run a ring over *node aggregates* (each wire step
/// carries one node's concatenated blocks); the leader then fans every
/// node's aggregate out to each co-located member, which receives it with
/// an hindexed view placing the blocks at their `rdispls` offsets.
#[allow(clippy::too_many_arguments)]
pub(super) fn allgatherv(
    c: &Comm,
    h: &Hierarchy,
    sendbuf: &Loc,
    scount: usize,
    sdtype: &Datatype,
    recvbuf: &Loc,
    rcounts: &[usize],
    rdispls: &[usize],
    rdtype: &Datatype,
    tag: u32,
    ctx: u16,
) {
    let me = c.rank();
    let rsz = rdtype.size();
    let rb: Vec<usize> = rcounts.iter().map(|&n| n * rsz).collect();
    let byte = byte_dt();
    let nn = h.groups.len();
    let my_group = &h.groups[h.my_node];
    let leader_w = c.world_rank_of(my_group[0]);
    let w = c.coll_window();
    const T_IN: u32 = 1;
    const T_RING: u32 = 4096; // + ring step
    const T_OUT: u32 = 8192; // + source node index
    let mut eng = c.engine().lock();

    // Phase 1: ship my block to my node leader (self-message if I am it).
    let mut final_ids = vec![eng.isend(sendbuf.clone(), scount, sdtype, leader_w, tag + T_IN, ctx)];

    // Post the fan-out receives up front: one hindexed message per node,
    // scattering that node's blocks to their displacements.
    for (x, grp) in h.groups.iter().enumerate() {
        let blocks: Vec<(usize, isize)> = grp
            .iter()
            .filter(|&&g| rcounts[g] > 0)
            .map(|&g| (rcounts[g], rdispls[g] as isize))
            .collect();
        let id = if blocks.is_empty() {
            let empty = HostBuf::alloc(0);
            eng.irecv(
                Loc::Host(empty.base()),
                0,
                &byte,
                SrcSel(Some(leader_w)),
                TagSel(Some(tag + T_OUT + x as u32)),
                ctx,
            )
        } else {
            let dt = Datatype::hindexed(&blocks, rdtype);
            dt.commit();
            eng.irecv(
                recvbuf.clone(),
                1,
                &dt,
                SrcSel(Some(leader_w)),
                TagSel(Some(tag + T_OUT + x as u32)),
                ctx,
            )
        };
        final_ids.push(id);
    }

    if me == my_group[0] {
        // Node aggregate sizes, and the local aggregate's member layout.
        let nb: Vec<usize> = h
            .groups
            .iter()
            .map(|grp| grp.iter().map(|&g| rb[g]).sum())
            .collect();
        let mut aggs: Vec<Option<HostBuf>> = (0..nn).map(|_| None).collect();
        let mine = HostBuf::alloc(nb[h.my_node]);
        let mut off = 0;
        let mut gids = Vec::new();
        for &g in my_group {
            gids.push(eng.irecv(
                Loc::Host(mine.base().add(off)),
                rb[g],
                &byte,
                SrcSel(Some(c.world_rank_of(g))),
                TagSel(Some(tag + T_IN)),
                ctx,
            ));
            off += rb[g];
        }
        coll_wait(&mut eng, gids);
        aggs[h.my_node] = Some(mine);

        // Ring over node aggregates among the leaders.
        let li = h.my_node;
        let right = c.world_rank_of(h.groups[(li + 1) % nn][0]);
        let left = c.world_rank_of(h.groups[(li + nn - 1) % nn][0]);
        for step in 0..nn - 1 {
            let sx = (li + nn - step) % nn;
            let rx = (li + nn - step - 1) % nn;
            let t = tag + T_RING + step as u32;
            let inbuf = HostBuf::alloc(nb[rx]);
            let rid = eng.irecv(
                Loc::Host(inbuf.base()),
                nb[rx],
                &byte,
                SrcSel(Some(left)),
                TagSel(Some(t)),
                ctx,
            );
            let send_from = aggs[sx].as_ref().expect("ring block already arrived");
            let sid = eng.isend(Loc::Host(send_from.base()), nb[sx], &byte, right, t, ctx);
            coll_wait(&mut eng, vec![rid, sid]);
            aggs[rx] = Some(inbuf);
        }

        // Fan every node's aggregate out to each co-located member (self
        // included), bounded in flight.
        let mut win = ReqWindow::new(w);
        for &d in my_group {
            let d_w = c.world_rank_of(d);
            for (x, agg) in aggs.iter().enumerate() {
                let agg = agg.as_ref().expect("ring delivered every aggregate");
                let id = eng.isend(
                    Loc::Host(agg.base()),
                    nb[x],
                    &byte,
                    d_w,
                    tag + T_OUT + x as u32,
                    ctx,
                );
                win.push(&mut eng, vec![id]);
            }
        }
        win.drain(&mut eng);
    }
    coll_wait(&mut eng, final_ids);
}

/// Hierarchical reduce: members send their typed contribution to their
/// node's representative, which folds them (double-buffered, packed) into
/// its own staged bytes; representatives then run the binomial byte tree,
/// and the root unpacks into `recvbuf`.
#[allow(clippy::too_many_arguments)]
pub(super) fn reduce(
    c: &Comm,
    h: &Hierarchy,
    sendbuf: &Loc,
    recvbuf: &Loc,
    count: usize,
    dtype: &Datatype,
    op: ReduceOp,
    root: usize,
    tag: u32,
    ctx: u16,
) {
    let me = c.rank();
    let bytes = count * dtype.size();
    let byte = byte_dt();
    const T_FANIN: u32 = 1;
    const T_TREE: u32 = 2;
    const T_STAGE: u32 = 3;
    const T_OUT: u32 = 4;
    let root_node = h.node_of_rank(root);
    let reps: Vec<usize> = h
        .groups
        .iter()
        .enumerate()
        .map(|(x, g)| if x == root_node { root } else { g[0] })
        .collect();
    let my_rep = reps[h.my_node];
    let mut eng = c.engine().lock();

    if me != my_rep {
        let id = eng.isend(
            sendbuf.clone(),
            count,
            dtype,
            c.world_rank_of(my_rep),
            tag + T_FANIN,
            ctx,
        );
        coll_wait(&mut eng, vec![id]);
        return;
    }

    let me_w = c.world_rank_of(me);
    let mut acc = stage_to_host(&mut eng, me_w, sendbuf, count, dtype, tag + T_STAGE, ctx);

    // Double-buffered shm fan-in: post the next member's receive before
    // combining the previous one's bytes.
    let scratch = [HostBuf::alloc(bytes), HostBuf::alloc(bytes)];
    let mut pending: Option<(ReqId, usize)> = None;
    let mut bank = 0usize;
    for &m in h.groups[h.my_node].iter().filter(|&&g| g != me) {
        let id = eng.irecv(
            Loc::Host(scratch[bank].base()),
            bytes,
            &byte,
            SrcSel(Some(c.world_rank_of(m))),
            TagSel(Some(tag + T_FANIN)),
            ctx,
        );
        if let Some((prev, pb)) = pending.take() {
            coll_wait(&mut eng, vec![prev]);
            combine_bytes(op, dtype, &mut acc, &scratch[pb].read(0, bytes));
        }
        pending = Some((id, bank));
        bank ^= 1;
    }
    if let Some((prev, pb)) = pending.take() {
        coll_wait(&mut eng, vec![prev]);
        combine_bytes(op, dtype, &mut acc, &scratch[pb].read(0, bytes));
    }

    binomial_reduce_bytes(
        c,
        &mut eng,
        &reps,
        root_node,
        &mut acc,
        dtype,
        op,
        tag + T_TREE,
        ctx,
    );
    if me == root {
        deliver_from_host(
            &mut eng,
            me_w,
            &acc,
            recvbuf,
            count,
            dtype,
            tag + T_OUT,
            ctx,
        );
    }
}

/// Hierarchical pipelined allreduce. The payload is cut into
/// `coll.pipeline_chunk` segments; per segment: members send their slice
/// to the node leader over shm (typed, straight out of the user buffer),
/// the leader folds all local slices, the leaders reduce-then-broadcast
/// the segment over the binomial wire tree, and the leader fans the
/// reduced slice back out over shm into each member's `recvbuf` slice.
/// Segment `s+1`'s fan-in receives are posted before segment `s` is
/// combined, and fan-in/fan-out traffic is windowed by `coll.max_inflight`
/// segments, so shm, combine and wire time overlap across segments.
#[allow(clippy::too_many_arguments)]
pub(super) fn allreduce(
    c: &Comm,
    h: &Hierarchy,
    sendbuf: &Loc,
    recvbuf: &Loc,
    count: usize,
    dtype: &Datatype,
    op: ReduceOp,
    tag: u32,
    ctx: u16,
) {
    let me = c.rank();
    let psz = dtype.size();
    let bytes = count * psz;
    if bytes == 0 {
        return;
    }
    let byte = byte_dt();
    let leaders = h.leaders();
    let my_group = &h.groups[h.my_node];
    let leader = my_group[0];
    let leader_w = c.world_rank_of(leader);
    let (w, chunk) = {
        let eng = c.engine().lock();
        (eng.cfg.coll.max_inflight, eng.cfg.coll.pipeline_chunk)
    };
    let nseg = bytes.div_ceil(chunk);
    let seg_of = |s: usize| {
        let off = s * chunk;
        (off, chunk.min(bytes - off))
    };
    const T_STAGE_IN: u32 = 1;
    const T_STAGE_OUT: u32 = 2;
    let t_fanin = |s: usize| tag + 1024 + (s % 1024) as u32;
    let t_fanout = |s: usize| tag + 2048 + (s % 1024) as u32;
    let t_tree = |s: usize| tag + 4096 + (s % 1024) as u32;
    let t_tree_bc = |s: usize| tag + 8192 + (s % 1024) as u32;
    let mut eng = c.engine().lock();

    if me != leader {
        // Members stream slices to the leader and receive reduced slices
        // back, both bounded to `w` outstanding segments. pipeline_chunk
        // is a multiple of every primitive size, so slice boundaries
        // always fall on element boundaries.
        let mut sends = ReqWindow::new(w);
        let mut recvs = ReqWindow::new(w);
        for s in 0..nseg {
            let (off, sb) = seg_of(s);
            let n_el = sb / psz;
            let sid = eng.isend(sendbuf.add(off), n_el, dtype, leader_w, t_fanin(s), ctx);
            sends.push(&mut eng, vec![sid]);
            let rid = eng.irecv(
                recvbuf.add(off),
                n_el,
                dtype,
                SrcSel(Some(leader_w)),
                TagSel(Some(t_fanout(s))),
                ctx,
            );
            recvs.push(&mut eng, vec![rid]);
        }
        sends.drain(&mut eng);
        recvs.drain(&mut eng);
        return;
    }

    // Leader. Stage my whole contribution once; the pipeline then works
    // in packed bytes.
    let me_w = c.world_rank_of(me);
    let mut acc = stage_to_host(&mut eng, me_w, sendbuf, count, dtype, tag + T_STAGE_IN, ctx);
    let members: Vec<usize> = my_group[1..].to_vec();
    let nm = members.len();

    // Two banks of per-member segment scratch: bank s%2 holds segment s's
    // fan-in, and segment s+1's receives are posted before segment s is
    // combined, so members' shm transfers overlap the leader's work.
    let banks: [Vec<HostBuf>; 2] = [
        (0..nm).map(|_| HostBuf::alloc(chunk)).collect(),
        (0..nm).map(|_| HostBuf::alloc(chunk)).collect(),
    ];
    let mut bank_ids: [Vec<ReqId>; 2] = [Vec::new(), Vec::new()];
    let post_bank = |eng: &mut crate::engine::Engine, s: usize, bank: &Vec<HostBuf>| {
        let (_, sb) = seg_of(s);
        members
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                eng.irecv(
                    Loc::Host(bank[i].base()),
                    sb,
                    &byte,
                    SrcSel(Some(c.world_rank_of(m))),
                    TagSel(Some(t_fanin(s))),
                    ctx,
                )
            })
            .collect::<Vec<ReqId>>()
    };
    bank_ids[0] = post_bank(&mut eng, 0, &banks[0]);

    let mut fanout = ReqWindow::new(w);
    for s in 0..nseg {
        let (off, sb) = seg_of(s);
        let cur = s % 2;
        if s + 1 < nseg {
            bank_ids[1 - cur] = post_bank(&mut eng, s + 1, &banks[1 - cur]);
        }
        let ids = std::mem::take(&mut bank_ids[cur]);
        coll_wait(&mut eng, ids);
        let seg = &mut acc[off..off + sb];
        for buf in &banks[cur] {
            combine_bytes(op, dtype, seg, &buf.read(0, sb));
        }

        // Inter-node reduce + broadcast of this segment over the leader
        // tree while later segments are still fanning in.
        binomial_reduce_bytes(c, &mut eng, &leaders, 0, seg, dtype, op, t_tree(s), ctx);
        binomial_bcast_bytes(c, &mut eng, &leaders, 0, seg, t_tree_bc(s), ctx);

        // Fan the reduced segment back out over shm; the engine's send
        // state keeps the wire buffer alive until delivery.
        if nm > 0 {
            let out = HostBuf::from_vec(seg.to_vec());
            let ids: Vec<ReqId> = members
                .iter()
                .map(|&m| {
                    eng.isend(
                        Loc::Host(out.base()),
                        sb,
                        &byte,
                        c.world_rank_of(m),
                        t_fanout(s),
                        ctx,
                    )
                })
                .collect();
            fanout.push(&mut eng, ids);
        }
    }
    fanout.drain(&mut eng);
    deliver_from_host(
        &mut eng,
        me_w,
        &acc,
        recvbuf,
        count,
        dtype,
        tag + T_STAGE_OUT,
        ctx,
    );
}

/// Hierarchical alltoallv. Four phases, all windowed:
///
/// * **metadata** — members ship their per-peer byte counts to the node
///   leader (16·P bytes), so the leader can size every aggregate without
///   global communication;
/// * **A (fan-in)** — every rank sends its leader one hindexed message per
///   *remote node* `Y`, gathering all its blocks destined for `Y` straight
///   out of `sendbuf`; intra-node blocks are exchanged pairwise over shm
///   directly between members, never touching the leader;
/// * **B/C (wire)** — leaders exchange per-node aggregates pairwise: one
///   wire message per node pair instead of ppn² rank pairs;
/// * **D (fan-out)** — the leader re-slices each inbound aggregate per
///   member with hindexed views and ships each member its blocks, which
///   land at their `rdispls` offsets via hindexed receives.
#[allow(clippy::too_many_arguments)]
pub(super) fn alltoallv(
    c: &Comm,
    h: &Hierarchy,
    sendbuf: &Loc,
    scounts: &[usize],
    sdispls: &[usize],
    sdtype: &Datatype,
    recvbuf: &Loc,
    rcounts: &[usize],
    rdispls: &[usize],
    rdtype: &Datatype,
    tag: u32,
    ctx: u16,
) {
    let me = c.rank();
    let size = c.size();
    let ssz = sdtype.size();
    let rsz = rdtype.size();
    let sb: Vec<usize> = scounts.iter().map(|&n| n * ssz).collect();
    let rb: Vec<usize> = rcounts.iter().map(|&n| n * rsz).collect();
    let byte = byte_dt();
    let nn = h.groups.len();
    let my_group = &h.groups[h.my_node];
    let nl = my_group.len();
    let mi = my_group
        .iter()
        .position(|&g| g == me)
        .expect("calling rank is in its own node group");
    let leader_w = c.world_rank_of(my_group[0]);
    let is_leader = mi == 0;
    let w = c.coll_window();
    const T_META: u32 = 1;
    const T_WIRE: u32 = 2;
    const T_INTRA: u32 = 3;
    const T_FANIN: u32 = 4096;
    const T_FANOUT: u32 = 8192;
    let mut eng = c.engine().lock();

    // --- Metadata: the leader learns every local member's per-peer send
    // and receive byte counts (its own it knows locally). Serialized as
    // u64 LE: scounts-bytes then rcounts-bytes.
    let mut member_sb: Vec<Vec<usize>> = vec![Vec::new(); nl];
    let mut member_rb: Vec<Vec<usize>> = vec![Vec::new(); nl];
    member_sb[mi] = sb.clone();
    member_rb[mi] = rb.clone();
    if !is_leader {
        let mut ser = Vec::with_capacity(16 * size);
        for v in sb.iter().chain(rb.iter()) {
            ser.extend_from_slice(&(*v as u64).to_le_bytes());
        }
        let mbuf = HostBuf::from_vec(ser);
        let id = eng.isend(
            Loc::Host(mbuf.base()),
            16 * size,
            &byte,
            leader_w,
            tag + T_META,
            ctx,
        );
        coll_wait(&mut eng, vec![id]);
    } else if nl > 1 {
        let mut ids = Vec::new();
        let bufs: Vec<HostBuf> = (1..nl).map(|_| HostBuf::alloc(16 * size)).collect();
        for (i, buf) in bufs.iter().enumerate() {
            ids.push(eng.irecv(
                Loc::Host(buf.base()),
                16 * size,
                &byte,
                SrcSel(Some(c.world_rank_of(my_group[i + 1]))),
                TagSel(Some(tag + T_META)),
                ctx,
            ));
        }
        coll_wait(&mut eng, ids);
        let word = |raw: &[u8], j: usize| {
            u64::from_le_bytes(raw[8 * j..8 * j + 8].try_into().unwrap()) as usize
        };
        for (i, buf) in bufs.iter().enumerate() {
            let raw = buf.read(0, 16 * size);
            member_sb[i + 1] = (0..size).map(|j| word(&raw, j)).collect();
            member_rb[i + 1] = (0..size).map(|j| word(&raw, size + j)).collect();
        }
    }

    // Host-primitive buffers let the leader splice its own blocks into the
    // aggregates with plain copies; a loopback self-send would bill this
    // node-local bookkeeping to the HCA (see `transport_for`). Device or
    // derived buffers still take the self-send so the pack pipeline runs.
    let s_direct = host_direct(sendbuf, sdtype);
    let r_direct = host_direct(recvbuf, rdtype);

    // --- Fan-in layout: each member ships its leader ONE message — an
    // hindexed gather of every remote-destined block in `sendbuf`, ordered
    // by destination node (ascending), then by destination rank in that
    // node's group order. One message per member (instead of one per
    // member x node) keeps the leader's per-message protocol cost from
    // swamping the aggregation win; the leader re-slices the streams into
    // per-destination wire aggregates with local copies.
    let remote_nodes: Vec<usize> = (0..nn).filter(|&y| y != h.my_node).collect();
    // member i's fan-in stream length, and its section offset for node y.
    let stream_len = |i: usize| -> usize {
        remote_nodes
            .iter()
            .flat_map(|&y| h.groups[y].iter())
            .map(|&j| member_sb[i][j])
            .sum()
    };
    let section_off = |i: usize, y: usize| -> usize {
        remote_nodes
            .iter()
            .take_while(|&&y2| y2 != y)
            .flat_map(|&y2| h.groups[y2].iter())
            .map(|&j| member_sb[i][j])
            .sum()
    };

    // --- Phase A receives (leader): one stream per local member. The
    // leader's own stream is spliced locally when the send side is
    // host-primitive, and loops back through the pack pipeline otherwise.
    let mut a_ids: Vec<ReqId> = Vec::new();
    let mut a_scratch: Vec<Option<HostBuf>> = (0..nl).map(|_| None).collect();
    if is_leader {
        for (i, &m) in my_group.iter().enumerate() {
            if i == 0 && s_direct {
                continue;
            }
            let total = stream_len(i);
            let buf = HostBuf::alloc(total);
            a_ids.push(eng.irecv(
                Loc::Host(buf.base()),
                total,
                &byte,
                SrcSel(Some(c.world_rank_of(m))),
                TagSel(Some(tag + T_FANIN)),
                ctx,
            ));
            a_scratch[i] = Some(buf);
        }
    }

    // --- Phase A send (every rank; the leader's is a self-message unless
    // spliced directly during assembly below).
    let mut a_send = Vec::new();
    if !(is_leader && s_direct) {
        let blocks: Vec<(usize, isize)> = remote_nodes
            .iter()
            .flat_map(|&y| h.groups[y].iter())
            .filter(|&&j| scounts[j] > 0)
            .map(|&j| (scounts[j], sdispls[j] as isize))
            .collect();
        let id = if blocks.is_empty() {
            let empty = HostBuf::alloc(0);
            eng.isend(
                Loc::Host(empty.base()),
                0,
                &byte,
                leader_w,
                tag + T_FANIN,
                ctx,
            )
        } else {
            let dt = Datatype::hindexed(&blocks, sdtype);
            dt.commit();
            eng.isend(sendbuf.clone(), 1, &dt, leader_w, tag + T_FANIN, ctx)
        };
        a_send.push(id);
    }

    // --- Phase D receive (every rank), posted before anything blocks: ONE
    // hindexed message from my leader scattering every remote-sourced
    // block to its displacement, ordered by source node (ascending), then
    // by source rank in group order. The leader's own share is spliced
    // directly when the receive side is host-primitive.
    let mut d_ids = Vec::new();
    if !(is_leader && r_direct) {
        let blocks: Vec<(usize, isize)> = remote_nodes
            .iter()
            .flat_map(|&x| h.groups[x].iter())
            .filter(|&&s| rcounts[s] > 0)
            .map(|&s| (rcounts[s], rdispls[s] as isize))
            .collect();
        let id = if blocks.is_empty() {
            let empty = HostBuf::alloc(0);
            eng.irecv(
                Loc::Host(empty.base()),
                0,
                &byte,
                SrcSel(Some(leader_w)),
                TagSel(Some(tag + T_FANOUT)),
                ctx,
            )
        } else {
            let dt = Datatype::hindexed(&blocks, rdtype);
            dt.commit();
            eng.irecv(
                recvbuf.clone(),
                1,
                &dt,
                SrcSel(Some(leader_w)),
                TagSel(Some(tag + T_FANOUT)),
                ctx,
            )
        };
        d_ids.push(id);
    }

    // --- Intra-node blocks: pairwise over shm, leader not involved. The
    // self-pair is a plain copy when both sides are host-primitive (a
    // self-send would ride the HCA loopback path).
    let mut i_win = ReqWindow::new(w);
    for r in 0..nl {
        let sp = my_group[(mi + r) % nl];
        let rp = my_group[(mi + nl - r) % nl];
        if r == 0 && s_direct && r_direct {
            if sb[me] > 0 {
                write_host_block(
                    recvbuf,
                    rdispls[me],
                    &read_host_block(sendbuf, sdispls[me], sb[me]),
                );
            }
            continue;
        }
        let mut ids = Vec::new();
        ids.push(if rcounts[rp] > 0 {
            let dt = Datatype::hindexed(&[(rcounts[rp], rdispls[rp] as isize)], rdtype);
            dt.commit();
            eng.irecv(
                recvbuf.clone(),
                1,
                &dt,
                SrcSel(Some(c.world_rank_of(rp))),
                TagSel(Some(tag + T_INTRA)),
                ctx,
            )
        } else {
            let empty = HostBuf::alloc(0);
            eng.irecv(
                Loc::Host(empty.base()),
                0,
                &byte,
                SrcSel(Some(c.world_rank_of(rp))),
                TagSel(Some(tag + T_INTRA)),
                ctx,
            )
        });
        ids.push(if scounts[sp] > 0 {
            let dt = Datatype::hindexed(&[(scounts[sp], sdispls[sp] as isize)], sdtype);
            dt.commit();
            eng.isend(
                sendbuf.clone(),
                1,
                &dt,
                c.world_rank_of(sp),
                tag + T_INTRA,
                ctx,
            )
        } else {
            let empty = HostBuf::alloc(0);
            eng.isend(
                Loc::Host(empty.base()),
                0,
                &byte,
                c.world_rank_of(sp),
                tag + T_INTRA,
                ctx,
            )
        });
        i_win.push(&mut eng, ids);
    }
    i_win.drain(&mut eng);

    if is_leader {
        // --- Phase C receives, posted before any waiting so peer leaders'
        // aggregates stream in while this node's fan-in is still draining
        // (an unposted receive would park inbound transfers at RTS and
        // serialize the leaders against each other).
        let mut in_agg: Vec<Option<HostBuf>> = (0..nn).map(|_| None).collect();
        let mut c_ids = Vec::new();
        for &x in &remote_nodes {
            let total: usize = h.groups[x]
                .iter()
                .map(|&s| (0..nl).map(|i| member_rb[i][s]).sum::<usize>())
                .sum();
            let buf = HostBuf::alloc(total);
            c_ids.push(eng.irecv(
                Loc::Host(buf.base()),
                total,
                &byte,
                SrcSel(Some(c.world_rank_of(h.groups[x][0]))),
                TagSel(Some(tag + T_WIRE)),
                ctx,
            ));
            in_agg[x] = Some(buf);
        }

        coll_wait(&mut eng, a_ids);

        // --- Assemble per-destination wire aggregates: span per local
        // member (group order), each span that member's blocks for Y's
        // members in group order — copied out of the fan-in streams (or
        // straight out of sendbuf for the leader's own span).
        let mut out_agg: Vec<Option<HostBuf>> = (0..nn).map(|_| None).collect();
        for &y in &remote_nodes {
            let grp = &h.groups[y];
            let spans: Vec<usize> = (0..nl)
                .map(|i| grp.iter().map(|&j| member_sb[i][j]).sum())
                .collect();
            let buf = HostBuf::alloc(spans.iter().sum());
            let mut cur = 0usize;
            for (i, &span) in spans.iter().enumerate() {
                if i == 0 && s_direct {
                    let mut off = cur;
                    for &j in grp {
                        if sb[j] > 0 {
                            buf.write(off, &read_host_block(sendbuf, sdispls[j], sb[j]));
                            off += sb[j];
                        }
                    }
                } else {
                    let src = a_scratch[i].as_ref().expect("fan-in stream present");
                    buf.write(cur, &src.read(section_off(i, y), span));
                }
                cur += span;
            }
            out_agg[y] = Some(buf);
        }

        // --- Phase B sends: one aggregate per destination node, in
        // shifted order so no two leaders hammer the same target.
        let mut b_win = ReqWindow::new(w);
        for r in 1..nn {
            let y = (h.my_node + r) % nn;
            let buf = out_agg[y].as_ref().expect("assembled above");
            let id = eng.isend(
                Loc::Host(buf.base()),
                buf.len(),
                &byte,
                c.world_rank_of(h.groups[y][0]),
                tag + T_WIRE,
                ctx,
            );
            b_win.push(&mut eng, vec![id]);
        }

        coll_wait(&mut eng, c_ids);

        // --- Phase D sends: ONE message per local member, concatenating
        // its blocks from every inbound aggregate in source-node order —
        // the exact stream its hindexed receive scatters to rdispls.
        // Aggregate layout (fixed by the sender's phase A/assembly): spans
        // per source member in X's group order; within a span, blocks for
        // my node's members in group order, block (s -> d) being
        // `member_rb[d][s]` bytes (the byte-total contract makes the
        // sender's scounts and our rcounts agree).
        let mut d_win = ReqWindow::new(w);
        for di in 0..nl {
            let mut payload: Vec<u8> = Vec::new();
            let mut splice: Vec<(usize, Vec<u8>)> = Vec::new();
            for &x in &remote_nodes {
                let grp = &h.groups[x];
                let buf = in_agg[x].as_ref().expect("phase C filled this aggregate");
                let mut base = 0usize;
                for &s in grp {
                    let within: usize = (0..di).map(|i| member_rb[i][s]).sum();
                    let len = member_rb[di][s];
                    if len > 0 {
                        let bytes = buf.read(base + within, len);
                        if di == 0 && r_direct {
                            splice.push((rdispls[s], bytes));
                        } else {
                            payload.extend_from_slice(&bytes);
                        }
                    }
                    base += (0..nl).map(|i| member_rb[i][s]).sum::<usize>();
                }
            }
            if di == 0 && r_direct {
                for (displ, bytes) in splice {
                    write_host_block(recvbuf, displ, &bytes);
                }
                continue;
            }
            let out = HostBuf::from_vec(payload);
            let id = eng.isend(
                Loc::Host(out.base()),
                out.len(),
                &byte,
                c.world_rank_of(my_group[di]),
                tag + T_FANOUT,
                ctx,
            );
            d_win.push(&mut eng, vec![id]);
        }
        b_win.drain(&mut eng);
        d_win.drain(&mut eng);
    }
    coll_wait(&mut eng, a_send);
    coll_wait(&mut eng, d_ids);
}
