use super::*;
use crate::proto::{CollAlgo, MpiConfig};
use crate::world::MpiWorld;
use hostmem::{bytes_to_scalars, scalars_to_bytes};

/// A world with `n` ranks packed `ppn` per node and a forced collective
/// algorithm family — the test matrix axis.
fn world(n: usize, ppn: usize, algo: CollAlgo) -> MpiWorld {
    let mut cfg = MpiConfig {
        ppn,
        ..MpiConfig::default()
    };
    cfg.coll.algo = algo;
    MpiWorld::new(n).with_config(cfg)
}

const ALGOS: [CollAlgo; 3] = [CollAlgo::Naive, CollAlgo::Flat, CollAlgo::Hier];

#[test]
fn bcast_reaches_every_rank() {
    MpiWorld::new(6).run(|comm| {
        let t = Datatype::int();
        t.commit();
        let buf = HostBuf::alloc(40);
        if comm.rank() == 2 {
            buf.write(0, &scalars_to_bytes(&(0..10).collect::<Vec<i32>>()));
        }
        comm.bcast(buf.base(), 10, &t, 2);
        assert_eq!(
            bytes_to_scalars::<i32>(&buf.read(0, 40)),
            (0..10).collect::<Vec<_>>(),
            "rank {}",
            comm.rank()
        );
    });
}

#[test]
fn bcast_large_rendezvous_payload() {
    MpiWorld::new(4).run(|comm| {
        let t = Datatype::byte();
        t.commit();
        let n = 300 << 10;
        let buf = HostBuf::alloc(n);
        if comm.rank() == 0 {
            buf.write(0, &vec![0xabu8; n]);
        }
        comm.bcast(buf.base(), n, &t, 0);
        assert_eq!(buf.read(n - 16, 16), vec![0xabu8; 16]);
    });
}

#[test]
fn gather_assembles_blocks_in_rank_order() {
    MpiWorld::new(4).run(|comm| {
        let t = Datatype::int();
        t.commit();
        let me = comm.rank() as i32;
        let send = HostBuf::from_vec(scalars_to_bytes(&[me * 10, me * 10 + 1]));
        let recv = HostBuf::alloc(4 * 8);
        comm.gather(send.base(), recv.base(), 2, &t, 1);
        if comm.rank() == 1 {
            assert_eq!(
                bytes_to_scalars::<i32>(&recv.read(0, 32)),
                vec![0, 1, 10, 11, 20, 21, 30, 31]
            );
        }
    });
}

#[test]
fn allgather_gives_everyone_everything() {
    MpiWorld::new(3).run(|comm| {
        let t = Datatype::double();
        t.commit();
        let me = comm.rank() as f64;
        let send = HostBuf::from_vec(scalars_to_bytes(&[me + 0.5]));
        let recv = HostBuf::alloc(3 * 8);
        comm.allgather(send.base(), recv.base(), 1, &t);
        assert_eq!(
            bytes_to_scalars::<f64>(&recv.read(0, 24)),
            vec![0.5, 1.5, 2.5]
        );
    });
}

#[test]
fn reduce_sum_and_max() {
    MpiWorld::new(5).run(|comm| {
        let t = Datatype::int();
        t.commit();
        let me = comm.rank() as i32;
        let send = HostBuf::from_vec(scalars_to_bytes(&[me, 100 - me]));
        let recv = HostBuf::alloc(8);
        comm.reduce(send.base(), recv.base(), 2, &t, ReduceOp::Sum, 0);
        if comm.rank() == 0 {
            assert_eq!(
                bytes_to_scalars::<i32>(&recv.read(0, 8)),
                vec![1 + 2 + 3 + 4, 100 + 99 + 98 + 97 + 96]
            );
        }
        comm.reduce(send.base(), recv.base(), 2, &t, ReduceOp::Max, 3);
        if comm.rank() == 3 {
            assert_eq!(bytes_to_scalars::<i32>(&recv.read(0, 8)), vec![4, 100]);
        }
    });
}

#[test]
fn allreduce_min_on_doubles() {
    MpiWorld::new(4).run(|comm| {
        let t = Datatype::double();
        t.commit();
        let me = comm.rank() as f64;
        let send = HostBuf::from_vec(scalars_to_bytes(&[me * 2.0 + 1.0]));
        let recv = HostBuf::alloc(8);
        comm.allreduce(send.base(), recv.base(), 1, &t, ReduceOp::Min);
        assert_eq!(bytes_to_scalars::<f64>(&recv.read(0, 8)), vec![1.0]);
    });
}

#[test]
fn scatter_distributes_root_blocks() {
    MpiWorld::new(4).run(|comm| {
        let t = Datatype::int();
        t.commit();
        let send = HostBuf::alloc(4 * 8);
        if comm.rank() == 2 {
            send.write(0, &scalars_to_bytes(&(0..8).collect::<Vec<i32>>()));
        }
        let recv = HostBuf::alloc(8);
        comm.scatter(send.base(), recv.base(), 2, &t, 2);
        let me = comm.rank() as i32;
        assert_eq!(
            bytes_to_scalars::<i32>(&recv.read(0, 8)),
            vec![me * 2, me * 2 + 1]
        );
    });
}

#[test]
fn alltoall_transposes_blocks() {
    // Including a non-power-of-two size.
    for n in [3usize, 4] {
        MpiWorld::new(n).run(move |comm| {
            let t = Datatype::int();
            t.commit();
            let me = comm.rank() as i32;
            let send = HostBuf::from_vec(scalars_to_bytes(
                &(0..n as i32).map(|j| me * 100 + j).collect::<Vec<_>>(),
            ));
            let recv = HostBuf::alloc(n * 4);
            comm.alltoall(send.base(), recv.base(), 1, &t);
            assert_eq!(
                bytes_to_scalars::<i32>(&recv.read(0, n * 4)),
                (0..n as i32).map(|j| j * 100 + me).collect::<Vec<_>>(),
                "rank {me} of {n}"
            );
        });
    }
}

#[test]
fn scatter_then_gather_is_identity() {
    MpiWorld::new(4).run(|comm| {
        let t = Datatype::double();
        t.commit();
        let data: Vec<f64> = (0..12).map(|i| i as f64 * 0.5).collect();
        let root_buf = HostBuf::alloc(12 * 8);
        if comm.rank() == 0 {
            root_buf.write(0, &scalars_to_bytes(&data));
        }
        let mine = HostBuf::alloc(3 * 8);
        comm.scatter(root_buf.base(), mine.base(), 3, &t, 0);
        let out = HostBuf::alloc(12 * 8);
        comm.gather(mine.base(), out.base(), 3, &t, 0);
        if comm.rank() == 0 {
            assert_eq!(bytes_to_scalars::<f64>(&out.read(0, 96)), data);
        }
    });
}

#[test]
fn sendrecv_exchanges_without_deadlock() {
    MpiWorld::new(2).run(|comm| {
        let t = Datatype::byte();
        t.commit();
        let me = comm.rank();
        let peer = 1 - me;
        // Large enough that a naive send+send would rendezvous-block.
        let n = 200 << 10;
        let out = HostBuf::from_vec(vec![me as u8 + 1; n]);
        let inb = HostBuf::alloc(n);
        let st = comm.sendrecv(out.base(), n, &t, peer, 0, inb.base(), n, &t, peer, 0u32);
        assert_eq!(st.bytes, n);
        assert_eq!(inb.read(0, 8), vec![peer as u8 + 1; 8]);
    });
}

#[test]
fn consecutive_collectives_do_not_cross_talk() {
    MpiWorld::new(3).run(|comm| {
        let t = Datatype::int();
        t.commit();
        let a = HostBuf::alloc(4);
        let b = HostBuf::alloc(4);
        if comm.rank() == 0 {
            a.write(0, &scalars_to_bytes(&[111i32]));
            b.write(0, &scalars_to_bytes(&[222i32]));
        }
        comm.bcast(a.base(), 1, &t, 0);
        comm.bcast(b.base(), 1, &t, 0);
        assert_eq!(bytes_to_scalars::<i32>(&a.read(0, 4)), vec![111]);
        assert_eq!(bytes_to_scalars::<i32>(&b.read(0, 4)), vec![222]);
    });
}

#[test]
#[should_panic(expected = "reductions are defined on primitive")]
fn reduce_on_derived_type_is_rejected() {
    MpiWorld::new(2).run(|comm| {
        let t = Datatype::vector(2, 1, 2, &Datatype::int());
        t.commit();
        let buf = HostBuf::alloc(64);
        comm.reduce(buf.base(), buf.base(), 1, &t, ReduceOp::Sum, 0);
    });
}

// --- algorithm-family matrix ---------------------------------------------

/// Every family, flat and multi-node-with-shm layouts, non-power-of-two
/// sizes and non-leader roots: all collectives must produce identical
/// values.
#[test]
fn all_families_agree_on_all_collectives() {
    for algo in ALGOS {
        for (n, ppn) in [(6usize, 1usize), (8, 4), (6, 3), (9, 3), (8, 8)] {
            world(n, ppn, algo).run(move |comm| {
                let t = Datatype::int();
                t.commit();
                let me = comm.rank() as i32;
                let nn = n as i32;
                let root = n - 1; // last rank: never a node leader when ppn > 1

                // bcast
                let b = HostBuf::from_vec(scalars_to_bytes(&[if comm.rank() == root {
                    4242
                } else {
                    -1
                }]));
                comm.bcast(b.base(), 1, &t, root);
                assert_eq!(bytes_to_scalars::<i32>(&b.read(0, 4)), vec![4242]);

                // gather / scatter
                let send = HostBuf::from_vec(scalars_to_bytes(&[me, me + 1000]));
                let recv = HostBuf::alloc(n * 8);
                comm.gather(send.base(), recv.base(), 2, &t, root);
                if comm.rank() == root {
                    let got = bytes_to_scalars::<i32>(&recv.read(0, n * 8));
                    let want: Vec<i32> = (0..nn).flat_map(|i| [i, i + 1000]).collect();
                    assert_eq!(got, want, "gather {algo:?} n={n} ppn={ppn}");
                }
                let back = HostBuf::alloc(8);
                comm.scatter(recv.base(), back.base(), 2, &t, root);
                assert_eq!(
                    bytes_to_scalars::<i32>(&back.read(0, 8)),
                    vec![me, me + 1000],
                    "scatter {algo:?} n={n} ppn={ppn}"
                );

                // allgather
                let all = HostBuf::alloc(n * 8);
                comm.allgather(send.base(), all.base(), 2, &t);
                let want: Vec<i32> = (0..nn).flat_map(|i| [i, i + 1000]).collect();
                assert_eq!(
                    bytes_to_scalars::<i32>(&all.read(0, n * 8)),
                    want,
                    "allgather {algo:?} n={n} ppn={ppn}"
                );

                // alltoall
                let a2a_s = HostBuf::from_vec(scalars_to_bytes(
                    &(0..nn).map(|j| me * 100 + j).collect::<Vec<_>>(),
                ));
                let a2a_r = HostBuf::alloc(n * 4);
                comm.alltoall(a2a_s.base(), a2a_r.base(), 1, &t);
                assert_eq!(
                    bytes_to_scalars::<i32>(&a2a_r.read(0, n * 4)),
                    (0..nn).map(|j| j * 100 + me).collect::<Vec<_>>(),
                    "alltoall {algo:?} n={n} ppn={ppn}"
                );

                // reduce + allreduce
                let r = HostBuf::alloc(8);
                comm.reduce(send.base(), r.base(), 2, &t, ReduceOp::Sum, root);
                if comm.rank() == root {
                    let s: i32 = (0..nn).sum();
                    assert_eq!(
                        bytes_to_scalars::<i32>(&r.read(0, 8)),
                        vec![s, s + 1000 * nn],
                        "reduce {algo:?} n={n} ppn={ppn}"
                    );
                }
                comm.allreduce(send.base(), r.base(), 2, &t, ReduceOp::Max);
                assert_eq!(
                    bytes_to_scalars::<i32>(&r.read(0, 8)),
                    vec![nn - 1, nn - 1 + 1000],
                    "allreduce {algo:?} n={n} ppn={ppn}"
                );
            });
        }
    }
}

/// A pipelined hierarchical allreduce spanning many `pipeline_chunk`
/// segments must still fold every element exactly once.
#[test]
fn pipelined_allreduce_spans_many_segments() {
    let mut cfg = MpiConfig {
        ppn: 4,
        ..MpiConfig::default()
    };
    cfg.coll.pipeline_chunk = 4 << 10; // force ~32 segments
    cfg.coll.max_inflight = 3;
    MpiWorld::new(8).with_config(cfg).run(|comm| {
        let t = Datatype::float();
        t.commit();
        let n = 32 << 10; // 128 KiB of f32
        let me = comm.rank() as f32;
        let vals: Vec<f32> = (0..n).map(|i| (i % 97) as f32 + me).collect();
        let send = HostBuf::from_vec(scalars_to_bytes(&vals));
        let recv = HostBuf::alloc(n * 4);
        comm.allreduce(send.base(), recv.base(), n, &t, ReduceOp::Sum);
        // Integer-valued f32 sums are exact in any fold order.
        let got = bytes_to_scalars::<f32>(&recv.read(0, n * 4));
        for (i, &g) in got.iter().enumerate() {
            let want = 8.0 * (i % 97) as f32 + (0..8).map(|r| r as f32).sum::<f32>();
            assert_eq!(g, want, "element {i}");
        }
    });
}

/// allgatherv with ragged counts and gaps between displacements, on both
/// single-level and hierarchical layouts.
#[test]
fn allgatherv_with_ragged_counts() {
    for algo in [CollAlgo::Flat, CollAlgo::Hier] {
        for ppn in [1usize, 3] {
            world(6, ppn, algo).run(move |comm| {
                let t = Datatype::int();
                t.commit();
                let me = comm.rank();
                // Rank j contributes j+1 ints; blocks placed with an
                // 8-byte gap between them.
                let counts: Vec<usize> = (0..6).map(|j| j + 1).collect();
                let displs: Vec<usize> = counts
                    .iter()
                    .scan(0usize, |acc, &c| {
                        let d = *acc;
                        *acc += c * 4 + 8;
                        Some(d)
                    })
                    .collect();
                let total = displs[5] + counts[5] * 4;
                let mine: Vec<i32> = (0..counts[me]).map(|k| (me * 100 + k) as i32).collect();
                let send = HostBuf::from_vec(scalars_to_bytes(&mine));
                let recv = HostBuf::alloc(total);
                comm.allgatherv(
                    send.base(),
                    counts[me],
                    &t,
                    recv.base(),
                    &counts,
                    &displs,
                    &t,
                );
                for j in 0..6 {
                    let got = bytes_to_scalars::<i32>(&recv.read(displs[j], counts[j] * 4));
                    let want: Vec<i32> = (0..counts[j]).map(|k| (j * 100 + k) as i32).collect();
                    assert_eq!(got, want, "{algo:?} ppn={ppn} block {j}");
                }
            });
        }
    }
}

/// alltoallv with ragged per-pair counts (rank i sends i+j+1 ints to rank
/// j), on both single-level and hierarchical layouts.
#[test]
fn alltoallv_with_ragged_counts() {
    for algo in [CollAlgo::Flat, CollAlgo::Hier] {
        for ppn in [1usize, 2, 3] {
            world(6, ppn, algo).run(move |comm| {
                let t = Datatype::int();
                t.commit();
                let me = comm.rank();
                let n = 6usize;
                let cnt = |i: usize, j: usize| i + j + 1;
                let scounts: Vec<usize> = (0..n).map(|j| cnt(me, j)).collect();
                let rcounts: Vec<usize> = (0..n).map(|j| cnt(j, me)).collect();
                let prefix = |cs: &[usize]| -> Vec<usize> {
                    cs.iter()
                        .scan(0usize, |acc, &c| {
                            let d = *acc;
                            *acc += c * 4;
                            Some(d)
                        })
                        .collect()
                };
                let sdispls = prefix(&scounts);
                let rdispls = prefix(&rcounts);
                let stotal: usize = scounts.iter().sum::<usize>() * 4;
                let rtotal: usize = rcounts.iter().sum::<usize>() * 4;
                let mut sdata = Vec::new();
                for (j, &sc) in scounts.iter().enumerate() {
                    for k in 0..sc {
                        sdata.push((me * 10000 + j * 100 + k) as i32);
                    }
                }
                let send = HostBuf::from_vec(scalars_to_bytes(&sdata));
                assert_eq!(send.len(), stotal);
                let recv = HostBuf::alloc(rtotal);
                comm.alltoallv(
                    send.base(),
                    &scounts,
                    &sdispls,
                    &t,
                    recv.base(),
                    &rcounts,
                    &rdispls,
                    &t,
                );
                for j in 0..n {
                    let got = bytes_to_scalars::<i32>(&recv.read(rdispls[j], rcounts[j] * 4));
                    let want: Vec<i32> = (0..rcounts[j])
                        .map(|k| (j * 10000 + me * 100 + k) as i32)
                        .collect();
                    assert_eq!(got, want, "{algo:?} ppn={ppn} from {j}");
                }
            });
        }
    }
}

/// alltoallv where the send side is a strided (non-contiguous) datatype
/// and the receive side is contiguous — the transpose access pattern. The
/// wire carries packed bytes, so the signatures only need matching byte
/// totals.
#[test]
fn alltoallv_strided_send_contiguous_recv() {
    for algo in [CollAlgo::Flat, CollAlgo::Hier] {
        world(4, 2, algo).run(move |comm| {
            let n = 4usize;
            let me = comm.rank();
            // Each rank holds a 4x4 i32 matrix row-major; column j goes to
            // rank j as 4 strided elements.
            let int = Datatype::int();
            int.commit();
            let col = Datatype::hvector(4, 1, 16, &int);
            col.commit();
            let mat: Vec<i32> = (0..16).map(|k| (me * 100 + k) as i32).collect();
            let send = HostBuf::from_vec(scalars_to_bytes(&mat));
            let scounts = vec![1usize; n];
            let sdispls: Vec<usize> = (0..n).map(|j| j * 4).collect(); // column starts
            let rcounts = vec![4usize; n];
            let rdispls: Vec<usize> = (0..n).map(|j| j * 16).collect();
            let recv = HostBuf::alloc(64);
            comm.alltoallv(
                send.base(),
                &scounts,
                &sdispls,
                &col,
                recv.base(),
                &rcounts,
                &rdispls,
                &int,
            );
            // Block j of recv = rank j's column `me`.
            for j in 0..n {
                let got = bytes_to_scalars::<i32>(&recv.read(j * 16, 16));
                let want: Vec<i32> = (0..4).map(|r| (j * 100 + r * 4 + me) as i32).collect();
                assert_eq!(got, want, "{algo:?} column from rank {j}");
            }
        });
    }
}

/// The hierarchy must fall back to the flat path when every rank sits on
/// its own node (no shm to exploit) — and still be correct either way.
#[test]
fn hier_degrades_to_flat_on_one_rank_per_node() {
    world(5, 1, CollAlgo::Hier).run(|comm| {
        let t = Datatype::int();
        t.commit();
        let me = comm.rank() as i32;
        let send = HostBuf::from_vec(scalars_to_bytes(&[me]));
        let recv = HostBuf::alloc(4);
        comm.allreduce(send.base(), recv.base(), 1, &t, ReduceOp::Sum);
        assert_eq!(bytes_to_scalars::<i32>(&recv.read(0, 4)), vec![10]);
    });
}

/// Collectives inside a split sub-communicator must build the hierarchy
/// from the subgroup only (here: one member per node after the split).
#[test]
fn hier_collectives_inside_subcomm() {
    world(8, 4, CollAlgo::Hier).run(|comm| {
        let sub = comm.split((comm.rank() % 4) as i64, 0).unwrap();
        assert_eq!(sub.size(), 2);
        let t = Datatype::int();
        t.commit();
        let send = HostBuf::from_vec(scalars_to_bytes(&[comm.rank() as i32]));
        let recv = HostBuf::alloc(4);
        sub.allreduce(send.base(), recv.base(), 1, &t, ReduceOp::Sum);
        let expect = (comm.rank() % 4) as i32 * 2 + 4; // r and r+4
        assert_eq!(bytes_to_scalars::<i32>(&recv.read(0, 4)), vec![expect]);
    });
}

/// The hierarchical allreduce must move fewer bytes through the HCAs than
/// the naive funnel (every remote rank shipping its full vector to rank
/// 0): only one combined stream per node crosses the wire. (The flat
/// binomial happens to be node-aligned on a blocked power-of-two layout,
/// so the naive path is the honest bandwidth baseline here — `coll_sweep`
/// compares all three.)
#[test]
fn hier_and_naive_reach_identical_values_but_hier_sheds_hca_bytes() {
    let run = |algo: CollAlgo| {
        let rec = sim_trace::Recorder::new();
        let t_end = world(8, 4, algo).with_recorder(rec.clone()).run(|comm| {
            let t = Datatype::float();
            t.commit();
            let n = 16 << 10;
            let vals: Vec<f32> = (0..n).map(|i| (i % 31) as f32).collect();
            let send = HostBuf::from_vec(scalars_to_bytes(&vals));
            let recv = HostBuf::alloc(n * 4);
            comm.allreduce(send.base(), recv.base(), n, &t, ReduceOp::Sum);
            let got = bytes_to_scalars::<f32>(&recv.read(0, n * 4));
            assert_eq!(got[7], 8.0 * 7.0);
        });
        let m = rec.metrics();
        let hca: u64 = (0..2)
            .map(|k| {
                m.get(&format!("node{k}.hca.tx_bytes"))
                    .copied()
                    .unwrap_or(0)
            })
            .sum();
        (t_end, hca)
    };
    let (_, hca_naive) = run(CollAlgo::Naive);
    let (_, hca_hier) = run(CollAlgo::Hier);
    assert!(
        2 * hca_hier <= hca_naive,
        "hierarchical allreduce must shed HCA bytes: hier={hca_hier} naive={hca_naive}"
    );
}

// --- combine_bytes strictness --------------------------------------------

#[test]
#[should_panic(expected = "reduction operands differ in length")]
fn combine_rejects_mismatched_lengths() {
    let t = Datatype::int();
    combine_bytes(ReduceOp::Sum, &t, &mut [0u8; 8], &[0u8; 4]);
}

#[test]
#[should_panic(expected = "is not a multiple of")]
fn combine_rejects_partial_elements() {
    let t = Datatype::int();
    combine_bytes(ReduceOp::Sum, &t, &mut [0u8; 6], &[0u8; 6]);
}

// --- sub-communicators ---------------------------------------------------

#[test]
fn split_even_odd_groups() {
    MpiWorld::new(6).run(|comm| {
        let sub = comm.split((comm.rank() % 2) as i64, 0).unwrap();
        assert_eq!(sub.size(), 3);
        assert_eq!(sub.rank(), comm.rank() / 2);
        assert_eq!(sub.world_rank(), comm.rank());
        // Collective inside the subcomm: sum of world ranks of members.
        let t = Datatype::int();
        t.commit();
        let send = HostBuf::from_vec(scalars_to_bytes(&[comm.rank() as i32]));
        let recv = HostBuf::alloc(4);
        sub.allreduce(send.base(), recv.base(), 1, &t, ReduceOp::Sum);
        let expect = if comm.rank() % 2 == 0 {
            2 + 4
        } else {
            1 + 3 + 5
        };
        assert_eq!(bytes_to_scalars::<i32>(&recv.read(0, 4)), vec![expect]);
    });
}

#[test]
fn split_key_reorders_ranks() {
    MpiWorld::new(4).run(|comm| {
        // All one color, keys in reverse: group order flips.
        let sub = comm
            .split(7, -(comm.rank() as i64))
            .expect("all ranks join");
        assert_eq!(sub.size(), 4);
        assert_eq!(sub.rank(), 3 - comm.rank());
    });
}

#[test]
fn split_undefined_color_returns_none() {
    MpiWorld::new(4).run(|comm| {
        let sub = comm.split(if comm.rank() == 0 { -1 } else { 0 }, 0);
        if comm.rank() == 0 {
            assert!(sub.is_none());
        } else {
            let sub = sub.unwrap();
            assert_eq!(sub.size(), 3);
            // The subcomm still works without rank 0.
            sub.barrier();
        }
    });
}

#[test]
fn p2p_inside_subcomm_uses_group_ranks() {
    MpiWorld::new(4).run(|comm| {
        let color = (comm.rank() / 2) as i64; // {0,1} and {2,3}
        let sub = comm.split(color, 0).unwrap();
        let t = Datatype::int();
        t.commit();
        let buf = HostBuf::alloc(4);
        if sub.rank() == 0 {
            buf.write(0, &scalars_to_bytes(&[comm.rank() as i32]));
            sub.send(buf.base(), 1, &t, 1, 0);
        } else {
            let st = sub.recv(buf.base(), 1, &t, crate::ANY_SOURCE, 0u32);
            assert_eq!(st.src, 0, "status must carry the group rank");
            // The payload is the partner's world rank.
            let v = bytes_to_scalars::<i32>(&buf.read(0, 4))[0];
            assert_eq!(v as usize, comm.rank() - 1);
        }
    });
}

#[test]
fn wildcard_recv_cannot_see_other_subcomm() {
    MpiWorld::new(4).run(|comm| {
        let sub = comm.split((comm.rank() % 2) as i64, 0).unwrap();
        let t = Datatype::int();
        t.commit();
        let buf = HostBuf::from_vec(scalars_to_bytes(&[comm.rank() as i32]));
        // Everyone sends within their subcomm; ANY_SOURCE must only
        // match the same-color partner even though all four messages
        // are in flight with the same tag.
        let inb = HostBuf::alloc(4);
        let r = sub.irecv(inb.base(), 1, &t, crate::ANY_SOURCE, 5u32);
        let peer = 1 - sub.rank();
        sub.send(buf.base(), 1, &t, peer, 5);
        sub.wait(r);
        let got = bytes_to_scalars::<i32>(&inb.read(0, 4))[0] as usize;
        assert_eq!(got % 2, comm.rank() % 2, "crossed subcommunicator!");
    });
}

#[test]
fn dup_is_isolated_from_parent() {
    MpiWorld::new(2).run(|comm| {
        let dup = comm.dup();
        let t = Datatype::int();
        t.commit();
        let a = HostBuf::from_vec(scalars_to_bytes(&[1i32]));
        let b = HostBuf::from_vec(scalars_to_bytes(&[2i32]));
        let ra = HostBuf::alloc(4);
        let rb = HostBuf::alloc(4);
        let peer = 1 - comm.rank();
        // Same tag on both communicators, posted crosswise.
        let r1 = comm.irecv(ra.base(), 1, &t, peer, 3u32);
        let r2 = dup.irecv(rb.base(), 1, &t, peer, 3u32);
        dup.send(b.base(), 1, &t, peer, 3);
        comm.send(a.base(), 1, &t, peer, 3);
        comm.wait(r1);
        dup.wait(r2);
        assert_eq!(bytes_to_scalars::<i32>(&ra.read(0, 4)), vec![1]);
        assert_eq!(bytes_to_scalars::<i32>(&rb.read(0, 4)), vec![2]);
    });
}

#[test]
fn nested_splits_allocate_distinct_contexts() {
    MpiWorld::new(4).run(|comm| {
        let half = comm.split((comm.rank() / 2) as i64, 0).unwrap();
        let quarter = half.split(half.rank() as i64, 0).unwrap();
        assert_eq!(quarter.size(), 1);
        quarter.barrier();
        half.barrier();
        comm.barrier();
    });
}
