//! Collective operations, built over point-to-point on each communicator's
//! private collective context.
//!
//! The set real applications lean on: `barrier` (dissemination), `bcast`,
//! `gather`, `scatter`, `allgather`/`allgatherv`, `alltoall`/`alltoallv`,
//! `reduce`, `allreduce`, `sendrecv`. Collectives must be called in the
//! same order by every member (the MPI rule); a per-communicator sequence
//! number isolates consecutive collectives, and sub-communicators (from
//! [`Comm::split`]) get disjoint contexts so concurrent collectives on
//! different communicators cannot interfere.
//!
//! Three algorithm families, selected by
//! [`MpiConfig::coll`](crate::MpiConfig) (see
//! [`CollAlgo`](crate::CollAlgo)):
//!
//! * [`flat`] — single-level algorithms with bounded resource use:
//!   pairwise alltoall(v), ring allgather(v), binomial-tree reduce with
//!   double-buffered scratch. The `Naive` family (the original p2p loops)
//!   also lives there as the benchmark control.
//! * [`hier`] — topology-aware node-leader trees: co-located ranks fan
//!   in/out over the shm channel, only node leaders cross the wire, and
//!   reductions pipeline pack → intra-node combine → wire per segment.
//!
//! All data movement goes through the normal staging machinery, so every
//! collective (including the reductions, via loopback staging) works on
//! **device buffers too** — GPU-aware collectives, the natural extension
//! of the paper's design (and where MVAPICH2 went next).

mod flat;
mod hier;

use std::collections::VecDeque;

use gpu_sim::Loc;
use hostmem::{HostBuf, Scalar};
use sim_core::san;

use crate::comm::Comm;
use crate::datatype::Datatype;
use crate::engine::{Engine, SrcSel, TagSel};
use crate::proto::{CollAlgo, ReqId};

/// Tag window reserved per collective. Hierarchical algorithms index phase
/// tags by node id (strides of [`hier::MAX_NODES`]) and pipelined
/// reductions by segment, so the window is far wider than the handful of
/// rounds a flat binomial needs.
pub(crate) const TAGS_PER_COLL: u32 = 16384;

/// Predefined reduction operators.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    /// MPI_SUM.
    Sum,
    /// MPI_PROD.
    Prod,
    /// MPI_MAX.
    Max,
    /// MPI_MIN.
    Min,
}

impl ReduceOp {
    fn fold<T: Scalar + PartialOrd + std::ops::Add<Output = T> + std::ops::Mul<Output = T>>(
        &self,
        a: T,
        b: T,
    ) -> T {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Max => {
                if b > a {
                    b
                } else {
                    a
                }
            }
            ReduceOp::Min => {
                if b < a {
                    b
                } else {
                    a
                }
            }
        }
    }
}

pub(crate) fn coll_wait(eng: &mut Engine, ids: Vec<ReqId>) {
    loop {
        eng.progress();
        let all = ids.iter().all(|&id| {
            if eng.is_send(id) {
                eng.send_done(id)
            } else {
                eng.recv_done(id).is_some()
            }
        });
        if all {
            break;
        }
        eng.idle_block();
    }
    for id in ids {
        if eng.is_send(id) {
            eng.reap_send(id);
        } else {
            eng.reap_recv(id);
        }
    }
}

/// Elementwise `acc[i] = op(acc[i], inc[i])` on packed little-endian
/// primitive values. Rejects operand lengths that disagree or are not a
/// multiple of the primitive size — a silent `chunks_exact` skip here
/// would drop trailing elements of a mis-sized segment instead of
/// surfacing the bug.
pub(crate) fn combine_bytes(op: ReduceOp, dtype: &Datatype, acc: &mut [u8], inc: &[u8]) {
    fn fold_slice<T>(op: ReduceOp, acc: &mut [u8], inc: &[u8])
    where
        T: Scalar + PartialOrd + std::ops::Add<Output = T> + std::ops::Mul<Output = T>,
    {
        for (a, b) in acc.chunks_exact_mut(T::SIZE).zip(inc.chunks_exact(T::SIZE)) {
            let v = op.fold(T::read_le(a), T::read_le(b));
            v.write_le(a);
        }
    }
    let name = dtype
        .primitive_name()
        .expect("reductions are defined on primitive datatypes");
    assert_eq!(
        acc.len(),
        inc.len(),
        "reduction operands differ in length: {} vs {} bytes",
        acc.len(),
        inc.len()
    );
    assert!(
        acc.len().is_multiple_of(dtype.size()),
        "reduction byte count {} is not a multiple of the {}-byte primitive {name}",
        acc.len(),
        dtype.size()
    );
    match name {
        "MPI_FLOAT" => fold_slice::<f32>(op, acc, inc),
        "MPI_DOUBLE" => fold_slice::<f64>(op, acc, inc),
        "MPI_INT" => fold_slice::<i32>(op, acc, inc),
        "MPI_LONG" => fold_slice::<i64>(op, acc, inc),
        "MPI_BYTE" | "MPI_CHAR" => fold_slice::<u8>(op, acc, inc),
        other => panic!("no reduction defined for {other}"),
    }
}

/// A committed byte datatype (scratch traffic is always packed bytes).
pub(crate) fn byte_dt() -> Datatype {
    let b = Datatype::byte();
    b.commit();
    b
}

/// Bounded-in-flight request window: pushing a group past `cap` first
/// waits out (and reaps) the oldest group. Collectives use this instead of
/// posting every request at once, so a P-wide exchange never holds more
/// than `cap` operations per rank — the fix for the naive alltoall's P²
/// fabric-wide request storm.
pub(crate) struct ReqWindow {
    cap: usize,
    q: VecDeque<Vec<ReqId>>,
}

impl ReqWindow {
    pub(crate) fn new(cap: usize) -> Self {
        ReqWindow {
            cap: cap.max(1),
            q: VecDeque::new(),
        }
    }

    pub(crate) fn push(&mut self, eng: &mut Engine, ids: Vec<ReqId>) {
        if self.q.len() == self.cap {
            let old = self.q.pop_front().unwrap();
            coll_wait(eng, old);
        }
        self.q.push_back(ids);
    }

    pub(crate) fn drain(&mut self, eng: &mut Engine) {
        let ids: Vec<ReqId> = self.q.drain(..).flatten().collect();
        if !ids.is_empty() {
            coll_wait(eng, ids);
        }
    }
}

/// The packed host bytes of `(buf, count, dtype)`. A contiguous host
/// buffer is read directly; anything else (device memory, derived layouts)
/// is staged through a loopback self-message, which runs the real
/// pack-to-host pipeline — GPU reductions pay the same staging cost the
/// paper's point-to-point path does.
pub(crate) fn stage_to_host(
    eng: &mut Engine,
    me_world: usize,
    buf: &Loc,
    count: usize,
    dtype: &Datatype,
    tag: u32,
    ctx: u16,
) -> Vec<u8> {
    let bytes = count * dtype.size();
    if let Loc::Host(p) = buf {
        if dtype.primitive_name().is_some() {
            return p.read(bytes);
        }
    }
    let byte = byte_dt();
    let scratch = HostBuf::alloc(bytes);
    let s = eng.isend(buf.clone(), count, dtype, me_world, tag, ctx);
    let r = eng.irecv(
        Loc::Host(scratch.base()),
        bytes,
        &byte,
        SrcSel(Some(me_world)),
        TagSel(Some(tag)),
        ctx,
    );
    coll_wait(eng, vec![s, r]);
    scratch.read(0, bytes)
}

/// Deliver packed host bytes into `(buf, count, dtype)` — the inverse of
/// [`stage_to_host`]: direct write for contiguous host buffers, loopback
/// repack (host staging → device scatter) for everything else.
#[allow(clippy::too_many_arguments)]
pub(crate) fn deliver_from_host(
    eng: &mut Engine,
    me_world: usize,
    data: &[u8],
    buf: &Loc,
    count: usize,
    dtype: &Datatype,
    tag: u32,
    ctx: u16,
) {
    if let Loc::Host(p) = buf {
        if dtype.primitive_name().is_some() {
            p.write(data);
            return;
        }
    }
    let byte = byte_dt();
    let scratch = HostBuf::from_vec(data.to_vec());
    let s = eng.isend(
        Loc::Host(scratch.base()),
        data.len(),
        &byte,
        me_world,
        tag,
        ctx,
    );
    let r = eng.irecv(
        buf.clone(),
        count,
        dtype,
        SrcSel(Some(me_world)),
        TagSel(Some(tag)),
        ctx,
    );
    coll_wait(eng, vec![s, r]);
}

/// True when `(loc, dtype)` can be copied with plain host reads/writes —
/// host memory and a primitive datatype. Everything else (device buffers,
/// derived datatypes) must round-trip through the engine's pack pipeline.
///
/// Node-leader algorithms use this to splice the leader's *own* blocks
/// into an aggregate without a loopback self-send: self-sends ride the HCA
/// loopback path (see `transport_for`), so leaving them in would bill the
/// leader's node-local bookkeeping to the wire and distort the byte
/// accounting the hierarchy exists to improve.
pub(crate) fn host_direct(loc: &Loc, dtype: &Datatype) -> bool {
    matches!(loc, Loc::Host(_)) && dtype.primitive_name().is_some()
}

/// Read the `bytes`-long block at byte displacement `displ` of a
/// [`host_direct`] buffer.
pub(crate) fn read_host_block(loc: &Loc, displ: usize, bytes: usize) -> Vec<u8> {
    match loc {
        Loc::Host(p) => p.add(displ).read(bytes),
        Loc::Device(_) => unreachable!("read_host_block on a device buffer"),
    }
}

/// Write `data` at byte displacement `displ` of a [`host_direct`] buffer.
pub(crate) fn write_host_block(loc: &Loc, displ: usize, data: &[u8]) {
    match loc {
        Loc::Host(p) => p.add(displ).write(data),
        Loc::Device(_) => unreachable!("write_host_block on a device buffer"),
    }
}

/// Binomial-tree broadcast of `(buf, count, dtype)` over `members` (group
/// ranks), rooted at `members[ri]`. No-op for ranks outside `members`.
/// User buffers only — device-capable because every hop is an engine
/// transfer.
#[allow(clippy::too_many_arguments)]
pub(crate) fn binomial_bcast_loc(
    c: &Comm,
    eng: &mut Engine,
    members: &[usize],
    ri: usize,
    buf: &Loc,
    count: usize,
    dtype: &Datatype,
    tag: u32,
    ctx: u16,
) {
    let n = members.len();
    let me = c.rank();
    let Some(mi) = members.iter().position(|&g| g == me) else {
        return;
    };
    if n <= 1 {
        return;
    }
    let vrank = (mi + n - ri) % n;
    let world = |v: usize| c.world_rank_of(members[(v + ri) % n]);
    let mut mask = 1usize;
    while mask < n {
        if vrank & mask != 0 {
            let src = world(vrank - mask);
            let id = eng.irecv(
                buf.clone(),
                count,
                dtype,
                SrcSel(Some(src)),
                TagSel(Some(tag)),
                ctx,
            );
            coll_wait(eng, vec![id]);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if vrank & mask == 0 && vrank + mask < n {
            let dst = world(vrank + mask);
            let id = eng.isend(buf.clone(), count, dtype, dst, tag, ctx);
            coll_wait(eng, vec![id]);
        }
        mask >>= 1;
    }
}

/// Binomial-tree broadcast of packed host bytes over `members` (group
/// ranks), rooted at `members[ri]`: `data` must hold the payload on the
/// root and is overwritten with it everywhere else.
#[allow(clippy::too_many_arguments)]
pub(crate) fn binomial_bcast_bytes(
    c: &Comm,
    eng: &mut Engine,
    members: &[usize],
    ri: usize,
    data: &mut [u8],
    tag: u32,
    ctx: u16,
) {
    let n = members.len();
    let me = c.rank();
    let Some(mi) = members.iter().position(|&g| g == me) else {
        return;
    };
    if n <= 1 {
        return;
    }
    let byte = byte_dt();
    let bytes = data.len();
    let vrank = (mi + n - ri) % n;
    let world = |v: usize| c.world_rank_of(members[(v + ri) % n]);
    let wire = HostBuf::alloc(bytes);
    if vrank == 0 {
        wire.write(0, data);
    }
    let mut mask = 1usize;
    while mask < n {
        if vrank & mask != 0 {
            let src = world(vrank - mask);
            let id = eng.irecv(
                Loc::Host(wire.base()),
                bytes,
                &byte,
                SrcSel(Some(src)),
                TagSel(Some(tag)),
                ctx,
            );
            coll_wait(eng, vec![id]);
            data.copy_from_slice(&wire.read(0, bytes));
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if vrank & mask == 0 && vrank + mask < n {
            let dst = world(vrank + mask);
            let id = eng.isend(Loc::Host(wire.base()), bytes, &byte, dst, tag, ctx);
            coll_wait(eng, vec![id]);
        }
        mask >>= 1;
    }
}

/// Binomial-tree reduction of packed host bytes over `members` (group
/// ranks), rooted at `members[ri]`: every participant contributes `acc`;
/// on the root, `acc` holds the folded result on return. Child receives
/// are double-buffered — the next child's wire time overlaps the previous
/// child's combine.
#[allow(clippy::too_many_arguments)]
pub(crate) fn binomial_reduce_bytes(
    c: &Comm,
    eng: &mut Engine,
    members: &[usize],
    ri: usize,
    acc: &mut [u8],
    dtype: &Datatype,
    op: ReduceOp,
    tag: u32,
    ctx: u16,
) {
    let n = members.len();
    let me = c.rank();
    let Some(mi) = members.iter().position(|&g| g == me) else {
        return;
    };
    if n <= 1 {
        return;
    }
    let byte = byte_dt();
    let bytes = acc.len();
    let vrank = (mi + n - ri) % n;
    let world = |v: usize| c.world_rank_of(members[(v + ri) % n]);
    let lsb = if vrank == 0 {
        usize::MAX
    } else {
        1 << vrank.trailing_zeros()
    };
    let scratch = [HostBuf::alloc(bytes), HostBuf::alloc(bytes)];
    let mut pending: Option<(ReqId, usize)> = None;
    let mut bank = 0usize;
    let mut mask = 1usize;
    while mask < n && mask < lsb {
        if vrank + mask < n {
            let child = world(vrank + mask);
            let id = eng.irecv(
                Loc::Host(scratch[bank].base()),
                bytes,
                &byte,
                SrcSel(Some(child)),
                TagSel(Some(tag)),
                ctx,
            );
            if let Some((prev, pb)) = pending.take() {
                coll_wait(eng, vec![prev]);
                combine_bytes(op, dtype, acc, &scratch[pb].read(0, bytes));
            }
            pending = Some((id, bank));
            bank ^= 1;
        }
        mask <<= 1;
    }
    if let Some((prev, pb)) = pending.take() {
        coll_wait(eng, vec![prev]);
        combine_bytes(op, dtype, acc, &scratch[pb].read(0, bytes));
    }
    if vrank != 0 {
        let parent = world(vrank - lsb);
        let out = HostBuf::from_vec(acc.to_vec());
        let id = eng.isend(Loc::Host(out.base()), bytes, &byte, parent, tag, ctx);
        coll_wait(eng, vec![id]);
    }
}

impl Comm {
    fn coll_algo(&self) -> CollAlgo {
        self.engine().lock().cfg.coll.algo
    }

    fn coll_window(&self) -> usize {
        self.engine().lock().cfg.coll.max_inflight
    }

    /// Resolve the hierarchical path: `Some(hierarchy)` when the
    /// configured algorithm is `Hier` and this communicator actually
    /// spans multiple nodes with at least one shared node — otherwise the
    /// flat path is the right (and identical-cost) choice.
    fn hier_path(&self) -> Option<hier::Hierarchy> {
        if self.coll_algo() != CollAlgo::Hier {
            return None;
        }
        let h = hier::Hierarchy::build(self);
        h.beneficial().then_some(h)
    }

    /// `MPI_Barrier` (dissemination algorithm).
    pub fn barrier(&self) {
        self.engine().lock().counters.record("MPI_Barrier");
        self.dissemination();
    }

    /// Post-job quiesce for fault-injecting fabrics (no-op on a clean
    /// one, keeping fault-free runs bit-identical).
    ///
    /// A rank whose own requests have all completed may still owe its
    /// peers protocol replays: a lost FIN or FinDirect is recovered by
    /// the *peer* retransmitting, and only this rank can answer. If the
    /// rank simply exited, those retransmits would go unanswered and
    /// the peer's retry budget — not the fault schedule — would decide
    /// the outcome. The dissemination rounds here are driven through
    /// the engine itself (zero-byte eager messages, which the fault
    /// layer never touches), so waiting in them keeps draining the
    /// mailbox and answering replays; a rank can only leave once every
    /// rank has arrived, i.e. once everyone's requests are settled.
    pub fn finalize(&self) {
        let (faulty, bug_quiesce) = {
            let eng = self.engine().lock();
            // Finalize-time invariant checkpoint: this rank must be fully
            // quiesced (no unreaped requests, staging pools drained).
            let rank = eng.rank;
            // Gauges are scoped by the job prefix (empty on a dedicated
            // fabric), so concurrent jobs' finalize checkpoints stay
            // independent: each job's invariant only inspects its own
            // `{prefix}rank{r}` scopes.
            san::proto_set(
                &format!("{}rank{rank}", eng.prefix),
                "live_requests",
                eng.live_requests() as i64,
            );
            san::proto_set(
                &format!("{}job", eng.prefix),
                "finalizing_rank",
                rank as i64,
            );
            san::invariant_checkpoint("finalize");
            (eng.is_faulty(), eng.cfg.bug_finalize_quiesce)
        };
        if !faulty {
            return;
        }
        if bug_quiesce {
            // Reintroduced liveness bug: skip the post-job dissemination, so
            // a finished rank stops answering its peers' protocol replays.
            return;
        }
        self.dissemination();
    }

    fn dissemination(&self) {
        let (rank, size) = (self.rank(), self.size());
        let base = self.next_coll_tag();
        let ctx = self.coll_ctx();
        let mut eng = self.engine().lock();
        if size == 1 {
            return;
        }
        let empty = HostBuf::alloc(0);
        let byte = Datatype::byte();
        byte.commit();
        let mut k = 1;
        let mut round = 0u32;
        while k < size {
            let dst = self.world_rank_of((rank + k) % size);
            let src = self.world_rank_of((rank + size - k) % size);
            let s = eng.isend(Loc::Host(empty.base()), 0, &byte, dst, base + round, ctx);
            let r = eng.irecv(
                Loc::Host(empty.base()),
                0,
                &byte,
                SrcSel(Some(src)),
                TagSel(Some(base + round)),
                ctx,
            );
            coll_wait(&mut eng, vec![s, r]);
            k *= 2;
            round += 1;
        }
    }

    /// `MPI_Bcast` from `root` (group rank): binomial tree on the flat
    /// path; root → node leaders → co-located ranks over shm on the
    /// hierarchical one. Works on host and device buffers.
    pub fn bcast(&self, buf: impl Into<Loc>, count: usize, dtype: &Datatype, root: usize) {
        let buf = buf.into();
        self.engine().lock().counters.record("MPI_Bcast");
        if self.size() == 1 {
            return;
        }
        let tag = self.next_coll_tag();
        let ctx = self.coll_ctx();
        match self.hier_path() {
            Some(h) => hier::bcast(self, &h, &buf, count, dtype, root, tag, ctx),
            None => flat::bcast(self, &buf, count, dtype, root, tag, ctx),
        }
    }

    /// `MPI_Gather`: every rank's `(sendbuf, count, dtype)` lands in
    /// `recvbuf` at rank `root`, block `i` at byte offset
    /// `i * count * extent`. `recvbuf` is only read on the root. Works on
    /// host and device buffers (a rank's own block travels as a
    /// self-message through the same machinery). The hierarchical path
    /// aggregates each node's blocks at its leader so only one message
    /// per node crosses the wire.
    pub fn gather(
        &self,
        sendbuf: impl Into<Loc>,
        recvbuf: impl Into<Loc>,
        count: usize,
        dtype: &Datatype,
        root: usize,
    ) {
        let (sendbuf, recvbuf) = (sendbuf.into(), recvbuf.into());
        self.engine().lock().counters.record("MPI_Gather");
        let tag = self.next_coll_tag();
        let ctx = self.coll_ctx();
        match self.hier_path() {
            Some(h) => hier::gather(self, &h, &sendbuf, &recvbuf, count, dtype, root, tag, ctx),
            None => flat::gather(self, &sendbuf, &recvbuf, count, dtype, root, tag, ctx),
        }
    }

    /// `MPI_Scatter`: block `i` of `sendbuf` on `root` (at byte offset
    /// `i * count * extent`) lands in every rank `i`'s `recvbuf`. The
    /// hierarchical path ships each node's blocks as one wire message to
    /// its leader, which distributes them over shm.
    pub fn scatter(
        &self,
        sendbuf: impl Into<Loc>,
        recvbuf: impl Into<Loc>,
        count: usize,
        dtype: &Datatype,
        root: usize,
    ) {
        let (sendbuf, recvbuf) = (sendbuf.into(), recvbuf.into());
        self.engine().lock().counters.record("MPI_Scatter");
        let tag = self.next_coll_tag();
        let ctx = self.coll_ctx();
        match self.hier_path() {
            Some(h) => hier::scatter(self, &h, &sendbuf, &recvbuf, count, dtype, root, tag, ctx),
            None => flat::scatter(self, &sendbuf, &recvbuf, count, dtype, root, tag, ctx),
        }
    }

    /// `MPI_Allgather`: block `i` of `recvbuf` (at byte offset
    /// `i * count * extent`) ends up holding rank `i`'s `sendbuf` on every
    /// rank. Ring on the flat path; node-leader aggregation, leader ring
    /// and shm fan-out on the hierarchical one. Under
    /// [`CollAlgo::Naive`](crate::CollAlgo) this is the original
    /// gather-to-0 + bcast funnel (the benchmark control).
    pub fn allgather(
        &self,
        sendbuf: impl Into<Loc>,
        recvbuf: impl Into<Loc>,
        count: usize,
        dtype: &Datatype,
    ) {
        let (sendbuf, recvbuf) = (sendbuf.into(), recvbuf.into());
        if self.coll_algo() == CollAlgo::Naive {
            // The seed algorithm: funnel everything through rank 0, twice.
            let n = self.size();
            self.gather(sendbuf, recvbuf.clone(), count, dtype, 0);
            self.bcast(recvbuf, n * count, dtype, 0);
            return;
        }
        self.engine().lock().counters.record("MPI_Allgather");
        let ext = dtype.extent();
        assert!(ext > 0, "allgather needs a positive-extent datatype");
        let n = self.size();
        let counts = vec![count; n];
        let displs: Vec<usize> = (0..n).map(|i| i * count * ext as usize).collect();
        let tag = self.next_coll_tag();
        let ctx = self.coll_ctx();
        match self.hier_path() {
            Some(h) => hier::allgatherv(
                self, &h, &sendbuf, count, dtype, &recvbuf, &counts, &displs, dtype, tag, ctx,
            ),
            None => flat::allgatherv(
                self, &sendbuf, count, dtype, &recvbuf, &counts, &displs, dtype, tag, ctx,
            ),
        }
    }

    /// `MPI_Allgatherv`: rank `j`'s `(sendbuf, scount, sdtype)` lands on
    /// every rank at byte offset `rdispls[j]` of `recvbuf`, as
    /// `rcounts[j]` elements of `rdtype`. Displacements are **bytes** (not
    /// `rdtype` extents), so non-contiguous GPU datatypes with awkward
    /// extents place naturally. Every rank must pass the same `rcounts`
    /// and `rdispls`, and `scount * sdtype.size()` must equal
    /// `rcounts[me] * rdtype.size()`.
    #[allow(clippy::too_many_arguments)]
    pub fn allgatherv(
        &self,
        sendbuf: impl Into<Loc>,
        scount: usize,
        sdtype: &Datatype,
        recvbuf: impl Into<Loc>,
        rcounts: &[usize],
        rdispls: &[usize],
        rdtype: &Datatype,
    ) {
        let (sendbuf, recvbuf) = (sendbuf.into(), recvbuf.into());
        let n = self.size();
        assert_eq!(rcounts.len(), n, "allgatherv needs one count per rank");
        assert_eq!(
            rdispls.len(),
            n,
            "allgatherv needs one displacement per rank"
        );
        assert_eq!(
            scount * sdtype.size(),
            rcounts[self.rank()] * rdtype.size(),
            "allgatherv send and receive sides disagree on my block's bytes"
        );
        self.engine().lock().counters.record("MPI_Allgatherv");
        let tag = self.next_coll_tag();
        let ctx = self.coll_ctx();
        match self.hier_path() {
            Some(h) => hier::allgatherv(
                self, &h, &sendbuf, scount, sdtype, &recvbuf, rcounts, rdispls, rdtype, tag, ctx,
            ),
            None => flat::allgatherv(
                self, &sendbuf, scount, sdtype, &recvbuf, rcounts, rdispls, rdtype, tag, ctx,
            ),
        }
    }

    /// `MPI_Alltoall`: rank `i`'s block `j` lands in rank `j`'s block `i`
    /// (blocks of `count` elements, `count * extent` bytes apart).
    /// Pairwise exchange with bounded in-flight requests on the flat
    /// path; node-leader aggregation (one wire message per node pair) on
    /// the hierarchical one. Under [`CollAlgo::Naive`](crate::CollAlgo)
    /// every request is posted at once — P² in flight fabric-wide, kept
    /// as the benchmark control.
    pub fn alltoall(
        &self,
        sendbuf: impl Into<Loc>,
        recvbuf: impl Into<Loc>,
        count: usize,
        dtype: &Datatype,
    ) {
        let (sendbuf, recvbuf) = (sendbuf.into(), recvbuf.into());
        self.engine().lock().counters.record("MPI_Alltoall");
        let ext = dtype.extent();
        assert!(ext > 0, "alltoall needs a positive-extent datatype");
        let tag = self.next_coll_tag();
        let ctx = self.coll_ctx();
        if self.coll_algo() == CollAlgo::Naive {
            flat::naive_alltoall(self, &sendbuf, &recvbuf, count, dtype, tag, ctx);
            return;
        }
        let n = self.size();
        let counts = vec![count; n];
        let displs: Vec<usize> = (0..n).map(|i| i * count * ext as usize).collect();
        match self.hier_path() {
            Some(h) => hier::alltoallv(
                self, &h, &sendbuf, &counts, &displs, dtype, &recvbuf, &counts, &displs, dtype,
                tag, ctx,
            ),
            None => flat::alltoallv(
                self, &sendbuf, &counts, &displs, dtype, &recvbuf, &counts, &displs, dtype, tag,
                ctx,
            ),
        }
    }

    /// `MPI_Alltoallv`: rank `i` sends `scounts[j]` elements of `sdtype`
    /// starting at byte `sdispls[j]` of `sendbuf` to each rank `j`, and
    /// receives `rcounts[j]` elements of `rdtype` at byte `rdispls[j]` of
    /// `recvbuf` from each. Displacements are **bytes**. The send and
    /// receive type signatures may differ as long as each pair's byte
    /// totals match (`scounts_i[j] * sdtype_i.size() == rcounts_j[i] *
    /// rdtype_j.size()`); both sides may be non-contiguous GPU datatypes.
    #[allow(clippy::too_many_arguments)]
    pub fn alltoallv(
        &self,
        sendbuf: impl Into<Loc>,
        scounts: &[usize],
        sdispls: &[usize],
        sdtype: &Datatype,
        recvbuf: impl Into<Loc>,
        rcounts: &[usize],
        rdispls: &[usize],
        rdtype: &Datatype,
    ) {
        let (sendbuf, recvbuf) = (sendbuf.into(), recvbuf.into());
        let n = self.size();
        assert_eq!(scounts.len(), n, "alltoallv needs one send count per rank");
        assert_eq!(rcounts.len(), n, "alltoallv needs one recv count per rank");
        assert_eq!(
            sdispls.len(),
            n,
            "alltoallv needs one send displacement per rank"
        );
        assert_eq!(
            rdispls.len(),
            n,
            "alltoallv needs one recv displacement per rank"
        );
        self.engine().lock().counters.record("MPI_Alltoallv");
        let tag = self.next_coll_tag();
        let ctx = self.coll_ctx();
        match self.hier_path() {
            Some(h) => hier::alltoallv(
                self, &h, &sendbuf, scounts, sdispls, sdtype, &recvbuf, rcounts, rdispls, rdtype,
                tag, ctx,
            ),
            None => flat::alltoallv(
                self, &sendbuf, scounts, sdispls, sdtype, &recvbuf, rcounts, rdispls, rdtype, tag,
                ctx,
            ),
        }
    }

    /// `MPI_Reduce` for primitive datatypes: elementwise `op` into
    /// `recvbuf` on `root` (only read there). Host **and device** buffers:
    /// device contributions are packed to host staging through the
    /// loopback pipeline, folded on the host, and the result repacked to
    /// the device. Binomial tree with double-buffered child receives on
    /// the flat path; shm fan-in to node leaders + a leader tree on the
    /// hierarchical one. Under [`CollAlgo::Naive`](crate::CollAlgo) the
    /// root drains all P−1 contributions serially through one scratch
    /// buffer (the benchmark control).
    pub fn reduce(
        &self,
        sendbuf: impl Into<Loc>,
        recvbuf: impl Into<Loc>,
        count: usize,
        dtype: &Datatype,
        op: ReduceOp,
        root: usize,
    ) {
        let (sendbuf, recvbuf) = (sendbuf.into(), recvbuf.into());
        assert!(
            dtype.primitive_name().is_some(),
            "reductions are defined on primitive datatypes"
        );
        self.engine().lock().counters.record("MPI_Reduce");
        let tag = self.next_coll_tag();
        let ctx = self.coll_ctx();
        match self.coll_algo() {
            CollAlgo::Naive => {
                flat::naive_reduce(self, &sendbuf, &recvbuf, count, dtype, op, root, tag, ctx)
            }
            _ => match self.hier_path() {
                Some(h) => hier::reduce(
                    self, &h, &sendbuf, &recvbuf, count, dtype, op, root, tag, ctx,
                ),
                None => flat::reduce(self, &sendbuf, &recvbuf, count, dtype, op, root, tag, ctx),
            },
        }
    }

    /// `MPI_Allreduce` for primitive datatypes, host and device buffers.
    /// The hierarchical path pipelines per
    /// [`CollConfig::pipeline_chunk`](crate::CollConfig) segment: pack →
    /// shm fan-in and combine at the node leader → one reduced stream per
    /// node over the wire (leader binomial tree) → shm fan-out, so a
    /// segment's wire time overlaps the next segment's pack and combine.
    pub fn allreduce(
        &self,
        sendbuf: impl Into<Loc>,
        recvbuf: impl Into<Loc>,
        count: usize,
        dtype: &Datatype,
        op: ReduceOp,
    ) {
        let (sendbuf, recvbuf) = (sendbuf.into(), recvbuf.into());
        assert!(
            dtype.primitive_name().is_some(),
            "reductions are defined on primitive datatypes"
        );
        if self.coll_algo() == CollAlgo::Naive {
            // The seed algorithm: serial reduce to rank 0, then bcast.
            self.reduce(sendbuf, recvbuf.clone(), count, dtype, op, 0);
            self.bcast(recvbuf, count, dtype, 0);
            return;
        }
        self.engine().lock().counters.record("MPI_Allreduce");
        let tag = self.next_coll_tag();
        let ctx = self.coll_ctx();
        match self.hier_path() {
            Some(h) => hier::allreduce(self, &h, &sendbuf, &recvbuf, count, dtype, op, tag, ctx),
            None => {
                flat::reduce(self, &sendbuf, &recvbuf, count, dtype, op, 0, tag, ctx);
                flat::bcast(self, &recvbuf, count, dtype, 0, tag + 512, ctx);
            }
        }
    }

    /// `MPI_Sendrecv`: simultaneous send and receive (deadlock-free).
    /// Returns the receive status.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &self,
        sendbuf: impl Into<Loc>,
        sendcount: usize,
        sendtype: &Datatype,
        dst: usize,
        sendtag: u32,
        recvbuf: impl Into<Loc>,
        recvcount: usize,
        recvtype: &Datatype,
        src: impl Into<SrcSel>,
        recvtag: impl Into<TagSel>,
    ) -> crate::engine::RecvStatus {
        let r = self.irecv(recvbuf, recvcount, recvtype, src, recvtag);
        let s = self.isend(sendbuf, sendcount, sendtype, dst, sendtag);
        let stats = self.waitall(vec![r, s]);
        stats[0].expect("sendrecv must produce a status")
    }
}

#[cfg(test)]
mod tests;
