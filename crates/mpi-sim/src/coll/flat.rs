//! Single-level collective algorithms.
//!
//! Two families live here:
//!
//! * the **flat** algorithms — still topology-blind, but with sane
//!   resource bounds and honest scaling: pairwise alltoall(v) with a
//!   bounded in-flight window, ring allgather(v), binomial-tree reduce
//!   with double-buffered child receives. These are the fallback when a
//!   communicator has no co-located members, and the baseline the
//!   hierarchical path must beat.
//! * the **naive** algorithms — the original p2p loops (alltoall posting
//!   2·P requests at once, reduce draining P−1 sources serially through
//!   one scratch buffer). Kept verbatim as the `coll_sweep` control.

use gpu_sim::Loc;
use hostmem::HostBuf;

use super::{
    binomial_bcast_loc, binomial_reduce_bytes, byte_dt, coll_wait, combine_bytes,
    deliver_from_host, stage_to_host, ReduceOp, ReqWindow,
};
use crate::comm::Comm;
use crate::datatype::Datatype;
use crate::engine::{SrcSel, TagSel};

/// Binomial-tree broadcast from `root` — the seed algorithm, shared by
/// every algorithm family.
pub(super) fn bcast(
    c: &Comm,
    buf: &Loc,
    count: usize,
    dtype: &Datatype,
    root: usize,
    tag: u32,
    ctx: u16,
) {
    let all: Vec<usize> = (0..c.size()).collect();
    let mut eng = c.engine().lock();
    binomial_bcast_loc(c, &mut eng, &all, root, buf, count, dtype, tag, ctx);
}

/// Linear gather: every rank sends its block to the root (the root's own
/// block travels as a self-message).
#[allow(clippy::too_many_arguments)]
pub(super) fn gather(
    c: &Comm,
    sendbuf: &Loc,
    recvbuf: &Loc,
    count: usize,
    dtype: &Datatype,
    root: usize,
    tag: u32,
    ctx: u16,
) {
    let (rank, size) = (c.rank(), c.size());
    let root_world = c.world_rank_of(root);
    let mut eng = c.engine().lock();
    let ext = dtype.extent();
    assert!(ext > 0, "gather needs a positive-extent datatype");
    let block = count * ext as usize;
    let mut ids = vec![eng.isend(sendbuf.clone(), count, dtype, root_world, tag, ctx)];
    if rank == root {
        for i in 0..size {
            ids.push(eng.irecv(
                recvbuf.add(i * block),
                count,
                dtype,
                SrcSel(Some(c.world_rank_of(i))),
                TagSel(Some(tag)),
                ctx,
            ));
        }
    }
    coll_wait(&mut eng, ids);
}

/// Linear scatter: the root ships block `i` to rank `i`.
#[allow(clippy::too_many_arguments)]
pub(super) fn scatter(
    c: &Comm,
    sendbuf: &Loc,
    recvbuf: &Loc,
    count: usize,
    dtype: &Datatype,
    root: usize,
    tag: u32,
    ctx: u16,
) {
    let (rank, size) = (c.rank(), c.size());
    let root_world = c.world_rank_of(root);
    let mut eng = c.engine().lock();
    let ext = dtype.extent();
    assert!(ext > 0, "scatter needs a positive-extent datatype");
    let block = count * ext as usize;
    let mut ids = vec![eng.irecv(
        recvbuf.clone(),
        count,
        dtype,
        SrcSel(Some(root_world)),
        TagSel(Some(tag)),
        ctx,
    )];
    if rank == root {
        for i in 0..size {
            ids.push(eng.isend(
                sendbuf.add(i * block),
                count,
                dtype,
                c.world_rank_of(i),
                tag,
                ctx,
            ));
        }
    }
    coll_wait(&mut eng, ids);
}

/// Ring allgatherv: each rank forwards one block per step to its right
/// neighbour, so every link carries exactly one block at a time and no
/// rank is a funnel. The own block enters `recvbuf` through a loopback
/// self-message (device-capable).
#[allow(clippy::too_many_arguments)]
pub(super) fn allgatherv(
    c: &Comm,
    sendbuf: &Loc,
    scount: usize,
    sdtype: &Datatype,
    recvbuf: &Loc,
    rcounts: &[usize],
    rdispls: &[usize],
    rdtype: &Datatype,
    tag: u32,
    ctx: u16,
) {
    let (me, n) = (c.rank(), c.size());
    let me_w = c.world_rank_of(me);
    let mut eng = c.engine().lock();
    let s = eng.isend(sendbuf.clone(), scount, sdtype, me_w, tag, ctx);
    let r = eng.irecv(
        recvbuf.add(rdispls[me]),
        rcounts[me],
        rdtype,
        SrcSel(Some(me_w)),
        TagSel(Some(tag)),
        ctx,
    );
    coll_wait(&mut eng, vec![s, r]);
    if n == 1 {
        return;
    }
    let right = c.world_rank_of((me + 1) % n);
    let left = c.world_rank_of((me + n - 1) % n);
    for step in 0..n - 1 {
        let sb = (me + n - step) % n;
        let rb = (me + n - step - 1) % n;
        let t = tag + 1 + (step % 8192) as u32;
        let rid = eng.irecv(
            recvbuf.add(rdispls[rb]),
            rcounts[rb],
            rdtype,
            SrcSel(Some(left)),
            TagSel(Some(t)),
            ctx,
        );
        let sid = eng.isend(recvbuf.add(rdispls[sb]), rcounts[sb], rdtype, right, t, ctx);
        coll_wait(&mut eng, vec![rid, sid]);
    }
}

/// Pairwise alltoallv: at step `r` every rank sends to `(me + r) % P` and
/// receives from `(me − r) % P` — each link carries one exchange per step
/// — with at most `coll.max_inflight` steps outstanding. Step 0 is the
/// loopback self-exchange, so device buffers work unchanged.
#[allow(clippy::too_many_arguments)]
pub(super) fn alltoallv(
    c: &Comm,
    sendbuf: &Loc,
    scounts: &[usize],
    sdispls: &[usize],
    sdtype: &Datatype,
    recvbuf: &Loc,
    rcounts: &[usize],
    rdispls: &[usize],
    rdtype: &Datatype,
    tag: u32,
    ctx: u16,
) {
    let (me, n) = (c.rank(), c.size());
    let w = c.coll_window();
    let mut eng = c.engine().lock();
    let mut win = ReqWindow::new(w);
    for r in 0..n {
        let sp = (me + r) % n;
        let rp = (me + n - r) % n;
        let t = tag + (r % 8192) as u32;
        let rid = eng.irecv(
            recvbuf.add(rdispls[rp]),
            rcounts[rp],
            rdtype,
            SrcSel(Some(c.world_rank_of(rp))),
            TagSel(Some(t)),
            ctx,
        );
        let sid = eng.isend(
            sendbuf.add(sdispls[sp]),
            scounts[sp],
            sdtype,
            c.world_rank_of(sp),
            t,
            ctx,
        );
        win.push(&mut eng, vec![rid, sid]);
    }
    win.drain(&mut eng);
}

/// Binomial-tree reduce with double-buffered child receives: the next
/// child's wire transfer is posted before the previous child's bytes are
/// combined, so receive and combine overlap instead of serializing.
#[allow(clippy::too_many_arguments)]
pub(super) fn reduce(
    c: &Comm,
    sendbuf: &Loc,
    recvbuf: &Loc,
    count: usize,
    dtype: &Datatype,
    op: ReduceOp,
    root: usize,
    tag: u32,
    ctx: u16,
) {
    let me_w = c.world_rank_of(c.rank());
    let all: Vec<usize> = (0..c.size()).collect();
    let mut eng = c.engine().lock();
    let mut acc = stage_to_host(&mut eng, me_w, sendbuf, count, dtype, tag, ctx);
    binomial_reduce_bytes(c, &mut eng, &all, root, &mut acc, dtype, op, tag + 1, ctx);
    if c.rank() == root {
        deliver_from_host(&mut eng, me_w, &acc, recvbuf, count, dtype, tag + 2, ctx);
    }
}

/// The seed alltoall: every transfer posted nonblocking at once — 2·P
/// requests per rank, P² in flight fabric-wide. Kept as the `coll_sweep`
/// control.
pub(super) fn naive_alltoall(
    c: &Comm,
    sendbuf: &Loc,
    recvbuf: &Loc,
    count: usize,
    dtype: &Datatype,
    tag: u32,
    ctx: u16,
) {
    let size = c.size();
    let mut eng = c.engine().lock();
    let ext = dtype.extent();
    let block = count * ext as usize;
    let mut ids = Vec::with_capacity(2 * size);
    for peer in 0..size {
        ids.push(eng.irecv(
            recvbuf.add(peer * block),
            count,
            dtype,
            SrcSel(Some(c.world_rank_of(peer))),
            TagSel(Some(tag)),
            ctx,
        ));
    }
    for peer in 0..size {
        ids.push(eng.isend(
            sendbuf.add(peer * block),
            count,
            dtype,
            c.world_rank_of(peer),
            tag,
            ctx,
        ));
    }
    coll_wait(&mut eng, ids);
}

/// The seed reduce: the root drains all P−1 contributions one at a time
/// through a single reused scratch buffer, serializing the whole
/// collective. Kept as the `coll_sweep` control.
#[allow(clippy::too_many_arguments)]
pub(super) fn naive_reduce(
    c: &Comm,
    sendbuf: &Loc,
    recvbuf: &Loc,
    count: usize,
    dtype: &Datatype,
    op: ReduceOp,
    root: usize,
    tag: u32,
    ctx: u16,
) {
    let (rank, size) = (c.rank(), c.size());
    let root_world = c.world_rank_of(root);
    let me_w = c.world_rank_of(rank);
    let byte = byte_dt();
    let mut eng = c.engine().lock();
    let bytes = count * dtype.size();
    if rank != root {
        let id = eng.isend(sendbuf.clone(), count, dtype, root_world, tag, ctx);
        coll_wait(&mut eng, vec![id]);
        return;
    }
    let mut acc = stage_to_host(&mut eng, me_w, sendbuf, count, dtype, tag + 1, ctx);
    let scratch = HostBuf::alloc(bytes);
    for src in 0..size {
        if src == root {
            continue;
        }
        let id = eng.irecv(
            Loc::Host(scratch.base()),
            bytes,
            &byte,
            SrcSel(Some(c.world_rank_of(src))),
            TagSel(Some(tag)),
            ctx,
        );
        coll_wait(&mut eng, vec![id]);
        combine_bytes(op, dtype, &mut acc, &scratch.read(0, bytes));
    }
    deliver_from_host(&mut eng, me_w, &acc, recvbuf, count, dtype, tag + 2, ctx);
}
