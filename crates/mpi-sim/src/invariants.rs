//! Declarative protocol invariants for the rendezvous engine.
//!
//! The engine feeds a small set of *gauges* into the sanitizer as the
//! staged protocol runs — one scope per transfer (`xfer.{src}.{send_req}`)
//! plus per-rank and job-wide scopes — and registers the predicates below
//! against them. Online invariants re-evaluate after every gauge update;
//! checkpoint invariants run when a rank calls
//! `san::invariant_checkpoint("finalize")` and again automatically at
//! simulation exit. Violations surface as
//! [`sim_core::ReportKind::Invariant`] reports (panics in `Panic` mode),
//! which is what `simcheck` asserts on for every explored schedule.
//!
//! Gauges fed by the engine, all within one transfer's scope:
//!
//! | gauge             | side     | meaning                                  |
//! |-------------------|----------|------------------------------------------|
//! | `nchunks`         | receiver | chunk count, set at the staged match     |
//! | `chunks_finned`   | sender   | chunks announced via FIN (first time)    |
//! | `credits_recv`    | sender   | fresh credits accepted                   |
//! | `chunks_absorbed` | receiver | in-order chunks handed to the sink       |
//! | `last_chunk`      | receiver | index of the chunk just absorbed         |
//! | `credits_sent`    | receiver | credits issued                           |
//! | `done`            | receiver | 1 once the staged receive completed      |
//!
//! Plus `("rank{r}", "live_requests")` and `("job", "finalizing_rank")`,
//! set by `Comm::finalize` immediately before its checkpoint. Every scope
//! above additionally carries the engine's job prefix (empty on a
//! dedicated fabric, `job{k}.` for tenants of a shared one), so invariants
//! iterate the `{prefix}job` scopes rather than assuming a single job.

use sim_core::san::{self, Invariant, ProtoView};

/// Gauge scope for one staged transfer, unique across the process: `src`
/// is the sending rank, `send_req` that rank's request id, and `prefix`
/// the job scope (`""` on a dedicated fabric), which keeps concurrent
/// jobs' transfers apart — job 0's `(src 1, req 5)` must not share gauges
/// with job 1's.
pub(crate) fn xfer_scope(prefix: &str, src: usize, send_req: u64) -> String {
    format!("{prefix}xfer.{src}.{send_req}")
}

/// Register every engine invariant. Idempotent (first registration per
/// name wins) and a no-op when the sanitizer is off, so each rank's
/// engine calls it unconditionally at construction.
pub fn register_all() {
    san::register_invariant(credit_conservation());
    san::register_invariant(chunk_monotonicity());
    san::register_invariant(no_completion_after_fin());
    san::register_invariant(staging_leak_freedom());
    san::register_invariant(quiescence_at_finalize());
}

/// Credits never outrun the work they acknowledge: a receiver may not
/// credit more chunks than it absorbed, and a sender may not accept more
/// credits than it announced FINs for.
fn credit_conservation() -> Invariant {
    Invariant {
        name: "credit-conservation",
        online: true,
        checkpoints: &[],
        check: Box::new(|v: &ProtoView<'_>| {
            let mut out = Vec::new();
            for scope in v.scopes_with("credits_sent") {
                let sent = v.gauge(scope, "credits_sent");
                let absorbed = v.gauge(scope, "chunks_absorbed");
                if sent > absorbed {
                    out.push(format!(
                        "{scope}: {sent} credit(s) sent for {absorbed} absorbed chunk(s)"
                    ));
                }
            }
            for scope in v.scopes_with("credits_recv") {
                let recv = v.gauge(scope, "credits_recv");
                let finned = v.gauge(scope, "chunks_finned");
                if recv > finned {
                    out.push(format!(
                        "{scope}: {recv} credit(s) accepted for {finned} FIN(s) announced"
                    ));
                }
            }
            out
        }),
    }
}

/// Chunks are handed to the sink strictly in sequence: after absorbing
/// `n` chunks the one just absorbed must be chunk `n - 1`.
fn chunk_monotonicity() -> Invariant {
    Invariant {
        name: "chunk-monotonicity",
        online: true,
        checkpoints: &[],
        check: Box::new(|v: &ProtoView<'_>| {
            let mut out = Vec::new();
            for scope in v.scopes_with("chunks_absorbed") {
                let n = v.gauge(scope, "chunks_absorbed");
                let last = v.gauge(scope, "last_chunk");
                // The engine updates `last_chunk` then `chunks_absorbed` as
                // two gauge writes, so between them an in-order feed shows
                // `last == n`; both states of a correct feed are allowed.
                if n > 0 && last != n - 1 && last != n {
                    out.push(format!(
                        "{scope}: absorbed chunk {last} out of sequence ({n} chunk(s) absorbed)"
                    ));
                }
            }
            out
        }),
    }
}

/// A staged receive completes exactly when every chunk has been absorbed
/// — never early, and nothing is absorbed into it afterwards.
fn no_completion_after_fin() -> Invariant {
    Invariant {
        name: "no-completion-after-fin",
        online: true,
        checkpoints: &[],
        check: Box::new(|v: &ProtoView<'_>| {
            let mut out = Vec::new();
            for scope in v.scopes_with("done") {
                if v.gauge(scope, "done") != 1 {
                    continue;
                }
                let n = v.gauge(scope, "nchunks");
                let absorbed = v.gauge(scope, "chunks_absorbed");
                if absorbed != n {
                    out.push(format!(
                        "{scope}: completed with {absorbed}/{n} chunk(s) absorbed"
                    ));
                }
            }
            out
        }),
    }
}

/// Staging pools (vbufs, device tbufs) are empty when their rank
/// finalizes, and job-wide at simulation exit.
fn staging_leak_freedom() -> Invariant {
    Invariant {
        name: "staging-leak-freedom",
        online: false,
        checkpoints: &["finalize", "exit"],
        check: Box::new(|v: &ProtoView<'_>| {
            let mut out = Vec::new();
            // At a finalize checkpoint only the finalizing ranks' pools must
            // be drained — their peers may legitimately be mid-transfer.
            // With several jobs in one process there is one `{prefix}job`
            // scope per job that has reached finalize; a stale entry from an
            // already-finalized job is harmless to re-check (a finalized
            // rank's pools stay drained).
            let prefixes: Option<Vec<String>> = (v.phase() == "finalize").then(|| {
                v.scopes_with("finalizing_rank")
                    .into_iter()
                    .filter_map(|s| {
                        let job_prefix = s.strip_suffix("job")?;
                        Some(format!(
                            "{job_prefix}rank{}.",
                            v.gauge(s, "finalizing_rank")
                        ))
                    })
                    .collect()
            });
            for (name, outstanding, takes) in v.pools() {
                if let Some(ps) = &prefixes {
                    if !ps.iter().any(|p| name.starts_with(p.as_str())) {
                        continue;
                    }
                }
                if outstanding != 0 {
                    out.push(format!(
                        "pool '{name}': {outstanding} buffer(s) outstanding after \
                         {takes} take(s) at {}",
                        v.phase()
                    ));
                }
            }
            out
        }),
    }
}

/// A rank reaching `MPI_Finalize` has reaped every request it posted.
fn quiescence_at_finalize() -> Invariant {
    Invariant {
        name: "quiescence-at-finalize",
        online: false,
        checkpoints: &["finalize"],
        check: Box::new(|v: &ProtoView<'_>| {
            // One `{prefix}job` scope per job that has reached finalize;
            // re-checking a stale entry from an earlier job is harmless
            // (a finalized rank has no live requests ever after).
            let mut out = Vec::new();
            for scope in v.scopes_with("finalizing_rank") {
                let Some(job_prefix) = scope.strip_suffix("job") else {
                    continue;
                };
                let fr = v.gauge(scope, "finalizing_rank");
                let live = v.gauge(&format!("{job_prefix}rank{fr}"), "live_requests");
                if live != 0 {
                    out.push(format!(
                        "{job_prefix}rank {fr} entered finalize with {live} unreaped request(s)"
                    ));
                }
            }
            out
        }),
    }
}
