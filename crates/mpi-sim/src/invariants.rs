//! Declarative protocol invariants for the rendezvous engine.
//!
//! The engine feeds a small set of *gauges* into the sanitizer as the
//! staged protocol runs — one scope per transfer (`xfer.{src}.{send_req}`)
//! plus per-rank and job-wide scopes — and registers the predicates below
//! against them. Online invariants re-evaluate after every gauge update;
//! checkpoint invariants run when a rank calls
//! `san::invariant_checkpoint("finalize")` and again automatically at
//! simulation exit. Violations surface as
//! [`sim_core::ReportKind::Invariant`] reports (panics in `Panic` mode),
//! which is what `simcheck` asserts on for every explored schedule.
//!
//! Gauges fed by the engine, all within one transfer's scope:
//!
//! | gauge             | side     | meaning                                  |
//! |-------------------|----------|------------------------------------------|
//! | `nchunks`         | receiver | chunk count, set at the staged match     |
//! | `chunks_finned`   | sender   | chunks announced via FIN (first time)    |
//! | `credits_recv`    | sender   | fresh credits accepted                   |
//! | `chunks_absorbed` | receiver | in-order chunks handed to the sink       |
//! | `last_chunk`      | receiver | index of the chunk just absorbed         |
//! | `credits_sent`    | receiver | credits issued                           |
//! | `done`            | receiver | 1 once the staged receive completed      |
//!
//! Plus `("rank{r}", "live_requests")` and `("job", "finalizing_rank")`,
//! set by `Comm::finalize` immediately before its checkpoint.

use sim_core::san::{self, Invariant, ProtoView};

/// Gauge scope for one staged transfer, unique across the job: `src` is
/// the sending rank and `send_req` that rank's request id.
pub(crate) fn xfer_scope(src: usize, send_req: u64) -> String {
    format!("xfer.{src}.{send_req}")
}

/// Register every engine invariant. Idempotent (first registration per
/// name wins) and a no-op when the sanitizer is off, so each rank's
/// engine calls it unconditionally at construction.
pub fn register_all() {
    san::register_invariant(credit_conservation());
    san::register_invariant(chunk_monotonicity());
    san::register_invariant(no_completion_after_fin());
    san::register_invariant(staging_leak_freedom());
    san::register_invariant(quiescence_at_finalize());
}

/// Credits never outrun the work they acknowledge: a receiver may not
/// credit more chunks than it absorbed, and a sender may not accept more
/// credits than it announced FINs for.
fn credit_conservation() -> Invariant {
    Invariant {
        name: "credit-conservation",
        online: true,
        checkpoints: &[],
        check: Box::new(|v: &ProtoView<'_>| {
            let mut out = Vec::new();
            for scope in v.scopes_with("credits_sent") {
                let sent = v.gauge(scope, "credits_sent");
                let absorbed = v.gauge(scope, "chunks_absorbed");
                if sent > absorbed {
                    out.push(format!(
                        "{scope}: {sent} credit(s) sent for {absorbed} absorbed chunk(s)"
                    ));
                }
            }
            for scope in v.scopes_with("credits_recv") {
                let recv = v.gauge(scope, "credits_recv");
                let finned = v.gauge(scope, "chunks_finned");
                if recv > finned {
                    out.push(format!(
                        "{scope}: {recv} credit(s) accepted for {finned} FIN(s) announced"
                    ));
                }
            }
            out
        }),
    }
}

/// Chunks are handed to the sink strictly in sequence: after absorbing
/// `n` chunks the one just absorbed must be chunk `n - 1`.
fn chunk_monotonicity() -> Invariant {
    Invariant {
        name: "chunk-monotonicity",
        online: true,
        checkpoints: &[],
        check: Box::new(|v: &ProtoView<'_>| {
            let mut out = Vec::new();
            for scope in v.scopes_with("chunks_absorbed") {
                let n = v.gauge(scope, "chunks_absorbed");
                let last = v.gauge(scope, "last_chunk");
                // The engine updates `last_chunk` then `chunks_absorbed` as
                // two gauge writes, so between them an in-order feed shows
                // `last == n`; both states of a correct feed are allowed.
                if n > 0 && last != n - 1 && last != n {
                    out.push(format!(
                        "{scope}: absorbed chunk {last} out of sequence ({n} chunk(s) absorbed)"
                    ));
                }
            }
            out
        }),
    }
}

/// A staged receive completes exactly when every chunk has been absorbed
/// — never early, and nothing is absorbed into it afterwards.
fn no_completion_after_fin() -> Invariant {
    Invariant {
        name: "no-completion-after-fin",
        online: true,
        checkpoints: &[],
        check: Box::new(|v: &ProtoView<'_>| {
            let mut out = Vec::new();
            for scope in v.scopes_with("done") {
                if v.gauge(scope, "done") != 1 {
                    continue;
                }
                let n = v.gauge(scope, "nchunks");
                let absorbed = v.gauge(scope, "chunks_absorbed");
                if absorbed != n {
                    out.push(format!(
                        "{scope}: completed with {absorbed}/{n} chunk(s) absorbed"
                    ));
                }
            }
            out
        }),
    }
}

/// Staging pools (vbufs, device tbufs) are empty when their rank
/// finalizes, and job-wide at simulation exit.
fn staging_leak_freedom() -> Invariant {
    Invariant {
        name: "staging-leak-freedom",
        online: false,
        checkpoints: &["finalize", "exit"],
        check: Box::new(|v: &ProtoView<'_>| {
            let mut out = Vec::new();
            // At a finalize checkpoint only the finalizing rank's pools must
            // be drained — its peers may legitimately be mid-transfer.
            let prefix = (v.phase() == "finalize")
                .then(|| format!("rank{}.", v.gauge("job", "finalizing_rank")));
            for (name, outstanding, takes) in v.pools() {
                if let Some(p) = &prefix {
                    if !name.starts_with(p.as_str()) {
                        continue;
                    }
                }
                if outstanding != 0 {
                    out.push(format!(
                        "pool '{name}': {outstanding} buffer(s) outstanding after \
                         {takes} take(s) at {}",
                        v.phase()
                    ));
                }
            }
            out
        }),
    }
}

/// A rank reaching `MPI_Finalize` has reaped every request it posted.
fn quiescence_at_finalize() -> Invariant {
    Invariant {
        name: "quiescence-at-finalize",
        online: false,
        checkpoints: &["finalize"],
        check: Box::new(|v: &ProtoView<'_>| {
            let fr = v.gauge("job", "finalizing_rank");
            let live = v.gauge(&format!("rank{fr}"), "live_requests");
            if live != 0 {
                vec![format!(
                    "rank {fr} entered finalize with {live} unreaped request(s)"
                )]
            } else {
                Vec::new()
            }
        }),
    }
}
