//! CPU pack/unpack engine for host buffers.
//!
//! [`PackCursor`]/[`UnpackCursor`] stream a flattened datatype's bytes
//! to/from a contiguous representation in chunk-sized pieces — O(total)
//! overall even when a message is packed in many chunks, which matters for
//! the pipelined rendezvous path. Cursors run over a shared [`Plan`]
//! (usually a plan-cache hit, so creating one allocates nothing), and
//! `Strided2D` plans are coalesced into pitched bulk copies instead of
//! per-segment dispatch.

use std::sync::Arc;

use hostmem::HostPtr;

use crate::flat::{Layout, Segment};
use crate::plan::Plan;

/// Streaming packer: reads a non-contiguous layout (`plan` relative to
/// `base`) and produces the packed byte stream incrementally.
pub struct PackCursor {
    base: HostPtr,
    plan: Arc<Plan>,
    seg_idx: usize,
    seg_off: usize,
    produced: usize,
}

/// Streaming unpacker: consumes a packed byte stream and scatters it into a
/// non-contiguous layout.
pub struct UnpackCursor {
    base: HostPtr,
    plan: Arc<Plan>,
    seg_idx: usize,
    seg_off: usize,
    consumed: usize,
}

/// Whole rows of a strided plan remaining at `seg_idx` that fit in `room`
/// bytes; the cursors hand those to one pitched copy when there are at
/// least two (a lone row gains nothing over the generic path).
fn strided_run(
    plan: &Plan,
    seg_idx: usize,
    seg_off: usize,
    room: usize,
) -> Option<(usize, usize, usize)> {
    if seg_off != 0 {
        return None;
    }
    if let Layout::Strided2D { pitch, width, .. } = *plan.layout() {
        let rows = (room / width).min(plan.num_segments() - seg_idx);
        if rows >= 2 {
            return Some((pitch, width, rows));
        }
    }
    None
}

fn abs_offset(base: &HostPtr, seg: &Segment, within: usize) -> usize {
    let off = base.offset() as isize + seg.offset + within as isize;
    assert!(
        off >= 0,
        "datatype segment at negative absolute offset {off} (buffer offset {}, segment {})",
        base.offset(),
        seg.offset
    );
    off as usize
}

impl PackCursor {
    /// Create a packer over `segments` of the buffer at `base`.
    pub fn new(base: HostPtr, segments: Vec<Segment>) -> Self {
        Self::from_plan(base, Arc::new(Plan::from_segments(segments)))
    }

    /// Create a packer over a shared plan of the buffer at `base`.
    pub fn from_plan(base: HostPtr, plan: Arc<Plan>) -> Self {
        PackCursor {
            base,
            plan,
            seg_idx: 0,
            seg_off: 0,
            produced: 0,
        }
    }

    /// Total bytes produced so far.
    pub fn produced(&self) -> usize {
        self.produced
    }

    /// True when every segment has been packed.
    pub fn finished(&self) -> bool {
        self.seg_idx >= self.plan.num_segments()
    }

    /// Pack the next `out.len()` bytes of the stream into `out`. Panics if
    /// fewer bytes remain.
    pub fn pack_into(&mut self, out: &mut [u8]) {
        let mut pos = 0;
        while pos < out.len() {
            if let Some((pitch, width, rows)) =
                strided_run(&self.plan, self.seg_idx, self.seg_off, out.len() - pos)
            {
                let seg = self.plan.segments()[self.seg_idx];
                let src = abs_offset(&self.base, &seg, 0);
                self.base.buf().read_strided(
                    src,
                    pitch,
                    width,
                    rows,
                    &mut out[pos..pos + rows * width],
                );
                pos += rows * width;
                self.seg_idx += rows;
                continue;
            }
            let seg = *self
                .plan
                .segments()
                .get(self.seg_idx)
                .expect("PackCursor: packed past the end of the datatype");
            let avail = seg.len - self.seg_off;
            let take = avail.min(out.len() - pos);
            let src = abs_offset(&self.base, &seg, self.seg_off);
            self.base.buf().read_into(src, &mut out[pos..pos + take]);
            pos += take;
            self.seg_off += take;
            if self.seg_off == seg.len {
                self.seg_idx += 1;
                self.seg_off = 0;
            }
        }
        self.produced += out.len();
    }

    /// Pack the entire remaining stream.
    pub fn pack_all(&mut self) -> Vec<u8> {
        let remaining = self.plan.total() - self.plan.packed_offset(self.seg_idx) - self.seg_off;
        let mut out = vec![0u8; remaining];
        self.pack_into(&mut out);
        out
    }
}

impl UnpackCursor {
    /// Create an unpacker over `segments` of the buffer at `base`.
    pub fn new(base: HostPtr, segments: Vec<Segment>) -> Self {
        Self::from_plan(base, Arc::new(Plan::from_segments(segments)))
    }

    /// Create an unpacker over a shared plan of the buffer at `base`.
    pub fn from_plan(base: HostPtr, plan: Arc<Plan>) -> Self {
        UnpackCursor {
            base,
            plan,
            seg_idx: 0,
            seg_off: 0,
            consumed: 0,
        }
    }

    /// Total bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// True when every segment has been filled.
    pub fn finished(&self) -> bool {
        self.seg_idx >= self.plan.num_segments()
    }

    /// Scatter the next `data.len()` bytes of the packed stream. Panics if
    /// that exceeds the layout's remaining capacity.
    pub fn unpack_from(&mut self, data: &[u8]) {
        let mut pos = 0;
        while pos < data.len() {
            if let Some((pitch, width, rows)) =
                strided_run(&self.plan, self.seg_idx, self.seg_off, data.len() - pos)
            {
                let seg = self.plan.segments()[self.seg_idx];
                let dst = abs_offset(&self.base, &seg, 0);
                self.base.buf().write_strided(
                    dst,
                    pitch,
                    width,
                    rows,
                    &data[pos..pos + rows * width],
                );
                pos += rows * width;
                self.seg_idx += rows;
                continue;
            }
            let seg = *self
                .plan
                .segments()
                .get(self.seg_idx)
                .expect("UnpackCursor: unpacked past the end of the datatype");
            let avail = seg.len - self.seg_off;
            let take = avail.min(data.len() - pos);
            let dst = abs_offset(&self.base, &seg, self.seg_off);
            self.base.buf().write(dst, &data[pos..pos + take]);
            pos += take;
            self.seg_off += take;
            if self.seg_off == seg.len {
                self.seg_idx += 1;
                self.seg_off = 0;
            }
        }
        self.consumed += data.len();
    }
}

/// CPU memory/packing cost model (host side of the MPI library).
#[derive(Clone, Debug)]
pub struct CpuModel {
    /// Packing/copy bandwidth on one core, bytes per second.
    pub pack_bw_bps: f64,
    /// Fixed cost per touched segment (loop + address computation), ns.
    pub per_segment_ns: f64,
    /// Cost of one MPI call's bookkeeping, ns.
    pub mpi_call_ns: u64,
    /// Cost of handling one incoming packet in the progress engine, ns.
    pub handle_pkt_ns: u64,
}

impl CpuModel {
    /// Calibrated for the paper's Westmere-era Xeon host.
    pub fn westmere() -> Self {
        CpuModel {
            pack_bw_bps: 3.0e9,
            per_segment_ns: 4.0,
            mpi_call_ns: 200,
            handle_pkt_ns: 150,
        }
    }

    /// Time to pack/unpack `bytes` spread over `segments` runs.
    pub fn pack_time(&self, bytes: usize, segments: usize) -> sim_core::SimDur {
        let ns = bytes as f64 / self.pack_bw_bps * 1e9 + self.per_segment_ns * segments as f64;
        sim_core::SimDur::from_nanos(ns.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostmem::HostBuf;

    fn segs(v: &[(isize, usize)]) -> Vec<Segment> {
        v.iter()
            .map(|&(offset, len)| Segment { offset, len })
            .collect()
    }

    #[test]
    fn pack_all_gathers_segments_in_order() {
        let buf = HostBuf::from_vec((0u8..16).collect());
        let mut p = PackCursor::new(buf.base(), segs(&[(12, 2), (0, 3), (6, 1)]));
        assert_eq!(p.pack_all(), vec![12, 13, 0, 1, 2, 6]);
        assert!(p.finished());
        assert_eq!(p.produced(), 6);
    }

    #[test]
    fn chunked_pack_equals_whole_pack() {
        let buf = HostBuf::from_vec((0u8..64).collect());
        let s = segs(&[(1, 5), (10, 7), (30, 3), (40, 9)]);
        let mut whole = PackCursor::new(buf.base(), s.clone());
        let expect = whole.pack_all();
        let mut chunked = PackCursor::new(buf.base(), s);
        let mut got = Vec::new();
        for chunk_len in [3usize, 1, 7, 6, 4, 3] {
            let mut tmp = vec![0u8; chunk_len];
            chunked.pack_into(&mut tmp);
            got.extend_from_slice(&tmp);
        }
        assert_eq!(got, expect);
        assert!(chunked.finished());
    }

    #[test]
    fn unpack_round_trips_pack() {
        let src = HostBuf::from_vec((100u8..164).collect());
        let dst = HostBuf::alloc(64);
        let s = segs(&[(2, 6), (20, 10), (45, 5)]);
        let packed = PackCursor::new(src.base(), s.clone()).pack_all();
        let mut u = UnpackCursor::new(dst.base(), s.clone());
        // Unpack in uneven chunks.
        u.unpack_from(&packed[..7]);
        u.unpack_from(&packed[7..9]);
        u.unpack_from(&packed[9..]);
        assert!(u.finished());
        for seg in &s {
            let o = seg.offset as usize;
            assert_eq!(dst.read(o, seg.len), src.read(o, seg.len));
        }
        // Bytes outside segments stay zero.
        assert_eq!(dst.read(0, 2), vec![0, 0]);
    }

    #[test]
    fn base_offset_applies() {
        let buf = HostBuf::from_vec((0u8..32).collect());
        let mut p = PackCursor::new(buf.ptr(8), segs(&[(0, 2), (4, 2)]));
        assert_eq!(p.pack_all(), vec![8, 9, 12, 13]);
    }

    #[test]
    fn negative_segment_with_positive_base_is_ok() {
        let buf = HostBuf::from_vec((0u8..16).collect());
        let mut p = PackCursor::new(buf.ptr(8), segs(&[(-4, 2)]));
        assert_eq!(p.pack_all(), vec![4, 5]);
    }

    #[test]
    #[should_panic(expected = "negative absolute offset")]
    fn negative_absolute_offset_panics() {
        let buf = HostBuf::alloc(16);
        let mut p = PackCursor::new(buf.base(), segs(&[(-4, 2)]));
        let _ = p.pack_all();
    }

    #[test]
    #[should_panic(expected = "past the end")]
    fn overpack_panics() {
        let buf = HostBuf::alloc(16);
        let mut p = PackCursor::new(buf.base(), segs(&[(0, 4)]));
        let mut out = vec![0u8; 5];
        p.pack_into(&mut out);
    }

    #[test]
    fn strided_fast_path_matches_generic() {
        // 6 rows of 3 bytes at pitch 8 — a Strided2D plan, so whole-row
        // spans go through the pitched bulk copy. Chunk boundaries that
        // split a row force the generic path mid-stream; results must be
        // identical either way.
        let src = HostBuf::from_vec((0u8..64).collect());
        let s = segs(&[(1, 3), (9, 3), (17, 3), (25, 3), (33, 3), (41, 3)]);
        let expect = PackCursor::new(src.base(), s.clone()).pack_all();
        assert_eq!(expect.len(), 18);
        for chunks in [vec![18], vec![4, 4, 4, 6], vec![1, 16, 1], vec![7, 11]] {
            let mut p = PackCursor::new(src.base(), s.clone());
            let mut got = Vec::new();
            for c in chunks {
                let mut tmp = vec![0u8; c];
                p.pack_into(&mut tmp);
                got.extend_from_slice(&tmp);
            }
            assert_eq!(got, expect);
            assert!(p.finished());

            let dst = HostBuf::alloc(64);
            let mut u = UnpackCursor::new(dst.base(), s.clone());
            u.unpack_from(&got[..5]);
            u.unpack_from(&got[5..]);
            assert!(u.finished());
            for seg in &s {
                let o = seg.offset as usize;
                assert_eq!(dst.read(o, seg.len), src.read(o, seg.len));
            }
        }
    }

    #[test]
    fn cpu_model_pack_time_scales() {
        let m = CpuModel::westmere();
        let small = m.pack_time(1024, 1);
        let big = m.pack_time(1 << 20, 1);
        assert!(big > small);
        // Segment-heavy layouts cost more than flat ones of the same size.
        assert!(m.pack_time(4096, 1024) > m.pack_time(4096, 1));
    }
}
