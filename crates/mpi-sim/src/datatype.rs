//! MPI derived datatypes: type algebra (size / extent / lb / ub) per MPI 2.2.
//!
//! A datatype describes a *typemap*: a set of (byte offset, primitive) pairs.
//! We never materialize typemaps at the primitive level; instead each
//! constructor computes the derived quantities recursively and
//! [`commit`](Datatype::commit) flattens the byte layout (see
//! [`crate::flat`]).
//!
//! Supported constructors — the full set used by real applications:
//! primitives, `contiguous`, `vector`, `hvector`, `indexed`, `hindexed`,
//! `create_struct`, `subarray` (built compositionally) and `create_resized`.

use std::fmt;
use std::sync::Arc;

use sim_core::lock::Mutex;

use crate::flat::FlatType;

/// Element order of a subarray (Fortran not supported — the simulated apps
/// are row-major).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SubarrayOrder {
    /// C order: last dimension contiguous.
    C,
}

#[derive(Debug)]
pub(crate) enum DtKind {
    /// A named primitive of the given size (MPI_FLOAT, MPI_DOUBLE, ...).
    Primitive {
        #[allow(dead_code)] // retained for Debug output / future introspection
        name: &'static str,
    },
    Contiguous {
        count: usize,
        child: Datatype,
    },
    /// `stride` counted in child extents (MPI_Type_vector).
    Vector {
        count: usize,
        blocklen: usize,
        stride: isize,
        child: Datatype,
    },
    /// `stride_bytes` counted in bytes (MPI_Type_create_hvector).
    Hvector {
        count: usize,
        blocklen: usize,
        stride_bytes: isize,
        child: Datatype,
    },
    /// Blocks of (blocklen, displacement in child extents).
    Indexed {
        blocks: Vec<(usize, isize)>,
        child: Datatype,
    },
    /// Blocks of (blocklen, displacement in bytes).
    Hindexed {
        blocks: Vec<(usize, isize)>,
        child: Datatype,
    },
    /// Heterogeneous fields of (blocklen, displacement in bytes, type).
    Struct {
        fields: Vec<(usize, isize, Datatype)>,
    },
    /// Extent/lb override (MPI_Type_create_resized). The override values
    /// live in the node's cached bounds; the fields here document the tree.
    Resized {
        child: Datatype,
        #[allow(dead_code)]
        lb: isize,
        #[allow(dead_code)]
        extent: isize,
    },
}

pub(crate) struct DtInner {
    pub(crate) kind: DtKind,
    size: usize,
    lb: isize,
    ub: isize,
    committed: Mutex<Option<Arc<FlatType>>>,
}

/// An MPI datatype handle. Clones are shallow.
#[derive(Clone)]
pub struct Datatype {
    pub(crate) inner: Arc<DtInner>,
}

impl fmt::Debug for Datatype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Datatype(size={}, lb={}, extent={})",
            self.size(),
            self.lb(),
            self.extent()
        )
    }
}

fn new_dt(kind: DtKind, size: usize, lb: isize, ub: isize) -> Datatype {
    Datatype {
        inner: Arc::new(DtInner {
            kind,
            size,
            lb,
            ub,
            committed: Mutex::new(None),
        }),
    }
}

/// Compute (lb, ub) over a set of placements of `child` at byte
/// displacements `disp`, each a run of `blocklen` consecutive child extents.
fn bounds_over<I: Iterator<Item = (usize, isize)>>(
    child: &Datatype,
    placements: I,
) -> Option<(isize, isize)> {
    let ext = child.extent();
    let (clb, cub) = (child.lb(), child.ub());
    let mut out: Option<(isize, isize)> = None;
    for (blocklen, disp_bytes) in placements {
        if blocklen == 0 {
            continue;
        }
        // Elements sit at disp + j*ext for j in 0..blocklen.
        let first_lb = disp_bytes + clb;
        let last_ub = disp_bytes + (blocklen as isize - 1) * ext + cub;
        // With negative extents the min/max may flip; take both endpoints.
        let lo = first_lb
            .min(disp_bytes + (blocklen as isize - 1) * ext + clb)
            .min(first_lb);
        let hi = last_ub.max(disp_bytes + cub).max(last_ub);
        out = Some(match out {
            None => (lo, hi),
            Some((l, h)) => (l.min(lo), h.max(hi)),
        });
    }
    out
}

impl Datatype {
    // --- primitives ---------------------------------------------------------

    fn primitive(name: &'static str, size: usize) -> Datatype {
        new_dt(DtKind::Primitive { name }, size, 0, size as isize)
    }

    /// MPI_BYTE.
    pub fn byte() -> Datatype {
        Self::primitive("MPI_BYTE", 1)
    }

    /// MPI_CHAR.
    pub fn char() -> Datatype {
        Self::primitive("MPI_CHAR", 1)
    }

    /// MPI_INT.
    pub fn int() -> Datatype {
        Self::primitive("MPI_INT", 4)
    }

    /// MPI_FLOAT.
    pub fn float() -> Datatype {
        Self::primitive("MPI_FLOAT", 4)
    }

    /// MPI_DOUBLE.
    pub fn double() -> Datatype {
        Self::primitive("MPI_DOUBLE", 8)
    }

    /// MPI_LONG (LP64).
    pub fn long() -> Datatype {
        Self::primitive("MPI_LONG", 8)
    }

    // --- derived constructors -------------------------------------------------

    /// `MPI_Type_contiguous(count, child)`.
    pub fn contiguous(count: usize, child: &Datatype) -> Datatype {
        let ext = child.extent();
        let (lb, ub) = bounds_over(child, std::iter::once((count, 0isize))).unwrap_or((0, 0));
        let _ = ext;
        new_dt(
            DtKind::Contiguous {
                count,
                child: child.clone(),
            },
            child.size() * count,
            lb,
            ub,
        )
    }

    /// `MPI_Type_vector(count, blocklen, stride, child)`: `count` blocks of
    /// `blocklen` elements, block starts `stride` child-extents apart.
    pub fn vector(count: usize, blocklen: usize, stride: isize, child: &Datatype) -> Datatype {
        let ext = child.extent();
        let (lb, ub) = bounds_over(
            child,
            (0..count).map(|i| (blocklen, i as isize * stride * ext)),
        )
        .unwrap_or((0, 0));
        new_dt(
            DtKind::Vector {
                count,
                blocklen,
                stride,
                child: child.clone(),
            },
            child.size() * count * blocklen,
            lb,
            ub,
        )
    }

    /// `MPI_Type_create_hvector`: like [`vector`](Self::vector) but the
    /// stride is in bytes.
    pub fn hvector(
        count: usize,
        blocklen: usize,
        stride_bytes: isize,
        child: &Datatype,
    ) -> Datatype {
        let (lb, ub) = bounds_over(
            child,
            (0..count).map(|i| (blocklen, i as isize * stride_bytes)),
        )
        .unwrap_or((0, 0));
        new_dt(
            DtKind::Hvector {
                count,
                blocklen,
                stride_bytes,
                child: child.clone(),
            },
            child.size() * count * blocklen,
            lb,
            ub,
        )
    }

    /// `MPI_Type_indexed`: blocks of `(blocklen, displacement)` with
    /// displacements in child extents.
    pub fn indexed(blocks: &[(usize, isize)], child: &Datatype) -> Datatype {
        let ext = child.extent();
        let (lb, ub) =
            bounds_over(child, blocks.iter().map(|&(bl, d)| (bl, d * ext))).unwrap_or((0, 0));
        let size: usize = blocks.iter().map(|&(bl, _)| bl).sum::<usize>() * child.size();
        new_dt(
            DtKind::Indexed {
                blocks: blocks.to_vec(),
                child: child.clone(),
            },
            size,
            lb,
            ub,
        )
    }

    /// `MPI_Type_create_hindexed`: displacements in bytes.
    pub fn hindexed(blocks: &[(usize, isize)], child: &Datatype) -> Datatype {
        let (lb, ub) = bounds_over(child, blocks.iter().copied()).unwrap_or((0, 0));
        let size: usize = blocks.iter().map(|&(bl, _)| bl).sum::<usize>() * child.size();
        new_dt(
            DtKind::Hindexed {
                blocks: blocks.to_vec(),
                child: child.clone(),
            },
            size,
            lb,
            ub,
        )
    }

    /// `MPI_Type_create_struct`: heterogeneous fields at byte displacements.
    pub fn create_struct(fields: &[(usize, isize, Datatype)]) -> Datatype {
        let mut lo_hi: Option<(isize, isize)> = None;
        let mut size = 0usize;
        for (bl, disp, t) in fields {
            size += bl * t.size();
            if let Some((lo, hi)) = bounds_over(t, std::iter::once((*bl, *disp))) {
                lo_hi = Some(match lo_hi {
                    None => (lo, hi),
                    Some((l, h)) => (l.min(lo), h.max(hi)),
                });
            }
        }
        let (lb, ub) = lo_hi.unwrap_or((0, 0));
        new_dt(
            DtKind::Struct {
                fields: fields.to_vec(),
            },
            size,
            lb,
            ub,
        )
    }

    /// `MPI_Type_create_subarray` (C order): an `ndims`-dimensional
    /// `subsizes` window at `starts` inside a `sizes` array of `child`
    /// elements. Built compositionally from vector/hvector + resized.
    pub fn subarray(
        sizes: &[usize],
        subsizes: &[usize],
        starts: &[usize],
        _order: SubarrayOrder,
        child: &Datatype,
    ) -> Datatype {
        assert!(
            !sizes.is_empty() && sizes.len() == subsizes.len() && sizes.len() == starts.len(),
            "subarray: dimension mismatch"
        );
        for d in 0..sizes.len() {
            assert!(
                starts[d] + subsizes[d] <= sizes[d],
                "subarray: window exceeds array in dim {d}"
            );
        }
        let ext = child.extent();
        // Innermost (last) dimension: contiguous run of subsizes[n-1].
        let n = sizes.len();
        let mut t = Datatype::contiguous(subsizes[n - 1], child);
        let mut row_bytes = sizes[n - 1] as isize * ext; // full row extent
                                                         // Wrap outward: each dim d becomes an hvector of subsizes[d] copies
                                                         // spaced by the full lower-dim extent.
        for d in (0..n - 1).rev() {
            t = Datatype::hvector(subsizes[d], 1, row_bytes, &t);
            row_bytes *= sizes[d] as isize;
        }
        // Shift by the starting offset and give the type the full array
        // extent so consecutive subarrays tile correctly.
        let mut start_off = 0isize;
        let mut dim_ext = ext;
        for d in (0..n).rev() {
            start_off += starts[d] as isize * dim_ext;
            dim_ext *= sizes[d] as isize;
        }
        let shifted = Datatype::hindexed(&[(1, start_off)], &t);
        Datatype::resized(&shifted, 0, dim_ext)
    }

    /// `MPI_Type_create_indexed_block`: equal-length blocks at the given
    /// displacements (in child extents).
    pub fn indexed_block(blocklen: usize, displacements: &[isize], child: &Datatype) -> Datatype {
        let blocks: Vec<(usize, isize)> = displacements.iter().map(|&d| (blocklen, d)).collect();
        Self::indexed(&blocks, child)
    }

    /// A distributed-array block (the common block-distribution case of
    /// `MPI_Type_create_darray`): the sub-block owned by process
    /// `coords` of a `grid` decomposition of a C-order `sizes` array,
    /// dimensions divided evenly. Composed from [`subarray`](Self::subarray).
    pub fn darray_block(
        sizes: &[usize],
        grid: &[usize],
        coords: &[usize],
        child: &Datatype,
    ) -> Datatype {
        assert!(
            sizes.len() == grid.len() && sizes.len() == coords.len(),
            "darray_block: dimension mismatch"
        );
        let mut subsizes = Vec::with_capacity(sizes.len());
        let mut starts = Vec::with_capacity(sizes.len());
        for d in 0..sizes.len() {
            assert!(
                sizes[d].is_multiple_of(grid[d]),
                "darray_block: dim {d} not evenly divisible"
            );
            assert!(coords[d] < grid[d], "darray_block: coords out of grid");
            let b = sizes[d] / grid[d];
            subsizes.push(b);
            starts.push(coords[d] * b);
        }
        Self::subarray(sizes, &subsizes, &starts, SubarrayOrder::C, child)
    }

    /// `MPI_Type_create_resized`: override lower bound and extent.
    pub fn resized(child: &Datatype, lb: isize, extent: isize) -> Datatype {
        new_dt(
            DtKind::Resized {
                child: child.clone(),
                lb,
                extent,
            },
            child.size(),
            lb,
            lb + extent,
        )
    }

    // --- queries -----------------------------------------------------------------

    /// Number of data bytes (MPI_Type_size).
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// Lower bound in bytes.
    pub fn lb(&self) -> isize {
        self.inner.lb
    }

    /// Upper bound in bytes.
    pub fn ub(&self) -> isize {
        self.inner.ub
    }

    /// Extent in bytes (MPI_Type_get_extent).
    pub fn extent(&self) -> isize {
        self.inner.ub - self.inner.lb
    }

    /// True for a committed type.
    pub fn is_committed(&self) -> bool {
        self.inner.committed.lock().is_some()
    }

    /// The primitive's name ("MPI_FLOAT", ...) when this is a named
    /// primitive type; `None` for derived types. Reduction operators are
    /// defined on primitives.
    pub fn primitive_name(&self) -> Option<&'static str> {
        match &self.inner.kind {
            DtKind::Primitive { name } => Some(name),
            _ => None,
        }
    }

    /// `MPI_Type_commit`: flatten the layout. Communication operations
    /// require a committed type. Commit is idempotent.
    pub fn commit(&self) -> &Datatype {
        let mut c = self.inner.committed.lock();
        if c.is_none() {
            *c = Some(Arc::new(FlatType::build(self)));
        }
        self
    }

    /// `MPI_Pack`: gather `count` elements from the host buffer at `buf`
    /// into a contiguous byte vector. Requires a committed type.
    pub fn pack(&self, buf: &hostmem::HostPtr, count: usize) -> Vec<u8> {
        let plan = self.flat().plan(count);
        crate::pack::PackCursor::from_plan(buf.clone(), plan).pack_all()
    }

    /// `MPI_Unpack`: scatter a contiguous byte stream into `count` elements
    /// at the host buffer `buf`. Requires a committed type; `data` must be
    /// exactly `count * size()` bytes.
    pub fn unpack(&self, data: &[u8], buf: &hostmem::HostPtr, count: usize) {
        assert_eq!(
            data.len(),
            self.size() * count,
            "MPI_Unpack: stream length does not match the datatype"
        );
        let plan = self.flat().plan(count);
        let mut c = crate::pack::UnpackCursor::from_plan(buf.clone(), plan);
        c.unpack_from(data);
    }

    /// The cached communication plan for `count` elements (expanded
    /// segments, prefix sums, layout). Requires a committed type.
    pub fn plan(&self, count: usize) -> Arc<crate::plan::Plan> {
        self.flat().plan(count)
    }

    /// Plan-cache counters of this committed type.
    pub fn plan_cache_stats(&self) -> crate::plan::PlanCacheStats {
        self.flat().plan_cache_stats()
    }

    /// The committed flattened layout. Panics if not committed.
    pub fn flat(&self) -> Arc<FlatType> {
        self.inner
            .committed
            .lock()
            .clone()
            .expect("datatype used for communication before MPI_Type_commit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(Datatype::float().size(), 4);
        assert_eq!(Datatype::double().size(), 8);
        assert_eq!(Datatype::float().extent(), 4);
        assert_eq!(Datatype::byte().size(), 1);
    }

    #[test]
    fn contiguous_type() {
        let t = Datatype::contiguous(10, &Datatype::float());
        assert_eq!(t.size(), 40);
        assert_eq!(t.extent(), 40);
        assert_eq!(t.lb(), 0);
    }

    #[test]
    fn vector_type_matches_mpi_rules() {
        // 3 blocks of 2 floats, stride 4 floats: data at 0..8, 16..24, 32..40.
        let t = Datatype::vector(3, 2, 4, &Datatype::float());
        assert_eq!(t.size(), 24);
        assert_eq!(t.lb(), 0);
        assert_eq!(t.ub(), 40);
        assert_eq!(t.extent(), 40);
    }

    #[test]
    fn vector_of_vectors() {
        let row = Datatype::vector(4, 1, 2, &Datatype::int()); // extent 4*...
        let t = Datatype::vector(2, 1, 3, &row);
        assert_eq!(t.size(), 2 * row.size());
        assert_eq!(row.size(), 16);
    }

    #[test]
    fn hvector_stride_in_bytes() {
        let t = Datatype::hvector(3, 1, 100, &Datatype::double());
        assert_eq!(t.size(), 24);
        assert_eq!(t.ub(), 208);
        assert_eq!(t.extent(), 208);
    }

    #[test]
    fn indexed_bounds() {
        // blocks at displacement 2 and 5 (in ints), lens 1 and 3.
        let t = Datatype::indexed(&[(1, 2), (3, 5)], &Datatype::int());
        assert_eq!(t.size(), 16);
        assert_eq!(t.lb(), 8);
        assert_eq!(t.ub(), 32);
    }

    #[test]
    fn hindexed_negative_displacement() {
        let t = Datatype::hindexed(&[(1, -8), (1, 8)], &Datatype::int());
        assert_eq!(t.lb(), -8);
        assert_eq!(t.ub(), 12);
        assert_eq!(t.size(), 8);
    }

    #[test]
    fn struct_type() {
        let t = Datatype::create_struct(&[(1, 0, Datatype::int()), (2, 8, Datatype::double())]);
        assert_eq!(t.size(), 4 + 16);
        assert_eq!(t.lb(), 0);
        assert_eq!(t.ub(), 24);
    }

    #[test]
    fn resized_overrides_extent() {
        let t = Datatype::contiguous(3, &Datatype::int());
        let r = Datatype::resized(&t, 0, 16);
        assert_eq!(r.size(), 12);
        assert_eq!(r.extent(), 16);
    }

    #[test]
    fn subarray_2d_extent_is_full_array() {
        // 4x6 array of floats, 2x3 window at (1,2).
        let t = Datatype::subarray(
            &[4, 6],
            &[2, 3],
            &[1, 2],
            SubarrayOrder::C,
            &Datatype::float(),
        );
        assert_eq!(t.size(), 2 * 3 * 4);
        assert_eq!(t.extent(), 4 * 6 * 4);
    }

    #[test]
    #[should_panic(expected = "window exceeds array")]
    fn subarray_rejects_oversized_window() {
        let _ = Datatype::subarray(
            &[4, 4],
            &[2, 4],
            &[1, 1],
            SubarrayOrder::C,
            &Datatype::float(),
        );
    }

    #[test]
    fn commit_is_idempotent() {
        let t = Datatype::vector(2, 1, 2, &Datatype::float());
        assert!(!t.is_committed());
        t.commit();
        assert!(t.is_committed());
        let f1 = t.flat();
        t.commit();
        assert!(Arc::ptr_eq(&f1, &t.flat()));
    }

    #[test]
    #[should_panic(expected = "before MPI_Type_commit")]
    fn uncommitted_flat_panics() {
        let t = Datatype::vector(2, 1, 2, &Datatype::float());
        let _ = t.flat();
    }

    #[test]
    fn indexed_block_equals_indexed() {
        let a = Datatype::indexed_block(2, &[0, 5, 11], &Datatype::int());
        let b = Datatype::indexed(&[(2, 0), (2, 5), (2, 11)], &Datatype::int());
        assert_eq!(a.size(), b.size());
        assert_eq!(a.lb(), b.lb());
        assert_eq!(a.ub(), b.ub());
        a.commit();
        b.commit();
        assert_eq!(a.flat().segments(), b.flat().segments());
    }

    #[test]
    fn darray_block_tiles_the_array() {
        // 8x6 array split on a 2x3 grid: each block 4x2, tiling disjointly.
        let mut seen = [false; 8 * 6];
        for ci in 0..2 {
            for cj in 0..3 {
                let t = Datatype::darray_block(&[8, 6], &[2, 3], &[ci, cj], &Datatype::float());
                assert_eq!(t.size(), 4 * 2 * 4);
                t.commit();
                for s in t.flat().expanded(1) {
                    let start = s.offset as usize / 4;
                    for (e, slot) in seen.iter_mut().enumerate().skip(start).take(s.len / 4) {
                        assert!(!*slot, "element {e} covered twice");
                        *slot = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&x| x), "blocks must tile the whole array");
    }

    #[test]
    #[should_panic(expected = "not evenly divisible")]
    fn darray_block_rejects_uneven_split() {
        let _ = Datatype::darray_block(&[7], &[2], &[0], &Datatype::int());
    }

    #[test]
    fn pack_unpack_round_trip() {
        use hostmem::HostBuf;
        let t = Datatype::vector(3, 2, 4, &Datatype::int());
        t.commit();
        let src = HostBuf::from_vec((0u8..48).collect());
        let packed = t.pack(&src.base(), 1);
        assert_eq!(packed.len(), t.size());
        let dst = HostBuf::alloc(48);
        t.unpack(&packed, &dst.base(), 1);
        for blk in 0..3 {
            let o = blk * 16;
            assert_eq!(dst.read(o, 8), src.read(o, 8));
            assert_eq!(dst.read(o + 8, 8), vec![0u8; 8]);
        }
    }

    #[test]
    #[should_panic(expected = "stream length")]
    fn unpack_wrong_length_panics() {
        use hostmem::HostBuf;
        let t = Datatype::int();
        t.commit();
        let buf = HostBuf::alloc(8);
        t.unpack(&[0u8; 3], &buf.base(), 1);
    }

    #[test]
    fn empty_types_have_zero_bounds() {
        let t = Datatype::vector(0, 3, 5, &Datatype::float());
        assert_eq!(t.size(), 0);
        assert_eq!(t.extent(), 0);
        let t2 = Datatype::indexed(&[], &Datatype::int());
        assert_eq!(t2.size(), 0);
    }
}
