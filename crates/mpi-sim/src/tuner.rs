//! Online pipeline block-size tuner ([`crate::ChunkPolicy::Adaptive`]).
//!
//! The paper finds the 64 KB staging block by an offline sweep (§V-B): too
//! small and per-chunk overheads dominate, too large and the pipeline
//! stages stop overlapping. The tuner redoes that sweep online, per
//! receiver and per `(message size class, layout class)` key: every staged
//! transfer is timed RTS-to-completion, and a deterministic local search
//! over a power-of-two ladder walks from `MpiConfig::chunk_size` toward
//! the latency minimum, settling once both neighbors of the best rung have
//! been measured. The first transfer of any key always uses the configured
//! `chunk_size`, so a single transfer behaves identically under either
//! policy.

use std::collections::HashMap;

use sim_core::SimDur;

use crate::flat::Layout;
use crate::proto::{ChunkPolicy, MpiConfig};

/// Coarse layout bucket: patterns in the same bucket pipeline alike.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) enum LayoutClass {
    Contiguous,
    Strided,
    Irregular,
}

impl LayoutClass {
    pub(crate) fn of(layout: &Layout) -> Self {
        match layout {
            Layout::Contiguous { .. } => LayoutClass::Contiguous,
            Layout::Strided2D { .. } => LayoutClass::Strided,
            Layout::Irregular => LayoutClass::Irregular,
        }
    }
}

/// Static counter name for a settled search, `tuner.settled.<layout>.<kb>k`
/// — counters require `&'static str`, so the power-of-two ladder is spelled
/// out and anything off it falls into `.other`.
pub(crate) fn settled_counter(layout: LayoutClass, block: usize) -> &'static str {
    macro_rules! per_block {
        ($layout:literal) => {
            match block {
                0x1000 => concat!("tuner.settled.", $layout, ".4k"),
                0x2000 => concat!("tuner.settled.", $layout, ".8k"),
                0x4000 => concat!("tuner.settled.", $layout, ".16k"),
                0x8000 => concat!("tuner.settled.", $layout, ".32k"),
                0x10000 => concat!("tuner.settled.", $layout, ".64k"),
                0x20000 => concat!("tuner.settled.", $layout, ".128k"),
                0x40000 => concat!("tuner.settled.", $layout, ".256k"),
                0x80000 => concat!("tuner.settled.", $layout, ".512k"),
                0x100000 => concat!("tuner.settled.", $layout, ".1024k"),
                _ => concat!("tuner.settled.", $layout, ".other"),
            }
        };
    }
    match layout {
        LayoutClass::Contiguous => per_block!("contiguous"),
        LayoutClass::Strided => per_block!("strided"),
        LayoutClass::Irregular => per_block!("irregular"),
    }
}

/// Tuning key: transfers of the same power-of-two size class and layout
/// class share one search state.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct TuneKey {
    size_class: u32,
    layout: LayoutClass,
}

impl TuneKey {
    pub(crate) fn new(total: usize, layout: LayoutClass) -> Self {
        TuneKey {
            size_class: usize::BITS - total.max(1).leading_zeros(),
            layout,
        }
    }

    pub(crate) fn layout(&self) -> LayoutClass {
        self.layout
    }
}

/// Search state for one key.
struct TuneState {
    /// Best observed latency per ladder rung, ns.
    best_ns: Vec<Option<u64>>,
    /// Rung the next transfer will use.
    cursor: usize,
    /// True once the search has converged; the cursor stays put.
    settled: bool,
}

/// Per-engine block-size search across all keys.
pub(crate) struct ChunkTuner {
    /// Candidate block sizes, ascending.
    ladder: Vec<usize>,
    /// Rung of `MpiConfig::chunk_size` — where every search starts.
    start: usize,
    states: HashMap<TuneKey, TuneState>,
}

impl ChunkTuner {
    pub(crate) fn new(cfg: &MpiConfig) -> Self {
        let mut ladder = match cfg.policy {
            ChunkPolicy::Fixed => vec![cfg.chunk_size],
            ChunkPolicy::Adaptive {
                min_block,
                max_block,
            } => {
                let mut l: Vec<usize> = (0..usize::BITS)
                    .map(|p| 1usize << p)
                    .filter(|&b| b >= min_block && b <= max_block)
                    .collect();
                l.push(cfg.chunk_size);
                l
            }
        };
        ladder.sort_unstable();
        ladder.dedup();
        let start = ladder
            .iter()
            .position(|&b| b == cfg.chunk_size)
            .expect("chunk_size is always on the ladder");
        ChunkTuner {
            ladder,
            start,
            states: HashMap::new(),
        }
    }

    /// Block size the next transfer under `key` should use.
    pub(crate) fn choose(&mut self, key: TuneKey) -> usize {
        let start = self.start;
        let n = self.ladder.len();
        let st = self.states.entry(key).or_insert_with(|| TuneState {
            best_ns: vec![None; n],
            cursor: start,
            settled: false,
        });
        self.ladder[st.cursor]
    }

    /// Record a completed transfer: `block` took `elapsed` end to end.
    /// Moves the cursor toward the observed latency minimum. Returns the
    /// winning block size on the observation that settles the search (so
    /// callers can count which block each key converged to); `None` on
    /// every other observation.
    pub(crate) fn observe(&mut self, key: TuneKey, block: usize, elapsed: SimDur) -> Option<usize> {
        let st = self.states.get_mut(&key)?;
        let i = self.ladder.iter().position(|&b| b == block)?;
        let ns = elapsed.as_nanos();
        st.best_ns[i] = Some(st.best_ns[i].map_or(ns, |prev| prev.min(ns)));
        if st.settled {
            return None;
        }
        let best = st
            .best_ns
            .iter()
            .enumerate()
            .filter_map(|(j, v)| v.map(|ns| (ns, j)))
            .min()
            .map(|(_, j)| j)
            .unwrap_or(self.start);
        // Probe the unmeasured neighbor of the current best (larger block
        // first); when both neighbors are known, the best rung is a local —
        // and for the pipeline's unimodal latency curve, global — minimum.
        let up = best + 1 < self.ladder.len() && st.best_ns[best + 1].is_none();
        let down = best > 0 && st.best_ns[best - 1].is_none();
        if up {
            st.cursor = best + 1;
        } else if down {
            st.cursor = best - 1;
        } else {
            st.cursor = best;
            st.settled = true;
            return Some(self.ladder[best]);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adaptive_cfg() -> MpiConfig {
        MpiConfig::default()
    }

    fn key() -> TuneKey {
        TuneKey::new(4 << 20, LayoutClass::Strided)
    }

    #[test]
    fn fixed_policy_has_one_rung() {
        let cfg = MpiConfig {
            policy: ChunkPolicy::Fixed,
            ..MpiConfig::default()
        };
        let mut t = ChunkTuner::new(&cfg);
        assert_eq!(t.choose(key()), cfg.chunk_size);
        t.observe(key(), cfg.chunk_size, SimDur::from_nanos(123));
        assert_eq!(t.choose(key()), cfg.chunk_size);
    }

    #[test]
    fn first_choice_is_the_configured_chunk_size() {
        let mut t = ChunkTuner::new(&adaptive_cfg());
        assert_eq!(t.choose(key()), 64 << 10);
    }

    #[test]
    fn search_settles_on_the_latency_minimum() {
        // Synthetic unimodal latency curve with its minimum at 128 KiB.
        let lat = |block: usize| -> u64 {
            let b = block as f64;
            let opt = (128 << 10) as f64;
            (1_000_000.0 + 50_000.0 * (b / opt - opt / b).abs()) as u64
        };
        let mut t = ChunkTuner::new(&adaptive_cfg());
        let mut last = 0;
        for _ in 0..16 {
            let block = t.choose(key());
            t.observe(key(), block, SimDur::from_nanos(lat(block)));
            last = block;
        }
        assert_eq!(last, 128 << 10, "search must converge to the minimum");
        // Convergence is sticky: further observations do not move it.
        t.observe(key(), last, SimDur::from_nanos(lat(last) * 10));
        assert_eq!(t.choose(key()), 128 << 10);
    }

    #[test]
    fn observe_reports_the_block_once_on_settling() {
        let lat = |block: usize| -> u64 {
            let b = block as f64;
            let opt = (128 << 10) as f64;
            (1_000_000.0 + 50_000.0 * (b / opt - opt / b).abs()) as u64
        };
        let mut t = ChunkTuner::new(&adaptive_cfg());
        let mut settled = Vec::new();
        for _ in 0..16 {
            let block = t.choose(key());
            if let Some(b) = t.observe(key(), block, SimDur::from_nanos(lat(block))) {
                settled.push(b);
            }
        }
        assert_eq!(
            settled,
            vec![128 << 10],
            "settles exactly once, on the winner"
        );
    }

    #[test]
    fn settled_counter_names_are_static_and_distinct() {
        let a = settled_counter(LayoutClass::Strided, 64 << 10);
        let b = settled_counter(LayoutClass::Contiguous, 64 << 10);
        let c = settled_counter(LayoutClass::Strided, 128 << 10);
        assert_eq!(a, "tuner.settled.strided.64k");
        assert_eq!(b, "tuner.settled.contiguous.64k");
        assert_eq!(c, "tuner.settled.strided.128k");
        assert_eq!(
            settled_counter(LayoutClass::Irregular, 12345),
            "tuner.settled.irregular.other"
        );
    }

    #[test]
    fn keys_are_tuned_independently() {
        let mut t = ChunkTuner::new(&adaptive_cfg());
        let k1 = TuneKey::new(4 << 20, LayoutClass::Strided);
        let k2 = TuneKey::new(64 << 10, LayoutClass::Contiguous);
        assert_ne!(k1, k2);
        let b1 = t.choose(k1);
        t.observe(k1, b1, SimDur::from_nanos(1_000));
        // k1 has moved off the start; k2 still begins at chunk_size.
        assert_eq!(t.choose(k2), 64 << 10);
    }
}
