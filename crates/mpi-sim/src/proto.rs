//! Wire protocol: packet formats and protocol configuration.
//!
//! Three data paths, selected per message (mirroring MVAPICH2):
//!
//! * **Eager** — `total <= eager_limit`: the packed payload rides the
//!   envelope. Completes locally at send time (buffered semantics).
//! * **Rendezvous direct (R-PUT)** — both sides contiguous in host memory:
//!   RTS → CTS carrying the receiver's registered user-buffer key → one
//!   RDMA write → FIN.
//! * **Rendezvous staged** — any non-contiguous or device-resident side:
//!   RTS → CTS granting a window of registered staging buffers (vbufs) →
//!   per chunk: stage (pack) / RDMA write / FIN / absorb (unpack) / CREDIT.
//!   This is the path the paper's GPU pipeline plugs into.

use ib_sim::MrKey;

/// Request identifier, unique within one rank.
pub(crate) type ReqId = u64;

/// Message envelope used for matching.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct Envelope {
    /// Communicator context id (0 = world, 1 = internal collectives).
    pub ctx: u16,
    /// Source rank.
    pub src: usize,
    /// User tag.
    pub tag: u32,
}

/// A granted staging slot: a registered remote buffer chunk.
#[derive(Copy, Clone, Debug)]
pub(crate) struct SlotDesc {
    pub key: MrKey,
    pub len: usize,
}

/// Everything that travels between ranks.
pub(crate) enum MpiPacket {
    /// Small message: envelope + packed payload.
    Eager { env: Envelope, data: Vec<u8> },
    /// Request To Send (rendezvous start).
    Rts {
        env: Envelope,
        total: usize,
        send_req: ReqId,
        /// Sender's buffer is contiguous host memory, so a direct R-PUT is
        /// possible if the receiver's is too.
        direct_capable: bool,
    },
    /// Clear To Send, staged path: a window of vbuf slots.
    Cts {
        send_req: ReqId,
        recv_req: ReqId,
        chunk_size: usize,
        slots: Vec<SlotDesc>,
    },
    /// Clear To Send, direct path: the receiver's registered user buffer.
    CtsDirect {
        send_req: ReqId,
        recv_req: ReqId,
        key: MrKey,
        /// Byte offset of the receive start within the registered region.
        offset: usize,
        len: usize,
    },
    /// Staged path: chunk `chunk_idx` has been RDMA-written into `slot`.
    Fin {
        recv_req: ReqId,
        chunk_idx: usize,
        slot: usize,
        bytes: usize,
    },
    /// Direct path: the single RDMA write has completed.
    FinDirect { recv_req: ReqId },
    /// Staged path: the receiver has absorbed the chunk in `slot`; the
    /// sender may write the next chunk into it.
    Credit { send_req: ReqId, slot: usize },
}

/// How the staging chunk (pipeline block) size is chosen per transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChunkPolicy {
    /// Always use [`MpiConfig::chunk_size`] — the paper's static
    /// `MV2_CUDA_BLOCK_SIZE` knob. Use this to reproduce the block-size
    /// ablation (§V-B) or any fixed-block result exactly.
    Fixed,
    /// Start each `(message size class, layout class)` at
    /// [`MpiConfig::chunk_size`] and converge online onto the block size
    /// with the lowest observed transfer latency, exploring powers of two
    /// within `[min_block, max_block]` — the paper's offline 64 KB sweep,
    /// done per workload at runtime.
    Adaptive {
        /// Smallest block size the tuner may try, bytes.
        min_block: usize,
        /// Largest block size the tuner may try, bytes (staging vbufs are
        /// sized to this).
        max_block: usize,
    },
}

impl ChunkPolicy {
    /// The default adaptive range: 16 KiB – 256 KiB, bracketing the paper's
    /// 64 KiB sweet spot.
    pub fn adaptive() -> Self {
        ChunkPolicy::Adaptive {
            min_block: 16 << 10,
            max_block: 256 << 10,
        }
    }
}

/// Tunables of the simulated MPI library.
#[derive(Clone, Debug)]
pub struct MpiConfig {
    /// Largest message sent eagerly, bytes.
    pub eager_limit: usize,
    /// Staging chunk size (the paper's `MV2_CUDA_BLOCK_SIZE` analog), bytes.
    /// The starting point (and, under [`ChunkPolicy::Fixed`], the only
    /// value) of the pipeline block size.
    pub chunk_size: usize,
    /// How the per-transfer chunk size is chosen.
    pub policy: ChunkPolicy,
    /// Vbuf slots the receiver grants per staged transfer (pipeline window).
    pub window_slots: usize,
    /// Total vbufs in each rank's pool.
    pub pool_vbufs: usize,
    /// Host CPU cost model.
    pub cpu: crate::pack::CpuModel,
    /// Fault injection (tests only): drop the first send-pool vbuf that
    /// finishes its RDMA write instead of returning it to the pool, so the
    /// sanitizer's pool reconciliation has a leak to find.
    pub fault_leak_vbuf: bool,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            eager_limit: 8192,
            chunk_size: 64 << 10,
            policy: ChunkPolicy::adaptive(),
            window_slots: 8,
            pool_vbufs: 64,
            cpu: crate::pack::CpuModel::westmere(),
            fault_leak_vbuf: false,
        }
    }
}

impl MpiConfig {
    /// Number of chunks a staged transfer of `total` bytes uses at the
    /// configured starting chunk size.
    pub fn nchunks(&self, total: usize) -> usize {
        total.div_ceil(self.chunk_size).max(1)
    }

    /// Largest chunk size any transfer may use under this configuration —
    /// what the staging vbufs must be sized to.
    pub fn max_chunk(&self) -> usize {
        match self.policy {
            ChunkPolicy::Fixed => self.chunk_size,
            ChunkPolicy::Adaptive { max_block, .. } => max_block.max(self.chunk_size),
        }
    }

    /// Check configuration invariants. Called at world construction; panics
    /// with a clear message on an invalid configuration.
    pub fn validate(&self) {
        assert!(
            self.chunk_size > 0,
            "MpiConfig: chunk_size must be nonzero (a staged transfer could never make progress)"
        );
        assert!(
            self.window_slots > 0,
            "MpiConfig: window_slots must be nonzero (the receiver could never grant a CTS window)"
        );
        assert!(
            self.pool_vbufs >= self.window_slots,
            "MpiConfig: pool_vbufs ({}) must be >= window_slots ({}), or a staged transfer \
             could never fill its window",
            self.pool_vbufs,
            self.window_slots
        );
        if let ChunkPolicy::Adaptive {
            min_block,
            max_block,
        } = self.policy
        {
            assert!(
                min_block > 0 && min_block <= max_block,
                "MpiConfig: adaptive policy needs 0 < min_block <= max_block \
                 (got min_block {min_block}, max_block {max_block})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = MpiConfig::default();
        assert!(c.eager_limit < c.chunk_size);
        assert!(c.window_slots <= c.pool_vbufs);
    }

    #[test]
    fn default_config_validates() {
        MpiConfig::default().validate();
        assert_eq!(MpiConfig::default().max_chunk(), 256 << 10);
        let fixed = MpiConfig {
            policy: ChunkPolicy::Fixed,
            ..Default::default()
        };
        fixed.validate();
        assert_eq!(fixed.max_chunk(), fixed.chunk_size);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be nonzero")]
    fn zero_chunk_size_is_rejected() {
        MpiConfig {
            chunk_size: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "window_slots must be nonzero")]
    fn zero_window_is_rejected() {
        MpiConfig {
            window_slots: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "must be >= window_slots")]
    fn pool_smaller_than_window_is_rejected() {
        MpiConfig {
            window_slots: 8,
            pool_vbufs: 4,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "min_block <= max_block")]
    fn inverted_adaptive_range_is_rejected() {
        MpiConfig {
            policy: ChunkPolicy::Adaptive {
                min_block: 128 << 10,
                max_block: 16 << 10,
            },
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn nchunks_rounds_up() {
        let c = MpiConfig {
            chunk_size: 100,
            ..Default::default()
        };
        assert_eq!(c.nchunks(1), 1);
        assert_eq!(c.nchunks(100), 1);
        assert_eq!(c.nchunks(101), 2);
        assert_eq!(c.nchunks(0), 1);
    }
}
