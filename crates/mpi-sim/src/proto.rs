//! Wire protocol: packet formats and protocol configuration.
//!
//! Four data paths, selected per message (see [`crate::scheme`]):
//!
//! * **Eager** — `total <= eager_limit`: the packed payload rides the
//!   envelope. Completes locally at send time (buffered semantics).
//! * **Rendezvous direct (R-PUT)** — both sides contiguous in host memory:
//!   RTS → CTS carrying the receiver's registered user-buffer key → one
//!   RDMA write → FIN.
//! * **Rendezvous offload** — both sides host-resident and canonicalizable
//!   (see [`crate::plan::Canonical`]): RTS advertising the sender's
//!   descriptor entry count → CTS carrying the receiver's registered
//!   user-buffer key and scatter descriptor → one scatter/gather RDMA post
//!   walked by the NIC → FIN. No CPU pack/unpack on either side.
//! * **Rendezvous staged** — everything else (device-resident or deep
//!   struct layouts): RTS → CTS granting a window of registered staging
//!   buffers (vbufs) → per chunk: stage (pack) / RDMA write / FIN / absorb
//!   (unpack) / CREDIT. This is the path the paper's GPU pipeline plugs
//!   into.

use ib_sim::{MrKey, SgEntry};

use crate::plan::Canonical;
use crate::scheme::{DataScheme, SchemeSel};

/// Request identifier, unique within one rank.
pub(crate) type ReqId = u64;

/// Message envelope used for matching.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct Envelope {
    /// Communicator context id (0 = world, 1 = internal collectives).
    pub ctx: u16,
    /// Source rank.
    pub src: usize,
    /// User tag.
    pub tag: u32,
}

/// A granted staging slot: a registered remote buffer chunk.
#[derive(Copy, Clone, Debug)]
pub(crate) struct SlotDesc {
    pub key: MrKey,
    pub len: usize,
}

/// Everything that travels between ranks.
pub(crate) enum MpiPacket {
    /// Small message: envelope + packed payload.
    Eager { env: Envelope, data: Vec<u8> },
    /// Request To Send (rendezvous start).
    Rts {
        env: Envelope,
        total: usize,
        send_req: ReqId,
        /// Sender's buffer is contiguous host memory, so a direct R-PUT is
        /// possible if the receiver's is too.
        direct_capable: bool,
        /// Set when the send buffer is device memory on a GPU the receiver
        /// might share (the sender is co-located with the receiver): the id
        /// of that GPU. A receiver sinking into the same GPU answers with
        /// [`MpiPacket::CtsDev`] and the transfer stays on the device.
        dev_gpu: Option<u32>,
        /// Set when the sender's layout lowers to a bounded scatter/gather
        /// descriptor and its scheme selection allows NIC offload: the
        /// gather entry count (the receiver checks the combined count
        /// against its HCA budget). `None` = the sender cannot (or will
        /// not) drive this transfer through the offload engine.
        offload_entries: Option<u32>,
    },
    /// Clear To Send, staged path: a window of vbuf slots.
    Cts {
        send_req: ReqId,
        recv_req: ReqId,
        chunk_size: usize,
        slots: Vec<SlotDesc>,
    },
    /// Clear To Send, direct path: the receiver's registered user buffer.
    CtsDirect {
        send_req: ReqId,
        recv_req: ReqId,
        key: MrKey,
        /// Byte offset of the receive start within the registered region.
        offset: usize,
        len: usize,
    },
    /// Staged path: chunk `chunk_idx` has been RDMA-written into `slot`.
    Fin {
        recv_req: ReqId,
        chunk_idx: usize,
        slot: usize,
        bytes: usize,
    },
    /// Direct path: the single RDMA write has completed.
    FinDirect { recv_req: ReqId },
    /// Staged path: the receiver has absorbed the chunk in `slot`; the
    /// sender may write the next chunk into it. `chunk_idx` sequences the
    /// credit: it names the chunk being credited, so a duplicate (the slot
    /// already freed, or occupied by a different chunk) is detectable and
    /// ignored instead of corrupting flow control.
    Credit {
        send_req: ReqId,
        slot: usize,
        chunk_idx: usize,
    },
    /// Staged path, fault recovery: the receiver has not seen a FIN for
    /// `next_needed` within its retry window — the sender must re-announce
    /// (and, for lost data, re-write) everything from that chunk on.
    FinNack { send_req: ReqId, next_needed: usize },
    /// Direct path, fault recovery: the sender could not register its user
    /// buffer (pin limit), so it abandons the R-PUT; the receiver must fall
    /// back to granting a staged window.
    DirectAbort { recv_req: ReqId, send_req: ReqId },
    /// Clear To Send, offload path: the receiver's registered user buffer
    /// plus the scatter descriptor (MR-absolute, already clipped to the
    /// message size) the sender's HCA should walk to place the bytes.
    CtsOffload {
        send_req: ReqId,
        recv_req: ReqId,
        key: MrKey,
        scatter: Vec<SgEntry>,
        total: usize,
    },
    /// Offload path: the single scatter/gather post has completed.
    FinOffload { recv_req: ReqId },
    /// Offload path, fault recovery: the sender could not register its user
    /// buffer (pin limit), so it abandons the offload post; the receiver
    /// must fall back to granting a staged window.
    OffloadAbort { recv_req: ReqId, send_req: ReqId },
    /// Device path (co-located ranks sharing one GPU): the receiver sinks
    /// into the same GPU the sender advertised in `Rts::dev_gpu` — skip
    /// host staging entirely; the sender should pack into a device tbuf
    /// (D2D) and announce it.
    CtsDev { send_req: ReqId, recv_req: ReqId },
    /// Device path: the sender's packed bytes sit at `ptr` on the shared
    /// GPU (`ready` is the pack completion — the receiver's unpack stream
    /// waits on it, the simulated analogue of a CUDA IPC event). The
    /// receiver scatters straight from there.
    FinDev {
        recv_req: ReqId,
        ptr: gpu_sim::DevPtr,
        total: usize,
        ready: sim_core::Completion,
    },
    /// Device path: the receiver is done reading the sender's device tbuf;
    /// the sender may reuse or free it.
    CreditDev { send_req: ReqId },
}

/// Classify an opaque control payload as one of this crate's packet kinds
/// (`"Rts"`, `"Cts"`, `"Fin"`, ...), or `None` if it is not an MPI packet.
/// This lets delivery schedulers (model checkers) label their decision
/// points without the wire format itself becoming public API.
pub fn packet_kind(payload: &(dyn std::any::Any + Send)) -> Option<&'static str> {
    let p = payload.downcast_ref::<MpiPacket>()?;
    Some(match p {
        MpiPacket::Eager { .. } => "Eager",
        MpiPacket::Rts { .. } => "Rts",
        MpiPacket::Cts { .. } => "Cts",
        MpiPacket::CtsDirect { .. } => "CtsDirect",
        MpiPacket::Fin { .. } => "Fin",
        MpiPacket::FinDirect { .. } => "FinDirect",
        MpiPacket::Credit { .. } => "Credit",
        MpiPacket::FinNack { .. } => "FinNack",
        MpiPacket::DirectAbort { .. } => "DirectAbort",
        MpiPacket::CtsOffload { .. } => "CtsOffload",
        MpiPacket::FinOffload { .. } => "FinOffload",
        MpiPacket::OffloadAbort { .. } => "OffloadAbort",
        MpiPacket::CtsDev { .. } => "CtsDev",
        MpiPacket::FinDev { .. } => "FinDev",
        MpiPacket::CreditDev { .. } => "CreditDev",
    })
}

/// How the staging chunk (pipeline block) size is chosen per transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChunkPolicy {
    /// Always use [`MpiConfig::chunk_size`] — the paper's static
    /// `MV2_CUDA_BLOCK_SIZE` knob. Use this to reproduce the block-size
    /// ablation (§V-B) or any fixed-block result exactly.
    Fixed,
    /// Start each `(message size class, layout class)` at
    /// [`MpiConfig::chunk_size`] and converge online onto the block size
    /// with the lowest observed transfer latency, exploring powers of two
    /// within `[min_block, max_block]` — the paper's offline 64 KB sweep,
    /// done per workload at runtime.
    Adaptive {
        /// Smallest block size the tuner may try, bytes.
        min_block: usize,
        /// Largest block size the tuner may try, bytes (staging vbufs are
        /// sized to this).
        max_block: usize,
    },
}

impl ChunkPolicy {
    /// The default adaptive range: 16 KiB – 256 KiB, bracketing the paper's
    /// 64 KiB sweet spot.
    pub fn adaptive() -> Self {
        ChunkPolicy::Adaptive {
            min_block: 16 << 10,
            max_block: 256 << 10,
        }
    }
}

/// Which family of collective algorithms a communicator uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CollAlgo {
    /// The original p2p-loop algorithms: linear gather/scatter loops,
    /// alltoall posting every request at once, allgather = gather + bcast,
    /// reduce receiving P−1 contributions serially through one scratch
    /// buffer. Kept as the honest control for `coll_sweep`.
    Naive,
    /// Single-level algorithms with bounded resource use: pairwise
    /// (XOR-schedule) alltoall(v) with at most
    /// [`CollConfig::max_inflight`] exchanges outstanding, ring
    /// allgather(v), binomial-tree reduce with double-buffered scratch
    /// overlapping receive and combine.
    Flat,
    /// Topology-aware node-leader trees: fan in/out over the shm channel
    /// between co-located ranks, cross the wire once per node pair, and
    /// pipeline pack → intra-node combine → wire per
    /// [`CollConfig::pipeline_chunk`] segment. Falls back to [`Flat`]
    /// (`CollAlgo::Flat`) on communicators where no node hosts two
    /// members or all members share one node.
    Hier,
}

/// Collective-algorithm tunables.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CollConfig {
    /// Algorithm family (default [`CollAlgo::Hier`]).
    pub algo: CollAlgo,
    /// Maximum nonblocking exchanges a collective keeps in flight per rank
    /// (pairwise alltoall windows, leader fan-in/out windows). Bounds the
    /// fabric-wide request count that used to grow as P² in the naive
    /// alltoall.
    pub max_inflight: usize,
    /// Segment size, bytes, for pipelined reductions (pack → intra-node
    /// combine → wire per segment). Must be a positive multiple of 8 so
    /// segment boundaries never split a primitive element.
    pub pipeline_chunk: usize,
}

impl Default for CollConfig {
    fn default() -> Self {
        CollConfig {
            algo: CollAlgo::Hier,
            max_inflight: 4,
            pipeline_chunk: 64 << 10,
        }
    }
}

/// Retry policy for rendezvous control traffic and failed RDMA chunks.
/// Only consulted when the fabric injects faults — on a reliable fabric no
/// timers are armed and the protocol runs exactly as if retries didn't
/// exist.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RetryConfig {
    /// Initial retransmit timeout, ns. Doubles on every retry (exponential
    /// backoff).
    pub timeout_ns: u64,
    /// Retries per operation before the request fails with
    /// [`MpiError::RetriesExhausted`].
    pub max_retries: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            // ~4x the rendezvous control round trip on the QDR model: late
            // enough to avoid spurious retransmits, early enough that a
            // lost RTS costs well under a millisecond.
            timeout_ns: 200_000,
            max_retries: 12,
        }
    }
}

/// A typed MPI-level failure, surfaced through
/// [`Comm::wait_result`](crate::Comm::wait_result) instead of a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpiError {
    /// An operation gave up after exhausting its retry budget (see
    /// [`RetryConfig`]); the peer is unreachable or persistently dropping.
    RetriesExhausted {
        /// Which protocol step gave up (e.g. `"rts"`, `"fin_nack"`).
        op: &'static str,
        /// The peer rank the operation was addressed to.
        peer: usize,
        /// Attempts made, including the first.
        attempts: u32,
    },
    /// The request was rejected at post time: its layout cannot be served
    /// by the configured scheme selection (e.g.
    /// [`ConfigError::ForcedOffloadIrregular`]). The typed alternative to a
    /// protocol panic deep in the engine.
    Rejected {
        /// The violated configuration invariant.
        err: ConfigError,
    },
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::RetriesExhausted { op, peer, attempts } => write!(
                f,
                "rendezvous {op} to rank {peer} failed after {attempts} attempts (retries exhausted)"
            ),
            MpiError::Rejected { err } => write!(f, "request rejected: {err}"),
        }
    }
}

impl std::error::Error for MpiError {}

/// A rejected [`MpiConfig`]: which invariant failed and with what values.
/// [`MpiConfig::try_validate`] returns these;
/// [`MpiConfig::validate`] panics with their [`Display`](std::fmt::Display)
/// text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `chunk_size == 0`.
    ZeroChunkSize,
    /// `window_slots == 0`.
    ZeroWindowSlots,
    /// `pool_vbufs < window_slots`.
    PoolSmallerThanWindow {
        /// Configured pool size.
        pool_vbufs: usize,
        /// Configured window.
        window_slots: usize,
    },
    /// `pool_vbufs < 2` (the pool is split into send/recv halves).
    PoolTooSmall {
        /// Configured pool size.
        pool_vbufs: usize,
    },
    /// `reg_cache_entries == 0`.
    ZeroRegCache,
    /// `retry.timeout_ns == 0`.
    ZeroRetryTimeout,
    /// `retry.max_retries == 0`.
    ZeroRetryBudget,
    /// Adaptive policy with `min_block == 0` or `min_block > max_block`.
    BadAdaptiveRange {
        /// Configured lower bound.
        min_block: usize,
        /// Configured upper bound.
        max_block: usize,
    },
    /// `ppn == 0`.
    ZeroPpn,
    /// `shm_eager_limit < eager_limit`: a co-located peer would get a
    /// *smaller* eager window than a remote one, which inverts the point of
    /// the shm channel.
    ShmEagerBelowEager {
        /// Configured intra-node eager limit.
        shm_eager_limit: usize,
        /// Configured inter-node eager limit.
        eager_limit: usize,
    },
    /// `ppn` does not evenly divide the world size (checked at world
    /// construction, when the rank count is known).
    PpnDoesNotDivide {
        /// Configured processes per node.
        ppn: usize,
        /// World size.
        nranks: usize,
    },
    /// `coll.max_inflight == 0`.
    ZeroCollInflight,
    /// `coll.pipeline_chunk` is zero or not a multiple of 8.
    BadCollChunk {
        /// Configured segment size.
        pipeline_chunk: usize,
    },
    /// `offload_entry_budget == 0`.
    ZeroOffloadBudget,
    /// [`SchemeSel::Force`]`(NicOffload)` combined with a layout that
    /// canonicalizes to [`Canonical::Irregular`]: the HCA cannot walk a
    /// deep struct layout, and forcing forbids the staged fallback.
    /// Checked per message by [`MpiConfig::try_validate_scheme`].
    ForcedOffloadIrregular,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroChunkSize => write!(
                f,
                "chunk_size must be nonzero (a staged transfer could never make progress)"
            ),
            ConfigError::ZeroWindowSlots => write!(
                f,
                "window_slots must be nonzero (the receiver could never grant a CTS window)"
            ),
            ConfigError::PoolSmallerThanWindow {
                pool_vbufs,
                window_slots,
            } => write!(
                f,
                "pool_vbufs ({pool_vbufs}) must be >= window_slots ({window_slots}), or a \
                 staged transfer could never fill its window"
            ),
            ConfigError::PoolTooSmall { pool_vbufs } => write!(
                f,
                "pool_vbufs ({pool_vbufs}) must be >= 2 — the pool is split into send and \
                 receive halves (pool_vbufs/2 each side), and either half being empty deadlocks \
                 every staged transfer on that side"
            ),
            ConfigError::ZeroRegCache => write!(
                f,
                "reg_cache_entries must be >= 1 (a rendezvous transfer needs its own \
                 registration live while in flight)"
            ),
            ConfigError::ZeroRetryTimeout => write!(
                f,
                "retry.timeout_ns must be nonzero (a zero timeout retransmits forever \
                 in zero virtual time)"
            ),
            ConfigError::ZeroRetryBudget => write!(
                f,
                "retry.max_retries must be >= 1 (a zero budget fails every rendezvous \
                 on the first lost packet)"
            ),
            ConfigError::BadAdaptiveRange {
                min_block,
                max_block,
            } => write!(
                f,
                "adaptive policy needs 0 < min_block <= max_block \
                 (got min_block {min_block}, max_block {max_block})"
            ),
            ConfigError::ZeroPpn => {
                write!(f, "ppn must be >= 1 (every rank lives on some node)")
            }
            ConfigError::ShmEagerBelowEager {
                shm_eager_limit,
                eager_limit,
            } => write!(
                f,
                "shm_eager_limit ({shm_eager_limit}) must be >= eager_limit ({eager_limit}) — \
                 the shm channel is cheaper than the wire, so co-located peers must get at \
                 least the inter-node eager window"
            ),
            ConfigError::PpnDoesNotDivide { ppn, nranks } => write!(
                f,
                "ppn ({ppn}) must evenly divide the world size ({nranks}) so every node \
                 hosts the same number of ranks"
            ),
            ConfigError::ZeroCollInflight => write!(
                f,
                "coll.max_inflight must be >= 1 (a collective could never post a request)"
            ),
            ConfigError::BadCollChunk { pipeline_chunk } => write!(
                f,
                "coll.pipeline_chunk ({pipeline_chunk}) must be a positive multiple of 8 \
                 so reduction segments never split a primitive element"
            ),
            ConfigError::ZeroOffloadBudget => write!(
                f,
                "offload_entry_budget must be >= 1 (the HCA could never hold a descriptor)"
            ),
            ConfigError::ForcedOffloadIrregular => write!(
                f,
                "SchemeSel::Force(NicOffload) cannot serve a layout that canonicalizes to \
                 Irregular — the HCA cannot walk a deep struct descriptor; use SchemeSel::Auto \
                 to fall back to the staged pipeline"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Tunables of the simulated MPI library.
#[derive(Clone, Debug)]
pub struct MpiConfig {
    /// Largest message sent eagerly, bytes.
    pub eager_limit: usize,
    /// Staging chunk size (the paper's `MV2_CUDA_BLOCK_SIZE` analog), bytes.
    /// The starting point (and, under [`ChunkPolicy::Fixed`], the only
    /// value) of the pipeline block size.
    pub chunk_size: usize,
    /// How the per-transfer chunk size is chosen.
    pub policy: ChunkPolicy,
    /// Vbuf slots the receiver grants per staged transfer (pipeline window).
    pub window_slots: usize,
    /// Total vbufs in each rank's pool.
    pub pool_vbufs: usize,
    /// Host CPU cost model.
    pub cpu: crate::pack::CpuModel,
    /// Retry policy under fault injection (unused on a reliable fabric).
    pub retry: RetryConfig,
    /// Capacity of the per-rank registration cache for rendezvous user
    /// buffers. The least-recently-used entry is evicted (and deregistered)
    /// when a new buffer would exceed this.
    pub reg_cache_entries: usize,
    /// Fault injection (tests only): drop the first send-pool vbuf that
    /// finishes its RDMA write instead of returning it to the pool, so the
    /// sanitizer's pool reconciliation has a leak to find.
    pub fault_leak_vbuf: bool,
    /// Fault injection (tests only): the receiver of a D2D device transfer
    /// swallows its first `CreditDev` instead of sending it, stranding the
    /// sender's packed tbuf — the credit-leak the sanitizer's device-pool
    /// accounting must flag.
    pub fault_drop_dev_credit: bool,
    /// Fault injection (tests only): the sender applies twice the
    /// configured shm eager limit toward co-located peers, shipping
    /// oversized eager payloads the receiver-side protocol linter must
    /// reject.
    pub fault_shm_eager_oversize: bool,
    /// Bug reintroduction (model-checker validation): skip the finalize
    /// dissemination barrier, so a rank whose transfers completed exits
    /// immediately and stops answering peers' retransmits — PR 3's
    /// finalize-quiesce liveness bug.
    pub bug_finalize_quiesce: bool,
    /// Bug reintroduction (model-checker validation): a staged receive
    /// whose CTS was deferred on a drained vbuf pool is never re-examined
    /// when vbufs return — PR 3's deferred-CTS starvation bug.
    pub bug_deferred_cts: bool,
    /// Processes per node: ranks `[k*ppn, (k+1)*ppn)` share node `k` (its
    /// HCA, shm channel and GPU). Must evenly divide the world size. The
    /// default, 1, is the classic one-rank-per-node layout and is
    /// bit-identical to the pre-topology simulator.
    pub ppn: usize,
    /// Largest message sent eagerly *between co-located ranks*, bytes. The
    /// shm channel has no wire or vbuf pressure, so its eager window can be
    /// (and defaults to) larger than [`eager_limit`](MpiConfig::eager_limit).
    pub shm_eager_limit: usize,
    /// Collective-algorithm selection and tunables.
    pub coll: CollConfig,
    /// Rendezvous data-path selection (see [`crate::scheme`]). The default,
    /// `Auto { offload: false }`, reproduces the classic
    /// device → direct → staged decision bit for bit.
    pub scheme: SchemeSel,
    /// Largest combined (gather + scatter) entry count a wire descriptor
    /// may have — the modeled HCA's descriptor memory. Transfers needing
    /// more fall back to the staged pipeline.
    pub offload_entry_budget: usize,
    /// Smallest message [`SchemeSel::Auto`] routes through the offload
    /// engine, bytes. Below this the descriptor fetches cost more than the
    /// pack they save; forcing ignores the floor.
    pub offload_min_bytes: usize,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            eager_limit: 8192,
            chunk_size: 64 << 10,
            policy: ChunkPolicy::adaptive(),
            window_slots: 8,
            pool_vbufs: 64,
            cpu: crate::pack::CpuModel::westmere(),
            retry: RetryConfig::default(),
            reg_cache_entries: 1024,
            fault_leak_vbuf: false,
            fault_drop_dev_credit: false,
            fault_shm_eager_oversize: false,
            bug_finalize_quiesce: false,
            bug_deferred_cts: false,
            ppn: 1,
            shm_eager_limit: 32 << 10,
            coll: CollConfig::default(),
            scheme: SchemeSel::default(),
            offload_entry_budget: 256,
            offload_min_bytes: 64 << 10,
        }
    }
}

impl MpiConfig {
    /// Number of chunks a staged transfer of `total` bytes would use at
    /// [`chunk_size`](MpiConfig::chunk_size). Under [`ChunkPolicy::Fixed`]
    /// that is the actual chunk count; under [`ChunkPolicy::Adaptive`] it
    /// reflects only the *starting* chunk size — once the tuner has
    /// observed a `(size class, layout class)` pair it picks a different
    /// block, and the real count is `total.div_ceil(chosen_block)`.
    pub fn nchunks(&self, total: usize) -> usize {
        total.div_ceil(self.chunk_size).max(1)
    }

    /// Largest chunk size any transfer may use under this configuration —
    /// what the staging vbufs must be sized to.
    pub fn max_chunk(&self) -> usize {
        match self.policy {
            ChunkPolicy::Fixed => self.chunk_size,
            ChunkPolicy::Adaptive { max_block, .. } => max_block.max(self.chunk_size),
        }
    }

    /// Check configuration invariants, returning the first violated one as
    /// a typed [`ConfigError`].
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if self.chunk_size == 0 {
            return Err(ConfigError::ZeroChunkSize);
        }
        if self.window_slots == 0 {
            return Err(ConfigError::ZeroWindowSlots);
        }
        if self.pool_vbufs < self.window_slots {
            return Err(ConfigError::PoolSmallerThanWindow {
                pool_vbufs: self.pool_vbufs,
                window_slots: self.window_slots,
            });
        }
        // The pool is split pool_vbufs/2 (send) / remainder (recv) at engine
        // construction; pool_vbufs: 1 would make the send half *empty* and
        // every staged send would deadlock waiting for a vbuf that cannot
        // exist.
        if self.pool_vbufs < 2 {
            return Err(ConfigError::PoolTooSmall {
                pool_vbufs: self.pool_vbufs,
            });
        }
        if self.reg_cache_entries < 1 {
            return Err(ConfigError::ZeroRegCache);
        }
        if self.retry.timeout_ns == 0 {
            return Err(ConfigError::ZeroRetryTimeout);
        }
        if self.retry.max_retries < 1 {
            return Err(ConfigError::ZeroRetryBudget);
        }
        if let ChunkPolicy::Adaptive {
            min_block,
            max_block,
        } = self.policy
        {
            if min_block == 0 || min_block > max_block {
                return Err(ConfigError::BadAdaptiveRange {
                    min_block,
                    max_block,
                });
            }
        }
        if self.ppn == 0 {
            return Err(ConfigError::ZeroPpn);
        }
        if self.shm_eager_limit < self.eager_limit {
            return Err(ConfigError::ShmEagerBelowEager {
                shm_eager_limit: self.shm_eager_limit,
                eager_limit: self.eager_limit,
            });
        }
        if self.coll.max_inflight == 0 {
            return Err(ConfigError::ZeroCollInflight);
        }
        if self.coll.pipeline_chunk == 0 || !self.coll.pipeline_chunk.is_multiple_of(8) {
            return Err(ConfigError::BadCollChunk {
                pipeline_chunk: self.coll.pipeline_chunk,
            });
        }
        if self.offload_entry_budget == 0 {
            return Err(ConfigError::ZeroOffloadBudget);
        }
        Ok(())
    }

    /// Per-message scheme check: a forced NIC offload cannot serve a layout
    /// that canonicalizes to [`Canonical::Irregular`]. The engine runs this
    /// at post time and fails the request with a typed
    /// [`MpiError::Rejected`] instead of panicking mid-rendezvous.
    pub fn try_validate_scheme(&self, canonical: &Canonical) -> Result<(), ConfigError> {
        if self.scheme == SchemeSel::Force(DataScheme::NicOffload)
            && *canonical == Canonical::Irregular
        {
            return Err(ConfigError::ForcedOffloadIrregular);
        }
        Ok(())
    }

    /// Like [`try_validate`](MpiConfig::try_validate), plus the topology
    /// checks that need the world size: `ppn` must evenly divide `nranks`.
    pub fn try_validate_topology(&self, nranks: usize) -> Result<(), ConfigError> {
        self.try_validate()?;
        if !nranks.is_multiple_of(self.ppn) {
            return Err(ConfigError::PpnDoesNotDivide {
                ppn: self.ppn,
                nranks,
            });
        }
        Ok(())
    }

    /// Check configuration invariants. Called at world construction; panics
    /// with a clear message on an invalid configuration.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("MpiConfig: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = MpiConfig::default();
        assert!(c.eager_limit < c.chunk_size);
        assert!(c.window_slots <= c.pool_vbufs);
    }

    #[test]
    fn default_config_validates() {
        MpiConfig::default().validate();
        assert_eq!(MpiConfig::default().max_chunk(), 256 << 10);
        let fixed = MpiConfig {
            policy: ChunkPolicy::Fixed,
            ..Default::default()
        };
        fixed.validate();
        assert_eq!(fixed.max_chunk(), fixed.chunk_size);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be nonzero")]
    fn zero_chunk_size_is_rejected() {
        MpiConfig {
            chunk_size: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "window_slots must be nonzero")]
    fn zero_window_is_rejected() {
        MpiConfig {
            window_slots: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "must be >= window_slots")]
    fn pool_smaller_than_window_is_rejected() {
        MpiConfig {
            window_slots: 8,
            pool_vbufs: 4,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "min_block <= max_block")]
    fn inverted_adaptive_range_is_rejected() {
        MpiConfig {
            policy: ChunkPolicy::Adaptive {
                min_block: 128 << 10,
                max_block: 16 << 10,
            },
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "pool_vbufs (1) must be >= 2")]
    fn single_vbuf_pool_is_rejected() {
        // Regression: pool_vbufs: 1 used to validate, then the engine's
        // pool_vbufs/2 split left the send half empty and every staged send
        // deadlocked silently.
        MpiConfig {
            window_slots: 1,
            pool_vbufs: 1,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "reg_cache_entries must be >= 1")]
    fn zero_reg_cache_is_rejected() {
        MpiConfig {
            reg_cache_entries: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "retry.timeout_ns must be nonzero")]
    fn zero_retry_timeout_is_rejected() {
        MpiConfig {
            retry: RetryConfig {
                timeout_ns: 0,
                max_retries: 4,
            },
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "retry.max_retries must be >= 1")]
    fn zero_retry_budget_is_rejected() {
        MpiConfig {
            retry: RetryConfig {
                timeout_ns: 1000,
                max_retries: 0,
            },
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn mpi_error_displays_context() {
        let e = MpiError::RetriesExhausted {
            op: "rts",
            peer: 3,
            attempts: 13,
        };
        let s = e.to_string();
        assert!(
            s.contains("rts") && s.contains("rank 3") && s.contains("13"),
            "{s}"
        );
    }

    #[test]
    fn try_validate_returns_typed_errors() {
        assert_eq!(MpiConfig::default().try_validate(), Ok(()));
        let e = MpiConfig {
            chunk_size: 0,
            ..Default::default()
        }
        .try_validate()
        .unwrap_err();
        assert_eq!(e, ConfigError::ZeroChunkSize);
        let e = MpiConfig {
            window_slots: 8,
            pool_vbufs: 4,
            ..Default::default()
        }
        .try_validate()
        .unwrap_err();
        assert_eq!(
            e,
            ConfigError::PoolSmallerThanWindow {
                pool_vbufs: 4,
                window_slots: 8
            }
        );
    }

    #[test]
    #[should_panic(expected = "ppn must be >= 1")]
    fn zero_ppn_is_rejected() {
        MpiConfig {
            ppn: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "shm_eager_limit (1024) must be >= eager_limit (8192)")]
    fn shm_eager_below_eager_is_rejected() {
        MpiConfig {
            shm_eager_limit: 1024,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn topology_validation_needs_divisible_ppn() {
        let c = MpiConfig {
            ppn: 3,
            ..Default::default()
        };
        assert_eq!(c.try_validate_topology(12), Ok(()));
        assert_eq!(
            c.try_validate_topology(16).unwrap_err(),
            ConfigError::PpnDoesNotDivide { ppn: 3, nranks: 16 }
        );
    }

    #[test]
    #[should_panic(expected = "coll.max_inflight must be >= 1")]
    fn zero_coll_inflight_is_rejected() {
        MpiConfig {
            coll: CollConfig {
                max_inflight: 0,
                ..Default::default()
            },
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "positive multiple of 8")]
    fn unaligned_coll_chunk_is_rejected() {
        MpiConfig {
            coll: CollConfig {
                pipeline_chunk: 12,
                ..Default::default()
            },
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn default_coll_config_is_hier() {
        let c = MpiConfig::default();
        assert_eq!(c.coll.algo, CollAlgo::Hier);
        assert!(c.coll.max_inflight >= 1);
        assert!(c.coll.pipeline_chunk.is_multiple_of(8));
    }

    #[test]
    fn nchunks_rounds_up() {
        let c = MpiConfig {
            chunk_size: 100,
            ..Default::default()
        };
        assert_eq!(c.nchunks(1), 1);
        assert_eq!(c.nchunks(100), 1);
        assert_eq!(c.nchunks(101), 2);
        assert_eq!(c.nchunks(0), 1);
    }
}
