//! Flattened datatype layouts.
//!
//! `MPI_Type_commit` turns the datatype tree into a normalized list of
//! `(offset, len)` byte segments in *typemap order* (which is pack order),
//! merging segments that are adjacent both in traversal order and in
//! memory. On top of the segment list, [`FlatType::layout`] classifies the
//! pattern:
//!
//! * [`Layout::Contiguous`] — one segment: the fast path everywhere.
//! * [`Layout::Strided2D`] — equal-length segments at a constant pitch:
//!   exactly the patterns a single `cudaMemcpy2D` can pack/unpack. This
//!   classification is the hook the paper's GPU datatype offload relies on
//!   (a vector of N rows becomes one strided device copy instead of N
//!   separate transactions).
//! * [`Layout::Irregular`] — everything else (indexed/struct soups): packed
//!   segment-by-segment (on the CPU) or with a gather kernel (on the GPU).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::datatype::{Datatype, DtKind};
use crate::plan::{Plan, PlanCache, PlanCacheStats};

/// One contiguous run of bytes at a (possibly negative) offset from the
/// buffer address.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Segment {
    /// Byte offset relative to the operation's buffer address.
    pub offset: isize,
    /// Run length in bytes.
    pub len: usize,
}

/// Classified layout of a (type, count) pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Layout {
    /// A single contiguous run.
    Contiguous {
        /// Offset of the run.
        offset: isize,
        /// Total bytes.
        len: usize,
    },
    /// `height` runs of `width` bytes, starting `pitch` bytes apart.
    Strided2D {
        /// Offset of the first run.
        first: isize,
        /// Bytes between run starts (> width, or it would be contiguous).
        pitch: usize,
        /// Run width in bytes.
        width: usize,
        /// Number of runs.
        height: usize,
    },
    /// No exploitable regularity.
    Irregular,
}

/// The committed (flattened) form of a datatype: one element's segments,
/// plus an LRU cache of per-count communication [`Plan`]s.
#[derive(Debug)]
pub struct FlatType {
    segments: Vec<Segment>,
    size: usize,
    extent: isize,
    plans: PlanCache,
    expand_calls: AtomicU64,
}

fn push_merged(out: &mut Vec<Segment>, seg: Segment) {
    if seg.len == 0 {
        return;
    }
    if let Some(last) = out.last_mut() {
        if last.offset + last.len as isize == seg.offset {
            last.len += seg.len;
            return;
        }
    }
    out.push(seg);
}

fn walk(dt: &Datatype, base: isize, out: &mut Vec<Segment>) {
    let ext = dt.extent();
    match &dt.inner.kind {
        DtKind::Primitive { .. } => push_merged(
            out,
            Segment {
                offset: base,
                len: dt.size(),
            },
        ),
        DtKind::Contiguous { count, child } => {
            let cext = child.extent();
            for i in 0..*count {
                walk(child, base + i as isize * cext, out);
            }
        }
        DtKind::Vector {
            count,
            blocklen,
            stride,
            child,
        } => {
            let cext = child.extent();
            for i in 0..*count {
                let block = base + i as isize * stride * cext;
                for j in 0..*blocklen {
                    walk(child, block + j as isize * cext, out);
                }
            }
        }
        DtKind::Hvector {
            count,
            blocklen,
            stride_bytes,
            child,
        } => {
            let cext = child.extent();
            for i in 0..*count {
                let block = base + i as isize * stride_bytes;
                for j in 0..*blocklen {
                    walk(child, block + j as isize * cext, out);
                }
            }
        }
        DtKind::Indexed { blocks, child } => {
            let cext = child.extent();
            for &(blocklen, disp) in blocks {
                let block = base + disp * cext;
                for j in 0..blocklen {
                    walk(child, block + j as isize * cext, out);
                }
            }
        }
        DtKind::Hindexed { blocks, child } => {
            let cext = child.extent();
            for &(blocklen, disp) in blocks {
                let block = base + disp;
                for j in 0..blocklen {
                    walk(child, block + j as isize * cext, out);
                }
            }
        }
        DtKind::Struct { fields } => {
            for (blocklen, disp, child) in fields {
                let cext = child.extent();
                let block = base + disp;
                for j in 0..*blocklen {
                    walk(child, block + j as isize * cext, out);
                }
            }
        }
        DtKind::Resized { child, .. } => walk(child, base, out),
    }
    let _ = ext;
}

impl FlatType {
    /// Flatten one element of `dt`.
    pub fn build(dt: &Datatype) -> FlatType {
        let mut segments = Vec::new();
        walk(dt, 0, &mut segments);
        FlatType {
            segments,
            size: dt.size(),
            extent: dt.extent(),
            plans: PlanCache::default(),
            expand_calls: AtomicU64::new(0),
        }
    }

    /// One element's segments, in pack order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Data bytes per element.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Extent per element.
    pub fn extent(&self) -> isize {
        self.extent
    }

    /// Total data bytes for `count` elements.
    pub fn total_bytes(&self, count: usize) -> usize {
        self.size * count
    }

    /// Segments for `count` elements (element `i` shifted by `i * extent`),
    /// merged across element boundaries where contiguous.
    ///
    /// This is the expensive expansion [`FlatType::plan`] memoizes; the
    /// communication paths go through the cache and only reach here on a
    /// cache miss (counted — see [`FlatType::expand_count`]).
    pub fn expanded(&self, count: usize) -> Vec<Segment> {
        self.expand_calls.fetch_add(1, Ordering::Relaxed);
        sim_core::instrument::global().record("flat_expand");
        let mut out = Vec::with_capacity(self.segments.len() * count);
        for i in 0..count {
            let shift = i as isize * self.extent;
            for s in &self.segments {
                push_merged(
                    &mut out,
                    Segment {
                        offset: s.offset + shift,
                        len: s.len,
                    },
                );
            }
        }
        out
    }

    /// Classify the layout of `count` elements.
    pub fn layout(&self, count: usize) -> Layout {
        self.plan(count).layout().clone()
    }

    /// The cached communication plan for `count` elements: expanded
    /// segments, prefix sums and layout classification, built at most once
    /// per cached count and shared via `Arc`.
    pub fn plan(&self, count: usize) -> Arc<Plan> {
        self.plans.get_or_build(count, || Plan::build(self, count))
    }

    /// This type's plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// How many times [`FlatType::expanded`] ran (i.e. how often a plan was
    /// actually built rather than served from cache).
    pub fn expand_count(&self) -> u64 {
        self.expand_calls.load(Ordering::Relaxed)
    }

    /// Classify an explicit segment list.
    pub fn classify(segs: &[Segment]) -> Layout {
        match segs {
            [] => Layout::Contiguous { offset: 0, len: 0 },
            [s] => Layout::Contiguous {
                offset: s.offset,
                len: s.len,
            },
            [first, second, rest @ ..] => {
                let width = first.len;
                if second.len != width || second.offset <= first.offset {
                    return Layout::Irregular;
                }
                let pitch = (second.offset - first.offset) as usize;
                let mut prev = second.offset;
                for s in rest {
                    if s.len != width || s.offset - prev != pitch as isize {
                        return Layout::Irregular;
                    }
                    prev = s.offset;
                }
                Layout::Strided2D {
                    first: first.offset,
                    pitch,
                    width,
                    height: segs.len(),
                }
            }
        }
    }

    /// Smallest and one-past-largest byte offsets touched by `count`
    /// elements (used for buffer bounds checking). Returns `(0, 0)` for
    /// empty types.
    pub fn byte_range(&self, count: usize) -> (isize, isize) {
        if self.size == 0 || count == 0 {
            return (0, 0);
        }
        let mut lo = isize::MAX;
        let mut hi = isize::MIN;
        for s in &self.segments {
            lo = lo.min(s.offset);
            hi = hi.max(s.offset + s.len as isize);
        }
        let last_shift = (count as isize - 1) * self.extent;
        let (lo0, hi0) = (lo, hi);
        let (lo1, hi1) = (lo + last_shift, hi + last_shift);
        (lo0.min(lo1), hi0.max(hi1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::SubarrayOrder;

    fn flat(dt: &Datatype) -> FlatType {
        FlatType::build(dt)
    }

    #[test]
    fn primitive_is_one_segment() {
        let f = flat(&Datatype::float());
        assert_eq!(f.segments(), &[Segment { offset: 0, len: 4 }]);
        assert_eq!(f.layout(1), Layout::Contiguous { offset: 0, len: 4 });
    }

    #[test]
    fn contiguous_merges_into_one_run() {
        let f = flat(&Datatype::contiguous(16, &Datatype::double()));
        assert_eq!(f.segments().len(), 1);
        assert_eq!(f.segments()[0].len, 128);
    }

    #[test]
    fn vector_flattens_to_strided_runs() {
        // 4 blocks of 1 float, stride 3 floats.
        let f = flat(&Datatype::vector(4, 1, 3, &Datatype::float()));
        assert_eq!(f.segments().len(), 4);
        assert_eq!(
            f.layout(1),
            Layout::Strided2D {
                first: 0,
                pitch: 12,
                width: 4,
                height: 4
            }
        );
    }

    #[test]
    fn vector_blocks_merge_within_block() {
        // blocklen 2 floats per block -> 8-byte runs.
        let f = flat(&Datatype::vector(3, 2, 5, &Datatype::float()));
        assert_eq!(f.segments().len(), 3);
        assert!(f.segments().iter().all(|s| s.len == 8));
    }

    #[test]
    fn dense_vector_is_contiguous() {
        // stride == blocklen: no holes.
        let f = flat(&Datatype::vector(4, 2, 2, &Datatype::int()));
        assert_eq!(f.segments().len(), 1);
        assert_eq!(f.layout(1), Layout::Contiguous { offset: 0, len: 32 });
    }

    #[test]
    fn count_replication_extends_strided_pattern() {
        // One element = 2 strided rows; the vector's extent (ub-lb = 3
        // strides' span) does NOT continue the arithmetic sequence, so
        // count>1 of this type is irregular... unless resized. Use the
        // classic column type: vector resized to one row.
        let col = Datatype::vector(4, 1, 6, &Datatype::float()); // 4 rows of 6 floats
        let col = Datatype::resized(&col, 0, 4); // extent = one float
        col.commit();
        let f = col.flat();
        // Two columns side by side is NOT a single 2D pattern (offsets
        // 0,24,48,72 then 4,28,52,76 — the sequence restarts), so count=2
        // must classify as Irregular.
        assert_eq!(f.layout(2), Layout::Irregular);
        // A single column is perfectly strided.
        assert_eq!(
            f.layout(1),
            Layout::Strided2D {
                first: 0,
                pitch: 24,
                width: 4,
                height: 4
            }
        );
    }

    #[test]
    fn count_replication_merges_when_contiguous() {
        let f = flat(&Datatype::contiguous(4, &Datatype::float()));
        let segs = f.expanded(8);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len, 128);
    }

    #[test]
    fn vector_count_replication_continues_pitch() {
        // Full-extent vector: count replication continues the pattern when
        // the element extent equals count*stride... Standard halo column:
        // hvector with explicit full-row extent.
        let elem = Datatype::hvector(4, 1, 24, &Datatype::float());
        let elem = Datatype::resized(&elem, 0, 96);
        elem.commit();
        let f = elem.flat();
        assert_eq!(
            f.layout(3),
            Layout::Strided2D {
                first: 0,
                pitch: 24,
                width: 4,
                height: 12
            }
        );
    }

    #[test]
    fn indexed_is_irregular() {
        let f = flat(&Datatype::indexed(
            &[(1, 0), (2, 3), (1, 9)],
            &Datatype::int(),
        ));
        assert_eq!(f.layout(1), Layout::Irregular);
        assert_eq!(f.total_bytes(1), 16);
    }

    #[test]
    fn struct_layout_flattens_in_field_order() {
        let t = Datatype::create_struct(&[(2, 16, Datatype::int()), (1, 0, Datatype::double())]);
        let f = flat(&t);
        // Pack order follows the typemap (field order), not address order.
        assert_eq!(
            f.segments(),
            &[
                Segment { offset: 16, len: 8 },
                Segment { offset: 0, len: 8 },
            ]
        );
    }

    #[test]
    fn subarray_2d_layout_is_strided() {
        let t = Datatype::subarray(
            &[8, 10],
            &[3, 4],
            &[2, 5],
            SubarrayOrder::C,
            &Datatype::float(),
        );
        t.commit();
        let f = t.flat();
        assert_eq!(
            f.layout(1),
            Layout::Strided2D {
                first: (2 * 10 + 5) * 4,
                pitch: 40,
                width: 16,
                height: 3
            }
        );
    }

    #[test]
    fn byte_range_covers_all_elements() {
        let t = Datatype::vector(2, 1, 4, &Datatype::float());
        t.commit();
        let f = t.flat();
        // one element: offsets 0..4 and 16..20 → (0, 20); extent 20.
        assert_eq!(f.byte_range(1), (0, 20));
        assert_eq!(f.byte_range(3), (0, 60));
        assert_eq!(f.byte_range(0), (0, 0));
    }

    #[test]
    fn negative_offsets_survive_flattening() {
        let t = Datatype::hindexed(&[(1, -8), (1, 4)], &Datatype::int());
        let f = flat(&t);
        assert_eq!(f.segments()[0].offset, -8);
        assert_eq!(f.byte_range(1).0, -8);
    }

    #[test]
    fn classify_rejects_descending_offsets() {
        let segs = [
            Segment {
                offset: 100,
                len: 4,
            },
            Segment { offset: 0, len: 4 },
            Segment { offset: 50, len: 4 },
        ];
        assert_eq!(FlatType::classify(&segs), Layout::Irregular);
    }

    #[test]
    fn empty_type_flattens_to_nothing() {
        let f = flat(&Datatype::vector(0, 1, 1, &Datatype::float()));
        assert!(f.segments().is_empty());
        assert_eq!(f.layout(5), Layout::Contiguous { offset: 0, len: 0 });
    }
}
