//! The public MPI communicator API.
//!
//! One [`Comm`] per rank, used from that rank's simulation process. The
//! blocking calls (`send`, `recv`, `wait`, `waitall`, `barrier`) drive the
//! progress engine, so — like a single-threaded MPI library — communication
//! only advances inside MPI calls.
//!
//! Communicators are first-class: [`Comm::split`] and [`Comm::dup`] create
//! sub-communicators with their own context ids (agreed across members
//! with an allreduce, as real MPI libraries do), group-relative ranks and
//! isolated collective streams.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use gpu_sim::Loc;
use ib_sim::Nic;
use sim_core::lock::Mutex;
use sim_core::CallCounters;

use crate::datatype::Datatype;
use crate::engine::{Engine, RecvStatus, Request, SrcSel, TagSel};
use crate::proto::{MpiConfig, MpiError};
use crate::staging::BufferStager;

/// A communicator handle for one rank. Ranks, sources and statuses are all
/// *group-relative*; for the world communicator they coincide with world
/// ranks.
#[derive(Clone)]
pub struct Comm {
    eng: Arc<Mutex<Engine>>,
    /// World ranks of the group, indexed by group rank.
    group: Arc<Vec<usize>>,
    /// This process's rank within the group.
    my_rank: usize,
    /// Context id for point-to-point traffic.
    ctx: u16,
    /// Context id for collectives.
    coll_ctx: u16,
    /// Per-communicator collective sequence (same order on every member).
    coll_seq: Arc<AtomicU32>,
}

impl Comm {
    /// Engine access for the collectives module.
    pub(crate) fn engine(&self) -> &Arc<Mutex<Engine>> {
        &self.eng
    }

    /// Collective context id.
    pub(crate) fn coll_ctx(&self) -> u16 {
        self.coll_ctx
    }

    /// Translate a group rank to a world rank.
    pub(crate) fn world_rank_of(&self, group_rank: usize) -> usize {
        *self
            .group
            .get(group_rank)
            .unwrap_or_else(|| panic!("rank {group_rank} outside this communicator"))
    }

    /// Translate a world rank back to a group rank (matching statuses).
    pub(crate) fn group_rank_of(&self, world_rank: usize) -> usize {
        self.group
            .iter()
            .position(|&w| w == world_rank)
            .expect("message from a rank outside this communicator")
    }

    fn fix_status(&self, st: RecvStatus) -> RecvStatus {
        RecvStatus {
            src: self.group_rank_of(st.src),
            ..st
        }
    }

    fn sel_to_world(&self, sel: SrcSel) -> SrcSel {
        SrcSel(sel.0.map(|r| self.world_rank_of(r)))
    }

    /// A fresh base tag for one collective. Each collective owns a window
    /// of [`crate::coll::TAGS_PER_COLL`] tags: hierarchical algorithms
    /// index phase tags by node id, so the window must cover
    /// `phase_stride * phases` (see `coll::hier`).
    pub(crate) fn next_coll_tag(&self) -> u32 {
        (self.coll_seq.fetch_add(1, Ordering::Relaxed) % (1 << 18)) * crate::coll::TAGS_PER_COLL
    }

    /// Create the world communicator for `rank` of `size` on `nic`.
    /// `stagers` are tried (in order) before the built-in host staging —
    /// this is where GPU-aware datatype support plugs in.
    pub fn create(
        nic: Nic,
        rank: usize,
        size: usize,
        cfg: MpiConfig,
        stagers: Arc<Vec<Box<dyn BufferStager>>>,
    ) -> Comm {
        Self::create_traced(nic, rank, size, cfg, stagers, &sim_trace::Recorder::off())
    }

    /// Like [`Comm::create`], but wired to a trace recorder: the engine's
    /// protocol events, RDMA stage spans and vbuf-pool gauges are recorded
    /// on `rank{rank}/*` lanes and its counters join the recorder's
    /// metrics registry. Recording never changes virtual time.
    pub fn create_traced(
        nic: Nic,
        rank: usize,
        size: usize,
        cfg: MpiConfig,
        stagers: Arc<Vec<Box<dyn BufferStager>>>,
        rec: &sim_trace::Recorder,
    ) -> Comm {
        Comm {
            eng: Arc::new(Mutex::new(Engine::new_traced(
                nic, rank, size, cfg, stagers, rec,
            ))),
            group: Arc::new((0..size).collect()),
            my_rank: rank,
            ctx: 0,
            coll_ctx: 1,
            coll_seq: Arc::new(AtomicU32::new(0)),
        }
    }

    /// This rank (group-relative).
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// This process's rank in the world communicator.
    pub fn world_rank(&self) -> usize {
        self.eng.lock().rank
    }

    /// MPI/CUDA call counters for this rank (process-wide).
    pub fn counters(&self) -> CallCounters {
        self.eng.lock().counters.clone()
    }

    /// The library configuration.
    pub fn config(&self) -> MpiConfig {
        self.eng.lock().cfg.clone()
    }

    /// Number of live entries in this rank's rendezvous registration cache
    /// (observability for tests and tools; bounded by
    /// `MpiConfig::reg_cache_entries`).
    pub fn reg_cache_len(&self) -> usize {
        self.eng.lock().reg_cache_len()
    }

    // --- point-to-point -----------------------------------------------------

    /// `MPI_Isend`.
    pub fn isend(
        &self,
        buf: impl Into<Loc>,
        count: usize,
        dtype: &Datatype,
        dst: usize,
        tag: u32,
    ) -> Request {
        let dst = self.world_rank_of(dst);
        let mut eng = self.eng.lock();
        eng.counters.record("MPI_Isend");
        let id = eng.isend(buf.into(), count, dtype, dst, tag, self.ctx);
        Request { id }
    }

    /// `MPI_Irecv`.
    pub fn irecv(
        &self,
        buf: impl Into<Loc>,
        count: usize,
        dtype: &Datatype,
        src: impl Into<SrcSel>,
        tag: impl Into<TagSel>,
    ) -> Request {
        let src = self.sel_to_world(src.into());
        let mut eng = self.eng.lock();
        eng.counters.record("MPI_Irecv");
        let id = eng.irecv(buf.into(), count, dtype, src, tag.into(), self.ctx);
        Request { id }
    }

    /// `MPI_Send` (blocking).
    pub fn send(&self, buf: impl Into<Loc>, count: usize, dtype: &Datatype, dst: usize, tag: u32) {
        let dst = self.world_rank_of(dst);
        let mut eng = self.eng.lock();
        eng.counters.record("MPI_Send");
        let id = eng.isend(buf.into(), count, dtype, dst, tag, self.ctx);
        Self::wait_inner(&mut eng, Request { id })
            .unwrap_or_else(|e| panic!("MPI_Send failed: {e}"));
    }

    /// `MPI_Recv` (blocking). Returns the receive status.
    pub fn recv(
        &self,
        buf: impl Into<Loc>,
        count: usize,
        dtype: &Datatype,
        src: impl Into<SrcSel>,
        tag: impl Into<TagSel>,
    ) -> RecvStatus {
        let src = self.sel_to_world(src.into());
        let mut eng = self.eng.lock();
        eng.counters.record("MPI_Recv");
        let id = eng.irecv(buf.into(), count, dtype, src, tag.into(), self.ctx);
        let st = Self::wait_inner(&mut eng, Request { id })
            .unwrap_or_else(|e| panic!("MPI_Recv failed: {e}"))
            .expect("recv must produce a status");
        drop(eng);
        self.fix_status(st)
    }

    fn req_done(eng: &Engine, req: &Request) -> bool {
        if eng.is_send(req.id) {
            eng.send_done(req.id)
        } else {
            eng.recv_finished(req.id)
        }
    }

    /// Consume a finished request: surface its typed error (fault-injected
    /// fabrics only) or its status.
    fn reap(eng: &mut Engine, req: &Request) -> Result<Option<RecvStatus>, MpiError> {
        if eng.is_send(req.id) {
            let err = eng.send_error(req.id);
            eng.reap_send(req.id);
            match err {
                Some(e) => Err(e),
                None => Ok(None),
            }
        } else {
            let err = eng.recv_error(req.id);
            let status = eng.recv_done(req.id);
            eng.reap_recv(req.id);
            match err {
                Some(e) => Err(e),
                None => Ok(status),
            }
        }
    }

    fn wait_inner(eng: &mut Engine, req: Request) -> Result<Option<RecvStatus>, MpiError> {
        loop {
            eng.progress();
            if Self::req_done(eng, &req) {
                break;
            }
            eng.idle_block();
        }
        Self::reap(eng, &req)
    }

    /// `MPI_Wait`. Returns the status for receive requests.
    ///
    /// Panics if the request failed (retries exhausted on a fault-injecting
    /// fabric) — use [`Comm::wait_result`] to handle that as a value.
    pub fn wait(&self, req: Request) -> Option<RecvStatus> {
        self.wait_result(req)
            .unwrap_or_else(|e| panic!("MPI_Wait failed: {e}"))
    }

    /// `MPI_Wait`, surfacing a failed request as a typed error instead of
    /// panicking. Requests only fail on a fault-injecting fabric, once the
    /// retry budget (`MpiConfig::retry`) is exhausted.
    pub fn wait_result(&self, req: Request) -> Result<Option<RecvStatus>, MpiError> {
        let mut eng = self.eng.lock();
        eng.counters.record("MPI_Wait");
        let st = Self::wait_inner(&mut eng, req);
        drop(eng);
        st.map(|o| o.map(|s| self.fix_status(s)))
    }

    /// `MPI_Waitall`. Returns receive statuses in request order (None for
    /// sends).
    pub fn waitall(&self, reqs: Vec<Request>) -> Vec<Option<RecvStatus>> {
        let mut eng = self.eng.lock();
        eng.counters.record("MPI_Waitall");
        loop {
            eng.progress();
            if reqs.iter().all(|r| Self::req_done(&eng, r)) {
                break;
            }
            eng.idle_block();
        }
        let out: Vec<Option<RecvStatus>> = reqs
            .into_iter()
            .map(|r| Self::reap(&mut eng, &r).unwrap_or_else(|e| panic!("MPI_Waitall failed: {e}")))
            .collect();
        drop(eng);
        out.into_iter()
            .map(|s| s.map(|st| self.fix_status(st)))
            .collect()
    }

    /// `MPI_Waitany`: block until one request completes; returns its index
    /// (and status for receives). The rest stay live.
    pub fn waitany(&self, reqs: &[Request]) -> (usize, Option<RecvStatus>) {
        assert!(!reqs.is_empty(), "waitany on an empty request list");
        let mut eng = self.eng.lock();
        eng.counters.record("MPI_Waitany");
        loop {
            eng.progress();
            if let Some(i) = reqs.iter().position(|r| Self::req_done(&eng, r)) {
                let st = Self::reap(&mut eng, &reqs[i])
                    .unwrap_or_else(|e| panic!("MPI_Waitany failed: {e}"));
                drop(eng);
                return (i, st.map(|s| self.fix_status(s)));
            }
            eng.idle_block();
        }
    }

    /// `MPI_Testall`: progress once; true only if every request has
    /// completed. Requests stay live until waited on.
    pub fn testall(&self, reqs: &[Request]) -> bool {
        let mut eng = self.eng.lock();
        eng.counters.record("MPI_Testall");
        eng.progress();
        reqs.iter().all(|r| Self::req_done(&eng, r))
    }

    /// `MPI_Test`: progress once and report completion without blocking.
    /// The request stays live until waited on.
    pub fn test(&self, req: &Request) -> bool {
        let mut eng = self.eng.lock();
        eng.counters.record("MPI_Test");
        eng.progress();
        Self::req_done(&eng, req)
    }

    /// `MPI_Iprobe`: progress once, then report whether a message matching
    /// `(src, tag)` is waiting (without receiving it).
    pub fn iprobe(&self, src: impl Into<SrcSel>, tag: impl Into<TagSel>) -> Option<RecvStatus> {
        let src = self.sel_to_world(src.into());
        let mut eng = self.eng.lock();
        eng.counters.record("MPI_Iprobe");
        eng.progress();
        let st = eng.probe_unexpected(src, tag.into(), self.ctx);
        drop(eng);
        st.map(|s| self.fix_status(s))
    }

    /// `MPI_Probe`: block until a message matching `(src, tag)` is
    /// available; returns its status without receiving it.
    pub fn probe(&self, src: impl Into<SrcSel>, tag: impl Into<TagSel>) -> RecvStatus {
        let src = self.sel_to_world(src.into());
        let tag = tag.into();
        let mut eng = self.eng.lock();
        eng.counters.record("MPI_Probe");
        loop {
            eng.progress();
            if let Some(st) = eng.probe_unexpected(src, tag, self.ctx) {
                drop(eng);
                return self.fix_status(st);
            }
            eng.idle_block();
        }
    }

    // --- communicator management ---------------------------------------------

    /// `MPI_Comm_dup`: a congruent communicator with fresh contexts.
    pub fn dup(&self) -> Comm {
        self.split(0, self.my_rank as i64)
            .expect("dup never returns MPI_UNDEFINED")
    }

    /// `MPI_Comm_split`: ranks with the same `color` form a new
    /// communicator, ordered by `(key, parent rank)`. A negative color
    /// returns `None` (MPI_UNDEFINED — the caller joins no new
    /// communicator but must still participate in the call).
    pub fn split(&self, color: i64, key: i64) -> Option<Comm> {
        let n = self.size();
        // 1. Allgather (color, key) across the parent communicator.
        let t = Datatype::long();
        t.commit();
        let mine = hostmem::HostBuf::from_vec(hostmem::scalars_to_bytes(&[color, key]));
        let all = hostmem::HostBuf::alloc(n * 16);
        self.allgather(mine.base(), all.base(), 2, &t);
        let triples: Vec<(i64, i64, usize)> = (0..n)
            .map(|r| {
                let v: Vec<i64> = hostmem::bytes_to_scalars(&all.read(r * 16, 16));
                (v[0], v[1], r)
            })
            .collect();
        // 2. Agree on a context base: allreduce-max of every member's next
        //    free context id, then advance everyone past the block.
        let my_next = self.eng.lock().peek_next_ctx() as i64;
        let base_buf = hostmem::HostBuf::alloc(8);
        let mine_buf = hostmem::HostBuf::from_vec(hostmem::scalars_to_bytes(&[my_next]));
        self.allreduce(
            mine_buf.base(),
            base_buf.base(),
            1,
            &t,
            crate::coll::ReduceOp::Max,
        );
        let base: i64 = hostmem::bytes_to_scalars::<i64>(&base_buf.read(0, 8))[0];
        // 3. Colors (non-negative), sorted and deduplicated, each get a
        //    (p2p, coll) context pair.
        let mut colors: Vec<i64> = triples
            .iter()
            .map(|&(c, _, _)| c)
            .filter(|&c| c >= 0)
            .collect();
        colors.sort_unstable();
        colors.dedup();
        self.eng
            .lock()
            .advance_ctx(base as u16 + 2 * colors.len() as u16);
        if color < 0 {
            return None;
        }
        let ci = colors.binary_search(&color).unwrap();
        let ctx = base as u16 + 2 * ci as u16;
        // 4. My group: members of my color ordered by (key, parent rank),
        //    translated to world ranks.
        let mut members: Vec<(i64, usize)> = triples
            .iter()
            .filter(|&&(c, _, _)| c == color)
            .map(|&(_, k, r)| (k, r))
            .collect();
        members.sort_unstable();
        let group: Vec<usize> = members
            .iter()
            .map(|&(_, r)| self.world_rank_of(r))
            .collect();
        let my_world = self.eng.lock().rank;
        let my_rank = group
            .iter()
            .position(|&w| w == my_world)
            .expect("split must include the caller");
        Some(Comm {
            eng: Arc::clone(&self.eng),
            group: Arc::new(group),
            my_rank,
            ctx,
            coll_ctx: ctx + 1,
            coll_seq: Arc::new(AtomicU32::new(0)),
        })
    }
}
