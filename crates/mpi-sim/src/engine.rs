//! Per-rank protocol engine: matching, request state machines and the
//! progress loop.
//!
//! Each rank runs as one simulation process; MPI progress happens inside
//! MPI calls (single-threaded MPI, like the paper's MVAPICH2 build). The
//! engine drains the NIC mailbox, advances rendezvous state machines by
//! polling staging sources/sinks and RDMA completions, and blocks — in
//! virtual time — until either a packet arrives or the earliest known
//! hardware completion instant passes.
//!
//! # Fault recovery
//!
//! On a fabric built with [`ib_sim::FaultSpec`], control packets can be
//! dropped or delayed, RDMA writes can fail with an error CQE, and user
//! buffer registration can hit a pin limit. The engine then layers a
//! retry/recovery protocol over the rendezvous state machines:
//!
//! * lost **RTS**: the sender retransmits on timeout (exponential backoff);
//! * lost **CTS/CTS-direct**: a duplicate RTS makes the receiver re-send
//!   its response (same granted window — grants are never duplicated);
//! * lost **FIN**: the staged sender defers each FIN to its chunk's
//!   successful CQE and retransmits the FINs of busy (uncredited) slots on
//!   stall; the receiver additionally nacks the first missing chunk;
//! * lost **CREDIT**: a retransmitted FIN for an already-credited chunk
//!   makes the receiver re-send that credit; credits are sequenced by
//!   chunk index so duplicates can never free a slot twice;
//! * failed **RDMA write**: re-issued from the still-held staging buffer
//!   (staged) or the user buffer (direct), bounded by the retry budget;
//! * failed **registration**: the direct R-PUT degrades to the staged
//!   path (`DirectAbort`), on either side.
//!
//! Every timer, duplicate-tolerance path and retransmit is gated on the
//! fabric actually injecting faults: with faults disabled the engine is
//! bit-identical — in timing and in bytes — to one built without any of
//! this machinery, and protocol violations stay hard panics.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use gpu_sim::Loc;
use hostmem::{HostBuf, HostPtr};
use ib_sim::{MrKey, Nic, SgEntry};
use sim_core::{instrument, san};
use sim_core::{CallCounters, Completion, SimDur, SimTime};

use crate::datatype::Datatype;
use crate::flat::Layout;
use crate::invariants;
use crate::plan::{Canonical, WireDescriptor};
use crate::proto::{
    ChunkPolicy, Envelope, MpiConfig, MpiError, MpiPacket, ReqId, RetryConfig, SlotDesc,
};
use crate::scheme::{DataScheme, SchemeSelector};
use crate::staging::{BufferStager, HostRecvSink, HostSendSource, RecvSink, SendSource};
use crate::tuner::{settled_counter, ChunkTuner, LayoutClass, TuneKey};

/// Source selector for receives.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SrcSel(pub(crate) Option<usize>);

/// Tag selector for receives.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TagSel(pub(crate) Option<u32>);

/// Match any source rank (MPI_ANY_SOURCE).
pub const ANY_SOURCE: SrcSel = SrcSel(None);
/// Match any tag (MPI_ANY_TAG).
pub const ANY_TAG: TagSel = TagSel(None);

impl From<usize> for SrcSel {
    fn from(r: usize) -> Self {
        SrcSel(Some(r))
    }
}

impl From<u32> for TagSel {
    fn from(t: u32) -> Self {
        TagSel(Some(t))
    }
}

/// Completion information of a receive (MPI_Status).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RecvStatus {
    /// Actual source rank.
    pub src: usize,
    /// Actual tag.
    pub tag: u32,
    /// Received payload bytes (type-packed size).
    pub bytes: usize,
}

/// A nonblocking operation handle.
#[derive(Debug)]
pub struct Request {
    pub(crate) id: ReqId,
}

/// Record a protocol event on the rank-local counters, the process-global
/// counters (fault campaigns read the global ones; tests needing isolation
/// read the per-rank ones through `Comm::counters`) and the rank's protocol
/// trace lane.
fn note(counters: &CallCounters, trace: &ProtoTrace, name: &'static str) {
    counters.record(name);
    instrument::global().record(name);
    trace.proto.instant_now(name);
}

/// Trace lanes of one rank's protocol engine. Always present; every lane
/// no-ops behind one atomic load when the recorder is disabled, so the
/// engine never branches on the tracing mode.
pub(crate) struct ProtoTrace {
    /// Protocol instants: rendezvous transitions, retries, duplicates,
    /// fallbacks.
    proto: sim_trace::Lane,
    /// Per-chunk RDMA-write stage spans (the wire stage of the pipeline,
    /// between d2h and h2d).
    rdma: sim_trace::Lane,
    /// Send-side vbuf pool occupancy.
    send_pool: sim_trace::Lane,
    /// Recv-side (grantable) vbuf pool occupancy.
    recv_pool: sim_trace::Lane,
    /// Chunk size chosen by the adaptive tuner, per staged transfer.
    chunk_size: sim_trace::Lane,
}

impl ProtoTrace {
    fn new(rec: &sim_trace::Recorder, scope: &str) -> Self {
        use sim_trace::LaneKind::{Gauge, Proto, Stage};
        ProtoTrace {
            proto: rec.lane(scope, "proto", Proto),
            rdma: rec.lane(scope, "rdma", Stage),
            send_pool: rec.lane(scope, "send_pool", Gauge),
            recv_pool: rec.lane(scope, "recv_pool", Gauge),
            chunk_size: rec.lane(scope, "chunk_size", Gauge),
        }
    }
}

/// Retransmit timer with exponential backoff. Only ever constructed on a
/// fault-injecting fabric.
struct RetryTimer {
    /// Initial timeout, ns (restored when progress is observed).
    base_ns: u64,
    /// Current timeout, ns (doubles per retransmission).
    timeout_ns: u64,
    /// Instant at which the watched operation is considered lost.
    deadline: SimTime,
    /// Transmissions so far, including the first.
    attempts: u32,
}

impl RetryTimer {
    fn new(retry: &RetryConfig) -> Self {
        RetryTimer {
            base_ns: retry.timeout_ns,
            timeout_ns: retry.timeout_ns,
            deadline: sim_core::now() + SimDur::from_nanos(retry.timeout_ns),
            attempts: 1,
        }
    }

    fn expired(&self) -> bool {
        sim_core::now() >= self.deadline
    }

    /// Account one retransmission and back off. Returns false when the
    /// retry budget is exhausted (the caller must fail the request).
    fn bump(&mut self, max_retries: u32) -> bool {
        if self.attempts > max_retries {
            return false;
        }
        self.attempts += 1;
        self.timeout_ns = self.timeout_ns.saturating_mul(2);
        self.deadline = sim_core::now() + SimDur::from_nanos(self.timeout_ns);
        true
    }

    /// Progress observed: reset the backoff and re-arm.
    fn feed(&mut self) {
        self.attempts = 1;
        self.timeout_ns = self.base_ns;
        self.deadline = sim_core::now() + SimDur::from_nanos(self.timeout_ns);
    }
}

/// FIFO-bounded map holding post-completion protocol memory (what a rank
/// must remember to answer retransmits that outlive the request). Old
/// entries age out; a retransmit arriving after that is ignored, which is
/// safe because the peer's own retry budget bounds how long it keeps
/// asking.
struct BoundedMap<K: Copy + Eq + std::hash::Hash, V> {
    cap: usize,
    order: VecDeque<K>,
    map: HashMap<K, V>,
}

impl<K: Copy + Eq + std::hash::Hash, V> BoundedMap<K, V> {
    fn new(cap: usize) -> Self {
        BoundedMap {
            cap,
            order: VecDeque::new(),
            map: HashMap::new(),
        }
    }

    fn insert(&mut self, k: K, v: V) {
        if self.map.insert(k, v).is_none() {
            self.order.push_back(k);
            if self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    fn get(&self, k: &K) -> Option<&V> {
        self.map.get(k)
    }

    fn contains(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }
}

/// Bounded registration cache for rendezvous user buffers (MVAPICH2's
/// reg-cache): repeated rendezvous on the same buffer skip the
/// registration cost. Unlike an unbounded cache, entries are evicted LRU
/// (and deregistered) once `cap` is exceeded, so dropped user buffers do
/// not stay pinned forever. Entries backing an in-flight transfer are
/// never evicted.
struct RegEntry {
    key: MrKey,
    last_used: u64,
    in_use: u32,
}

struct RegCache {
    cap: usize,
    tick: u64,
    entries: HashMap<u64, RegEntry>,
}

impl RegCache {
    fn new(cap: usize) -> Self {
        RegCache {
            cap,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Look up (or register) `buf` and mark it in use by a transfer. Fails
    /// only when the fabric's fault layer enforces a pin limit.
    fn acquire(
        &mut self,
        nic: &Nic,
        counters: &CallCounters,
        trace: &ProtoTrace,
        buf: &HostBuf,
    ) -> Result<MrKey, ib_sim::RegError> {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&buf.id()) {
            e.last_used = self.tick;
            e.in_use += 1;
            note(counters, trace, "reg_cache.hit");
            return Ok(e.key);
        }
        note(counters, trace, "reg_cache.miss");
        // Make room: evict idle entries, least recently used first. If every
        // entry backs an in-flight transfer the cache overflows temporarily.
        while self.entries.len() >= self.cap {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.in_use == 0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&id, _)| id);
            let Some(id) = victim else { break };
            let e = self.entries.remove(&id).expect("victim just found");
            nic.deregister(e.key);
            note(counters, trace, "reg_cache.evict");
        }
        let key = nic.try_register(buf)?;
        self.entries.insert(
            buf.id(),
            RegEntry {
                key,
                last_used: self.tick,
                in_use: 1,
            },
        );
        Ok(key)
    }

    /// The transfer that acquired `buf_id` finished: the entry stays cached
    /// but becomes evictable.
    fn release(&mut self, buf_id: u64) {
        if let Some(e) = self.entries.get_mut(&buf_id) {
            e.in_use = e.in_use.saturating_sub(1);
        }
    }

    /// Number of live (registered) entries.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

pub(crate) struct Vbuf {
    pub buf: HostBuf,
    pub key: MrKey,
}

struct SlotState {
    desc: SlotDesc,
    free: bool,
    /// Chunk currently written into the slot. Sequences credits: a credit
    /// frees the slot only if it names this chunk, so duplicates (or stale
    /// retransmits) can never free a slot twice.
    occupant: Option<usize>,
    /// Whether the occupant's FIN has gone out. On a faulty fabric FINs are
    /// deferred to the chunk's successful CQE, and these are what a stall
    /// retransmits.
    fin_sent: bool,
}

/// One chunk whose RDMA write is in flight. The staging vbuf is held until
/// the write *succeeds* so a failed write can be re-issued from it.
struct InflightChunk {
    comp: Completion,
    vbuf: Vbuf,
    chunk: usize,
    slot: usize,
    len: usize,
    attempts: u32,
}

struct StagedSend {
    dst: usize,
    peer_recv_req: ReqId,
    chunk_size: usize,
    nchunks: usize,
    slots: Vec<SlotState>,
    next_request: usize,
    next_send: usize,
    /// Chunks staged (or staging) into local vbufs, in chunk order.
    local: VecDeque<(usize, Vbuf)>,
    /// RDMA writes in flight; the local vbuf is released at completion.
    inflight: Vec<InflightChunk>,
    /// Stall watchdog (faulty fabrics only): re-FINs busy slots when
    /// neither a credit nor a CQE has arrived within the window.
    timer: Option<RetryTimer>,
}

/// Offloaded scatter/gather transfer in flight: the HCA walks the wire
/// descriptor on both sides, no CPU pack/unpack. The user-buffer
/// registration is held (and released) through the reg cache.
struct OffloadSend {
    rdma: Completion,
    /// The receiver's registered region.
    peer_key: MrKey,
    /// Base of the local user buffer (pin check + write re-issue).
    ptr: HostPtr,
    /// Local gather descriptor, kept for write re-issue.
    gather: Vec<SgEntry>,
    /// The receiver's scatter descriptor (from the CTS), kept likewise.
    scatter: Vec<SgEntry>,
    recv_req: ReqId,
    fin_sent: bool,
    attempts: u32,
}

/// Direct R-PUT in flight. The user-buffer registration is held (and
/// released) through the reg cache, keyed by the buffer id.
struct DirectSend {
    rdma: Completion,
    /// The receiver's registered region, kept for write re-issue.
    peer_key: MrKey,
    peer_off: usize,
    recv_req: ReqId,
    ptr: HostPtr,
    fin_sent: bool,
    attempts: u32,
}

enum SendPhase {
    WaitCts {
        timer: Option<RetryTimer>,
    },
    Direct(DirectSend),
    Offload(OffloadSend),
    Staged(StagedSend),
    /// Device path (co-located ranks sharing one GPU): the FIN-dev is out,
    /// announcing the packed tbuf; waiting for the receiver's credit. The
    /// pack completion is kept only as a wake-up hint — ordering travels
    /// inside the FIN-dev itself. No retry timer: intra-node control is
    /// reliable even on fault-injecting fabrics.
    DevWaitCredit {
        pack: Completion,
    },
    Done,
    Failed(MpiError),
}

struct SendState {
    dst: usize,
    total: usize,
    /// Envelope of the original RTS (for retransmission).
    env: Envelope,
    /// Device-GPU advert carried on the RTS (and its retransmissions):
    /// `Some` only toward a co-located peer when the source is device
    /// memory.
    dev_gpu: Option<u32>,
    source: Box<dyn SendSource>,
    /// Start of the user buffer when it is host-contiguous (direct path).
    direct_ptr: Option<HostPtr>,
    /// Registration for the direct path failed: fall back to staged and
    /// stop advertising direct capability on RTS retransmits.
    direct_failed: bool,
    /// Base pointer + lowered gather descriptor when the offload scheme is
    /// enabled and this layout admits a bounded wire descriptor.
    offload: Option<(HostPtr, WireDescriptor)>,
    /// Registration for the offload path failed: fall back to staged and
    /// stop advertising offload capability on RTS retransmits.
    offload_failed: bool,
    phase: SendPhase,
}

/// What a completed send must remember to answer retransmits (faulty
/// fabrics only).
#[derive(Copy, Clone)]
enum SendRecord {
    Staged {
        dst: usize,
        peer_recv_req: ReqId,
        chunk_size: usize,
        nchunks: usize,
        nslots: usize,
        total: usize,
    },
    Direct {
        dst: usize,
        recv_req: ReqId,
    },
    Offload {
        dst: usize,
        recv_req: ReqId,
    },
}

struct StagedRecv {
    src: usize,
    peer_send_req: ReqId,
    /// Chunk size of this transfer (chosen per transfer by the receiver;
    /// travels to the sender in the CTS).
    chunk_size: usize,
    nchunks: usize,
    total: usize,
    /// When the CTS window was granted — the tuner's latency clock. The
    /// clock starts at the *grant*, not the RTS match, so CTS deferral
    /// under recv-pool back-pressure is not charged to the chunk size.
    started: SimTime,
    /// Autotuner key, when the adaptive policy is driving this transfer.
    tune_key: Option<TuneKey>,
    /// False while the CTS is deferred waiting for pool vbufs (back
    /// pressure under many concurrent staged transfers).
    cts_sent: bool,
    /// Set the first time the CTS grant found the recv pool empty. Only
    /// consulted by the `bug_deferred_cts` toggle, which reintroduces the
    /// starvation bug where a once-deferred CTS is never re-examined.
    deferred: bool,
    slots: Vec<Vbuf>,
    /// FINs received, keyed by chunk index: chunk -> (slot, bytes). Keyed
    /// (rather than queued) so retransmitted FINs dedup and delayed ones
    /// can arrive out of order.
    arrived: BTreeMap<usize, (usize, usize)>,
    /// Chunks handed to the sink, awaiting absorption: (chunk, slot).
    absorbing: VecDeque<(usize, usize)>,
    next_chunk: usize,
    /// Chunks credited so far (credits go out in chunk order).
    next_credit: usize,
    /// FIN watchdog (faulty fabrics only), armed at the CTS grant.
    timer: Option<RetryTimer>,
}

enum RecvPhase {
    Unmatched,
    WaitDirect {
        my_key: MrKey,
        env: Envelope,
        total: usize,
        send_req: ReqId,
        timer: Option<RetryTimer>,
    },
    /// Offload rendezvous: the CTS-offload carried our registration key and
    /// scatter descriptor; waiting for the sender's FIN-offload (or an
    /// abort back to the staged path).
    WaitOffload {
        my_key: MrKey,
        /// The scatter descriptor granted in the CTS (kept for re-send).
        scatter: Vec<SgEntry>,
        env: Envelope,
        total: usize,
        send_req: ReqId,
        timer: Option<RetryTimer>,
    },
    Staged(StagedRecv, Envelope),
    /// Device path: CTS-dev sent, waiting for the sender's FIN-dev naming
    /// its packed device tbuf. No timer — intra-node control is reliable.
    DevWait {
        env: Envelope,
        total: usize,
        send_req: ReqId,
    },
    /// Device path: scattering from the sender's tbuf on the shared GPU;
    /// the credit goes out when the unpack completion lands.
    DevAbsorb {
        comp: Completion,
        env: Envelope,
        total: usize,
        send_req: ReqId,
    },
    Done(RecvStatus),
    Failed(MpiError),
}

struct RecvState {
    src_sel: SrcSel,
    tag_sel: TagSel,
    ctx: u16,
    capacity: usize,
    sink: Box<dyn RecvSink>,
    /// Start of the user buffer when it is host-contiguous (direct path).
    direct_ptr: Option<HostPtr>,
    /// Base pointer + lowered scatter descriptor when the offload scheme
    /// is enabled and this layout admits a bounded wire descriptor.
    offload: Option<(HostPtr, WireDescriptor)>,
    /// Layout bucket of the receive datatype (autotuner key component).
    layout_class: LayoutClass,
    phase: RecvPhase,
}

enum Unexpected {
    Eager {
        env: Envelope,
        data: Vec<u8>,
    },
    Rts {
        env: Envelope,
        total: usize,
        send_req: ReqId,
        direct_capable: bool,
        dev_gpu: Option<u32>,
        offload_entries: Option<u32>,
    },
}

impl Unexpected {
    fn env(&self) -> &Envelope {
        match self {
            Unexpected::Eager { env, .. } | Unexpected::Rts { env, .. } => env,
        }
    }
}

fn env_matches(env: &Envelope, ctx: u16, src: SrcSel, tag: TagSel) -> bool {
    env.ctx == ctx && src.0.is_none_or(|s| s == env.src) && tag.0.is_none_or(|t| t == env.tag)
}

/// How many completed transfers each rank remembers for replay tolerance.
const REPLAY_MEMORY: usize = 1024;

pub(crate) struct Engine {
    pub rank: usize,
    pub size: usize,
    pub nic: Nic,
    /// Job scope prefix (from [`Nic::scope_prefix`]): `""` on a dedicated
    /// fabric, `"job{k}."` for a tenant of a shared one. Prepended to
    /// every trace scope, sanitizer pool/gauge scope and metrics prefix
    /// this engine emits, so concurrent jobs never collide in one
    /// process-wide registry.
    pub prefix: String,
    pub cfg: MpiConfig,
    pub counters: CallCounters,
    /// The data-path scheme layer: per-peer transports, colocation, eager
    /// thresholds and rendezvous scheme resolution, owned in one place.
    /// The protocol state machines ask it what to do and never look inside.
    scheme: SchemeSelector,
    stagers: Arc<Vec<Box<dyn BufferStager>>>,
    /// True when the fabric injects faults; every retry timer and
    /// duplicate-tolerance path is gated on this.
    faulty: bool,
    next_req: ReqId,
    sends: HashMap<ReqId, SendState>,
    recvs: HashMap<ReqId, RecvState>,
    posted: Vec<ReqId>,
    unexpected: VecDeque<Unexpected>,
    /// Registered staging buffers for *outgoing* chunks. Kept separate from
    /// `recv_pool`: if grants and local staging shared one pool, two ranks
    /// could grant each other every buffer and deadlock with nothing left
    /// to stage their own sends (a classic buffer-management deadlock).
    send_pool: Vec<Vbuf>,
    /// Registered staging buffers granted to remote senders via CTS.
    recv_pool: Vec<Vbuf>,
    /// Sanitizer pool handles (None when the sanitizer is off).
    send_pool_id: Option<san::PoolId>,
    recv_pool_id: Option<san::PoolId>,
    /// Sanitizer accounting for device tbufs held across a D2D rendezvous
    /// (taken at CTS-dev staging, returned at CREDIT-dev receipt).
    dev_tbuf_id: Option<san::PoolId>,
    /// Fault injection: true once the configured vbuf leak has happened.
    leaked_vbuf: bool,
    /// Fault injection: true once the configured CREDIT-dev drop happened.
    dev_credit_dropped: bool,
    /// Next free communicator context id (0/1 belong to the world comm).
    next_ctx: u16,
    /// Bounded registration cache for rendezvous user buffers.
    reg_cache: RegCache,
    /// Online block-size search (drives `ChunkPolicy::Adaptive`).
    tuner: ChunkTuner,
    /// Live matched RTSes, (src, send_req) -> recv_req: a duplicate RTS
    /// re-sends the response instead of matching twice (faulty only).
    matched_rts: HashMap<(usize, ReqId), ReqId>,
    /// RTSes whose transfer completed; late duplicates are ignored.
    done_rts: BoundedMap<(usize, ReqId), ()>,
    /// Completed sends, kept to answer FinNack / CtsDirect retransmits.
    completed_sends: BoundedMap<ReqId, SendRecord>,
    /// Completed staged receives, recv_req -> (src, peer_send_req), kept to
    /// re-credit on duplicate FINs after the receive was reaped.
    completed_recvs: BoundedMap<ReqId, (usize, ReqId)>,
    /// This rank's trace lanes (no-ops when the recorder is disabled).
    trace: ProtoTrace,
    /// Last (send_pool, recv_pool) occupancy sampled onto the gauge lanes;
    /// samples are only emitted on change.
    last_pools: (usize, usize),
}

impl Engine {
    /// Build a rank engine wired to a trace recorder: protocol events,
    /// per-chunk RDMA stage spans and vbuf-pool gauges land on
    /// `rank{rank}/*` lanes, and the rank's counters join the recorder's
    /// unified metrics registry. Pass `Recorder::off()` for an untraced
    /// engine — emission then no-ops behind one atomic load.
    pub fn new_traced(
        nic: Nic,
        rank: usize,
        size: usize,
        cfg: MpiConfig,
        stagers: Arc<Vec<Box<dyn BufferStager>>>,
        rec: &sim_trace::Recorder,
    ) -> Engine {
        cfg.validate();
        // Pre-allocate and register the vbuf pools (done once at MPI_Init).
        // Slots are sized to the largest chunk any policy may pick, so the
        // adaptive tuner can grow the block without reallocating. The pools
        // use the infallible register: like MVAPICH2's vbuf pool at
        // MPI_Init, they are exempt from the (fault-injected) pin limit.
        let mk_pool = |n: usize| -> Vec<Vbuf> {
            (0..n)
                .map(|_| {
                    let buf = HostBuf::alloc(cfg.max_chunk());
                    let key = nic.register(&buf);
                    Vbuf { buf, key }
                })
                .collect()
        };
        let send_pool = mk_pool(cfg.pool_vbufs / 2);
        let recv_pool = mk_pool(cfg.pool_vbufs - cfg.pool_vbufs / 2);
        // Scope everything the engine names after the job: on a dedicated
        // fabric the prefix is empty and these are the classic
        // `rank{r}.*` names; tenants of a shared fabric get
        // `job{k}.rank{r}.*`, so two worlds in one process never collide
        // in the sanitizer or the metrics registry.
        let prefix = nic.scope_prefix().to_string();
        let scope = format!("{prefix}rank{rank}");
        let send_pool_id = san::pool_register(format!("{scope}.send_pool"));
        let recv_pool_id = san::pool_register(format!("{scope}.recv_pool"));
        let dev_tbuf_id = san::pool_register(format!("{scope}.dev_tbuf"));
        invariants::register_all();
        let tuner = ChunkTuner::new(&cfg);
        let faulty = nic.faults_enabled();
        let reg_cache = RegCache::new(cfg.reg_cache_entries);
        let counters = CallCounters::new();
        rec.register_counters(&scope, &counters);
        let trace = ProtoTrace::new(rec, &scope);
        let scheme = SchemeSelector::new(&nic, rank, size, &cfg);
        Engine {
            rank,
            size,
            nic,
            prefix,
            cfg,
            counters,
            scheme,
            stagers,
            faulty,
            next_req: 1,
            sends: HashMap::new(),
            recvs: HashMap::new(),
            posted: Vec::new(),
            unexpected: VecDeque::new(),
            send_pool,
            recv_pool,
            send_pool_id,
            recv_pool_id,
            dev_tbuf_id,
            leaked_vbuf: false,
            dev_credit_dropped: false,
            next_ctx: 2,
            reg_cache,
            tuner,
            matched_rts: HashMap::new(),
            done_rts: BoundedMap::new(REPLAY_MEMORY),
            completed_sends: BoundedMap::new(REPLAY_MEMORY),
            completed_recvs: BoundedMap::new(REPLAY_MEMORY),
            trace,
            // Sentinel: the first progress pass samples the baseline.
            last_pools: (usize::MAX, usize::MAX),
        }
    }

    /// The next free communicator context id (used by `Comm::split` to
    /// agree on new contexts).
    pub fn peek_next_ctx(&self) -> u16 {
        self.next_ctx
    }

    /// Advance the context allocator past an agreed block.
    pub fn advance_ctx(&mut self, to: u16) {
        self.next_ctx = self.next_ctx.max(to);
    }

    /// Number of live registration-cache entries (tests).
    pub fn reg_cache_len(&self) -> usize {
        self.reg_cache.len()
    }

    fn alloc_req(&mut self) -> ReqId {
        let id = self.next_req;
        self.next_req += 1;
        id
    }

    fn mpi_call_cost(&self) {
        sim_core::sleep(SimDur::from_nanos(self.cfg.cpu.mpi_call_ns));
    }

    fn retry_timer(&self) -> Option<RetryTimer> {
        self.faulty.then(|| RetryTimer::new(&self.cfg.retry))
    }

    fn make_source(&self, buf: &Loc, count: usize, dt: &Datatype) -> Box<dyn SendSource> {
        for s in self.stagers.iter() {
            if let Some(src) = s.source(buf, count, dt) {
                return src;
            }
        }
        match buf {
            Loc::Host(p) => Box::new(HostSendSource::new(
                p.clone(),
                count,
                dt,
                self.cfg.cpu.clone(),
            )),
            Loc::Device(_) => panic!(
                "send buffer resides in device memory but this MPI build has \
                 no GPU datatype support (use mv2-gpu-nc)"
            ),
        }
    }

    fn make_sink(&self, buf: &Loc, count: usize, dt: &Datatype) -> Box<dyn RecvSink> {
        for s in self.stagers.iter() {
            if let Some(sink) = s.sink(buf, count, dt) {
                return sink;
            }
        }
        match buf {
            Loc::Host(p) => Box::new(HostRecvSink::new(
                p.clone(),
                count,
                dt,
                self.cfg.cpu.clone(),
            )),
            Loc::Device(_) => panic!(
                "receive buffer resides in device memory but this MPI build \
                 has no GPU datatype support (use mv2-gpu-nc)"
            ),
        }
    }

    /// If (buf, count, dtype) is a contiguous host region, its start.
    fn contiguous_host_ptr(buf: &Loc, count: usize, dt: &Datatype) -> Option<HostPtr> {
        let Loc::Host(p) = buf else { return None };
        match dt.flat().layout(count) {
            Layout::Contiguous { offset, .. } => {
                let abs = p.offset() as isize + offset;
                assert!(abs >= 0, "contiguous layout starts before the buffer");
                Some(p.buf().ptr(abs as usize))
            }
            _ => None,
        }
    }

    fn check_host_bounds(buf: &Loc, count: usize, dt: &Datatype) {
        if let Loc::Host(p) = buf {
            let (lo, hi) = dt.flat().byte_range(count);
            let lo_abs = p.offset() as isize + lo;
            let hi_abs = p.offset() as isize + hi;
            assert!(
                lo_abs >= 0 && hi_abs as usize <= p.buf().len(),
                "datatype footprint [{lo_abs}, {hi_abs}) exceeds host buffer of {} bytes",
                p.buf().len()
            );
        }
    }

    // --- posting ---------------------------------------------------------------

    pub fn isend(
        &mut self,
        buf: Loc,
        count: usize,
        dt: &Datatype,
        dst: usize,
        tag: u32,
        ctx: u16,
    ) -> ReqId {
        assert!(dst < self.size, "isend to nonexistent rank {dst}");
        self.mpi_call_cost();
        // Every MPI call gives the progress engine a chance to run (as in
        // any real single-threaded MPI library).
        self.progress();
        Self::check_host_bounds(&buf, count, dt);
        let mut source = self.make_source(&buf, count, dt);
        let total = source.total_bytes();
        let env = Envelope {
            ctx,
            src: self.rank,
            tag,
        };
        let id = self.alloc_req();
        if total <= self.scheme.send_eager_limit(dst) {
            let data = source.pack_eager();
            let wire = data.len() + 64;
            self.nic
                .send(dst, wire, Box::new(MpiPacket::Eager { env, data }));
            self.sends.insert(
                id,
                SendState {
                    dst,
                    total,
                    env,
                    dev_gpu: None,
                    source,
                    direct_ptr: None,
                    direct_failed: false,
                    offload: None,
                    offload_failed: false,
                    phase: SendPhase::Done,
                },
            );
        } else {
            let direct_ptr = Self::contiguous_host_ptr(&buf, count, dt);
            // Advertise the device path only toward a co-located peer: a
            // remote receiver can never read this GPU's memory directly.
            let dev_gpu = if self.scheme.colocated(dst) {
                source.device_gpu()
            } else {
                None
            };
            // Offload: lower the layout to a bounded gather descriptor the
            // HCA can walk. Only attempted when the scheme layer enables it
            // and the peer sits behind the RDMA transport — the default
            // configuration takes zero plan lookups here.
            let mut offload = None;
            if self.scheme.offload_enabled() && self.scheme.offload_peer(dst) {
                if let Loc::Host(p) = &buf {
                    let plan = dt.flat().plan(count);
                    if let Err(err) = self.cfg.try_validate_scheme(&Canonical::of(&plan)) {
                        // Forced offload on a layout the HCA cannot walk:
                        // surface the typed rejection through wait_result
                        // before any wire traffic, instead of a deep-engine
                        // panic later.
                        note(&self.counters, &self.trace, "mpi.error");
                        self.sends.insert(
                            id,
                            SendState {
                                dst,
                                total,
                                env,
                                dev_gpu,
                                source,
                                direct_ptr,
                                direct_failed: false,
                                offload: None,
                                offload_failed: false,
                                phase: SendPhase::Failed(MpiError::Rejected { err }),
                            },
                        );
                        return id;
                    }
                    offload = WireDescriptor::lower(&plan, self.cfg.offload_entry_budget)
                        .map(|d| (p.clone(), d));
                }
            }
            self.trace.proto.instant_now("rts");
            self.nic.send_ctrl(
                dst,
                Box::new(MpiPacket::Rts {
                    env,
                    total,
                    send_req: id,
                    direct_capable: direct_ptr.is_some(),
                    dev_gpu,
                    offload_entries: offload.as_ref().map(|(_, d)| d.entries().len() as u32),
                }),
            );
            self.sends.insert(
                id,
                SendState {
                    dst,
                    total,
                    env,
                    dev_gpu,
                    source,
                    direct_ptr,
                    direct_failed: false,
                    offload,
                    offload_failed: false,
                    phase: SendPhase::WaitCts {
                        timer: self.retry_timer(),
                    },
                },
            );
        }
        id
    }

    pub fn irecv(
        &mut self,
        buf: Loc,
        count: usize,
        dt: &Datatype,
        src: SrcSel,
        tag: TagSel,
        ctx: u16,
    ) -> ReqId {
        self.mpi_call_cost();
        self.progress();
        Self::check_host_bounds(&buf, count, dt);
        let sink = self.make_sink(&buf, count, dt);
        let capacity = sink.total_bytes();
        let direct_ptr = Self::contiguous_host_ptr(&buf, count, dt);
        // Cheap after the sink pulled the plan into the cache.
        let plan = dt.flat().plan(count);
        let layout_class = LayoutClass::of(plan.layout());
        // Offload: lower the layout to a bounded scatter descriptor. A
        // receiver whose layout has none (or whose sink is not host memory)
        // simply never grants the offload path — forced offload then falls
        // back to the staged pipeline at resolution.
        let mut offload = None;
        if self.scheme.offload_enabled() {
            if let Loc::Host(p) = &buf {
                offload = WireDescriptor::lower(&plan, self.cfg.offload_entry_budget)
                    .map(|d| (p.clone(), d));
            }
        }
        drop(plan);
        let id = self.alloc_req();
        self.recvs.insert(
            id,
            RecvState {
                src_sel: src,
                tag_sel: tag,
                ctx,
                capacity,
                sink,
                direct_ptr,
                offload,
                layout_class,
                phase: RecvPhase::Unmatched,
            },
        );
        // Try the unexpected queue first (FIFO), then stay posted.
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|u| env_matches(u.env(), ctx, src, tag))
        {
            let u = self.unexpected.remove(pos).unwrap();
            match u {
                Unexpected::Eager { env, data } => self.deliver_eager(id, env, data),
                Unexpected::Rts {
                    env,
                    total,
                    send_req,
                    direct_capable,
                    dev_gpu,
                    offload_entries,
                } => self.match_rts(
                    id,
                    env,
                    total,
                    send_req,
                    direct_capable,
                    dev_gpu,
                    offload_entries,
                ),
            }
        } else {
            self.posted.push(id);
        }
        id
    }

    // --- packet handling ----------------------------------------------------------

    fn deliver_eager(&mut self, recv_id: ReqId, env: Envelope, data: Vec<u8>) {
        let st = self.recvs.get_mut(&recv_id).expect("recv state missing");
        if data.len() > st.capacity {
            san::report_protocol(format!(
                "message truncated: {} bytes into a {}-byte receive",
                data.len(),
                st.capacity
            ));
            panic!(
                "message truncated: {} bytes into a {}-byte receive",
                data.len(),
                st.capacity
            );
        }
        st.sink.unpack_eager(&data);
        st.phase = RecvPhase::Done(RecvStatus {
            src: env.src,
            tag: env.tag,
            bytes: data.len(),
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn match_rts(
        &mut self,
        recv_id: ReqId,
        env: Envelope,
        total: usize,
        send_req: ReqId,
        direct_capable: bool,
        dev_gpu: Option<u32>,
        offload_entries: Option<u32>,
    ) {
        let st = self.recvs.get_mut(&recv_id).expect("recv state missing");
        if total > st.capacity {
            san::report_protocol(format!(
                "message truncated: {total} bytes into a {}-byte receive",
                st.capacity
            ));
            panic!(
                "message truncated: {total} bytes into a {}-byte receive",
                st.capacity
            );
        }
        if self.faulty {
            self.matched_rts.insert((env.src, send_req), recv_id);
        }
        // Feasibility of each rendezvous scheme, from what the RTS
        // advertised and what this receive posted; the policy choice among
        // the feasible ones belongs to the scheme layer.
        let device_ok = dev_gpu.is_some_and(|gpu| st.sink.device_gpu() == Some(gpu));
        let direct_ok = direct_capable && st.direct_ptr.is_some();
        let offload_ok = self.scheme.offload_peer(env.src)
            && offload_entries.is_some_and(|n| {
                st.offload.as_ref().is_some_and(|(_, d)| {
                    n as usize + d.entries().len() <= self.cfg.offload_entry_budget
                })
            });
        match self.scheme.resolve(device_ok, direct_ok, offload_ok, total) {
            // Device rendezvous: both buffers live on the *same physical
            // GPU* (the ranks share a node and its device). The sender
            // packs into a device tbuf and this rank scatters straight
            // from it — no host staging, no vbufs, no HCA.
            DataScheme::DeviceD2D => {
                st.phase = RecvPhase::DevWait {
                    env,
                    total,
                    send_req,
                };
                self.trace.proto.instant_now("cts_dev");
                self.nic.send_ctrl(
                    env.src,
                    Box::new(MpiPacket::CtsDev {
                        send_req,
                        recv_req: recv_id,
                    }),
                );
                return;
            }
            DataScheme::Direct => {
                let ptr = st
                    .direct_ptr
                    .clone()
                    .expect("direct resolved without a ptr");
                // R-PUT: register the user buffer (through the cache) and
                // hand its key over. Registration can fail under a
                // fault-injected pin limit; the transfer then degrades to
                // the staged path below.
                match self.reg_cache.acquire(
                    &self.nic,
                    &self.counters,
                    &self.trace,
                    &ptr.buf().clone(),
                ) {
                    Ok(key) => {
                        let timer = self.retry_timer();
                        let st = self.recvs.get_mut(&recv_id).expect("recv state missing");
                        st.phase = RecvPhase::WaitDirect {
                            my_key: key,
                            env,
                            total,
                            send_req,
                            timer,
                        };
                        self.trace.proto.instant_now("cts_direct");
                        self.nic.send_ctrl(
                            env.src,
                            Box::new(MpiPacket::CtsDirect {
                                send_req,
                                recv_req: recv_id,
                                key,
                                offset: ptr.offset(),
                                len: total,
                            }),
                        );
                        return;
                    }
                    Err(_) => {
                        note(&self.counters, &self.trace, "fallback.direct_to_staged");
                    }
                }
            }
            DataScheme::NicOffload => {
                let (ptr, desc) = st
                    .offload
                    .as_ref()
                    .expect("offload resolved without a desc");
                let (ptr, base) = (ptr.clone(), ptr.offset());
                // The received message may be shorter than the posted
                // receive: clip the scatter walk to its packed prefix.
                let scatter = desc.prefix(total).to_sg(base);
                match self.reg_cache.acquire(
                    &self.nic,
                    &self.counters,
                    &self.trace,
                    &ptr.buf().clone(),
                ) {
                    Ok(key) => {
                        let timer = self.retry_timer();
                        let st = self.recvs.get_mut(&recv_id).expect("recv state missing");
                        st.phase = RecvPhase::WaitOffload {
                            my_key: key,
                            scatter: scatter.clone(),
                            env,
                            total,
                            send_req,
                            timer,
                        };
                        self.trace.proto.instant_now("cts_offload");
                        self.nic.send_ctrl(
                            env.src,
                            Box::new(MpiPacket::CtsOffload {
                                send_req,
                                recv_req: recv_id,
                                key,
                                scatter,
                                total,
                            }),
                        );
                        return;
                    }
                    Err(_) => {
                        note(&self.counters, &self.trace, "fallback.offload_to_staged");
                    }
                }
            }
            DataScheme::Staged | DataScheme::ShmEager => {}
        }
        self.start_staged_recv(recv_id, env, total, send_req);
    }

    /// Set up the staged path for a matched RTS: choose the chunk size,
    /// begin the sink and grant (or defer) the CTS window. Also the landing
    /// point of the direct-to-staged fallback.
    fn start_staged_recv(&mut self, recv_id: ReqId, env: Envelope, total: usize, send_req: ReqId) {
        let st = self.recvs.get_mut(&recv_id).expect("recv state missing");
        // The receiver picks the chunk size (it sizes the granted slots);
        // the sender learns it from the CTS.
        let (chunk_size, tune_key) = match self.cfg.policy {
            ChunkPolicy::Fixed => (self.cfg.chunk_size, None),
            ChunkPolicy::Adaptive { .. } => {
                let key = TuneKey::new(total, st.layout_class);
                (self.tuner.choose(key), Some(key))
            }
        };
        if tune_key.is_some() {
            self.trace.chunk_size.gauge_now(chunk_size as i64);
        }
        let nchunks = total.div_ceil(chunk_size).max(1);
        st.sink.begin(chunk_size, total);
        st.phase = RecvPhase::Staged(
            StagedRecv {
                src: env.src,
                peer_send_req: send_req,
                chunk_size,
                nchunks,
                total,
                started: sim_core::now(),
                tune_key,
                cts_sent: false,
                deferred: false,
                slots: Vec::new(),
                arrived: BTreeMap::new(),
                absorbing: VecDeque::new(),
                next_chunk: 0,
                next_credit: 0,
                timer: None,
            },
            env,
        );
        san::proto_set(
            &invariants::xfer_scope(&self.prefix, env.src, send_req),
            "nchunks",
            nchunks as i64,
        );
        self.try_grant_cts(recv_id);
    }

    /// Send the deferred/initial CTS for a staged receive once at least one
    /// pool vbuf is available.
    /// Vbufs just returned to the pool: grant any matched staged receive
    /// whose CTS was deferred on an empty pool. Without this, a receive
    /// that found the pool drained would only be re-examined by its own
    /// `advance_recv` — and if nothing else is pending, the rank parks
    /// with no timer to wake it (deadlock on a clean fabric).
    fn grant_deferred_cts(&mut self) {
        if self.recv_pool.is_empty() {
            return;
        }
        // Sorted so the grant order is a function of request ids alone, not
        // of the HashMap's per-process iteration order (replay determinism).
        let mut deferred: Vec<ReqId> = self
            .recvs
            .iter()
            .filter_map(|(&id, st)| match &st.phase {
                RecvPhase::Staged(sr, _) if !sr.cts_sent => Some(id),
                _ => None,
            })
            .collect();
        deferred.sort_unstable();
        for id in deferred {
            self.try_grant_cts(id);
        }
    }

    fn try_grant_cts(&mut self, recv_id: ReqId) {
        let st = self.recvs.get_mut(&recv_id).expect("recv state missing");
        let RecvPhase::Staged(sr, _) = &mut st.phase else {
            return;
        };
        if sr.cts_sent {
            return;
        }
        if self.cfg.bug_deferred_cts && sr.deferred {
            // Reintroduced starvation bug: a CTS that was once deferred on
            // an empty pool is never re-examined, even after vbufs return.
            return;
        }
        if self.recv_pool.is_empty() {
            sr.deferred = true;
            return;
        }
        let want = self.cfg.window_slots.min(sr.nchunks).max(1);
        let take = want.min(self.recv_pool.len());
        sr.slots = self
            .recv_pool
            .drain(self.recv_pool.len() - take..)
            .collect();
        for _ in 0..take {
            san::pool_take(self.recv_pool_id);
        }
        sr.cts_sent = true;
        // The tuner's latency window opens at the grant: deferral time
        // waiting for pool vbufs says nothing about the chunk size.
        sr.started = sim_core::now();
        if self.faulty {
            sr.timer = Some(RetryTimer::new(&self.cfg.retry));
        }
        let descs: Vec<SlotDesc> = sr
            .slots
            .iter()
            .map(|v| SlotDesc {
                key: v.key,
                len: v.buf.len(),
            })
            .collect();
        let pkt = MpiPacket::Cts {
            send_req: sr.peer_send_req,
            recv_req: recv_id,
            chunk_size: sr.chunk_size,
            slots: descs,
        };
        let dst = sr.src;
        self.trace.proto.instant_now("cts");
        self.nic.send_ctrl(dst, Box::new(pkt));
    }

    /// A duplicate RTS arrived for an already-matched receive: the response
    /// (CTS, CTS-direct or CTS-offload) was evidently lost — re-send it
    /// from the live state. Grants are never duplicated; the same window
    /// travels again.
    fn resend_response(
        &mut self,
        recv_id: ReqId,
        direct_capable: bool,
        offload_entries: Option<u32>,
    ) {
        enum Action {
            None,
            FallBack,
            FallBackOffload,
            CtsDirect(usize, MpiPacket),
            CtsOffload(usize, MpiPacket),
            Cts(usize, MpiPacket),
        }
        let action = {
            let Some(st) = self.recvs.get_mut(&recv_id) else {
                return;
            };
            match &st.phase {
                RecvPhase::WaitDirect {
                    my_key,
                    env,
                    total,
                    send_req,
                    ..
                } => {
                    if direct_capable {
                        let offset = st
                            .direct_ptr
                            .as_ref()
                            .expect("direct receive without a direct pointer")
                            .offset();
                        Action::CtsDirect(
                            env.src,
                            MpiPacket::CtsDirect {
                                send_req: *send_req,
                                recv_req: recv_id,
                                key: *my_key,
                                offset,
                                len: *total,
                            },
                        )
                    } else {
                        // The sender stopped advertising the direct path
                        // (its registration failed and our DirectAbort was
                        // lost): fall back to staged ourselves.
                        Action::FallBack
                    }
                }
                RecvPhase::WaitOffload {
                    my_key,
                    scatter,
                    env,
                    total,
                    send_req,
                    ..
                } => {
                    if offload_entries.is_some() {
                        Action::CtsOffload(
                            env.src,
                            MpiPacket::CtsOffload {
                                send_req: *send_req,
                                recv_req: recv_id,
                                key: *my_key,
                                scatter: scatter.clone(),
                                total: *total,
                            },
                        )
                    } else {
                        // The sender stopped advertising the offload path
                        // (its registration failed and our OffloadAbort
                        // was lost): fall back to staged ourselves.
                        Action::FallBackOffload
                    }
                }
                RecvPhase::Staged(sr, _) if sr.cts_sent => {
                    let descs: Vec<SlotDesc> = sr
                        .slots
                        .iter()
                        .map(|v| SlotDesc {
                            key: v.key,
                            len: v.buf.len(),
                        })
                        .collect();
                    Action::Cts(
                        sr.src,
                        MpiPacket::Cts {
                            send_req: sr.peer_send_req,
                            recv_req: recv_id,
                            chunk_size: sr.chunk_size,
                            slots: descs,
                        },
                    )
                }
                // CTS still deferred on pool back-pressure (it will go out
                // with fresh slots), or the receive already finished.
                _ => Action::None,
            }
        };
        match action {
            Action::None => {}
            Action::FallBack => self.direct_to_staged(recv_id),
            Action::FallBackOffload => self.offload_to_staged(recv_id),
            Action::CtsDirect(dst, pkt) => {
                note(&self.counters, &self.trace, "retry.cts_direct");
                self.nic.send_ctrl(dst, Box::new(pkt));
            }
            Action::CtsOffload(dst, pkt) => {
                note(&self.counters, &self.trace, "retry.cts_offload");
                self.nic.send_ctrl(dst, Box::new(pkt));
            }
            Action::Cts(dst, pkt) => {
                note(&self.counters, &self.trace, "retry.cts");
                self.nic.send_ctrl(dst, Box::new(pkt));
            }
        }
    }

    /// Direct R-PUT abandoned (sender could not register): release our
    /// registration and fall back to the staged path.
    fn direct_to_staged(&mut self, recv_id: ReqId) {
        let buf_id;
        let (env, total, send_req);
        {
            let Some(st) = self.recvs.get_mut(&recv_id) else {
                return;
            };
            let RecvPhase::WaitDirect {
                env: e,
                total: t,
                send_req: s,
                ..
            } = &st.phase
            else {
                return;
            };
            (env, total, send_req) = (*e, *t, *s);
            buf_id = st.direct_ptr.as_ref().map(|p| p.buf().id());
        }
        if let Some(id) = buf_id {
            self.reg_cache.release(id);
        }
        note(&self.counters, &self.trace, "fallback.direct_to_staged");
        self.start_staged_recv(recv_id, env, total, send_req);
    }

    /// Offload transfer abandoned (sender could not register): release our
    /// registration and fall back to the staged path.
    fn offload_to_staged(&mut self, recv_id: ReqId) {
        let buf_id;
        let (env, total, send_req);
        {
            let Some(st) = self.recvs.get_mut(&recv_id) else {
                return;
            };
            let RecvPhase::WaitOffload {
                env: e,
                total: t,
                send_req: s,
                ..
            } = &st.phase
            else {
                return;
            };
            (env, total, send_req) = (*e, *t, *s);
            buf_id = st.offload.as_ref().map(|(p, _)| p.buf().id());
        }
        if let Some(id) = buf_id {
            self.reg_cache.release(id);
        }
        note(&self.counters, &self.trace, "fallback.offload_to_staged");
        self.start_staged_recv(recv_id, env, total, send_req);
    }

    fn handle_packet(&mut self, src: usize, pkt: MpiPacket) {
        sim_core::sleep(SimDur::from_nanos(self.cfg.cpu.handle_pkt_ns));
        match pkt {
            MpiPacket::Eager { env, data } => {
                let limit = self.scheme.eager_limit(src);
                if data.len() > limit {
                    san::report_protocol(format!(
                        "eager payload of {} bytes exceeds the eager limit of {limit} bytes",
                        data.len(),
                    ));
                }
                if let Some(recv_id) = self.find_posted(&env) {
                    self.deliver_eager(recv_id, env, data);
                } else {
                    self.unexpected.push_back(Unexpected::Eager { env, data });
                }
            }
            MpiPacket::Rts {
                env,
                total,
                send_req,
                direct_capable,
                dev_gpu,
                offload_entries,
            } => {
                if self.faulty {
                    // Retransmit tolerance: an RTS we have already seen must
                    // not match (or enqueue) twice.
                    if self.done_rts.contains(&(env.src, send_req)) {
                        note(&self.counters, &self.trace, "dup.rts");
                        return;
                    }
                    if let Some(&recv_id) = self.matched_rts.get(&(env.src, send_req)) {
                        note(&self.counters, &self.trace, "dup.rts");
                        self.resend_response(recv_id, direct_capable, offload_entries);
                        return;
                    }
                    let queued = self.unexpected.iter().any(|u| {
                        matches!(u, Unexpected::Rts { env: e, send_req: s, .. }
                                 if e.src == env.src && *s == send_req)
                    });
                    if queued {
                        note(&self.counters, &self.trace, "dup.rts");
                        return;
                    }
                }
                if let Some(recv_id) = self.find_posted(&env) {
                    self.match_rts(
                        recv_id,
                        env,
                        total,
                        send_req,
                        direct_capable,
                        dev_gpu,
                        offload_entries,
                    );
                } else {
                    self.unexpected.push_back(Unexpected::Rts {
                        env,
                        total,
                        send_req,
                        direct_capable,
                        dev_gpu,
                        offload_entries,
                    });
                }
            }
            MpiPacket::Cts {
                send_req,
                recv_req,
                chunk_size,
                slots,
            } => {
                let Some(st) = self.sends.get_mut(&send_req) else {
                    if self.faulty {
                        note(&self.counters, &self.trace, "dup.cts");
                        return;
                    }
                    san::report_protocol(format!(
                        "CTS for unknown send request #{send_req} (never posted or already reaped)"
                    ));
                    panic!("CTS for unknown send");
                };
                if !matches!(st.phase, SendPhase::WaitCts { .. }) {
                    if self.faulty {
                        // The original CTS made it after all; this is the
                        // re-sent copy racing behind it.
                        note(&self.counters, &self.trace, "dup.cts");
                        return;
                    }
                    san::report_protocol(format!(
                        "CTS for send request #{send_req} that is not awaiting CTS                          (duplicate or out-of-order CTS)"
                    ));
                    panic!("CTS for a send not in WaitCts phase");
                }
                let timer = self.faulty.then(|| RetryTimer::new(&self.cfg.retry));
                let st = self.sends.get_mut(&send_req).expect("CTS for unknown send");
                st.source.begin(chunk_size);
                let nchunks = st.total.div_ceil(chunk_size).max(1);
                st.phase = SendPhase::Staged(StagedSend {
                    dst: st.dst,
                    peer_recv_req: recv_req,
                    chunk_size,
                    nchunks,
                    slots: slots
                        .into_iter()
                        .map(|desc| SlotState {
                            desc,
                            free: true,
                            occupant: None,
                            fin_sent: false,
                        })
                        .collect(),
                    next_request: 0,
                    next_send: 0,
                    local: VecDeque::new(),
                    inflight: Vec::new(),
                    timer,
                });
            }
            MpiPacket::CtsDirect {
                send_req,
                recv_req,
                key,
                offset,
                len,
            } => {
                let Some(st) = self.sends.get_mut(&send_req) else {
                    if self.faulty {
                        note(&self.counters, &self.trace, "dup.cts");
                        // If the send finished and was reaped, the receiver
                        // must have missed the FinDirect — re-announce.
                        if let Some(&SendRecord::Direct { dst, recv_req }) =
                            self.completed_sends.get(&send_req)
                        {
                            note(&self.counters, &self.trace, "retry.fin_direct");
                            self.nic
                                .send_ctrl(dst, Box::new(MpiPacket::FinDirect { recv_req }));
                        }
                        return;
                    }
                    san::report_protocol(format!(
                        "direct CTS for unknown send request #{send_req}                          (never posted or already reaped)"
                    ));
                    panic!("CTS for unknown send");
                };
                match &st.phase {
                    SendPhase::WaitCts { .. } => {}
                    SendPhase::Done if self.faulty => {
                        // Completed but not yet reaped: re-announce.
                        note(&self.counters, &self.trace, "dup.cts");
                        note(&self.counters, &self.trace, "retry.fin_direct");
                        let dst = st.dst;
                        self.nic
                            .send_ctrl(dst, Box::new(MpiPacket::FinDirect { recv_req }));
                        return;
                    }
                    _ if self.faulty => {
                        note(&self.counters, &self.trace, "dup.cts");
                        return;
                    }
                    _ => {
                        san::report_protocol(format!(
                            "direct CTS for send request #{send_req} that is not awaiting CTS                          (duplicate or out-of-order CTS)"
                        ));
                        panic!("CTS for a send not in WaitCts phase");
                    }
                }
                if st.direct_failed {
                    // Our registration failed before and the abort was
                    // evidently lost: repeat it.
                    note(&self.counters, &self.trace, "retry.direct_abort");
                    if let SendPhase::WaitCts { timer: Some(t) } = &mut st.phase {
                        t.feed();
                    }
                    let dst = st.dst;
                    self.nic
                        .send_ctrl(dst, Box::new(MpiPacket::DirectAbort { recv_req, send_req }));
                    return;
                }
                let ptr = st
                    .direct_ptr
                    .clone()
                    .expect("direct CTS for a non-contiguous send");
                assert_eq!(len, st.total);
                let buf = ptr.buf().clone();
                match self
                    .reg_cache
                    .acquire(&self.nic, &self.counters, &self.trace, &buf)
                {
                    Err(_) => {
                        // Pin limit: abandon the R-PUT; the receiver falls
                        // back to granting a staged window.
                        note(&self.counters, &self.trace, "fallback.direct_abort");
                        let st = self.sends.get_mut(&send_req).expect("CTS for unknown send");
                        st.direct_failed = true;
                        if let SendPhase::WaitCts { timer: Some(t) } = &mut st.phase {
                            t.feed();
                        }
                        let dst = st.dst;
                        self.nic.send_ctrl(
                            dst,
                            Box::new(MpiPacket::DirectAbort { recv_req, send_req }),
                        );
                    }
                    Ok(_) => {
                        let st = self.sends.get_mut(&send_req).expect("CTS for unknown send");
                        let rdma = self
                            .scheme
                            .transport(st.dst)
                            .write(key, offset, &ptr, st.total);
                        // On a reliable fabric the FIN departs right behind
                        // the write (same engine, ordered); under faults it
                        // waits for the CQE so a failed write is never
                        // announced.
                        let fin_now = !self.faulty;
                        if fin_now {
                            self.nic
                                .send_ctrl(st.dst, Box::new(MpiPacket::FinDirect { recv_req }));
                        }
                        st.phase = SendPhase::Direct(DirectSend {
                            rdma,
                            peer_key: key,
                            peer_off: offset,
                            recv_req,
                            ptr,
                            fin_sent: fin_now,
                            attempts: 1,
                        });
                    }
                }
            }
            MpiPacket::CtsOffload {
                send_req,
                recv_req,
                key,
                scatter,
                total,
            } => {
                let Some(st) = self.sends.get_mut(&send_req) else {
                    if self.faulty {
                        note(&self.counters, &self.trace, "dup.cts");
                        // If the send finished and was reaped, the receiver
                        // must have missed the FinOffload — re-announce.
                        if let Some(&SendRecord::Offload { dst, recv_req }) =
                            self.completed_sends.get(&send_req)
                        {
                            note(&self.counters, &self.trace, "retry.fin_offload");
                            self.nic
                                .send_ctrl(dst, Box::new(MpiPacket::FinOffload { recv_req }));
                        }
                        return;
                    }
                    san::report_protocol(format!(
                        "offload CTS for unknown send request #{send_req} \
                         (never posted or already reaped)"
                    ));
                    panic!("CTS for unknown send");
                };
                match &st.phase {
                    SendPhase::WaitCts { .. } => {}
                    SendPhase::Done if self.faulty => {
                        // Completed but not yet reaped: re-announce.
                        note(&self.counters, &self.trace, "dup.cts");
                        note(&self.counters, &self.trace, "retry.fin_offload");
                        let dst = st.dst;
                        self.nic
                            .send_ctrl(dst, Box::new(MpiPacket::FinOffload { recv_req }));
                        return;
                    }
                    _ if self.faulty => {
                        note(&self.counters, &self.trace, "dup.cts");
                        return;
                    }
                    _ => {
                        san::report_protocol(format!(
                            "offload CTS for send request #{send_req} that is not awaiting \
                             CTS (duplicate or out-of-order CTS)"
                        ));
                        panic!("CTS for a send not in WaitCts phase");
                    }
                }
                if st.offload_failed {
                    // Our registration failed before and the abort was
                    // evidently lost: repeat it.
                    note(&self.counters, &self.trace, "retry.offload_abort");
                    if let SendPhase::WaitCts { timer: Some(t) } = &mut st.phase {
                        t.feed();
                    }
                    let dst = st.dst;
                    self.nic.send_ctrl(
                        dst,
                        Box::new(MpiPacket::OffloadAbort { recv_req, send_req }),
                    );
                    return;
                }
                let (ptr, desc) = st
                    .offload
                    .as_ref()
                    .expect("offload CTS for a send that never advertised it");
                let (ptr, gather) = (ptr.clone(), desc.to_sg(ptr.offset()));
                assert_eq!(total, st.total, "offload CTS grants a different size");
                let buf = ptr.buf().clone();
                match self
                    .reg_cache
                    .acquire(&self.nic, &self.counters, &self.trace, &buf)
                {
                    Err(_) => {
                        // Pin limit: abandon the offload; the receiver falls
                        // back to granting a staged window.
                        note(&self.counters, &self.trace, "fallback.offload_abort");
                        let st = self.sends.get_mut(&send_req).expect("CTS for unknown send");
                        st.offload_failed = true;
                        if let SendPhase::WaitCts { timer: Some(t) } = &mut st.phase {
                            t.feed();
                        }
                        let dst = st.dst;
                        self.nic.send_ctrl(
                            dst,
                            Box::new(MpiPacket::OffloadAbort { recv_req, send_req }),
                        );
                    }
                    Ok(_) => {
                        let st = self.sends.get_mut(&send_req).expect("CTS for unknown send");
                        let rdma = self
                            .scheme
                            .transport(st.dst)
                            .write_sg(key, &ptr, &gather, &scatter);
                        // On a reliable fabric the FIN departs right behind
                        // the write (same engine, ordered); under faults it
                        // waits for the CQE so a failed write is never
                        // announced.
                        let fin_now = !self.faulty;
                        if fin_now {
                            self.nic
                                .send_ctrl(st.dst, Box::new(MpiPacket::FinOffload { recv_req }));
                        }
                        st.phase = SendPhase::Offload(OffloadSend {
                            rdma,
                            peer_key: key,
                            ptr,
                            gather,
                            scatter,
                            recv_req,
                            fin_sent: fin_now,
                            attempts: 1,
                        });
                    }
                }
            }
            MpiPacket::Fin {
                recv_req,
                chunk_idx,
                slot,
                bytes,
            } => {
                let Some(st) = self.recvs.get_mut(&recv_req) else {
                    if self.faulty {
                        note(&self.counters, &self.trace, "dup.fin");
                        // Receive finished and was reaped: the sender is
                        // chasing a lost credit — re-credit from the record.
                        if let Some(&(peer, send_req)) = self.completed_recvs.get(&recv_req) {
                            note(&self.counters, &self.trace, "retry.credit");
                            self.nic.send_ctrl(
                                peer,
                                Box::new(MpiPacket::Credit {
                                    send_req,
                                    slot,
                                    chunk_idx,
                                }),
                            );
                        }
                        return;
                    }
                    san::report_protocol(format!("FIN for unknown receive request #{recv_req}"));
                    panic!("FIN for unknown recv");
                };
                let RecvPhase::Staged(sr, _) = &mut st.phase else {
                    if self.faulty {
                        note(&self.counters, &self.trace, "dup.fin");
                        // Same as above, for a finished-but-unreaped receive.
                        if let Some(&(peer, send_req)) = self.completed_recvs.get(&recv_req) {
                            note(&self.counters, &self.trace, "retry.credit");
                            self.nic.send_ctrl(
                                peer,
                                Box::new(MpiPacket::Credit {
                                    send_req,
                                    slot,
                                    chunk_idx,
                                }),
                            );
                        }
                        return;
                    }
                    san::report_protocol(format!(
                        "FIN for receive request #{recv_req} that is not in the staged                          rendezvous phase (protocol state machine violation)"
                    ));
                    panic!("FIN for a receive not in staged phase")
                };
                if slot >= sr.slots.len() {
                    san::report_protocol(format!(
                        "FIN names slot {slot} but only {} slot(s) were granted",
                        sr.slots.len()
                    ));
                    panic!("FIN for a nonexistent slot");
                }
                if chunk_idx < sr.next_chunk {
                    // Already fed to the sink: a retransmitted FIN.
                    note(&self.counters, &self.trace, "dup.fin");
                    if chunk_idx < sr.next_credit {
                        // ...and already credited, so the credit was lost.
                        note(&self.counters, &self.trace, "retry.credit");
                        let peer = sr.src;
                        let send_req = sr.peer_send_req;
                        self.nic.send_ctrl(
                            peer,
                            Box::new(MpiPacket::Credit {
                                send_req,
                                slot,
                                chunk_idx,
                            }),
                        );
                    }
                    return;
                }
                match sr.arrived.entry(chunk_idx) {
                    std::collections::btree_map::Entry::Occupied(_) => {
                        note(&self.counters, &self.trace, "dup.fin");
                    }
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert((slot, bytes));
                        if let Some(t) = &mut sr.timer {
                            t.feed();
                        }
                    }
                }
            }
            MpiPacket::FinDirect { recv_req } => {
                let Some(st) = self.recvs.get_mut(&recv_req) else {
                    if self.faulty {
                        note(&self.counters, &self.trace, "dup.fin_direct");
                        return;
                    }
                    san::report_protocol(format!(
                        "FIN-direct for unknown receive request #{recv_req}"
                    ));
                    panic!("FIN for unknown recv");
                };
                let RecvPhase::WaitDirect {
                    env,
                    total,
                    send_req,
                    ..
                } = &st.phase
                else {
                    if self.faulty {
                        note(&self.counters, &self.trace, "dup.fin_direct");
                        return;
                    }
                    san::report_protocol(format!(
                        "FIN-direct for receive request #{recv_req} that is not in the                          direct rendezvous phase (protocol state machine violation)"
                    ));
                    panic!("FIN-direct for a receive not in direct phase")
                };
                let (env, total, send_req) = (*env, *total, *send_req);
                let buf_id = st.direct_ptr.as_ref().map(|p| p.buf().id());
                st.phase = RecvPhase::Done(RecvStatus {
                    src: env.src,
                    tag: env.tag,
                    bytes: total,
                });
                // The registration stays cached but becomes evictable.
                if let Some(id) = buf_id {
                    self.reg_cache.release(id);
                }
                if self.faulty {
                    self.matched_rts.remove(&(env.src, send_req));
                    self.done_rts.insert((env.src, send_req), ());
                }
            }
            MpiPacket::FinOffload { recv_req } => {
                let Some(st) = self.recvs.get_mut(&recv_req) else {
                    if self.faulty {
                        note(&self.counters, &self.trace, "dup.fin_offload");
                        return;
                    }
                    san::report_protocol(format!(
                        "FIN-offload for unknown receive request #{recv_req}"
                    ));
                    panic!("FIN for unknown recv");
                };
                let RecvPhase::WaitOffload {
                    env,
                    total,
                    send_req,
                    ..
                } = &st.phase
                else {
                    if self.faulty {
                        note(&self.counters, &self.trace, "dup.fin_offload");
                        return;
                    }
                    san::report_protocol(format!(
                        "FIN-offload for receive request #{recv_req} that is not in the \
                         offload rendezvous phase (protocol state machine violation)"
                    ));
                    panic!("FIN-offload for a receive not in offload phase")
                };
                let (env, total, send_req) = (*env, *total, *send_req);
                let buf_id = st.offload.as_ref().map(|(p, _)| p.buf().id());
                st.phase = RecvPhase::Done(RecvStatus {
                    src: env.src,
                    tag: env.tag,
                    bytes: total,
                });
                // The registration stays cached but becomes evictable.
                if let Some(id) = buf_id {
                    self.reg_cache.release(id);
                }
                if self.faulty {
                    self.matched_rts.remove(&(env.src, send_req));
                    self.done_rts.insert((env.src, send_req), ());
                }
            }
            MpiPacket::Credit {
                send_req,
                slot,
                chunk_idx,
            } => {
                // A send completes once its last RDMA write is on the wire;
                // credits for the tail chunks may still be in flight when
                // the request is reaped. They gate nothing anymore: drop.
                if let Some(st) = self.sends.get_mut(&send_req) {
                    if let SendPhase::Staged(ss) = &mut st.phase {
                        if slot >= ss.slots.len() {
                            san::report_protocol(format!(
                                "credit names slot {slot} but only {} slot(s) were granted",
                                ss.slots.len()
                            ));
                            panic!("credit for a nonexistent slot");
                        }
                        let s = &mut ss.slots[slot];
                        if !s.free && s.occupant == Some(chunk_idx) {
                            s.free = true;
                            san::proto_event(
                                &invariants::xfer_scope(&self.prefix, self.rank, send_req),
                                "credits_recv",
                                1,
                            );
                            if let Some(t) = &mut ss.timer {
                                t.feed();
                            }
                        } else {
                            // Duplicate or stale credit. Freeing the slot
                            // here would overflow flow control (the sender
                            // could overwrite data the receiver has not
                            // absorbed), so it is ignored in *every*
                            // sanitizer mode.
                            note(&self.counters, &self.trace, "dup.credit");
                            if !self.faulty {
                                san::report_protocol(format!(
                                    "credit for slot {slot} which is already free                                  (flow-control overflow: duplicate credit)"
                                ));
                            }
                        }
                    }
                }
            }
            MpiPacket::FinNack {
                send_req,
                next_needed,
            } => {
                // The receiver is missing FINs. For a live staged send,
                // re-announce every busy (uncredited) slot: dup FINs for
                // already-credited chunks make the receiver re-credit,
                // which also recovers lost credits. For a completed send,
                // reconstruct the FINs of the final window from the record
                // (the receiver's slots still hold exactly those chunks —
                // overwriting a slot requires its occupant's credit).
                let mut live = false;
                if let Some(st) = self.sends.get_mut(&send_req) {
                    if let SendPhase::Staged(ss) = &mut st.phase {
                        live = true;
                        let total = st.total;
                        for (slot_idx, s) in ss.slots.iter().enumerate() {
                            if s.free || !s.fin_sent {
                                continue;
                            }
                            let Some(c) = s.occupant else { continue };
                            let len = ss.chunk_size.min(total - c * ss.chunk_size);
                            note(&self.counters, &self.trace, "retry.fin");
                            self.nic.send_ctrl(
                                ss.dst,
                                Box::new(MpiPacket::Fin {
                                    recv_req: ss.peer_recv_req,
                                    chunk_idx: c,
                                    slot: slot_idx,
                                    bytes: len,
                                }),
                            );
                        }
                    }
                }
                if !live {
                    if let Some(&SendRecord::Staged {
                        dst,
                        peer_recv_req,
                        chunk_size,
                        nchunks,
                        nslots,
                        total,
                    }) = self.completed_sends.get(&send_req)
                    {
                        let hi = (next_needed + nslots).min(nchunks);
                        for c in next_needed..hi {
                            let len = chunk_size.min(total - c * chunk_size);
                            note(&self.counters, &self.trace, "retry.fin");
                            self.nic.send_ctrl(
                                dst,
                                Box::new(MpiPacket::Fin {
                                    recv_req: peer_recv_req,
                                    chunk_idx: c,
                                    slot: c % nslots,
                                    bytes: len,
                                }),
                            );
                        }
                    }
                }
            }
            MpiPacket::DirectAbort { recv_req, send_req } => {
                let _ = send_req;
                let falls_back = self
                    .recvs
                    .get(&recv_req)
                    .is_some_and(|st| matches!(st.phase, RecvPhase::WaitDirect { .. }));
                if falls_back {
                    self.direct_to_staged(recv_req);
                } else {
                    // Already fell back (duplicate abort) or finished.
                    note(&self.counters, &self.trace, "dup.direct_abort");
                }
            }
            MpiPacket::OffloadAbort { recv_req, send_req } => {
                let _ = send_req;
                let falls_back = self
                    .recvs
                    .get(&recv_req)
                    .is_some_and(|st| matches!(st.phase, RecvPhase::WaitOffload { .. }));
                if falls_back {
                    self.offload_to_staged(recv_req);
                } else {
                    // Already fell back (duplicate abort) or finished.
                    note(&self.counters, &self.trace, "dup.offload_abort");
                }
            }
            MpiPacket::CtsDev { send_req, recv_req } => {
                // Device-path control travels the intra-node shm channel,
                // which never drops or reorders — protocol violations stay
                // hard panics even on fault-injecting fabrics.
                let Some(st) = self.sends.get_mut(&send_req) else {
                    san::report_protocol(format!(
                        "device CTS for unknown send request #{send_req}"
                    ));
                    panic!("CtsDev for unknown send");
                };
                if !matches!(st.phase, SendPhase::WaitCts { .. }) {
                    san::report_protocol(format!(
                        "device CTS for send request #{send_req} that is not awaiting CTS"
                    ));
                    panic!("CtsDev for a send not in WaitCts phase");
                }
                let (ptr, pack) = st
                    .source
                    .stage_device()
                    .expect("device CTS for a send without a device source");
                // The packed device tbuf is held until the CREDIT-dev frees
                // it; account it like a staging-pool buffer.
                san::pool_take(self.dev_tbuf_id);
                let dst = st.dst;
                let total = st.total;
                // The FIN-dev goes out immediately: the pack completion
                // rides inside it, so the receiver's unpack stream orders
                // itself after the pack (simulated CUDA IPC event).
                self.trace.proto.instant_now("fin_dev");
                self.nic.send_ctrl(
                    dst,
                    Box::new(MpiPacket::FinDev {
                        recv_req,
                        ptr,
                        total,
                        ready: pack.clone(),
                    }),
                );
                let st = self.sends.get_mut(&send_req).expect("send state missing");
                st.phase = SendPhase::DevWaitCredit { pack };
            }
            MpiPacket::FinDev {
                recv_req,
                ptr,
                total,
                ready,
            } => {
                let Some(st) = self.recvs.get_mut(&recv_req) else {
                    san::report_protocol(format!(
                        "device FIN for unknown receive request #{recv_req}"
                    ));
                    panic!("FinDev for unknown recv");
                };
                let RecvPhase::DevWait {
                    env,
                    total: expected,
                    send_req,
                } = &st.phase
                else {
                    san::report_protocol(format!(
                        "device FIN for receive request #{recv_req} that is not in the \
                         device rendezvous phase (protocol state machine violation)"
                    ));
                    panic!("FinDev for a receive not in device phase");
                };
                assert_eq!(total, *expected, "device FIN announces a different size");
                let (env, send_req) = (*env, *send_req);
                let comp = st
                    .sink
                    .absorb_device(ptr, total, &ready)
                    .expect("device FIN for a sink without device support");
                st.phase = RecvPhase::DevAbsorb {
                    comp,
                    env,
                    total,
                    send_req,
                };
            }
            MpiPacket::CreditDev { send_req } => {
                let Some(st) = self.sends.get_mut(&send_req) else {
                    san::report_protocol(format!(
                        "device credit for unknown send request #{send_req}"
                    ));
                    panic!("CreditDev for unknown send");
                };
                if !matches!(st.phase, SendPhase::DevWaitCredit { .. }) {
                    san::report_protocol(format!(
                        "device credit for send request #{send_req} that is not awaiting one"
                    ));
                    panic!("CreditDev for a send not in DevWaitCredit phase");
                }
                san::pool_put(self.dev_tbuf_id);
                st.phase = SendPhase::Done;
            }
        }
    }

    fn find_posted(&mut self, env: &Envelope) -> Option<ReqId> {
        let pos = self.posted.iter().position(|id| {
            let r = &self.recvs[id];
            matches!(r.phase, RecvPhase::Unmatched) && env_matches(env, r.ctx, r.src_sel, r.tag_sel)
        })?;
        Some(self.posted.remove(pos))
    }

    // --- progress -------------------------------------------------------------------

    /// One full progress pass: drain packets, advance all state machines.
    pub fn progress(&mut self) {
        // Drain the NIC mailbox.
        while let Some(pkt) = self.nic.mailbox().try_recv() {
            let src = pkt.src;
            let payload = pkt
                .payload
                .downcast::<MpiPacket>()
                .expect("non-MPI packet in MPI mailbox");
            self.handle_packet(src, *payload);
        }
        // Advance sends. Sorted: HashMap iteration order differs between
        // processes (per-instance hash seeds), and replay determinism
        // requires the advance order to be a pure function of request ids.
        let mut send_ids: Vec<ReqId> = self.sends.keys().copied().collect();
        send_ids.sort_unstable();
        for id in send_ids {
            self.advance_send(id);
        }
        // Advance receives (sorted, as above).
        let mut recv_ids: Vec<ReqId> = self.recvs.keys().copied().collect();
        recv_ids.sort_unstable();
        for id in recv_ids {
            self.advance_recv(id);
        }
        // Sample the vbuf-pool gauges, on change only.
        let cur = (self.send_pool.len(), self.recv_pool.len());
        if cur != self.last_pools {
            self.last_pools = cur;
            self.trace.send_pool.gauge_now(cur.0 as i64);
            self.trace.recv_pool.gauge_now(cur.1 as i64);
        }
    }

    fn advance_send(&mut self, id: ReqId) {
        let Some(st) = self.sends.get_mut(&id) else {
            return;
        };
        let mut failed: Option<MpiError> = None;
        match &mut st.phase {
            SendPhase::Done | SendPhase::Failed(_) => {}
            // Nothing to drive: the receiver reads the device tbuf and its
            // credit arrives through the mailbox.
            SendPhase::DevWaitCredit { .. } => {}
            SendPhase::WaitCts { timer } => {
                // Only armed on faulty fabrics: retransmit the RTS.
                if let Some(t) = timer {
                    if t.expired() {
                        if t.bump(self.cfg.retry.max_retries) {
                            note(&self.counters, &self.trace, "retry.rts");
                            let direct_capable = st.direct_ptr.is_some() && !st.direct_failed;
                            let offload_entries = if st.offload_failed {
                                None
                            } else {
                                st.offload.as_ref().map(|(_, d)| d.entries().len() as u32)
                            };
                            self.nic.send_ctrl(
                                st.dst,
                                Box::new(MpiPacket::Rts {
                                    env: st.env,
                                    total: st.total,
                                    send_req: id,
                                    direct_capable,
                                    dev_gpu: st.dev_gpu,
                                    offload_entries,
                                }),
                            );
                        } else {
                            failed = Some(MpiError::RetriesExhausted {
                                op: "rts",
                                peer: st.dst,
                                attempts: t.attempts,
                            });
                        }
                    }
                }
            }
            SendPhase::Direct(d) => {
                if d.rdma.poll() {
                    if d.rdma.is_error() {
                        if d.attempts > self.cfg.retry.max_retries {
                            failed = Some(MpiError::RetriesExhausted {
                                op: "rdma_direct",
                                peer: st.dst,
                                attempts: d.attempts,
                            });
                        } else {
                            d.attempts += 1;
                            note(&self.counters, &self.trace, "retry.rdma_direct");
                            d.rdma = self
                                .scheme
                                .transport(st.dst)
                                .write(d.peer_key, d.peer_off, &d.ptr, st.total);
                        }
                    } else {
                        self.trace.rdma.comp_span(
                            self.scheme.transport(st.dst).name(),
                            None,
                            &d.rdma,
                        );
                        if !d.fin_sent {
                            self.nic.send_ctrl(
                                st.dst,
                                Box::new(MpiPacket::FinDirect {
                                    recv_req: d.recv_req,
                                }),
                            );
                        }
                        let buf_id = d.ptr.buf().id();
                        let rec = SendRecord::Direct {
                            dst: st.dst,
                            recv_req: d.recv_req,
                        };
                        st.phase = SendPhase::Done;
                        self.reg_cache.release(buf_id);
                        if self.faulty {
                            self.completed_sends.insert(id, rec);
                        }
                    }
                }
            }
            SendPhase::Offload(o) => {
                if o.rdma.poll() {
                    if o.rdma.is_error() {
                        // A failed descriptor fetch surfaces as an error CQE
                        // and retries exactly like a failed RDMA write.
                        if o.attempts > self.cfg.retry.max_retries {
                            failed = Some(MpiError::RetriesExhausted {
                                op: "offload_sg",
                                peer: st.dst,
                                attempts: o.attempts,
                            });
                        } else {
                            o.attempts += 1;
                            note(&self.counters, &self.trace, "retry.offload_sg");
                            o.rdma = self
                                .scheme
                                .transport(st.dst)
                                .write_sg(o.peer_key, &o.ptr, &o.gather, &o.scatter);
                        }
                    } else {
                        self.trace.rdma.comp_span("offload", None, &o.rdma);
                        if !o.fin_sent {
                            self.nic.send_ctrl(
                                st.dst,
                                Box::new(MpiPacket::FinOffload {
                                    recv_req: o.recv_req,
                                }),
                            );
                        }
                        let buf_id = o.ptr.buf().id();
                        let rec = SendRecord::Offload {
                            dst: st.dst,
                            recv_req: o.recv_req,
                        };
                        st.phase = SendPhase::Done;
                        self.reg_cache.release(buf_id);
                        if self.faulty {
                            self.completed_sends.insert(id, rec);
                        }
                    }
                }
            }
            SendPhase::Staged(ss) => {
                let total = st.total;
                // 1. Request staging of upcoming chunks while vbufs and
                //    window room are available.
                while ss.next_request < ss.nchunks
                    && ss.local.len() + ss.inflight.len() < ss.slots.len()
                {
                    let Some(vbuf) = self.send_pool.pop() else {
                        break;
                    };
                    san::pool_take(self.send_pool_id);
                    let i = ss.next_request;
                    let off = i * ss.chunk_size;
                    let len = ss.chunk_size.min(total - off);
                    st.source.request_chunk(i, vbuf.buf.base(), len);
                    ss.local.push_back((i, vbuf));
                    ss.next_request += 1;
                }
                // 2. Drive async staging.
                st.source.poll();
                // 3. RDMA-write ready chunks, in order, into free slots.
                while let Some(&(i, _)) = ss.local.front() {
                    debug_assert_eq!(i, ss.next_send);
                    if !st.source.chunk_ready(i) {
                        break;
                    }
                    let slot = i % ss.slots.len();
                    if !ss.slots[slot].free {
                        break;
                    }
                    let (_, vbuf) = ss.local.pop_front().unwrap();
                    let off = i * ss.chunk_size;
                    let len = ss.chunk_size.min(total - off);
                    assert!(
                        len <= ss.slots[slot].desc.len,
                        "chunk larger than the granted vbuf slot"
                    );
                    ss.slots[slot].free = false;
                    ss.slots[slot].occupant = Some(i);
                    let comp = self.scheme.transport(ss.dst).write(
                        ss.slots[slot].desc.key,
                        0,
                        &vbuf.buf.base(),
                        len,
                    );
                    if self.faulty {
                        // The FIN waits for the CQE: a failed write must
                        // never be announced.
                        ss.slots[slot].fin_sent = false;
                    } else {
                        self.nic.send_ctrl(
                            ss.dst,
                            Box::new(MpiPacket::Fin {
                                recv_req: ss.peer_recv_req,
                                chunk_idx: i,
                                slot,
                                bytes: len,
                            }),
                        );
                        ss.slots[slot].fin_sent = true;
                        san::proto_event(
                            &invariants::xfer_scope(&self.prefix, self.rank, id),
                            "chunks_finned",
                            1,
                        );
                    }
                    ss.inflight.push(InflightChunk {
                        comp,
                        vbuf,
                        chunk: i,
                        slot,
                        len,
                        attempts: 1,
                    });
                    ss.next_send += 1;
                    if let Some(t) = &mut ss.timer {
                        t.feed();
                    }
                }
                // 4. Reap finished RDMA writes: on success announce (if
                //    deferred) and return the vbuf; on an error CQE re-issue
                //    the write from the still-held vbuf.
                let mut i = 0;
                while i < ss.inflight.len() {
                    if !ss.inflight[i].comp.poll() {
                        i += 1;
                        continue;
                    }
                    if ss.inflight[i].comp.is_error() {
                        let c = &mut ss.inflight[i];
                        if c.attempts > self.cfg.retry.max_retries {
                            failed = Some(MpiError::RetriesExhausted {
                                op: "chunk_rdma",
                                peer: ss.dst,
                                attempts: c.attempts,
                            });
                            break;
                        }
                        c.attempts += 1;
                        note(&self.counters, &self.trace, "retry.chunk_rdma");
                        c.comp = self.scheme.transport(ss.dst).write(
                            ss.slots[c.slot].desc.key,
                            0,
                            &c.vbuf.buf.base(),
                            c.len,
                        );
                        i += 1;
                        continue;
                    }
                    let done = ss.inflight.swap_remove(i);
                    self.trace.rdma.comp_span(
                        self.scheme.transport(ss.dst).name(),
                        Some(done.chunk),
                        &done.comp,
                    );
                    if self.faulty {
                        self.nic.send_ctrl(
                            ss.dst,
                            Box::new(MpiPacket::Fin {
                                recv_req: ss.peer_recv_req,
                                chunk_idx: done.chunk,
                                slot: done.slot,
                                bytes: done.len,
                            }),
                        );
                        ss.slots[done.slot].fin_sent = true;
                        san::proto_event(
                            &invariants::xfer_scope(&self.prefix, self.rank, id),
                            "chunks_finned",
                            1,
                        );
                        if let Some(t) = &mut ss.timer {
                            t.feed();
                        }
                    }
                    let vbuf = done.vbuf;
                    if self.cfg.fault_leak_vbuf && !self.leaked_vbuf {
                        // Fault injection: this vbuf is never returned.
                        self.leaked_vbuf = true;
                        std::mem::forget(vbuf);
                    } else {
                        san::pool_put(self.send_pool_id);
                        self.send_pool.push(vbuf);
                    }
                }
                // 5. Stall watchdog: no credit or CQE within the window —
                //    the receiver may be missing a FIN, or we a credit.
                //    Re-announcing busy slots recovers both (a dup FIN for
                //    a credited chunk makes the receiver re-credit).
                if failed.is_none() {
                    if let Some(t) = &mut ss.timer {
                        if t.expired() {
                            let resend: Vec<(usize, usize)> = ss
                                .slots
                                .iter()
                                .enumerate()
                                .filter(|(_, s)| !s.free && s.fin_sent)
                                .filter_map(|(idx, s)| s.occupant.map(|c| (idx, c)))
                                .collect();
                            if resend.is_empty() {
                                // Stalled on local staging or an in-flight
                                // write — nothing on the wire to chase.
                                t.feed();
                            } else if t.bump(self.cfg.retry.max_retries) {
                                for (slot, c) in resend {
                                    let len = ss.chunk_size.min(total - c * ss.chunk_size);
                                    note(&self.counters, &self.trace, "retry.fin");
                                    self.nic.send_ctrl(
                                        ss.dst,
                                        Box::new(MpiPacket::Fin {
                                            recv_req: ss.peer_recv_req,
                                            chunk_idx: c,
                                            slot,
                                            bytes: len,
                                        }),
                                    );
                                }
                            } else {
                                failed = Some(MpiError::RetriesExhausted {
                                    op: "fin",
                                    peer: ss.dst,
                                    attempts: t.attempts,
                                });
                            }
                        }
                    }
                }
                if failed.is_none() && ss.next_send == ss.nchunks && ss.inflight.is_empty() {
                    let rec = SendRecord::Staged {
                        dst: ss.dst,
                        peer_recv_req: ss.peer_recv_req,
                        chunk_size: ss.chunk_size,
                        nchunks: ss.nchunks,
                        nslots: ss.slots.len(),
                        total,
                    };
                    st.phase = SendPhase::Done;
                    if self.faulty {
                        self.completed_sends.insert(id, rec);
                    }
                }
            }
        }
        if let Some(e) = failed {
            self.fail_send(id, e);
        }
    }

    /// Surface a typed failure on a send: release its resources and park it
    /// in the Failed phase for the caller to reap.
    fn fail_send(&mut self, id: ReqId, e: MpiError) {
        note(&self.counters, &self.trace, "mpi.error");
        let Some(st) = self.sends.get_mut(&id) else {
            return;
        };
        let old = std::mem::replace(&mut st.phase, SendPhase::Failed(e));
        match old {
            SendPhase::Staged(ss) => {
                for (_, vbuf) in ss.local {
                    san::pool_put(self.send_pool_id);
                    self.send_pool.push(vbuf);
                }
                for c in ss.inflight {
                    san::pool_put(self.send_pool_id);
                    self.send_pool.push(c.vbuf);
                }
            }
            SendPhase::Direct(d) => {
                self.reg_cache.release(d.ptr.buf().id());
            }
            SendPhase::Offload(o) => {
                self.reg_cache.release(o.ptr.buf().id());
            }
            _ => {}
        }
    }

    /// Surface a typed failure on a receive: release its resources and park
    /// it in the Failed phase for the caller to reap.
    fn fail_recv(&mut self, id: ReqId, e: MpiError) {
        note(&self.counters, &self.trace, "mpi.error");
        let Some(st) = self.recvs.get_mut(&id) else {
            return;
        };
        let buf_id = st.direct_ptr.as_ref().map(|p| p.buf().id());
        let offload_buf_id = st.offload.as_ref().map(|(p, _)| p.buf().id());
        let old = std::mem::replace(&mut st.phase, RecvPhase::Failed(e));
        match old {
            RecvPhase::Staged(mut sr, _) => {
                for _ in 0..sr.slots.len() {
                    san::pool_put(self.recv_pool_id);
                }
                self.recv_pool.append(&mut sr.slots);
                self.matched_rts.remove(&(sr.src, sr.peer_send_req));
                self.done_rts.insert((sr.src, sr.peer_send_req), ());
                self.grant_deferred_cts();
            }
            RecvPhase::WaitDirect { env, send_req, .. } => {
                if let Some(bid) = buf_id {
                    self.reg_cache.release(bid);
                }
                self.matched_rts.remove(&(env.src, send_req));
                self.done_rts.insert((env.src, send_req), ());
            }
            RecvPhase::WaitOffload { env, send_req, .. } => {
                if let Some(bid) = offload_buf_id {
                    self.reg_cache.release(bid);
                }
                self.matched_rts.remove(&(env.src, send_req));
                self.done_rts.insert((env.src, send_req), ());
            }
            _ => {}
        }
    }

    fn advance_recv(&mut self, id: ReqId) {
        if self.recvs.contains_key(&id) {
            self.try_grant_cts(id);
        }
        let Some(st) = self.recvs.get_mut(&id) else {
            return;
        };
        let mut failed: Option<MpiError> = None;
        // Direct-path watchdog (faulty only): the CtsDirect or the FinDirect
        // was lost — re-offer our buffer; a completed sender re-FINs.
        if let RecvPhase::WaitDirect {
            my_key,
            env,
            total,
            send_req,
            timer: Some(t),
        } = &mut st.phase
        {
            if t.expired() {
                if t.bump(self.cfg.retry.max_retries) {
                    note(&self.counters, &self.trace, "retry.cts_direct");
                    let offset = st
                        .direct_ptr
                        .as_ref()
                        .expect("direct receive without a direct pointer")
                        .offset();
                    self.nic.send_ctrl(
                        env.src,
                        Box::new(MpiPacket::CtsDirect {
                            send_req: *send_req,
                            recv_req: id,
                            key: *my_key,
                            offset,
                            len: *total,
                        }),
                    );
                } else {
                    failed = Some(MpiError::RetriesExhausted {
                        op: "cts_direct",
                        peer: env.src,
                        attempts: t.attempts,
                    });
                }
            }
        }
        // Offload watchdog (faulty only): the CtsOffload or the FinOffload
        // was lost — re-offer our scatter descriptor; a completed sender
        // re-FINs.
        if failed.is_none() {
            if let RecvPhase::WaitOffload {
                my_key,
                scatter,
                env,
                total,
                send_req,
                timer: Some(t),
            } = &mut st.phase
            {
                if t.expired() {
                    if t.bump(self.cfg.retry.max_retries) {
                        note(&self.counters, &self.trace, "retry.cts_offload");
                        self.nic.send_ctrl(
                            env.src,
                            Box::new(MpiPacket::CtsOffload {
                                send_req: *send_req,
                                recv_req: id,
                                key: *my_key,
                                scatter: scatter.clone(),
                                total: *total,
                            }),
                        );
                    } else {
                        failed = Some(MpiError::RetriesExhausted {
                            op: "cts_offload",
                            peer: env.src,
                            attempts: t.attempts,
                        });
                    }
                }
            }
        }
        if let Some(e) = failed {
            self.fail_recv(id, e);
            return;
        }
        let Some(st) = self.recvs.get_mut(&id) else {
            return;
        };
        // Device path: the scatter from the shared GPU finished — credit
        // the sender's tbuf and complete.
        if let RecvPhase::DevAbsorb {
            comp,
            env,
            total,
            send_req,
        } = &st.phase
        {
            if !comp.poll() {
                return;
            }
            let (env, total, send_req) = (*env, *total, *send_req);
            st.phase = RecvPhase::Done(RecvStatus {
                src: env.src,
                tag: env.tag,
                bytes: total,
            });
            if self.cfg.fault_drop_dev_credit && !self.dev_credit_dropped {
                // Fault injection: swallow the first CREDIT-dev. The sender
                // never learns its device tbuf is free — a staging leak the
                // sanitizer must flag at exit.
                self.dev_credit_dropped = true;
            } else {
                self.nic
                    .send_ctrl(env.src, Box::new(MpiPacket::CreditDev { send_req }));
            }
            if self.faulty {
                self.matched_rts.remove(&(env.src, send_req));
                self.done_rts.insert((env.src, send_req), ());
            }
            return;
        }
        let RecvPhase::Staged(sr, env) = &mut st.phase else {
            return;
        };
        st.sink.poll();
        // Feed arrived chunks to the sink in order.
        while let Some((&chunk, &(slot, bytes))) = sr.arrived.first_key_value() {
            if chunk != sr.next_chunk {
                break; // hole: a FIN is still missing (or in flight)
            }
            sr.arrived.pop_first();
            st.sink
                .chunk_arrived(chunk, sr.slots[slot].buf.base(), bytes);
            sr.absorbing.push_back((chunk, slot));
            sr.next_chunk += 1;
            // Two gauge updates; the monotonicity invariant tolerates the
            // one-update intermediate state (see `invariants`).
            let scope = invariants::xfer_scope(&self.prefix, sr.src, sr.peer_send_req);
            san::proto_set(&scope, "last_chunk", chunk as i64);
            san::proto_event(&scope, "chunks_absorbed", 1);
            if let Some(t) = &mut sr.timer {
                t.feed();
            }
        }
        // Credit slots whose data the sink has absorbed.
        while let Some(&(chunk, slot)) = sr.absorbing.front() {
            if !st.sink.chunk_absorbed(chunk) {
                break;
            }
            sr.absorbing.pop_front();
            sr.next_credit = chunk + 1;
            self.nic.send_ctrl(
                sr.src,
                Box::new(MpiPacket::Credit {
                    send_req: sr.peer_send_req,
                    slot,
                    chunk_idx: chunk,
                }),
            );
            san::proto_event(
                &invariants::xfer_scope(&self.prefix, sr.src, sr.peer_send_req),
                "credits_sent",
                1,
            );
        }
        if sr.next_chunk == sr.nchunks && st.sink.finished() {
            // Report the end-to-end latency so the adaptive policy can
            // steer the next transfer of this (size, layout) class.
            if let Some(key) = sr.tune_key {
                let settled = self
                    .tuner
                    .observe(key, sr.chunk_size, sim_core::now() - sr.started);
                if let Some(block) = settled {
                    note(
                        &self.counters,
                        &self.trace,
                        settled_counter(key.layout(), block),
                    );
                }
            }
            // Return granted vbufs to the pool.
            for _ in 0..sr.slots.len() {
                san::pool_put(self.recv_pool_id);
            }
            self.recv_pool.append(&mut sr.slots);
            let status = RecvStatus {
                src: env.src,
                tag: env.tag,
                bytes: sr.total,
            };
            let (peer, send_req) = (sr.src, sr.peer_send_req);
            st.phase = RecvPhase::Done(status);
            san::proto_set(
                &invariants::xfer_scope(&self.prefix, peer, send_req),
                "done",
                1,
            );
            if self.faulty {
                self.matched_rts.remove(&(peer, send_req));
                self.done_rts.insert((peer, send_req), ());
                self.completed_recvs.insert(id, (peer, send_req));
            }
            self.grant_deferred_cts();
            return;
        }
        // FIN watchdog (faulty only, armed at the CTS grant): nack the
        // first missing chunk so the sender re-announces its window.
        if sr.cts_sent {
            if let Some(t) = &mut sr.timer {
                if t.expired() {
                    if t.bump(self.cfg.retry.max_retries) {
                        note(&self.counters, &self.trace, "retry.fin_nack");
                        self.nic.send_ctrl(
                            sr.src,
                            Box::new(MpiPacket::FinNack {
                                send_req: sr.peer_send_req,
                                next_needed: sr.next_chunk,
                            }),
                        );
                    } else {
                        failed = Some(MpiError::RetriesExhausted {
                            op: "fin_nack",
                            peer: sr.src,
                            attempts: t.attempts,
                        });
                    }
                }
            }
        }
        if let Some(e) = failed {
            self.fail_recv(id, e);
        }
    }

    // --- completion queries --------------------------------------------------------

    pub fn send_done(&self, id: ReqId) -> bool {
        matches!(
            self.sends[&id].phase,
            SendPhase::Done | SendPhase::Failed(_)
        )
    }

    /// Whether this engine sits on a fault-injecting fabric.
    pub fn is_faulty(&self) -> bool {
        self.faulty
    }

    /// The physical node hosting world rank `rank` (hierarchical
    /// collectives group peers by this).
    pub(crate) fn node_of(&self, rank: usize) -> usize {
        self.nic.node_of(rank)
    }

    /// Number of unreaped requests (sends + receives) this rank holds —
    /// zero once the application has waited on everything it posted.
    pub fn live_requests(&self) -> usize {
        self.sends.len() + self.recvs.len()
    }

    /// The typed error a failed send ended with, if any.
    pub fn send_error(&self, id: ReqId) -> Option<MpiError> {
        match &self.sends[&id].phase {
            SendPhase::Failed(e) => Some(e.clone()),
            _ => None,
        }
    }

    pub fn recv_done(&self, id: ReqId) -> Option<RecvStatus> {
        match self.recvs[&id].phase {
            RecvPhase::Done(status) => Some(status),
            _ => None,
        }
    }

    /// Whether the receive has reached a terminal state (success or typed
    /// failure).
    pub fn recv_finished(&self, id: ReqId) -> bool {
        matches!(
            self.recvs[&id].phase,
            RecvPhase::Done(_) | RecvPhase::Failed(_)
        )
    }

    /// The typed error a failed receive ended with, if any.
    pub fn recv_error(&self, id: ReqId) -> Option<MpiError> {
        match &self.recvs[&id].phase {
            RecvPhase::Failed(e) => Some(e.clone()),
            _ => None,
        }
    }

    pub fn is_send(&self, id: ReqId) -> bool {
        self.sends.contains_key(&id)
    }

    pub fn reap_send(&mut self, id: ReqId) {
        self.sends.remove(&id);
    }

    pub fn reap_recv(&mut self, id: ReqId) {
        self.recvs.remove(&id);
    }

    /// Scan the unexpected queue for a message matching `(src, tag)` on
    /// the world context; returns its envelope info without consuming it.
    pub fn probe_unexpected(&self, src: SrcSel, tag: TagSel, ctx: u16) -> Option<RecvStatus> {
        self.unexpected.iter().find_map(|u| {
            let env = u.env();
            if !env_matches(env, ctx, src, tag) {
                return None;
            }
            let bytes = match u {
                Unexpected::Eager { data, .. } => data.len(),
                Unexpected::Rts { total, .. } => *total,
            };
            Some(RecvStatus {
                src: env.src,
                tag: env.tag,
                bytes,
            })
        })
    }

    /// Earliest *future* instant at which polling could make progress.
    pub fn next_event(&self) -> Option<SimTime> {
        let now = sim_core::now();
        let mut best: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            if let Some(t) = t {
                if t > now {
                    best = Some(match best {
                        None => t,
                        Some(b) => b.min(t),
                    });
                }
            }
        };
        for s in self.sends.values() {
            consider(s.source.next_event());
            match &s.phase {
                SendPhase::WaitCts { timer: Some(t) } => consider(Some(t.deadline)),
                SendPhase::Direct(d) => consider(d.rdma.done_at()),
                SendPhase::Offload(o) => consider(o.rdma.done_at()),
                SendPhase::DevWaitCredit { pack } => consider(pack.done_at()),
                SendPhase::Staged(ss) => {
                    for c in &ss.inflight {
                        consider(c.comp.done_at());
                    }
                    if let Some(t) = &ss.timer {
                        consider(Some(t.deadline));
                    }
                }
                _ => {}
            }
        }
        for r in self.recvs.values() {
            consider(r.sink.next_event());
            match &r.phase {
                RecvPhase::WaitDirect { timer: Some(t), .. } => consider(Some(t.deadline)),
                RecvPhase::WaitOffload { timer: Some(t), .. } => consider(Some(t.deadline)),
                RecvPhase::DevAbsorb { comp, .. } => consider(comp.done_at()),
                RecvPhase::Staged(sr, _) => {
                    if let Some(t) = &sr.timer {
                        consider(Some(t.deadline));
                    }
                }
                _ => {}
            }
        }
        best
    }

    /// Block (in virtual time) until a packet arrives or the next known
    /// event instant passes.
    pub fn idle_block(&self) {
        self.nic.mailbox().wait_nonempty_until(self.next_event());
    }
}
