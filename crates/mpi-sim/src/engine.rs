//! Per-rank protocol engine: matching, request state machines and the
//! progress loop.
//!
//! Each rank runs as one simulation process; MPI progress happens inside
//! MPI calls (single-threaded MPI, like the paper's MVAPICH2 build). The
//! engine drains the NIC mailbox, advances rendezvous state machines by
//! polling staging sources/sinks and RDMA completions, and blocks — in
//! virtual time — until either a packet arrives or the earliest known
//! hardware completion instant passes.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use gpu_sim::Loc;
use hostmem::{HostBuf, HostPtr};
use ib_sim::{MrKey, Nic};
use sim_core::san;
use sim_core::{CallCounters, Completion, SimDur, SimTime};

use crate::datatype::Datatype;
use crate::flat::Layout;
use crate::proto::{ChunkPolicy, Envelope, MpiConfig, MpiPacket, ReqId, SlotDesc};
use crate::staging::{BufferStager, HostRecvSink, HostSendSource, RecvSink, SendSource};
use crate::tuner::{ChunkTuner, LayoutClass, TuneKey};

/// Source selector for receives.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SrcSel(pub(crate) Option<usize>);

/// Tag selector for receives.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TagSel(pub(crate) Option<u32>);

/// Match any source rank (MPI_ANY_SOURCE).
pub const ANY_SOURCE: SrcSel = SrcSel(None);
/// Match any tag (MPI_ANY_TAG).
pub const ANY_TAG: TagSel = TagSel(None);

impl From<usize> for SrcSel {
    fn from(r: usize) -> Self {
        SrcSel(Some(r))
    }
}

impl From<u32> for TagSel {
    fn from(t: u32) -> Self {
        TagSel(Some(t))
    }
}

/// Completion information of a receive (MPI_Status).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RecvStatus {
    /// Actual source rank.
    pub src: usize,
    /// Actual tag.
    pub tag: u32,
    /// Received payload bytes (type-packed size).
    pub bytes: usize,
}

/// A nonblocking operation handle.
#[derive(Debug)]
pub struct Request {
    pub(crate) id: ReqId,
}

pub(crate) struct Vbuf {
    pub buf: HostBuf,
    pub key: MrKey,
}

struct SlotState {
    desc: SlotDesc,
    free: bool,
}

struct StagedSend {
    dst: usize,
    peer_recv_req: ReqId,
    chunk_size: usize,
    nchunks: usize,
    slots: Vec<SlotState>,
    next_request: usize,
    next_send: usize,
    /// Chunks staged (or staging) into local vbufs, in chunk order.
    local: VecDeque<(usize, Vbuf)>,
    /// RDMA writes in flight; the local vbuf is released at completion.
    inflight: Vec<(Completion, Vbuf)>,
}

enum SendPhase {
    WaitCts,
    Direct { rdma: Completion, my_key: MrKey },
    Staged(StagedSend),
    Done,
}

struct SendState {
    dst: usize,
    total: usize,
    source: Box<dyn SendSource>,
    /// Start of the user buffer when it is host-contiguous (direct path).
    direct_ptr: Option<HostPtr>,
    phase: SendPhase,
}

struct StagedRecv {
    src: usize,
    peer_send_req: ReqId,
    /// Chunk size of this transfer (chosen per transfer by the receiver;
    /// travels to the sender in the CTS).
    chunk_size: usize,
    nchunks: usize,
    total: usize,
    /// When the RTS was matched — the tuner's latency clock.
    started: SimTime,
    /// Autotuner key, when the adaptive policy is driving this transfer.
    tune_key: Option<TuneKey>,
    /// False while the CTS is deferred waiting for pool vbufs (back
    /// pressure under many concurrent staged transfers).
    cts_sent: bool,
    slots: Vec<Vbuf>,
    /// FINs received, in arrival order: (chunk, slot, bytes).
    arrived: VecDeque<(usize, usize, usize)>,
    /// Chunks handed to the sink, awaiting absorption: (chunk, slot).
    absorbing: VecDeque<(usize, usize)>,
    next_chunk: usize,
}

enum RecvPhase {
    Unmatched,
    WaitDirect {
        my_key: MrKey,
        env: Envelope,
        total: usize,
    },
    Staged(StagedRecv, Envelope),
    Done(RecvStatus),
}

struct RecvState {
    src_sel: SrcSel,
    tag_sel: TagSel,
    ctx: u16,
    capacity: usize,
    sink: Box<dyn RecvSink>,
    /// Start of the user buffer when it is host-contiguous (direct path).
    direct_ptr: Option<HostPtr>,
    /// Layout bucket of the receive datatype (autotuner key component).
    layout_class: LayoutClass,
    phase: RecvPhase,
}

enum Unexpected {
    Eager {
        env: Envelope,
        data: Vec<u8>,
    },
    Rts {
        env: Envelope,
        total: usize,
        send_req: ReqId,
        direct_capable: bool,
    },
}

impl Unexpected {
    fn env(&self) -> &Envelope {
        match self {
            Unexpected::Eager { env, .. } | Unexpected::Rts { env, .. } => env,
        }
    }
}

fn env_matches(env: &Envelope, ctx: u16, src: SrcSel, tag: TagSel) -> bool {
    env.ctx == ctx && src.0.is_none_or(|s| s == env.src) && tag.0.is_none_or(|t| t == env.tag)
}

pub(crate) struct Engine {
    pub rank: usize,
    pub size: usize,
    pub nic: Nic,
    pub cfg: MpiConfig,
    pub counters: CallCounters,
    stagers: Arc<Vec<Box<dyn BufferStager>>>,
    next_req: ReqId,
    sends: HashMap<ReqId, SendState>,
    recvs: HashMap<ReqId, RecvState>,
    posted: Vec<ReqId>,
    unexpected: VecDeque<Unexpected>,
    /// Registered staging buffers for *outgoing* chunks. Kept separate from
    /// `recv_pool`: if grants and local staging shared one pool, two ranks
    /// could grant each other every buffer and deadlock with nothing left
    /// to stage their own sends (a classic buffer-management deadlock).
    send_pool: Vec<Vbuf>,
    /// Registered staging buffers granted to remote senders via CTS.
    recv_pool: Vec<Vbuf>,
    /// Sanitizer pool handles (None when the sanitizer is off).
    send_pool_id: Option<san::PoolId>,
    recv_pool_id: Option<san::PoolId>,
    /// Fault injection: true once the configured vbuf leak has happened.
    leaked_vbuf: bool,
    /// Next free communicator context id (0/1 belong to the world comm).
    next_ctx: u16,
    /// Registration cache (MVAPICH2-style): user buffers register once and
    /// stay registered; repeated rendezvous on the same buffer skip the
    /// registration cost.
    reg_cache: HashMap<u64, MrKey>,
    /// Online block-size search (drives `ChunkPolicy::Adaptive`).
    tuner: ChunkTuner,
}

impl Engine {
    pub fn new(
        nic: Nic,
        rank: usize,
        size: usize,
        cfg: MpiConfig,
        stagers: Arc<Vec<Box<dyn BufferStager>>>,
    ) -> Engine {
        cfg.validate();
        // Pre-allocate and register the vbuf pools (done once at MPI_Init).
        // Slots are sized to the largest chunk any policy may pick, so the
        // adaptive tuner can grow the block without reallocating.
        let mk_pool = |n: usize| -> Vec<Vbuf> {
            (0..n)
                .map(|_| {
                    let buf = HostBuf::alloc(cfg.max_chunk());
                    let key = nic.register(&buf);
                    Vbuf { buf, key }
                })
                .collect()
        };
        let send_pool = mk_pool(cfg.pool_vbufs / 2);
        let recv_pool = mk_pool(cfg.pool_vbufs - cfg.pool_vbufs / 2);
        let send_pool_id = san::pool_register(format!("rank{rank}.send_pool"));
        let recv_pool_id = san::pool_register(format!("rank{rank}.recv_pool"));
        let tuner = ChunkTuner::new(&cfg);
        Engine {
            rank,
            size,
            nic,
            cfg,
            counters: CallCounters::new(),
            stagers,
            next_req: 1,
            sends: HashMap::new(),
            recvs: HashMap::new(),
            posted: Vec::new(),
            unexpected: VecDeque::new(),
            send_pool,
            recv_pool,
            send_pool_id,
            recv_pool_id,
            leaked_vbuf: false,
            next_ctx: 2,
            reg_cache: HashMap::new(),
            tuner,
        }
    }

    /// The next free communicator context id (used by `Comm::split` to
    /// agree on new contexts).
    pub fn peek_next_ctx(&self) -> u16 {
        self.next_ctx
    }

    /// Advance the context allocator past an agreed block.
    pub fn advance_ctx(&mut self, to: u16) {
        self.next_ctx = self.next_ctx.max(to);
    }

    /// Register `buf` through the registration cache.
    fn register_cached(&mut self, buf: &HostBuf) -> MrKey {
        if let Some(&k) = self.reg_cache.get(&buf.id()) {
            return k;
        }
        let k = self.nic.register(buf);
        self.reg_cache.insert(buf.id(), k);
        k
    }

    fn alloc_req(&mut self) -> ReqId {
        let id = self.next_req;
        self.next_req += 1;
        id
    }

    fn mpi_call_cost(&self) {
        sim_core::sleep(SimDur::from_nanos(self.cfg.cpu.mpi_call_ns));
    }

    fn make_source(&self, buf: &Loc, count: usize, dt: &Datatype) -> Box<dyn SendSource> {
        for s in self.stagers.iter() {
            if let Some(src) = s.source(buf, count, dt) {
                return src;
            }
        }
        match buf {
            Loc::Host(p) => Box::new(HostSendSource::new(
                p.clone(),
                count,
                dt,
                self.cfg.cpu.clone(),
            )),
            Loc::Device(_) => panic!(
                "send buffer resides in device memory but this MPI build has \
                 no GPU datatype support (use mv2-gpu-nc)"
            ),
        }
    }

    fn make_sink(&self, buf: &Loc, count: usize, dt: &Datatype) -> Box<dyn RecvSink> {
        for s in self.stagers.iter() {
            if let Some(sink) = s.sink(buf, count, dt) {
                return sink;
            }
        }
        match buf {
            Loc::Host(p) => Box::new(HostRecvSink::new(
                p.clone(),
                count,
                dt,
                self.cfg.cpu.clone(),
            )),
            Loc::Device(_) => panic!(
                "receive buffer resides in device memory but this MPI build \
                 has no GPU datatype support (use mv2-gpu-nc)"
            ),
        }
    }

    /// If (buf, count, dtype) is a contiguous host region, its start.
    fn contiguous_host_ptr(buf: &Loc, count: usize, dt: &Datatype) -> Option<HostPtr> {
        let Loc::Host(p) = buf else { return None };
        match dt.flat().layout(count) {
            Layout::Contiguous { offset, .. } => {
                let abs = p.offset() as isize + offset;
                assert!(abs >= 0, "contiguous layout starts before the buffer");
                Some(p.buf().ptr(abs as usize))
            }
            _ => None,
        }
    }

    fn check_host_bounds(buf: &Loc, count: usize, dt: &Datatype) {
        if let Loc::Host(p) = buf {
            let (lo, hi) = dt.flat().byte_range(count);
            let lo_abs = p.offset() as isize + lo;
            let hi_abs = p.offset() as isize + hi;
            assert!(
                lo_abs >= 0 && hi_abs as usize <= p.buf().len(),
                "datatype footprint [{lo_abs}, {hi_abs}) exceeds host buffer of {} bytes",
                p.buf().len()
            );
        }
    }

    // --- posting ---------------------------------------------------------------

    pub fn isend(
        &mut self,
        buf: Loc,
        count: usize,
        dt: &Datatype,
        dst: usize,
        tag: u32,
        ctx: u16,
    ) -> ReqId {
        assert!(dst < self.size, "isend to nonexistent rank {dst}");
        self.mpi_call_cost();
        // Every MPI call gives the progress engine a chance to run (as in
        // any real single-threaded MPI library).
        self.progress();
        Self::check_host_bounds(&buf, count, dt);
        let mut source = self.make_source(&buf, count, dt);
        let total = source.total_bytes();
        let env = Envelope {
            ctx,
            src: self.rank,
            tag,
        };
        let id = self.alloc_req();
        if total <= self.cfg.eager_limit {
            let data = source.pack_eager();
            let wire = data.len() + 64;
            self.nic
                .send(dst, wire, Box::new(MpiPacket::Eager { env, data }));
            self.sends.insert(
                id,
                SendState {
                    dst,
                    total,
                    source,
                    direct_ptr: None,
                    phase: SendPhase::Done,
                },
            );
        } else {
            let direct_ptr = Self::contiguous_host_ptr(&buf, count, dt);
            self.nic.send_ctrl(
                dst,
                Box::new(MpiPacket::Rts {
                    env,
                    total,
                    send_req: id,
                    direct_capable: direct_ptr.is_some(),
                }),
            );
            self.sends.insert(
                id,
                SendState {
                    dst,
                    total,
                    source,
                    direct_ptr,
                    phase: SendPhase::WaitCts,
                },
            );
        }
        id
    }

    pub fn irecv(
        &mut self,
        buf: Loc,
        count: usize,
        dt: &Datatype,
        src: SrcSel,
        tag: TagSel,
        ctx: u16,
    ) -> ReqId {
        self.mpi_call_cost();
        self.progress();
        Self::check_host_bounds(&buf, count, dt);
        let sink = self.make_sink(&buf, count, dt);
        let capacity = sink.total_bytes();
        let direct_ptr = Self::contiguous_host_ptr(&buf, count, dt);
        // Cheap after the sink pulled the plan into the cache.
        let layout_class = LayoutClass::of(dt.flat().plan(count).layout());
        let id = self.alloc_req();
        self.recvs.insert(
            id,
            RecvState {
                src_sel: src,
                tag_sel: tag,
                ctx,
                capacity,
                sink,
                direct_ptr,
                layout_class,
                phase: RecvPhase::Unmatched,
            },
        );
        // Try the unexpected queue first (FIFO), then stay posted.
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|u| env_matches(u.env(), ctx, src, tag))
        {
            let u = self.unexpected.remove(pos).unwrap();
            match u {
                Unexpected::Eager { env, data } => self.deliver_eager(id, env, data),
                Unexpected::Rts {
                    env,
                    total,
                    send_req,
                    direct_capable,
                } => self.match_rts(id, env, total, send_req, direct_capable),
            }
        } else {
            self.posted.push(id);
        }
        id
    }

    // --- packet handling ----------------------------------------------------------

    fn deliver_eager(&mut self, recv_id: ReqId, env: Envelope, data: Vec<u8>) {
        let st = self.recvs.get_mut(&recv_id).expect("recv state missing");
        if data.len() > st.capacity {
            san::report_protocol(format!(
                "message truncated: {} bytes into a {}-byte receive",
                data.len(),
                st.capacity
            ));
            panic!(
                "message truncated: {} bytes into a {}-byte receive",
                data.len(),
                st.capacity
            );
        }
        st.sink.unpack_eager(&data);
        st.phase = RecvPhase::Done(RecvStatus {
            src: env.src,
            tag: env.tag,
            bytes: data.len(),
        });
    }

    fn match_rts(
        &mut self,
        recv_id: ReqId,
        env: Envelope,
        total: usize,
        send_req: ReqId,
        direct_capable: bool,
    ) {
        let st = self.recvs.get_mut(&recv_id).expect("recv state missing");
        if total > st.capacity {
            san::report_protocol(format!(
                "message truncated: {total} bytes into a {}-byte receive",
                st.capacity
            ));
            panic!(
                "message truncated: {total} bytes into a {}-byte receive",
                st.capacity
            );
        }
        if direct_capable {
            if let Some(ptr) = st.direct_ptr.clone() {
                // R-PUT: register the user buffer (through the cache) and
                // hand its key over.
                let key = self.register_cached(&ptr.buf().clone());
                let st = self.recvs.get_mut(&recv_id).expect("recv state missing");
                st.phase = RecvPhase::WaitDirect {
                    my_key: key,
                    env,
                    total,
                };
                self.nic.send_ctrl(
                    env.src,
                    Box::new(MpiPacket::CtsDirect {
                        send_req,
                        recv_req: recv_id,
                        key,
                        offset: ptr.offset(),
                        len: total,
                    }),
                );
                return;
            }
        }
        // Staged path: grant a window of vbufs. If the pool is empty right
        // now, defer the CTS; the progress loop grants it once earlier
        // transfers return their buffers (back pressure, not failure).
        // The receiver picks the chunk size (it sizes the granted slots);
        // the sender learns it from the CTS.
        let (chunk_size, tune_key) = match self.cfg.policy {
            ChunkPolicy::Fixed => (self.cfg.chunk_size, None),
            ChunkPolicy::Adaptive { .. } => {
                let key = TuneKey::new(total, st.layout_class);
                (self.tuner.choose(key), Some(key))
            }
        };
        let nchunks = total.div_ceil(chunk_size).max(1);
        st.sink.begin(chunk_size, total);
        st.phase = RecvPhase::Staged(
            StagedRecv {
                src: env.src,
                peer_send_req: send_req,
                chunk_size,
                nchunks,
                total,
                started: sim_core::now(),
                tune_key,
                cts_sent: false,
                slots: Vec::new(),
                arrived: VecDeque::new(),
                absorbing: VecDeque::new(),
                next_chunk: 0,
            },
            env,
        );
        self.try_grant_cts(recv_id);
    }

    /// Send the deferred/initial CTS for a staged receive once at least one
    /// pool vbuf is available.
    fn try_grant_cts(&mut self, recv_id: ReqId) {
        let st = self.recvs.get_mut(&recv_id).expect("recv state missing");
        let RecvPhase::Staged(sr, _) = &mut st.phase else {
            return;
        };
        if sr.cts_sent || self.recv_pool.is_empty() {
            return;
        }
        let want = self.cfg.window_slots.min(sr.nchunks).max(1);
        let take = want.min(self.recv_pool.len());
        sr.slots = self
            .recv_pool
            .drain(self.recv_pool.len() - take..)
            .collect();
        for _ in 0..take {
            san::pool_take(self.recv_pool_id);
        }
        sr.cts_sent = true;
        let descs: Vec<SlotDesc> = sr
            .slots
            .iter()
            .map(|v| SlotDesc {
                key: v.key,
                len: v.buf.len(),
            })
            .collect();
        let pkt = MpiPacket::Cts {
            send_req: sr.peer_send_req,
            recv_req: recv_id,
            chunk_size: sr.chunk_size,
            slots: descs,
        };
        let dst = sr.src;
        self.nic.send_ctrl(dst, Box::new(pkt));
    }

    fn handle_packet(&mut self, src: usize, pkt: MpiPacket) {
        sim_core::sleep(SimDur::from_nanos(self.cfg.cpu.handle_pkt_ns));
        let _ = src;
        match pkt {
            MpiPacket::Eager { env, data } => {
                if data.len() > self.cfg.eager_limit {
                    san::report_protocol(format!(
                        "eager payload of {} bytes exceeds the eager limit of {} bytes",
                        data.len(),
                        self.cfg.eager_limit
                    ));
                }
                if let Some(recv_id) = self.find_posted(&env) {
                    self.deliver_eager(recv_id, env, data);
                } else {
                    self.unexpected.push_back(Unexpected::Eager { env, data });
                }
            }
            MpiPacket::Rts {
                env,
                total,
                send_req,
                direct_capable,
            } => {
                if let Some(recv_id) = self.find_posted(&env) {
                    self.match_rts(recv_id, env, total, send_req, direct_capable);
                } else {
                    self.unexpected.push_back(Unexpected::Rts {
                        env,
                        total,
                        send_req,
                        direct_capable,
                    });
                }
            }
            MpiPacket::Cts {
                send_req,
                recv_req,
                chunk_size,
                slots,
            } => {
                let Some(st) = self.sends.get_mut(&send_req) else {
                    san::report_protocol(format!(
                        "CTS for unknown send request #{send_req} (never posted or already reaped)"
                    ));
                    panic!("CTS for unknown send");
                };
                if !matches!(st.phase, SendPhase::WaitCts) {
                    san::report_protocol(format!(
                        "CTS for send request #{send_req} that is not awaiting CTS                          (duplicate or out-of-order CTS)"
                    ));
                    panic!("CTS for a send not in WaitCts phase");
                }
                st.source.begin(chunk_size);
                let nchunks = st.total.div_ceil(chunk_size).max(1);
                st.phase = SendPhase::Staged(StagedSend {
                    dst: st.dst,
                    peer_recv_req: recv_req,
                    chunk_size,
                    nchunks,
                    slots: slots
                        .into_iter()
                        .map(|desc| SlotState { desc, free: true })
                        .collect(),
                    next_request: 0,
                    next_send: 0,
                    local: VecDeque::new(),
                    inflight: Vec::new(),
                });
            }
            MpiPacket::CtsDirect {
                send_req,
                recv_req,
                key,
                offset,
                len,
            } => {
                let Some(st) = self.sends.get_mut(&send_req) else {
                    san::report_protocol(format!(
                        "direct CTS for unknown send request #{send_req}                          (never posted or already reaped)"
                    ));
                    panic!("CTS for unknown send");
                };
                if !matches!(st.phase, SendPhase::WaitCts) {
                    san::report_protocol(format!(
                        "direct CTS for send request #{send_req} that is not awaiting CTS                          (duplicate or out-of-order CTS)"
                    ));
                    panic!("CTS for a send not in WaitCts phase");
                }
                let ptr = st
                    .direct_ptr
                    .clone()
                    .expect("direct CTS for a non-contiguous send");
                assert_eq!(len, st.total);
                let buf = ptr.buf().clone();
                let my_key = self.register_cached(&buf);
                let st = self.sends.get_mut(&send_req).expect("CTS for unknown send");
                let rdma = self.nic.rdma_write(st.dst, key, offset, &ptr, st.total);
                self.nic
                    .send_ctrl(st.dst, Box::new(MpiPacket::FinDirect { recv_req }));
                st.phase = SendPhase::Direct { rdma, my_key };
            }
            MpiPacket::Fin {
                recv_req,
                chunk_idx,
                slot,
                bytes,
            } => {
                let Some(st) = self.recvs.get_mut(&recv_req) else {
                    san::report_protocol(format!("FIN for unknown receive request #{recv_req}"));
                    panic!("FIN for unknown recv");
                };
                let RecvPhase::Staged(sr, _) = &mut st.phase else {
                    san::report_protocol(format!(
                        "FIN for receive request #{recv_req} that is not in the staged                          rendezvous phase (protocol state machine violation)"
                    ));
                    panic!("FIN for a receive not in staged phase")
                };
                if slot >= sr.slots.len() {
                    san::report_protocol(format!(
                        "FIN names slot {slot} but only {} slot(s) were granted",
                        sr.slots.len()
                    ));
                    panic!("FIN for a nonexistent slot");
                }
                sr.arrived.push_back((chunk_idx, slot, bytes));
            }
            MpiPacket::FinDirect { recv_req } => {
                let Some(st) = self.recvs.get_mut(&recv_req) else {
                    san::report_protocol(format!(
                        "FIN-direct for unknown receive request #{recv_req}"
                    ));
                    panic!("FIN for unknown recv");
                };
                let RecvPhase::WaitDirect { my_key, env, total } = st.phase else {
                    san::report_protocol(format!(
                        "FIN-direct for receive request #{recv_req} that is not in the                          direct rendezvous phase (protocol state machine violation)"
                    ));
                    panic!("FIN-direct for a receive not in direct phase")
                };
                let _ = my_key; // stays in the registration cache
                st.phase = RecvPhase::Done(RecvStatus {
                    src: env.src,
                    tag: env.tag,
                    bytes: total,
                });
            }
            MpiPacket::Credit { send_req, slot } => {
                // A send completes once its last RDMA write is on the wire;
                // credits for the tail chunks may still be in flight when
                // the request is reaped. They gate nothing anymore: drop.
                if let Some(st) = self.sends.get_mut(&send_req) {
                    if let SendPhase::Staged(ss) = &mut st.phase {
                        if slot >= ss.slots.len() {
                            san::report_protocol(format!(
                                "credit names slot {slot} but only {} slot(s) were granted",
                                ss.slots.len()
                            ));
                            panic!("credit for a nonexistent slot");
                        }
                        if ss.slots[slot].free {
                            san::report_protocol(format!(
                                "credit for slot {slot} which is already free                                  (flow-control overflow: duplicate credit)"
                            ));
                        }
                        ss.slots[slot].free = true;
                    }
                }
            }
        }
    }

    fn find_posted(&mut self, env: &Envelope) -> Option<ReqId> {
        let pos = self.posted.iter().position(|id| {
            let r = &self.recvs[id];
            matches!(r.phase, RecvPhase::Unmatched) && env_matches(env, r.ctx, r.src_sel, r.tag_sel)
        })?;
        Some(self.posted.remove(pos))
    }

    // --- progress -------------------------------------------------------------------

    /// One full progress pass: drain packets, advance all state machines.
    pub fn progress(&mut self) {
        // Drain the NIC mailbox.
        while let Some(pkt) = self.nic.mailbox().try_recv() {
            let src = pkt.src;
            let payload = pkt
                .payload
                .downcast::<MpiPacket>()
                .expect("non-MPI packet in MPI mailbox");
            self.handle_packet(src, *payload);
        }
        // Advance sends.
        let send_ids: Vec<ReqId> = self.sends.keys().copied().collect();
        for id in send_ids {
            self.advance_send(id);
        }
        // Advance receives.
        let recv_ids: Vec<ReqId> = self.recvs.keys().copied().collect();
        for id in recv_ids {
            self.advance_recv(id);
        }
    }

    fn advance_send(&mut self, id: ReqId) {
        let Some(st) = self.sends.get_mut(&id) else {
            return;
        };
        match &mut st.phase {
            SendPhase::Done | SendPhase::WaitCts => {}
            SendPhase::Direct { rdma, my_key } => {
                if rdma.poll() {
                    let _ = my_key; // stays in the registration cache
                    st.phase = SendPhase::Done;
                }
            }
            SendPhase::Staged(ss) => {
                // 1. Request staging of upcoming chunks while vbufs and
                //    window room are available.
                while ss.next_request < ss.nchunks
                    && ss.local.len() + ss.inflight.len() < ss.slots.len()
                {
                    let Some(vbuf) = self.send_pool.pop() else {
                        break;
                    };
                    san::pool_take(self.send_pool_id);
                    let i = ss.next_request;
                    let off = i * ss.chunk_size;
                    let len = ss.chunk_size.min(st.total - off);
                    st.source.request_chunk(i, vbuf.buf.base(), len);
                    ss.local.push_back((i, vbuf));
                    ss.next_request += 1;
                }
                // 2. Drive async staging.
                st.source.poll();
                // 3. RDMA-write ready chunks, in order, into free slots.
                while let Some(&(i, _)) = ss.local.front() {
                    debug_assert_eq!(i, ss.next_send);
                    if !st.source.chunk_ready(i) {
                        break;
                    }
                    let slot = i % ss.slots.len();
                    if !ss.slots[slot].free {
                        break;
                    }
                    let (_, vbuf) = ss.local.pop_front().unwrap();
                    let off = i * ss.chunk_size;
                    let len = ss.chunk_size.min(st.total - off);
                    assert!(
                        len <= ss.slots[slot].desc.len,
                        "chunk larger than the granted vbuf slot"
                    );
                    ss.slots[slot].free = false;
                    let comp = self.nic.rdma_write(
                        ss.dst,
                        ss.slots[slot].desc.key,
                        0,
                        &vbuf.buf.base(),
                        len,
                    );
                    self.nic.send_ctrl(
                        ss.dst,
                        Box::new(MpiPacket::Fin {
                            recv_req: ss.peer_recv_req,
                            chunk_idx: i,
                            slot,
                            bytes: len,
                        }),
                    );
                    ss.inflight.push((comp, vbuf));
                    ss.next_send += 1;
                }
                // 4. Reap finished RDMA writes, returning local vbufs.
                let mut i = 0;
                while i < ss.inflight.len() {
                    if ss.inflight[i].0.poll() {
                        let (_, vbuf) = ss.inflight.swap_remove(i);
                        if self.cfg.fault_leak_vbuf && !self.leaked_vbuf {
                            // Fault injection: this vbuf is never returned.
                            self.leaked_vbuf = true;
                            std::mem::forget(vbuf);
                        } else {
                            san::pool_put(self.send_pool_id);
                            self.send_pool.push(vbuf);
                        }
                    } else {
                        i += 1;
                    }
                }
                if ss.next_send == ss.nchunks && ss.inflight.is_empty() {
                    st.phase = SendPhase::Done;
                }
            }
        }
    }

    fn advance_recv(&mut self, id: ReqId) {
        if self.recvs.contains_key(&id) {
            self.try_grant_cts(id);
        }
        let Some(st) = self.recvs.get_mut(&id) else {
            return;
        };
        let RecvPhase::Staged(sr, env) = &mut st.phase else {
            return;
        };
        st.sink.poll();
        // Feed arrived chunks to the sink in order.
        while let Some(&(chunk, slot, bytes)) = sr.arrived.front() {
            if chunk != sr.next_chunk {
                break; // FINs arrive in order; defensive.
            }
            sr.arrived.pop_front();
            st.sink
                .chunk_arrived(chunk, sr.slots[slot].buf.base(), bytes);
            sr.absorbing.push_back((chunk, slot));
            sr.next_chunk += 1;
        }
        // Credit slots whose data the sink has absorbed.
        while let Some(&(chunk, slot)) = sr.absorbing.front() {
            if !st.sink.chunk_absorbed(chunk) {
                break;
            }
            sr.absorbing.pop_front();
            self.nic.send_ctrl(
                sr.src,
                Box::new(MpiPacket::Credit {
                    send_req: sr.peer_send_req,
                    slot,
                }),
            );
        }
        if sr.next_chunk == sr.nchunks && st.sink.finished() {
            // Report the end-to-end latency so the adaptive policy can
            // steer the next transfer of this (size, layout) class.
            if let Some(key) = sr.tune_key {
                self.tuner
                    .observe(key, sr.chunk_size, sim_core::now() - sr.started);
            }
            // Return granted vbufs to the pool.
            for _ in 0..sr.slots.len() {
                san::pool_put(self.recv_pool_id);
            }
            self.recv_pool.append(&mut sr.slots);
            let status = RecvStatus {
                src: env.src,
                tag: env.tag,
                bytes: sr.total,
            };
            st.phase = RecvPhase::Done(status);
        }
    }

    // --- completion queries --------------------------------------------------------

    pub fn send_done(&self, id: ReqId) -> bool {
        matches!(self.sends[&id].phase, SendPhase::Done)
    }

    pub fn recv_done(&self, id: ReqId) -> Option<RecvStatus> {
        match self.recvs[&id].phase {
            RecvPhase::Done(status) => Some(status),
            _ => None,
        }
    }

    pub fn is_send(&self, id: ReqId) -> bool {
        self.sends.contains_key(&id)
    }

    pub fn reap_send(&mut self, id: ReqId) {
        self.sends.remove(&id);
    }

    pub fn reap_recv(&mut self, id: ReqId) {
        self.recvs.remove(&id);
    }

    /// Scan the unexpected queue for a message matching `(src, tag)` on
    /// the world context; returns its envelope info without consuming it.
    pub fn probe_unexpected(&self, src: SrcSel, tag: TagSel, ctx: u16) -> Option<RecvStatus> {
        self.unexpected.iter().find_map(|u| {
            let env = u.env();
            if !env_matches(env, ctx, src, tag) {
                return None;
            }
            let bytes = match u {
                Unexpected::Eager { data, .. } => data.len(),
                Unexpected::Rts { total, .. } => *total,
            };
            Some(RecvStatus {
                src: env.src,
                tag: env.tag,
                bytes,
            })
        })
    }

    /// Earliest *future* instant at which polling could make progress.
    pub fn next_event(&self) -> Option<SimTime> {
        let now = sim_core::now();
        let mut best: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            if let Some(t) = t {
                if t > now {
                    best = Some(match best {
                        None => t,
                        Some(b) => b.min(t),
                    });
                }
            }
        };
        for s in self.sends.values() {
            consider(s.source.next_event());
            if let SendPhase::Direct { rdma, .. } = &s.phase {
                consider(rdma.done_at());
            }
            if let SendPhase::Staged(ss) = &s.phase {
                for (c, _) in &ss.inflight {
                    consider(c.done_at());
                }
            }
        }
        for r in self.recvs.values() {
            consider(r.sink.next_event());
        }
        best
    }

    /// Block (in virtual time) until a packet arrives or the next known
    /// event instant passes.
    pub fn idle_block(&self) {
        self.nic.mailbox().wait_nonempty_until(self.next_event());
    }
}
