//! Collective operations, built over point-to-point on each communicator's
//! private collective context.
//!
//! The set real applications lean on: `barrier` (dissemination), `bcast`
//! (binomial tree), `gather`, `scatter`, `allgather`, `alltoall`, `reduce`,
//! `allreduce`, `sendrecv`. Collectives must be called in the same order by
//! every member (the MPI rule); a per-communicator sequence number isolates
//! consecutive collectives, and sub-communicators (from [`Comm::split`])
//! get disjoint contexts so concurrent collectives on different
//! communicators cannot interfere.
//!
//! `barrier`/`bcast`/`gather`/`scatter`/`allgather`/`alltoall` move data
//! through the normal staging machinery, so they work on **device buffers
//! too** — GPU-aware collectives, the natural extension of the paper's
//! design (and where MVAPICH2 went next). Reductions need to read the data
//! on the CPU and are defined for host buffers of primitive types.

use gpu_sim::Loc;
use hostmem::{HostBuf, Scalar};
use sim_core::san;

use crate::comm::Comm;
use crate::datatype::Datatype;
use crate::engine::{Engine, SrcSel, TagSel};
use crate::proto::ReqId;

/// Predefined reduction operators.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    /// MPI_SUM.
    Sum,
    /// MPI_PROD.
    Prod,
    /// MPI_MAX.
    Max,
    /// MPI_MIN.
    Min,
}

impl ReduceOp {
    fn fold<T: Scalar + PartialOrd + std::ops::Add<Output = T> + std::ops::Mul<Output = T>>(
        &self,
        a: T,
        b: T,
    ) -> T {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Max => {
                if b > a {
                    b
                } else {
                    a
                }
            }
            ReduceOp::Min => {
                if b < a {
                    b
                } else {
                    a
                }
            }
        }
    }
}

fn coll_wait(eng: &mut Engine, ids: Vec<ReqId>) {
    loop {
        eng.progress();
        let all = ids.iter().all(|&id| {
            if eng.is_send(id) {
                eng.send_done(id)
            } else {
                eng.recv_done(id).is_some()
            }
        });
        if all {
            break;
        }
        eng.idle_block();
    }
    for id in ids {
        if eng.is_send(id) {
            eng.reap_send(id);
        } else {
            eng.reap_recv(id);
        }
    }
}

fn combine_bytes(op: ReduceOp, dtype: &Datatype, acc: &mut [u8], inc: &[u8]) {
    fn fold_slice<T>(op: ReduceOp, acc: &mut [u8], inc: &[u8])
    where
        T: Scalar + PartialOrd + std::ops::Add<Output = T> + std::ops::Mul<Output = T>,
    {
        for (a, b) in acc.chunks_exact_mut(T::SIZE).zip(inc.chunks_exact(T::SIZE)) {
            let v = op.fold(T::read_le(a), T::read_le(b));
            v.write_le(a);
        }
    }
    match dtype
        .primitive_name()
        .expect("reductions are defined on primitive datatypes")
    {
        "MPI_FLOAT" => fold_slice::<f32>(op, acc, inc),
        "MPI_DOUBLE" => fold_slice::<f64>(op, acc, inc),
        "MPI_INT" => fold_slice::<i32>(op, acc, inc),
        "MPI_LONG" => fold_slice::<i64>(op, acc, inc),
        "MPI_BYTE" | "MPI_CHAR" => fold_slice::<u8>(op, acc, inc),
        other => panic!("no reduction defined for {other}"),
    }
}

impl Comm {
    /// `MPI_Barrier` (dissemination algorithm).
    pub fn barrier(&self) {
        self.engine().lock().counters.record("MPI_Barrier");
        self.dissemination();
    }

    /// Post-job quiesce for fault-injecting fabrics (no-op on a clean
    /// one, keeping fault-free runs bit-identical).
    ///
    /// A rank whose own requests have all completed may still owe its
    /// peers protocol replays: a lost FIN or FinDirect is recovered by
    /// the *peer* retransmitting, and only this rank can answer. If the
    /// rank simply exited, those retransmits would go unanswered and
    /// the peer's retry budget — not the fault schedule — would decide
    /// the outcome. The dissemination rounds here are driven through
    /// the engine itself (zero-byte eager messages, which the fault
    /// layer never touches), so waiting in them keeps draining the
    /// mailbox and answering replays; a rank can only leave once every
    /// rank has arrived, i.e. once everyone's requests are settled.
    pub fn finalize(&self) {
        let (faulty, bug_quiesce) = {
            let eng = self.engine().lock();
            // Finalize-time invariant checkpoint: this rank must be fully
            // quiesced (no unreaped requests, staging pools drained).
            let rank = eng.rank;
            san::proto_set(
                &format!("rank{rank}"),
                "live_requests",
                eng.live_requests() as i64,
            );
            san::proto_set("job", "finalizing_rank", rank as i64);
            san::invariant_checkpoint("finalize");
            (eng.is_faulty(), eng.cfg.bug_finalize_quiesce)
        };
        if !faulty {
            return;
        }
        if bug_quiesce {
            // Reintroduced liveness bug: skip the post-job dissemination, so
            // a finished rank stops answering its peers' protocol replays.
            return;
        }
        self.dissemination();
    }

    fn dissemination(&self) {
        let (rank, size) = (self.rank(), self.size());
        let base = self.next_coll_tag();
        let ctx = self.coll_ctx();
        let mut eng = self.engine().lock();
        if size == 1 {
            return;
        }
        let empty = HostBuf::alloc(0);
        let byte = Datatype::byte();
        byte.commit();
        let mut k = 1;
        let mut round = 0u32;
        while k < size {
            let dst = self.world_rank_of((rank + k) % size);
            let src = self.world_rank_of((rank + size - k) % size);
            let s = eng.isend(Loc::Host(empty.base()), 0, &byte, dst, base + round, ctx);
            let r = eng.irecv(
                Loc::Host(empty.base()),
                0,
                &byte,
                SrcSel(Some(src)),
                TagSel(Some(base + round)),
                ctx,
            );
            coll_wait(&mut eng, vec![s, r]);
            k *= 2;
            round += 1;
        }
    }

    /// `MPI_Bcast`: binomial tree from `root` (group rank). Works on host
    /// and device buffers.
    pub fn bcast(&self, buf: impl Into<Loc>, count: usize, dtype: &Datatype, root: usize) {
        let buf = buf.into();
        let (rank, size) = (self.rank(), self.size());
        let tag = self.next_coll_tag();
        let ctx = self.coll_ctx();
        let mut eng = self.engine().lock();
        eng.counters.record("MPI_Bcast");
        if size == 1 {
            return;
        }
        let vrank = (rank + size - root) % size;
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask != 0 {
                let src = self.world_rank_of((vrank - mask + root) % size);
                let id = eng.irecv(
                    buf.clone(),
                    count,
                    dtype,
                    SrcSel(Some(src)),
                    TagSel(Some(tag)),
                    ctx,
                );
                coll_wait(&mut eng, vec![id]);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank & mask == 0 && vrank + mask < size {
                let dst = self.world_rank_of((vrank + mask + root) % size);
                let id = eng.isend(buf.clone(), count, dtype, dst, tag, ctx);
                coll_wait(&mut eng, vec![id]);
            }
            mask >>= 1;
        }
    }

    /// `MPI_Gather`: every rank's `(sendbuf, count, dtype)` lands in
    /// `recvbuf` at rank `root`, block `i` at byte offset
    /// `i * count * extent`. `recvbuf` is only read on the root. Works on
    /// host and device buffers (the root's own block travels as a
    /// self-message through the same machinery).
    pub fn gather(
        &self,
        sendbuf: impl Into<Loc>,
        recvbuf: impl Into<Loc>,
        count: usize,
        dtype: &Datatype,
        root: usize,
    ) {
        let (sendbuf, recvbuf) = (sendbuf.into(), recvbuf.into());
        let (rank, size) = (self.rank(), self.size());
        let tag = self.next_coll_tag();
        let ctx = self.coll_ctx();
        let root_world = self.world_rank_of(root);
        let mut eng = self.engine().lock();
        eng.counters.record("MPI_Gather");
        let ext = dtype.extent();
        assert!(ext > 0, "gather needs a positive-extent datatype");
        let block = count * ext as usize;
        let mut ids = vec![eng.isend(sendbuf, count, dtype, root_world, tag, ctx)];
        if rank == root {
            for i in 0..size {
                ids.push(eng.irecv(
                    recvbuf.add(i * block),
                    count,
                    dtype,
                    SrcSel(Some(self.world_rank_of(i))),
                    TagSel(Some(tag)),
                    ctx,
                ));
            }
        }
        coll_wait(&mut eng, ids);
    }

    /// `MPI_Scatter`: block `i` of `sendbuf` on `root` (at byte offset
    /// `i * count * extent`) lands in every rank `i`'s `recvbuf`.
    pub fn scatter(
        &self,
        sendbuf: impl Into<Loc>,
        recvbuf: impl Into<Loc>,
        count: usize,
        dtype: &Datatype,
        root: usize,
    ) {
        let (sendbuf, recvbuf) = (sendbuf.into(), recvbuf.into());
        let (rank, size) = (self.rank(), self.size());
        let tag = self.next_coll_tag();
        let ctx = self.coll_ctx();
        let root_world = self.world_rank_of(root);
        let mut eng = self.engine().lock();
        eng.counters.record("MPI_Scatter");
        let ext = dtype.extent();
        assert!(ext > 0, "scatter needs a positive-extent datatype");
        let block = count * ext as usize;
        let mut ids = vec![eng.irecv(
            recvbuf,
            count,
            dtype,
            SrcSel(Some(root_world)),
            TagSel(Some(tag)),
            ctx,
        )];
        if rank == root {
            for i in 0..size {
                ids.push(eng.isend(
                    sendbuf.add(i * block),
                    count,
                    dtype,
                    self.world_rank_of(i),
                    tag,
                    ctx,
                ));
            }
        }
        coll_wait(&mut eng, ids);
    }

    /// `MPI_Allgather`: gather to rank 0, then broadcast the assembled
    /// buffer.
    pub fn allgather(
        &self,
        sendbuf: impl Into<Loc>,
        recvbuf: impl Into<Loc>,
        count: usize,
        dtype: &Datatype,
    ) {
        let recvbuf = recvbuf.into();
        let n = self.size();
        self.gather(sendbuf, recvbuf.clone(), count, dtype, 0);
        self.bcast(recvbuf, n * count, dtype, 0);
    }

    /// `MPI_Alltoall`: rank `i`'s block `j` lands in rank `j`'s block `i`.
    /// All transfers are posted nonblocking and drained together, so the
    /// schedule is deadlock-free for any communicator size.
    pub fn alltoall(
        &self,
        sendbuf: impl Into<Loc>,
        recvbuf: impl Into<Loc>,
        count: usize,
        dtype: &Datatype,
    ) {
        let (sendbuf, recvbuf) = (sendbuf.into(), recvbuf.into());
        let size = self.size();
        let tag = self.next_coll_tag();
        let ctx = self.coll_ctx();
        let mut eng = self.engine().lock();
        eng.counters.record("MPI_Alltoall");
        let ext = dtype.extent();
        assert!(ext > 0, "alltoall needs a positive-extent datatype");
        let block = count * ext as usize;
        let mut ids = Vec::with_capacity(2 * size);
        for peer in 0..size {
            ids.push(eng.irecv(
                recvbuf.add(peer * block),
                count,
                dtype,
                SrcSel(Some(self.world_rank_of(peer))),
                TagSel(Some(tag)),
                ctx,
            ));
        }
        for peer in 0..size {
            ids.push(eng.isend(
                sendbuf.add(peer * block),
                count,
                dtype,
                self.world_rank_of(peer),
                tag,
                ctx,
            ));
        }
        coll_wait(&mut eng, ids);
    }

    /// `MPI_Reduce` for host buffers of primitive types: elementwise `op`
    /// into `recvbuf` on `root` (only read there).
    pub fn reduce(
        &self,
        sendbuf: &hostmem::HostPtr,
        recvbuf: &hostmem::HostPtr,
        count: usize,
        dtype: &Datatype,
        op: ReduceOp,
        root: usize,
    ) {
        assert!(
            dtype.primitive_name().is_some(),
            "reductions are defined on primitive datatypes"
        );
        let (rank, size) = (self.rank(), self.size());
        let tag = self.next_coll_tag();
        let ctx = self.coll_ctx();
        let root_world = self.world_rank_of(root);
        let mut eng = self.engine().lock();
        eng.counters.record("MPI_Reduce");
        let bytes = count * dtype.size();
        if rank != root {
            let id = eng.isend(
                Loc::Host(sendbuf.clone()),
                count,
                dtype,
                root_world,
                tag,
                ctx,
            );
            coll_wait(&mut eng, vec![id]);
            return;
        }
        let mut acc = sendbuf.read(bytes);
        let scratch = HostBuf::alloc(bytes);
        for src in 0..size {
            if src == root {
                continue;
            }
            let id = eng.irecv(
                Loc::Host(scratch.base()),
                count,
                dtype,
                SrcSel(Some(self.world_rank_of(src))),
                TagSel(Some(tag)),
                ctx,
            );
            coll_wait(&mut eng, vec![id]);
            combine_bytes(op, dtype, &mut acc, &scratch.read(0, bytes));
        }
        recvbuf.write(&acc);
    }

    /// `MPI_Allreduce`: reduce to rank 0, broadcast the result.
    pub fn allreduce(
        &self,
        sendbuf: &hostmem::HostPtr,
        recvbuf: &hostmem::HostPtr,
        count: usize,
        dtype: &Datatype,
        op: ReduceOp,
    ) {
        self.reduce(sendbuf, recvbuf, count, dtype, op, 0);
        self.bcast(Loc::Host(recvbuf.clone()), count, dtype, 0);
    }

    /// `MPI_Sendrecv`: simultaneous send and receive (deadlock-free).
    /// Returns the receive status.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &self,
        sendbuf: impl Into<Loc>,
        sendcount: usize,
        sendtype: &Datatype,
        dst: usize,
        sendtag: u32,
        recvbuf: impl Into<Loc>,
        recvcount: usize,
        recvtype: &Datatype,
        src: impl Into<SrcSel>,
        recvtag: impl Into<TagSel>,
    ) -> crate::engine::RecvStatus {
        let r = self.irecv(recvbuf, recvcount, recvtype, src, recvtag);
        let s = self.isend(sendbuf, sendcount, sendtype, dst, sendtag);
        let stats = self.waitall(vec![r, s]);
        stats[0].expect("sendrecv must produce a status")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::MpiWorld;
    use hostmem::{bytes_to_scalars, scalars_to_bytes};

    #[test]
    fn bcast_reaches_every_rank() {
        MpiWorld::new(6).run(|comm| {
            let t = Datatype::int();
            t.commit();
            let buf = HostBuf::alloc(40);
            if comm.rank() == 2 {
                buf.write(0, &scalars_to_bytes(&(0..10).collect::<Vec<i32>>()));
            }
            comm.bcast(buf.base(), 10, &t, 2);
            assert_eq!(
                bytes_to_scalars::<i32>(&buf.read(0, 40)),
                (0..10).collect::<Vec<_>>(),
                "rank {}",
                comm.rank()
            );
        });
    }

    #[test]
    fn bcast_large_rendezvous_payload() {
        MpiWorld::new(4).run(|comm| {
            let t = Datatype::byte();
            t.commit();
            let n = 300 << 10;
            let buf = HostBuf::alloc(n);
            if comm.rank() == 0 {
                buf.write(0, &vec![0xabu8; n]);
            }
            comm.bcast(buf.base(), n, &t, 0);
            assert_eq!(buf.read(n - 16, 16), vec![0xabu8; 16]);
        });
    }

    #[test]
    fn gather_assembles_blocks_in_rank_order() {
        MpiWorld::new(4).run(|comm| {
            let t = Datatype::int();
            t.commit();
            let me = comm.rank() as i32;
            let send = HostBuf::from_vec(scalars_to_bytes(&[me * 10, me * 10 + 1]));
            let recv = HostBuf::alloc(4 * 8);
            comm.gather(send.base(), recv.base(), 2, &t, 1);
            if comm.rank() == 1 {
                assert_eq!(
                    bytes_to_scalars::<i32>(&recv.read(0, 32)),
                    vec![0, 1, 10, 11, 20, 21, 30, 31]
                );
            }
        });
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        MpiWorld::new(3).run(|comm| {
            let t = Datatype::double();
            t.commit();
            let me = comm.rank() as f64;
            let send = HostBuf::from_vec(scalars_to_bytes(&[me + 0.5]));
            let recv = HostBuf::alloc(3 * 8);
            comm.allgather(send.base(), recv.base(), 1, &t);
            assert_eq!(
                bytes_to_scalars::<f64>(&recv.read(0, 24)),
                vec![0.5, 1.5, 2.5]
            );
        });
    }

    #[test]
    fn reduce_sum_and_max() {
        MpiWorld::new(5).run(|comm| {
            let t = Datatype::int();
            t.commit();
            let me = comm.rank() as i32;
            let send = HostBuf::from_vec(scalars_to_bytes(&[me, 100 - me]));
            let recv = HostBuf::alloc(8);
            comm.reduce(&send.base(), &recv.base(), 2, &t, ReduceOp::Sum, 0);
            if comm.rank() == 0 {
                assert_eq!(
                    bytes_to_scalars::<i32>(&recv.read(0, 8)),
                    vec![1 + 2 + 3 + 4, 100 + 99 + 98 + 97 + 96]
                );
            }
            comm.reduce(&send.base(), &recv.base(), 2, &t, ReduceOp::Max, 3);
            if comm.rank() == 3 {
                assert_eq!(bytes_to_scalars::<i32>(&recv.read(0, 8)), vec![4, 100]);
            }
        });
    }

    #[test]
    fn allreduce_min_on_doubles() {
        MpiWorld::new(4).run(|comm| {
            let t = Datatype::double();
            t.commit();
            let me = comm.rank() as f64;
            let send = HostBuf::from_vec(scalars_to_bytes(&[me * 2.0 + 1.0]));
            let recv = HostBuf::alloc(8);
            comm.allreduce(&send.base(), &recv.base(), 1, &t, ReduceOp::Min);
            assert_eq!(bytes_to_scalars::<f64>(&recv.read(0, 8)), vec![1.0]);
        });
    }

    #[test]
    fn scatter_distributes_root_blocks() {
        MpiWorld::new(4).run(|comm| {
            let t = Datatype::int();
            t.commit();
            let send = HostBuf::alloc(4 * 8);
            if comm.rank() == 2 {
                send.write(0, &scalars_to_bytes(&(0..8).collect::<Vec<i32>>()));
            }
            let recv = HostBuf::alloc(8);
            comm.scatter(send.base(), recv.base(), 2, &t, 2);
            let me = comm.rank() as i32;
            assert_eq!(
                bytes_to_scalars::<i32>(&recv.read(0, 8)),
                vec![me * 2, me * 2 + 1]
            );
        });
    }

    #[test]
    fn alltoall_transposes_blocks() {
        // Including a non-power-of-two size.
        for n in [3usize, 4] {
            MpiWorld::new(n).run(move |comm| {
                let t = Datatype::int();
                t.commit();
                let me = comm.rank() as i32;
                let send = HostBuf::from_vec(scalars_to_bytes(
                    &(0..n as i32).map(|j| me * 100 + j).collect::<Vec<_>>(),
                ));
                let recv = HostBuf::alloc(n * 4);
                comm.alltoall(send.base(), recv.base(), 1, &t);
                assert_eq!(
                    bytes_to_scalars::<i32>(&recv.read(0, n * 4)),
                    (0..n as i32).map(|j| j * 100 + me).collect::<Vec<_>>(),
                    "rank {me} of {n}"
                );
            });
        }
    }

    #[test]
    fn scatter_then_gather_is_identity() {
        MpiWorld::new(4).run(|comm| {
            let t = Datatype::double();
            t.commit();
            let data: Vec<f64> = (0..12).map(|i| i as f64 * 0.5).collect();
            let root_buf = HostBuf::alloc(12 * 8);
            if comm.rank() == 0 {
                root_buf.write(0, &scalars_to_bytes(&data));
            }
            let mine = HostBuf::alloc(3 * 8);
            comm.scatter(root_buf.base(), mine.base(), 3, &t, 0);
            let out = HostBuf::alloc(12 * 8);
            comm.gather(mine.base(), out.base(), 3, &t, 0);
            if comm.rank() == 0 {
                assert_eq!(bytes_to_scalars::<f64>(&out.read(0, 96)), data);
            }
        });
    }

    #[test]
    fn sendrecv_exchanges_without_deadlock() {
        MpiWorld::new(2).run(|comm| {
            let t = Datatype::byte();
            t.commit();
            let me = comm.rank();
            let peer = 1 - me;
            // Large enough that a naive send+send would rendezvous-block.
            let n = 200 << 10;
            let out = HostBuf::from_vec(vec![me as u8 + 1; n]);
            let inb = HostBuf::alloc(n);
            let st = comm.sendrecv(out.base(), n, &t, peer, 0, inb.base(), n, &t, peer, 0u32);
            assert_eq!(st.bytes, n);
            assert_eq!(inb.read(0, 8), vec![peer as u8 + 1; 8]);
        });
    }

    #[test]
    fn consecutive_collectives_do_not_cross_talk() {
        MpiWorld::new(3).run(|comm| {
            let t = Datatype::int();
            t.commit();
            let a = HostBuf::alloc(4);
            let b = HostBuf::alloc(4);
            if comm.rank() == 0 {
                a.write(0, &scalars_to_bytes(&[111i32]));
                b.write(0, &scalars_to_bytes(&[222i32]));
            }
            comm.bcast(a.base(), 1, &t, 0);
            comm.bcast(b.base(), 1, &t, 0);
            assert_eq!(bytes_to_scalars::<i32>(&a.read(0, 4)), vec![111]);
            assert_eq!(bytes_to_scalars::<i32>(&b.read(0, 4)), vec![222]);
        });
    }

    #[test]
    #[should_panic(expected = "reductions are defined on primitive")]
    fn reduce_on_derived_type_is_rejected() {
        MpiWorld::new(2).run(|comm| {
            let t = Datatype::vector(2, 1, 2, &Datatype::int());
            t.commit();
            let buf = HostBuf::alloc(64);
            comm.reduce(&buf.base(), &buf.base(), 1, &t, ReduceOp::Sum, 0);
        });
    }

    // --- sub-communicators ---------------------------------------------------

    #[test]
    fn split_even_odd_groups() {
        MpiWorld::new(6).run(|comm| {
            let sub = comm.split((comm.rank() % 2) as i64, 0).unwrap();
            assert_eq!(sub.size(), 3);
            assert_eq!(sub.rank(), comm.rank() / 2);
            assert_eq!(sub.world_rank(), comm.rank());
            // Collective inside the subcomm: sum of world ranks of members.
            let t = Datatype::int();
            t.commit();
            let send = HostBuf::from_vec(scalars_to_bytes(&[comm.rank() as i32]));
            let recv = HostBuf::alloc(4);
            sub.allreduce(&send.base(), &recv.base(), 1, &t, ReduceOp::Sum);
            let expect = if comm.rank() % 2 == 0 {
                2 + 4
            } else {
                1 + 3 + 5
            };
            assert_eq!(bytes_to_scalars::<i32>(&recv.read(0, 4)), vec![expect]);
        });
    }

    #[test]
    fn split_key_reorders_ranks() {
        MpiWorld::new(4).run(|comm| {
            // All one color, keys in reverse: group order flips.
            let sub = comm
                .split(7, -(comm.rank() as i64))
                .expect("all ranks join");
            assert_eq!(sub.size(), 4);
            assert_eq!(sub.rank(), 3 - comm.rank());
        });
    }

    #[test]
    fn split_undefined_color_returns_none() {
        MpiWorld::new(4).run(|comm| {
            let sub = comm.split(if comm.rank() == 0 { -1 } else { 0 }, 0);
            if comm.rank() == 0 {
                assert!(sub.is_none());
            } else {
                let sub = sub.unwrap();
                assert_eq!(sub.size(), 3);
                // The subcomm still works without rank 0.
                sub.barrier();
            }
        });
    }

    #[test]
    fn p2p_inside_subcomm_uses_group_ranks() {
        MpiWorld::new(4).run(|comm| {
            let color = (comm.rank() / 2) as i64; // {0,1} and {2,3}
            let sub = comm.split(color, 0).unwrap();
            let t = Datatype::int();
            t.commit();
            let buf = HostBuf::alloc(4);
            if sub.rank() == 0 {
                buf.write(0, &scalars_to_bytes(&[comm.rank() as i32]));
                sub.send(buf.base(), 1, &t, 1, 0);
            } else {
                let st = sub.recv(buf.base(), 1, &t, crate::ANY_SOURCE, 0u32);
                assert_eq!(st.src, 0, "status must carry the group rank");
                // The payload is the partner's world rank.
                let v = bytes_to_scalars::<i32>(&buf.read(0, 4))[0];
                assert_eq!(v as usize, comm.rank() - 1);
            }
        });
    }

    #[test]
    fn wildcard_recv_cannot_see_other_subcomm() {
        MpiWorld::new(4).run(|comm| {
            let sub = comm.split((comm.rank() % 2) as i64, 0).unwrap();
            let t = Datatype::int();
            t.commit();
            let buf = HostBuf::from_vec(scalars_to_bytes(&[comm.rank() as i32]));
            // Everyone sends within their subcomm; ANY_SOURCE must only
            // match the same-color partner even though all four messages
            // are in flight with the same tag.
            let inb = HostBuf::alloc(4);
            let r = sub.irecv(inb.base(), 1, &t, crate::ANY_SOURCE, 5u32);
            let peer = 1 - sub.rank();
            sub.send(buf.base(), 1, &t, peer, 5);
            sub.wait(r);
            let got = bytes_to_scalars::<i32>(&inb.read(0, 4))[0] as usize;
            assert_eq!(got % 2, comm.rank() % 2, "crossed subcommunicator!");
        });
    }

    #[test]
    fn dup_is_isolated_from_parent() {
        MpiWorld::new(2).run(|comm| {
            let dup = comm.dup();
            let t = Datatype::int();
            t.commit();
            let a = HostBuf::from_vec(scalars_to_bytes(&[1i32]));
            let b = HostBuf::from_vec(scalars_to_bytes(&[2i32]));
            let ra = HostBuf::alloc(4);
            let rb = HostBuf::alloc(4);
            let peer = 1 - comm.rank();
            // Same tag on both communicators, posted crosswise.
            let r1 = comm.irecv(ra.base(), 1, &t, peer, 3u32);
            let r2 = dup.irecv(rb.base(), 1, &t, peer, 3u32);
            dup.send(b.base(), 1, &t, peer, 3);
            comm.send(a.base(), 1, &t, peer, 3);
            comm.wait(r1);
            dup.wait(r2);
            assert_eq!(bytes_to_scalars::<i32>(&ra.read(0, 4)), vec![1]);
            assert_eq!(bytes_to_scalars::<i32>(&rb.read(0, 4)), vec![2]);
        });
    }

    #[test]
    fn nested_splits_allocate_distinct_contexts() {
        MpiWorld::new(4).run(|comm| {
            let half = comm.split((comm.rank() / 2) as i64, 0).unwrap();
            let quarter = half.split(half.rank() as i64, 0).unwrap();
            assert_eq!(quarter.size(), 1);
            quarter.barrier();
            half.barrier();
            comm.barrier();
        });
    }
}
