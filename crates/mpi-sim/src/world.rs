//! Job launcher: spawn `n` ranks as simulation processes, each with a
//! [`Comm`], and run the whole job to completion in virtual time.

use std::sync::Arc;

use ib_sim::{DeliveryScheduler, Fabric, FaultSpec, NetModel, ShmModel, Topology};
use sim_core::{ExecMode, Report, SanitizerMode, Sim, SimTime};

use crate::comm::Comm;
use crate::proto::MpiConfig;

/// A simulated MPI job on a cluster of nodes. By default each rank gets
/// its own node (ppn = 1); [`with_ppn`](MpiWorld::with_ppn) or
/// [`with_topology`](MpiWorld::with_topology) place several ranks per node,
/// where they share one HCA and talk over the shared-memory channel.
pub struct MpiWorld {
    n: usize,
    net: NetModel,
    shm: ShmModel,
    topo: Option<Topology>,
    cfg: MpiConfig,
    sanitizer: SanitizerMode,
    faults: Option<FaultSpec>,
    recorder: Option<sim_trace::Recorder>,
    scheduler: Option<Arc<dyn DeliveryScheduler>>,
    exec: Option<ExecMode>,
}

impl MpiWorld {
    /// A job of `n` ranks with default (QDR, MVAPICH2-like) settings.
    pub fn new(n: usize) -> Self {
        MpiWorld {
            n,
            net: NetModel::qdr(),
            shm: ShmModel::westmere(),
            topo: None,
            cfg: MpiConfig::default(),
            sanitizer: SanitizerMode::Off,
            faults: None,
            recorder: None,
            scheduler: None,
            exec: None,
        }
    }

    /// Select the process carrier explicitly (see [`ExecMode`]): fibers on
    /// one kernel thread (`Event`, the default) or one OS thread per rank
    /// (`Threads`). Virtual-time results are identical either way.
    pub fn with_exec(mut self, mode: ExecMode) -> Self {
        self.exec = Some(mode);
        self
    }

    /// Place `ppn` consecutive ranks on each node (blocked mapping: ranks
    /// `[k*ppn, (k+1)*ppn)` share node `k`). `ppn` must evenly divide the
    /// world size; checked at job launch.
    pub fn with_ppn(mut self, ppn: usize) -> Self {
        self.cfg.ppn = ppn;
        self
    }

    /// Use an explicit rank→node map instead of the blocked `ppn` layout
    /// (e.g. a round-robin placement). Overrides
    /// [`with_ppn`](MpiWorld::with_ppn).
    pub fn with_topology(mut self, topo: Topology) -> Self {
        self.topo = Some(topo);
        self
    }

    /// Override the intra-node shared-memory channel cost model.
    pub fn with_shm(mut self, shm: ShmModel) -> Self {
        self.shm = shm;
        self
    }

    /// Record the job onto `rec`: every rank's protocol engine and every
    /// HCA transmit engine emit trace events (see the `sim-trace` crate).
    pub fn with_recorder(mut self, rec: sim_trace::Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Override the MPI configuration.
    pub fn with_config(mut self, cfg: MpiConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Override the network model.
    pub fn with_net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }

    /// Run the job under the simulation sanitizer (see [`sim_core::san`]).
    pub fn with_sanitizer(mut self, mode: SanitizerMode) -> Self {
        self.sanitizer = mode;
        self
    }

    /// Run the job on a fault-injecting fabric (see [`FaultSpec`]): control
    /// packets drop and delay, RDMA writes fail, registration hits a pin
    /// limit — all from a seeded deterministic schedule. The MPI layer
    /// retries/recovers; data delivered must be identical to a fault-free
    /// run.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Hand control-packet delivery ordering to `s` (see
    /// [`DeliveryScheduler`]) — the hook model checkers drive to explore
    /// interleavings. Without this the fabric's FIFO order applies.
    pub fn with_scheduler(mut self, s: Arc<dyn DeliveryScheduler>) -> Self {
        self.scheduler = Some(s);
        self
    }

    /// Run `f` on every rank (host-only MPI; device buffers panic). Returns
    /// the virtual time when the last rank finished.
    pub fn run<F>(self, f: F) -> SimTime
    where
        F: Fn(Comm) + Send + Sync + 'static,
    {
        self.run_with_reports(f).0
    }

    /// Like [`run`](MpiWorld::run), also returning the sanitizer reports
    /// collected during the job (empty when the sanitizer is off).
    pub fn run_with_reports<F>(self, f: F) -> (SimTime, Vec<Report>)
    where
        F: Fn(Comm) + Send + Sync + 'static,
    {
        let (end, reports) = self.try_run_with_reports(f);
        match end {
            Ok(t) => (t, reports),
            Err(msg) => std::panic::panic_any(msg),
        }
    }

    /// Like [`run_with_reports`](MpiWorld::run_with_reports), but a panic
    /// anywhere in the job (protocol violation, sanitizer in `Panic` mode,
    /// deadlock, `MPI_Wait` failure) is caught and returned as `Err` with
    /// its message — together with every report collected up to that point.
    /// This is how a model checker observes a schedule's verdict without
    /// tearing down its own process.
    pub fn try_run_with_reports<F>(self, f: F) -> (Result<SimTime, String>, Vec<Report>)
    where
        F: Fn(Comm) + Send + Sync + 'static,
    {
        let sim = Sim::new();
        if let Some(mode) = self.exec {
            sim.set_exec_mode(mode);
        }
        sim.set_sanitizer(self.sanitizer);
        if let Err(e) = self.cfg.try_validate_topology(self.n) {
            panic!("MpiConfig: {e}");
        }
        let topo = self
            .topo
            .clone()
            .unwrap_or_else(|| Topology::uniform(self.n / self.cfg.ppn, self.cfg.ppn));
        assert_eq!(
            topo.num_ranks(),
            self.n,
            "topology places {} endpoint(s) but the job has {} rank(s)",
            topo.num_ranks(),
            self.n
        );
        let fabric = Fabric::with_topology(
            topo,
            self.net.clone(),
            self.shm.clone(),
            self.faults.clone(),
        );
        // Fabric delivery rides the event-driven pump: pending-heap entries
        // drained by a stackless tick instead of one boxed closure per
        // packet. Exact-wake discipline — virtual times are unchanged.
        fabric.attach_event_pump(&sim);
        let rec = self
            .recorder
            .clone()
            .unwrap_or_else(sim_trace::Recorder::off);
        fabric.attach_recorder(&rec);
        if let Some(s) = self.scheduler.clone() {
            fabric.set_delivery_scheduler(s);
        }
        let f = Arc::new(f);
        for rank in 0..self.n {
            let fabric = fabric.clone();
            let cfg = self.cfg.clone();
            let f = Arc::clone(&f);
            let rec = rec.clone();
            let n = self.n;
            sim.spawn(format!("rank{rank}"), move || {
                let comm =
                    Comm::create_traced(fabric.nic(rank), rank, n, cfg, Arc::new(Vec::new()), &rec);
                f(comm.clone());
                comm.finalize();
            });
        }
        let end = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run()))
            .map_err(panic_message);
        (end, sim.sanitizer_reports())
    }
}

/// Render a caught panic payload as its message (panics carry `String` or
/// `&'static str`; anything else gets a placeholder).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "<non-string panic payload>".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::Datatype;
    use crate::engine::{Request, ANY_SOURCE, ANY_TAG};
    use hostmem::HostBuf;
    use std::sync::Mutex;

    #[test]
    fn eager_ping_pong() {
        MpiWorld::new(2).run(|comm| {
            let t = Datatype::int();
            t.commit();
            let buf = HostBuf::alloc(64);
            if comm.rank() == 0 {
                buf.write(0, &hostmem::scalars_to_bytes(&[1i32, 2, 3, 4]));
                comm.send(buf.base(), 4, &t, 1, 7);
                let st = comm.recv(buf.base(), 16, &t, 1, 8);
                assert_eq!(st.bytes, 16);
                assert_eq!(
                    hostmem::bytes_to_scalars::<i32>(&buf.read(0, 16)),
                    vec![2, 4, 6, 8]
                );
            } else {
                let st = comm.recv(buf.base(), 16, &t, 0, 7);
                assert_eq!((st.src, st.tag, st.bytes), (0, 7, 16));
                let mut v = hostmem::bytes_to_scalars::<i32>(&buf.read(0, 16));
                for x in &mut v {
                    *x *= 2;
                }
                buf.write(0, &hostmem::scalars_to_bytes(&v));
                comm.send(buf.base(), 4, &t, 0, 8);
            }
        });
    }

    #[test]
    fn rendezvous_direct_large_contiguous() {
        MpiWorld::new(2).run(|comm| {
            let t = Datatype::byte();
            t.commit();
            let n = 1 << 20;
            if comm.rank() == 0 {
                let buf = HostBuf::from_vec((0..n).map(|i| (i % 253) as u8).collect());
                comm.send(buf.base(), n, &t, 1, 0);
            } else {
                let buf = HostBuf::alloc(n);
                let st = comm.recv(buf.base(), n, &t, 0, 0);
                assert_eq!(st.bytes, n);
                assert!((0..n).all(|i| buf.read(i, 1)[0] == (i % 253) as u8));
            }
        });
    }

    #[test]
    fn rendezvous_staged_vector_datatype() {
        MpiWorld::new(2).run(|comm| {
            // 64Ki rows of 4 bytes, stride 16: 256 KiB of data in a 1 MiB
            // buffer — forces the staged (vbuf) pipeline path.
            let t = Datatype::vector(1 << 16, 1, 4, &Datatype::float());
            t.commit();
            if comm.rank() == 0 {
                let buf = HostBuf::from_vec((0..(1 << 20)).map(|i| (i % 249) as u8).collect());
                comm.send(buf.base(), 1, &t, 1, 3);
            } else {
                let buf = HostBuf::alloc(1 << 20);
                let st = comm.recv(buf.base(), 1, &t, 0, 3);
                assert_eq!(st.bytes, 256 << 10);
                // Every 16-byte row: first 4 bytes transferred, rest zero.
                for r in [0usize, 1, 1000, 65535] {
                    let o = r * 16;
                    let expect: Vec<u8> = (o..o + 4).map(|i| (i % 249) as u8).collect();
                    assert_eq!(buf.read(o, 4), expect, "row {r}");
                    assert_eq!(buf.read(o + 4, 12), vec![0u8; 12], "row {r} hole");
                }
            }
        });
    }

    #[test]
    fn any_source_any_tag() {
        MpiWorld::new(3).run(|comm| {
            let t = Datatype::int();
            t.commit();
            match comm.rank() {
                0 => {
                    let buf = HostBuf::alloc(8);
                    let mut seen = Vec::new();
                    for _ in 0..2 {
                        let st = comm.recv(buf.base(), 1, &t, ANY_SOURCE, ANY_TAG);
                        seen.push((st.src, st.tag));
                    }
                    seen.sort_unstable();
                    assert_eq!(seen, vec![(1, 11), (2, 22)]);
                }
                r => {
                    let buf = HostBuf::from_vec(vec![r as u8; 4]);
                    comm.send(buf.base(), 1, &t, 0, (r * 11) as u32);
                }
            }
        });
    }

    #[test]
    fn unexpected_messages_match_later_posts() {
        MpiWorld::new(2).run(|comm| {
            let t = Datatype::byte();
            t.commit();
            if comm.rank() == 0 {
                for tag in 0..4u32 {
                    let buf = HostBuf::from_vec(vec![tag as u8; 32]);
                    comm.send(buf.base(), 32, &t, 1, tag);
                }
            } else {
                // Delay posting, then post in reverse tag order: each recv
                // must match by tag from the unexpected queue.
                sim_core::sleep(sim_core::SimDur::from_millis(1));
                for tag in (0..4u32).rev() {
                    let buf = HostBuf::alloc(32);
                    let st = comm.recv(buf.base(), 32, &t, 0, tag);
                    assert_eq!(st.tag, tag);
                    assert_eq!(buf.read(0, 32), vec![tag as u8; 32]);
                }
            }
        });
    }

    #[test]
    fn non_overtaking_same_tag() {
        MpiWorld::new(2).run(|comm| {
            let t = Datatype::byte();
            t.commit();
            if comm.rank() == 0 {
                for i in 0..8u8 {
                    let buf = HostBuf::from_vec(vec![i; 16]);
                    comm.send(buf.base(), 16, &t, 1, 5);
                }
            } else {
                for i in 0..8u8 {
                    let buf = HostBuf::alloc(16);
                    comm.recv(buf.base(), 16, &t, 0, 5);
                    assert_eq!(buf.read(0, 16), vec![i; 16], "message order violated");
                }
            }
        });
    }

    #[test]
    fn isend_irecv_waitall_bidirectional() {
        MpiWorld::new(2).run(|comm| {
            let t = Datatype::byte();
            t.commit();
            let me = comm.rank();
            let peer = 1 - me;
            let n = 300 << 10; // rendezvous-sized both ways
            let sendbuf = HostBuf::from_vec(vec![me as u8 + 1; n]);
            let recvbuf = HostBuf::alloc(n);
            let r = comm.irecv(recvbuf.base(), n, &t, peer, 1u32);
            let s = comm.isend(sendbuf.base(), n, &t, peer, 1);
            let stats = comm.waitall(vec![r, s]);
            assert_eq!(stats[0].unwrap().bytes, n);
            assert_eq!(recvbuf.read(0, n), vec![peer as u8 + 1; n]);
        });
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        let after = Arc::new(Mutex::new(Vec::new()));
        let after2 = Arc::clone(&after);
        MpiWorld::new(4).run(move |comm| {
            // Rank r works for r ms before the barrier.
            sim_core::sleep(sim_core::SimDur::from_millis(comm.rank() as u64));
            comm.barrier();
            after2.lock().unwrap().push((comm.rank(), sim_core::now()));
        });
        let times = after.lock().unwrap().clone();
        let slowest = times.iter().map(|&(_, t)| t).min().unwrap();
        for (r, t) in times {
            assert!(
                t >= SimTime::from_nanos(3_000_000),
                "rank {r} left the barrier at {t}, before the slowest rank arrived"
            );
            assert!(t >= slowest);
        }
    }

    #[test]
    fn waitany_returns_first_completion() {
        MpiWorld::new(2).run(|comm| {
            let t = Datatype::byte();
            t.commit();
            if comm.rank() == 0 {
                // Tag 7 arrives much later than tag 8.
                sim_core::sleep(sim_core::SimDur::from_millis(2));
                let b = HostBuf::from_vec(vec![8; 16]);
                comm.send(b.base(), 16, &t, 1, 8);
                sim_core::sleep(sim_core::SimDur::from_millis(2));
                let a = HostBuf::from_vec(vec![7; 16]);
                comm.send(a.base(), 16, &t, 1, 7);
            } else {
                let ba = HostBuf::alloc(16);
                let bb = HostBuf::alloc(16);
                let reqs = vec![
                    comm.irecv(ba.base(), 16, &t, 0, 7u32),
                    comm.irecv(bb.base(), 16, &t, 0, 8u32),
                ];
                let (idx, st) = comm.waitany(&reqs);
                assert_eq!(idx, 1, "tag 8 completes first");
                assert_eq!(st.unwrap().tag, 8);
                let remaining: Vec<Request> = reqs
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| *i != idx)
                    .map(|(_, r)| r)
                    .collect();
                comm.waitall(remaining);
                assert_eq!(ba.read(0, 16), vec![7; 16]);
            }
        });
    }

    #[test]
    fn testall_reports_only_when_all_done() {
        MpiWorld::new(2).run(|comm| {
            let t = Datatype::byte();
            t.commit();
            if comm.rank() == 0 {
                let b = HostBuf::from_vec(vec![1; 8]);
                comm.send(b.base(), 8, &t, 1, 0);
                sim_core::sleep(sim_core::SimDur::from_millis(1));
                comm.send(b.base(), 8, &t, 1, 1);
            } else {
                let ba = HostBuf::alloc(8);
                let bb = HostBuf::alloc(8);
                let reqs = vec![
                    comm.irecv(ba.base(), 8, &t, 0, 0u32),
                    comm.irecv(bb.base(), 8, &t, 0, 1u32),
                ];
                // Give the first message time to land, not the second.
                sim_core::sleep(sim_core::SimDur::from_micros(500));
                assert!(!comm.testall(&reqs), "second message not yet sent");
                comm.waitall(reqs);
            }
        });
    }

    #[test]
    fn test_polls_without_blocking() {
        MpiWorld::new(2).run(|comm| {
            let t = Datatype::byte();
            t.commit();
            if comm.rank() == 0 {
                sim_core::sleep(sim_core::SimDur::from_micros(500));
                let buf = HostBuf::from_vec(vec![1; 8]);
                comm.send(buf.base(), 8, &t, 1, 0);
            } else {
                let buf = HostBuf::alloc(8);
                let req = comm.irecv(buf.base(), 8, &t, 0, 0u32);
                assert!(!comm.test(&req), "message cannot have arrived yet");
                let st = comm.wait(req).unwrap();
                assert_eq!(st.bytes, 8);
            }
        });
    }

    #[test]
    #[should_panic(expected = "window_slots must be nonzero")]
    fn invalid_config_is_rejected_at_world_construction() {
        let cfg = MpiConfig {
            window_slots: 0,
            ..MpiConfig::default()
        };
        MpiWorld::new(1).with_config(cfg).run(|_| {});
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncation_panics() {
        MpiWorld::new(2).run(|comm| {
            let t = Datatype::byte();
            t.commit();
            if comm.rank() == 0 {
                let buf = HostBuf::alloc(64);
                comm.send(buf.base(), 64, &t, 1, 0);
            } else {
                let buf = HostBuf::alloc(16);
                comm.recv(buf.base(), 16, &t, 0, 0);
            }
        });
    }

    #[test]
    #[should_panic(expected = "no GPU datatype support")]
    fn device_buffer_without_gpu_support_panics() {
        MpiWorld::new(2).run(|comm| {
            let t = Datatype::byte();
            t.commit();
            if comm.rank() == 0 {
                let gpu = gpu_sim::Gpu::tesla_c2050(0);
                let dev = gpu.malloc(64);
                comm.send(dev, 64, &t, 1, 0);
            } else {
                let buf = HostBuf::alloc(64);
                comm.recv(buf.base(), 64, &t, 0, 0);
            }
        });
    }

    #[test]
    fn deterministic_end_time() {
        let run = || {
            MpiWorld::new(4).run(|comm| {
                let t = Datatype::byte();
                t.commit();
                let peer = comm.rank() ^ 1;
                let buf = HostBuf::alloc(100 << 10);
                let r = comm.irecv(buf.base(), 100 << 10, &t, peer, 0u32);
                let s = comm.isend(buf.base(), 0, &t, peer, 1);
                comm.wait(s);
                let sendbuf = HostBuf::alloc(100 << 10);
                comm.send(sendbuf.base(), 100 << 10, &t, peer, 0);
                comm.wait(r);
                comm.barrier();
            })
        };
        assert_eq!(run(), run(), "simulation must be deterministic");
    }

    #[test]
    fn intra_node_messages_never_touch_the_hca() {
        // Two ranks on one node: eager and staged-rendezvous traffic both
        // ride the shm channel; the node's HCA transmits nothing.
        let rec = sim_trace::Recorder::new();
        MpiWorld::new(2)
            .with_ppn(2)
            .with_recorder(rec.clone())
            .run(|comm| {
                let t = Datatype::byte();
                t.commit();
                if comm.rank() == 0 {
                    let small = HostBuf::from_vec(vec![7u8; 64]);
                    comm.send(small.base(), 64, &t, 1, 0);
                    let big = HostBuf::from_vec((0..300 << 10).map(|i| (i % 251) as u8).collect());
                    comm.send(big.base(), 300 << 10, &t, 1, 1);
                } else {
                    let small = HostBuf::alloc(64);
                    comm.recv(small.base(), 64, &t, 0, 0);
                    assert_eq!(small.read(0, 64), vec![7u8; 64]);
                    let big = HostBuf::alloc(300 << 10);
                    let st = comm.recv(big.base(), 300 << 10, &t, 0, 1);
                    assert_eq!(st.bytes, 300 << 10);
                    assert!((0..300 << 10).all(|i| big.read(i, 1)[0] == (i % 251) as u8));
                }
            });
        let m = rec.metrics();
        assert_eq!(
            m.get("node0.hca.tx_bytes").copied().unwrap_or(0),
            0,
            "intra-node traffic leaked onto the HCA"
        );
        assert!(
            m.get("node0.shm.bytes").copied().unwrap_or(0) >= 300 << 10,
            "shm channel carried less than the payload"
        );
    }

    #[test]
    fn mixed_topology_delivers_across_and_within_nodes() {
        // 4 ranks on 2 nodes: rank 0↔1 intra-node, 0↔2 inter-node; every
        // pairing must deliver identical bytes.
        MpiWorld::new(4).with_ppn(2).run(|comm| {
            let t = Datatype::byte();
            t.commit();
            let n = 200 << 10;
            let me = comm.rank();
            let peer = me ^ 1; // intra-node partner
            let far = me ^ 2; // inter-node partner
            let sendbuf = HostBuf::from_vec(vec![me as u8 + 1; n]);
            let r1buf = HostBuf::alloc(n);
            let r2buf = HostBuf::alloc(n);
            let reqs = vec![
                comm.irecv(r1buf.base(), n, &t, peer, 1u32),
                comm.irecv(r2buf.base(), n, &t, far, 2u32),
                comm.isend(sendbuf.base(), n, &t, peer, 1),
                comm.isend(sendbuf.base(), n, &t, far, 2),
            ];
            comm.waitall(reqs);
            assert_eq!(r1buf.read(0, n), vec![peer as u8 + 1; n]);
            assert_eq!(r2buf.read(0, n), vec![far as u8 + 1; n]);
        });
    }

    #[test]
    fn round_robin_topology_is_honored() {
        // Explicit map: ranks 0,2 on node 0; 1,3 on node 1 — the shm pairs
        // differ from the blocked layout.
        let rec = sim_trace::Recorder::new();
        MpiWorld::new(4)
            .with_topology(Topology::from_map(vec![0, 1, 0, 1]))
            .with_recorder(rec.clone())
            .run(|comm| {
                let t = Datatype::byte();
                t.commit();
                let me = comm.rank();
                let peer = me ^ 2; // co-located under round-robin
                let n = 100 << 10;
                let sendbuf = HostBuf::from_vec(vec![me as u8; n]);
                let recvbuf = HostBuf::alloc(n);
                let reqs = vec![
                    comm.irecv(recvbuf.base(), n, &t, peer, 0u32),
                    comm.isend(sendbuf.base(), n, &t, peer, 0),
                ];
                comm.waitall(reqs);
                assert_eq!(recvbuf.read(0, n), vec![peer as u8; n]);
            });
        let m = rec.metrics();
        for node in 0..2 {
            assert_eq!(
                m.get(&format!("node{node}.hca.tx_bytes"))
                    .copied()
                    .unwrap_or(0),
                0,
                "co-located traffic crossed node {node}'s HCA"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must evenly divide the world size")]
    fn indivisible_ppn_is_rejected_at_launch() {
        MpiWorld::new(3).with_ppn(2).run(|_| {});
    }

    #[test]
    fn ppn_default_matches_explicit_one_rank_per_node() {
        let run = |w: MpiWorld| {
            w.run(|comm| {
                let t = Datatype::byte();
                t.commit();
                let peer = comm.rank() ^ 1;
                let n = 150 << 10;
                let sendbuf = HostBuf::from_vec(vec![3u8; n]);
                let recvbuf = HostBuf::alloc(n);
                let reqs = vec![
                    comm.irecv(recvbuf.base(), n, &t, peer, 0u32),
                    comm.isend(sendbuf.base(), n, &t, peer, 0),
                ];
                comm.waitall(reqs);
            })
        };
        // The topology refactor must not move a single event at ppn = 1.
        assert_eq!(run(MpiWorld::new(2)), run(MpiWorld::new(2).with_ppn(1)));
    }

    #[test]
    fn many_messages_stress() {
        MpiWorld::new(2).run(|comm| {
            let t = Datatype::byte();
            t.commit();
            let me = comm.rank();
            let peer = 1 - me;
            // Mix of eager and rendezvous messages, interleaved posts.
            let mut reqs = Vec::new();
            let mut bufs = Vec::new();
            for i in 0..20usize {
                let n = if i % 3 == 0 { 100 << 10 } else { 256 };
                let rbuf = HostBuf::alloc(n);
                reqs.push(comm.irecv(rbuf.base(), n, &t, peer, i as u32));
                bufs.push(rbuf);
                let sbuf = HostBuf::from_vec(vec![i as u8; n]);
                reqs.push(comm.isend(sbuf.base(), n, &t, peer, i as u32));
                bufs.push(sbuf);
            }
            comm.waitall(reqs);
            for i in 0..20usize {
                let n = if i % 3 == 0 { 100 << 10 } else { 256 };
                assert_eq!(bufs[i * 2].read(0, n), vec![i as u8; n], "msg {i}");
            }
        });
    }
}
