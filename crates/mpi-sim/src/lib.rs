//! # mpi-sim — an MPI runtime on the simulated cluster
//!
//! A from-scratch MPI implementation in the spirit of MVAPICH2's host data
//! path, providing everything the paper's GPU extension (crate
//! `mv2-gpu-nc`) needs to plug into:
//!
//! * the full **derived datatype engine** (contiguous, vector, hvector,
//!   indexed, hindexed, struct, subarray, resized) with MPI 2.2
//!   size/extent rules, plus flattening that recognizes `cudaMemcpy2D`-able
//!   strided layouts ([`flat::Layout::Strided2D`]);
//! * **point-to-point** with tag/source matching (wildcards, non-overtaking
//!   order, unexpected-message queue), blocking and nonblocking calls;
//! * four data protocols: **eager**, **rendezvous direct** (R-PUT over
//!   RDMA into a registered contiguous user buffer), **rendezvous
//!   staged** (chunked through registered vbufs with RTS / CTS / per-chunk
//!   RDMA write + FIN / CREDIT flow control) and **rendezvous offload**
//!   (the HCA walks a scatter/gather descriptor over both layouts — see
//!   [`scheme`]);
//! * a pluggable **staging layer** ([`BufferStager`]) so GPU-resident
//!   buffers can be packed/unpacked by the device instead of the CPU;
//! * `MPI_Barrier` (dissemination).
//!
//! ```
//! use mpi_sim::{MpiWorld, Datatype};
//! use hostmem::HostBuf;
//!
//! MpiWorld::new(2).run(|comm| {
//!     let t = Datatype::float();
//!     t.commit();
//!     let buf = HostBuf::alloc(4096);
//!     if comm.rank() == 0 {
//!         comm.send(buf.base(), 1024, &t, 1, 0);
//!     } else {
//!         let st = comm.recv(buf.base(), 1024, &t, 0, 0);
//!         assert_eq!(st.bytes, 4096);
//!     }
//! });
//! ```

#![warn(missing_docs)]

mod coll;
mod comm;
mod datatype;
mod engine;
pub mod flat;
pub mod invariants;
pub mod pack;
pub mod plan;
mod proto;
pub mod scheme;
pub mod staging;
mod transport;
mod tuner;
mod world;

pub use coll::ReduceOp;
pub use comm::Comm;
pub use datatype::{Datatype, SubarrayOrder};
pub use engine::{RecvStatus, Request, SrcSel, TagSel, ANY_SOURCE, ANY_TAG};
pub use ib_sim::{FaultSpec, Topology};
pub use pack::CpuModel;
pub use plan::{Canonical, Plan, PlanCacheStats, WireDescriptor, WireEntry};
pub use proto::{
    packet_kind, ChunkPolicy, CollAlgo, CollConfig, ConfigError, MpiConfig, MpiError, RetryConfig,
};
pub use scheme::{DataScheme, SchemeSel};
pub use staging::{BufferStager, RecvSink, SendSource};
pub use world::MpiWorld;
