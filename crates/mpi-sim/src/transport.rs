//! The transport layer: how chunk bytes move between two endpoints.
//!
//! The rendezvous *protocol* (RTS/CTS matching, windows, credits, retries)
//! lives in `engine.rs` and is transport-agnostic; everything that actually
//! places bytes into a peer's registered region goes through a [`Transport`]
//! chosen per peer by the [`SchemeSelector`](crate::scheme::SchemeSelector)
//! from the fabric's [`Topology`](ib_sim::Topology):
//!
//! * [`RdmaTransport`] — the existing RDMA-staged path: one-sided
//!   `rdma_write` through the node's HCA onto the wire, plus the HCA's
//!   scatter/gather offload engine for descriptor-driven transfers.
//!   Selected for every remote peer (and for self-sends, preserving the
//!   pre-topology loopback timing).
//! * [`ShmTransport`] — the intra-node path: the node's shm copy engine
//!   places bytes through shared pages, never touching the HCA. Selected
//!   for co-located peers. Has no descriptor walker — the scheme layer
//!   never routes offload transfers at it.
//!
//! The protocol cannot tell them apart: both expose the same
//! write-into-`MrKey` contract and return a sender-side [`Completion`].

use hostmem::HostPtr;
use ib_sim::{MrKey, Nic, SgEntry};
use sim_core::Completion;

/// One peer's data path: writes packed bytes into the peer's registered
/// memory and reports sender-side completion.
pub(crate) trait Transport: Send {
    /// Place `len` bytes from `src` at `(key, dst_offset)` on the peer.
    fn write(&self, key: MrKey, dst_offset: usize, src: &HostPtr, len: usize) -> Completion;

    /// Walk `gather` over `src`'s buffer and `scatter` over the peer's
    /// region `key` through the offload engine — the NicOffload scheme's
    /// completion handling. Transports without a descriptor walker panic:
    /// the scheme layer must not route offload transfers at them.
    fn write_sg(
        &self,
        key: MrKey,
        src: &HostPtr,
        gather: &[SgEntry],
        scatter: &[SgEntry],
    ) -> Completion {
        let _ = (key, src, gather, scatter);
        panic!(
            "scheme bug: the {} transport has no scatter/gather engine",
            self.name()
        );
    }

    /// Short label for trace spans (`"rdma"` or `"shm"`).
    fn name(&self) -> &'static str;
}

/// The RDMA-staged data path (HCA + wire).
pub(crate) struct RdmaTransport {
    nic: Nic,
    dst: usize,
}

impl RdmaTransport {
    pub(crate) fn new(nic: Nic, dst: usize) -> Self {
        RdmaTransport { nic, dst }
    }
}

impl Transport for RdmaTransport {
    fn write(&self, key: MrKey, dst_offset: usize, src: &HostPtr, len: usize) -> Completion {
        self.nic.rdma_write(self.dst, key, dst_offset, src, len)
    }

    fn write_sg(
        &self,
        key: MrKey,
        src: &HostPtr,
        gather: &[SgEntry],
        scatter: &[SgEntry],
    ) -> Completion {
        self.nic.rdma_write_sg(self.dst, key, src, gather, scatter)
    }

    fn name(&self) -> &'static str {
        "rdma"
    }
}

/// The intra-node shared-memory data path (node-local copy engine).
pub(crate) struct ShmTransport {
    nic: Nic,
    dst: usize,
}

impl ShmTransport {
    pub(crate) fn new(nic: Nic, dst: usize) -> Self {
        ShmTransport { nic, dst }
    }
}

impl Transport for ShmTransport {
    fn write(&self, key: MrKey, dst_offset: usize, src: &HostPtr, len: usize) -> Completion {
        self.nic.shm_write(self.dst, key, dst_offset, src, len)
    }

    fn name(&self) -> &'static str {
        "shm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_sim::{Fabric, NetModel, ShmModel, Topology};

    #[test]
    fn both_transports_honor_the_same_mr_contract() {
        use hostmem::HostBuf;
        let sim = sim_core::Sim::new();
        let topo = Topology::from_map(vec![0, 0, 1]);
        let fabric = Fabric::with_topology(topo, NetModel::qdr(), ShmModel::westmere(), None);
        let shm_dst = HostBuf::alloc(32);
        let rdma_dst = HostBuf::alloc(32);
        let shm_key = fabric.nic(1).register(&shm_dst);
        let rdma_key = fabric.nic(2).register(&rdma_dst);
        {
            let nic = fabric.nic(0);
            let (s2, r2) = (shm_dst.clone(), rdma_dst.clone());
            sim.spawn("writer", move || {
                let src = HostBuf::from_vec((0..32).collect());
                nic.register(&src);
                let a = ShmTransport::new(nic.clone(), 1).write(shm_key, 0, &src.base(), 32);
                let b = RdmaTransport::new(nic.clone(), 2).write(rdma_key, 0, &src.base(), 32);
                a.wait();
                b.wait();
                assert_eq!(s2.read(0, 32), r2.read(0, 32));
            });
        }
        sim.run();
    }

    #[test]
    fn rdma_transport_walks_descriptors() {
        use hostmem::HostBuf;
        let sim = sim_core::Sim::new();
        let fabric = Fabric::new(2, NetModel::qdr());
        let dst = HostBuf::alloc(64);
        let key = fabric.nic(1).register(&dst);
        {
            let nic = fabric.nic(0);
            let d2 = dst.clone();
            sim.spawn("writer", move || {
                let src = HostBuf::from_vec((0..32).collect());
                nic.register(&src);
                // Gather two 4-byte blocks 16 apart; scatter them 8 apart.
                let g = [SgEntry {
                    offset: 0,
                    len: 4,
                    stride: 16,
                    count: 2,
                }];
                let s = [SgEntry {
                    offset: 0,
                    len: 4,
                    stride: 8,
                    count: 2,
                }];
                RdmaTransport::new(nic.clone(), 1)
                    .write_sg(key, &src.base(), &g, &s)
                    .wait();
                assert_eq!(d2.read(0, 4), vec![0, 1, 2, 3]);
                assert_eq!(d2.read(8, 4), vec![16, 17, 18, 19]);
            });
        }
        sim.run();
    }

    #[test]
    #[should_panic(expected = "no scatter/gather engine")]
    fn shm_transport_rejects_descriptors() {
        use hostmem::HostBuf;
        let topo = Topology::from_map(vec![0, 0]);
        let fabric = Fabric::with_topology(topo, NetModel::qdr(), ShmModel::westmere(), None);
        let dst = HostBuf::alloc(8);
        let key = fabric.nic(1).register(&dst);
        let src = HostBuf::alloc(8);
        let _ = ShmTransport::new(fabric.nic(0), 1).write_sg(key, &src.base(), &[], &[]);
    }
}
