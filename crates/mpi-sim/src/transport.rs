//! The transport layer: how chunk bytes move between two endpoints.
//!
//! The rendezvous *protocol* (RTS/CTS matching, windows, credits, retries)
//! lives in `engine.rs` and is transport-agnostic; everything that actually
//! places bytes into a peer's registered region goes through a [`Transport`]
//! chosen per peer at channel setup from the fabric's
//! [`Topology`](ib_sim::Topology):
//!
//! * [`RdmaTransport`] — the existing RDMA-staged path: one-sided
//!   `rdma_write` through the node's HCA onto the wire. Selected for every
//!   remote peer (and for self-sends, preserving the pre-topology loopback
//!   timing).
//! * [`ShmTransport`] — the intra-node path: the node's shm copy engine
//!   places bytes through shared pages, never touching the HCA. Selected
//!   for co-located peers.
//!
//! The protocol cannot tell them apart: both expose the same
//! write-into-`MrKey` contract and return a sender-side [`Completion`].

use hostmem::HostPtr;
use ib_sim::{MrKey, Nic};
use sim_core::Completion;

/// One peer's data path: writes packed bytes into the peer's registered
/// memory and reports sender-side completion.
pub(crate) trait Transport: Send {
    /// Place `len` bytes from `src` at `(key, dst_offset)` on the peer.
    fn write(&self, key: MrKey, dst_offset: usize, src: &HostPtr, len: usize) -> Completion;
    /// Short label for trace spans (`"rdma"` or `"shm"`).
    fn name(&self) -> &'static str;
}

/// The RDMA-staged data path (HCA + wire).
pub(crate) struct RdmaTransport {
    nic: Nic,
    dst: usize,
}

impl Transport for RdmaTransport {
    fn write(&self, key: MrKey, dst_offset: usize, src: &HostPtr, len: usize) -> Completion {
        self.nic.rdma_write(self.dst, key, dst_offset, src, len)
    }

    fn name(&self) -> &'static str {
        "rdma"
    }
}

/// The intra-node shared-memory data path (node-local copy engine).
pub(crate) struct ShmTransport {
    nic: Nic,
    dst: usize,
}

impl Transport for ShmTransport {
    fn write(&self, key: MrKey, dst_offset: usize, src: &HostPtr, len: usize) -> Completion {
        self.nic.shm_write(self.dst, key, dst_offset, src, len)
    }

    fn name(&self) -> &'static str {
        "shm"
    }
}

/// Pick the data path for peer `dst` as seen from `nic`'s endpoint: shared
/// memory iff the two endpoints are distinct and co-located. A rank's
/// self-sends keep the HCA loopback path so the ppn=1 topology stays
/// bit-identical to the pre-topology engine.
pub(crate) fn transport_for(nic: &Nic, dst: usize) -> Box<dyn Transport> {
    if dst != nic.endpoint() && nic.colocated(dst) {
        Box::new(ShmTransport {
            nic: nic.clone(),
            dst,
        })
    } else {
        Box::new(RdmaTransport {
            nic: nic.clone(),
            dst,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_sim::{Fabric, NetModel, ShmModel, Topology};

    #[test]
    fn selection_follows_topology() {
        let topo = Topology::uniform(2, 2); // ranks 0,1 on node 0; 2,3 on node 1
        let fabric = Fabric::with_topology(topo, NetModel::qdr(), ShmModel::westmere(), None);
        let nic = fabric.nic(0);
        assert_eq!(transport_for(&nic, 0).name(), "rdma"); // self: loopback
        assert_eq!(transport_for(&nic, 1).name(), "shm"); // co-located
        assert_eq!(transport_for(&nic, 2).name(), "rdma"); // remote
        assert_eq!(transport_for(&nic, 3).name(), "rdma");
    }

    #[test]
    fn both_transports_honor_the_same_mr_contract() {
        use hostmem::HostBuf;
        let sim = sim_core::Sim::new();
        let topo = Topology::from_map(vec![0, 0, 1]);
        let fabric = Fabric::with_topology(topo, NetModel::qdr(), ShmModel::westmere(), None);
        let shm_dst = HostBuf::alloc(32);
        let rdma_dst = HostBuf::alloc(32);
        let shm_key = fabric.nic(1).register(&shm_dst);
        let rdma_key = fabric.nic(2).register(&rdma_dst);
        {
            let nic = fabric.nic(0);
            let (s2, r2) = (shm_dst.clone(), rdma_dst.clone());
            sim.spawn("writer", move || {
                let src = HostBuf::from_vec((0..32).collect());
                nic.register(&src);
                let a = transport_for(&nic, 1).write(shm_key, 0, &src.base(), 32);
                let b = transport_for(&nic, 2).write(rdma_key, 0, &src.base(), 32);
                a.wait();
                b.wait();
                assert_eq!(s2.read(0, 32), r2.read(0, 32));
            });
        }
        sim.run();
    }
}
