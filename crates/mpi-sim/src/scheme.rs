//! The data-path scheme layer: which of the library's transfer schemes a
//! given message uses, decided in one place.
//!
//! Historically the per-peer decision was smeared across the rendezvous
//! state machine (`engine.rs`) and the transport constructor
//! (`transport.rs`): eager limits here, colocation checks there, pin-limit
//! fallbacks inline in match arms. [`SchemeSelector`] owns all of it — the
//! engine's rendezvous states ask it which [`DataScheme`] serves a message
//! and dispatch through the [`Transport`](crate::transport::Transport) it
//! hands out; the selection policy itself is configured with
//! [`SchemeSel`] on [`MpiConfig`].
//!
//! Selection order under [`SchemeSel::Auto`], most to least specialized:
//!
//! 1. **DeviceD2D** — both sides resident on one shared GPU: stay on the
//!    device.
//! 2. **Direct** — both sides contiguous host memory: one R-PUT.
//! 3. **NicOffload** — both sides host-resident with layouts that lower to
//!    bounded scatter/gather descriptors (see [`crate::plan::Canonical`]),
//!    the message at least [`MpiConfig::offload_min_bytes`], and the
//!    combined entry count within [`MpiConfig::offload_entry_budget`]: one
//!    descriptor-driven post, no CPU pack/unpack. Off by default
//!    (`Auto { offload: false }` keeps the classic decision bit-identical).
//! 4. **Staged** — everything else: the paper's 5-stage pipeline.
//!
//! `ShmEager` is the odd one out: eager sends toward co-located peers are
//! a *size* decision, not a rendezvous one, so it appears in
//! [`DataScheme`] for forcing (which widens the co-located eager window)
//! but never comes out of rendezvous resolution.

use ib_sim::Nic;

use crate::proto::MpiConfig;
use crate::transport::{RdmaTransport, ShmTransport, Transport};

/// The library's transfer schemes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DataScheme {
    /// The paper's staged pipeline: pack → vbuf stage → RDMA chunk window →
    /// unpack. Serves every layout and residency; the universal fallback.
    Staged,
    /// Contiguous-to-contiguous R-PUT: one RDMA write into the receiver's
    /// registered user buffer.
    Direct,
    /// Co-located ranks sharing one GPU: pack into a device tbuf, peer
    /// unpacks straight from it — bytes never leave the device.
    DeviceD2D,
    /// Eager payload through the node's shm channel (co-located peers).
    /// A size-based path: forcing it widens the co-located eager window
    /// instead of changing rendezvous behavior.
    ShmEager,
    /// The NIC walks a scatter/gather wire descriptor on both sides: no
    /// CPU pack/unpack, one post, per-entry descriptor-fetch cost (see
    /// [`ib_sim::Nic::rdma_write_sg`]).
    NicOffload,
}

/// How the rendezvous scheme is chosen, in the style of
/// [`ChunkPolicy`](crate::proto::ChunkPolicy).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SchemeSel {
    /// Pick per message: device → direct → offload (if `offload` is set) →
    /// staged. `Auto { offload: false }` — the default — reproduces the
    /// classic decision bit for bit.
    Auto {
        /// Allow the NIC-offload scheme to compete. Off by default.
        offload: bool,
    },
    /// Prefer one scheme wherever it is feasible, falling back to the
    /// staged pipeline where it is not (a forced scheme can't conjure a
    /// shared GPU or a contiguous buffer). `Force(NicOffload)` on a layout
    /// with no bounded descriptor is rejected at post time with
    /// [`ConfigError::ForcedOffloadIrregular`]
    /// (crate::proto::ConfigError::ForcedOffloadIrregular).
    Force(DataScheme),
}

impl Default for SchemeSel {
    fn default() -> Self {
        SchemeSel::Auto { offload: false }
    }
}

/// Owns the per-peer data-path decision: transports, colocation, eager
/// thresholds and rendezvous scheme resolution. Built once per engine from
/// the fabric topology and the library configuration — the single source
/// of truth the checks formerly duplicated across `engine.rs` and
/// `transport.rs` collapsed into.
pub(crate) struct SchemeSelector {
    /// Per-peer data path, chosen once from the fabric topology: the shm
    /// copy engine for distinct co-located peers, the HCA (including
    /// self-send loopback) otherwise.
    transports: Vec<Box<dyn Transport>>,
    /// `colocated[p]`: peer `p` is a *different* rank on this rank's node.
    colocated: Vec<bool>,
    sel: SchemeSel,
    eager_limit: usize,
    shm_eager_limit: usize,
    fault_shm_eager_oversize: bool,
    offload_min_bytes: usize,
}

impl SchemeSelector {
    /// Build the selector for `rank` of `size` on `nic`. Shared memory is
    /// selected iff the peer is distinct and co-located; a rank's
    /// self-sends keep the HCA loopback path so the ppn=1 topology stays
    /// bit-identical to the pre-topology engine.
    pub(crate) fn new(nic: &Nic, rank: usize, size: usize, cfg: &MpiConfig) -> SchemeSelector {
        let colocated: Vec<bool> = (0..size).map(|p| p != rank && nic.colocated(p)).collect();
        let transports = (0..size)
            .map(|dst| -> Box<dyn Transport> {
                if colocated[dst] {
                    Box::new(ShmTransport::new(nic.clone(), dst))
                } else {
                    Box::new(RdmaTransport::new(nic.clone(), dst))
                }
            })
            .collect();
        SchemeSelector {
            transports,
            colocated,
            sel: cfg.scheme,
            eager_limit: cfg.eager_limit,
            shm_eager_limit: cfg.shm_eager_limit,
            fault_shm_eager_oversize: cfg.fault_shm_eager_oversize,
            offload_min_bytes: cfg.offload_min_bytes,
        }
    }

    /// Is `peer` a distinct rank on this rank's node?
    pub(crate) fn colocated(&self, peer: usize) -> bool {
        self.colocated[peer]
    }

    /// The data path toward `peer`.
    pub(crate) fn transport(&self, peer: usize) -> &dyn Transport {
        &*self.transports[peer]
    }

    /// The eager threshold toward `peer`: the shm channel has no wire or
    /// vbuf pressure, so co-located peers get the larger window — and
    /// `Force(ShmEager)` widens it to every message size.
    pub(crate) fn eager_limit(&self, peer: usize) -> usize {
        if self.colocated[peer] {
            if self.sel == SchemeSel::Force(DataScheme::ShmEager) {
                usize::MAX
            } else {
                self.shm_eager_limit
            }
        } else {
            self.eager_limit
        }
    }

    /// The sender-side eager threshold toward `peer`: like
    /// [`eager_limit`](SchemeSelector::eager_limit), plus the
    /// oversize-fault override that ships payloads the receiver-side
    /// linter must reject.
    pub(crate) fn send_eager_limit(&self, peer: usize) -> usize {
        if self.fault_shm_eager_oversize && self.colocated[peer] {
            self.shm_eager_limit * 2
        } else {
            self.eager_limit(peer)
        }
    }

    /// May this configuration drive transfers through the offload engine
    /// at all? (Gates the sender-side descriptor lowering and RTS
    /// advertisement.)
    pub(crate) fn offload_enabled(&self) -> bool {
        matches!(self.sel, SchemeSel::Auto { offload: true })
            || self.sel == SchemeSel::Force(DataScheme::NicOffload)
    }

    /// Can the offload engine reach `peer`? Descriptors are walked by the
    /// HCA, so only peers served by the RDMA transport qualify — the shm
    /// copy engine has no descriptor walker.
    pub(crate) fn offload_peer(&self, peer: usize) -> bool {
        !self.colocated[peer]
    }

    /// Resolve the rendezvous scheme for one matched message. The `_ok`
    /// flags are feasibility (computed by the engine from what the RTS
    /// advertised and what the receiver posted); resolution is pure
    /// policy. Pin-limit failures during engagement still fall back to
    /// staged afterwards — feasibility here is pre-registration.
    pub(crate) fn resolve(
        &self,
        device_ok: bool,
        direct_ok: bool,
        offload_ok: bool,
        total: usize,
    ) -> DataScheme {
        match self.sel {
            SchemeSel::Force(DataScheme::DeviceD2D) if device_ok => DataScheme::DeviceD2D,
            SchemeSel::Force(DataScheme::Direct) if direct_ok => DataScheme::Direct,
            SchemeSel::Force(DataScheme::NicOffload) if offload_ok => DataScheme::NicOffload,
            SchemeSel::Force(_) => DataScheme::Staged,
            SchemeSel::Auto { offload } => {
                if device_ok {
                    DataScheme::DeviceD2D
                } else if direct_ok {
                    DataScheme::Direct
                } else if offload && offload_ok && total >= self.offload_min_bytes {
                    DataScheme::NicOffload
                } else {
                    DataScheme::Staged
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_sim::{Fabric, NetModel, ShmModel, Topology};

    fn selector(sel: SchemeSel) -> SchemeSelector {
        let topo = Topology::uniform(2, 2); // ranks 0,1 on node 0; 2,3 on node 1
        let fabric = Fabric::with_topology(topo, NetModel::qdr(), ShmModel::westmere(), None);
        let cfg = MpiConfig {
            scheme: sel,
            ..Default::default()
        };
        SchemeSelector::new(&fabric.nic(0), 0, 4, &cfg)
    }

    #[test]
    fn transport_selection_follows_topology() {
        let s = selector(SchemeSel::default());
        assert_eq!(s.transport(0).name(), "rdma"); // self: loopback
        assert_eq!(s.transport(1).name(), "shm"); // co-located
        assert_eq!(s.transport(2).name(), "rdma"); // remote
        assert_eq!(s.transport(3).name(), "rdma");
        assert!(s.colocated(1) && !s.colocated(0) && !s.colocated(2));
        assert!(s.offload_peer(2) && !s.offload_peer(1));
    }

    #[test]
    fn eager_limits_follow_colocation() {
        let s = selector(SchemeSel::default());
        let cfg = MpiConfig::default();
        assert_eq!(s.eager_limit(2), cfg.eager_limit);
        assert_eq!(s.eager_limit(1), cfg.shm_eager_limit);
        assert_eq!(s.send_eager_limit(1), cfg.shm_eager_limit);
        let s = selector(SchemeSel::Force(DataScheme::ShmEager));
        assert_eq!(s.eager_limit(1), usize::MAX);
        assert_eq!(s.eager_limit(2), cfg.eager_limit, "remote peers unaffected");
    }

    #[test]
    fn auto_resolution_order() {
        let s = selector(SchemeSel::Auto { offload: true });
        let min = MpiConfig::default().offload_min_bytes;
        assert_eq!(s.resolve(true, true, true, min), DataScheme::DeviceD2D);
        assert_eq!(s.resolve(false, true, true, min), DataScheme::Direct);
        assert_eq!(s.resolve(false, false, true, min), DataScheme::NicOffload);
        assert_eq!(
            s.resolve(false, false, true, min - 1),
            DataScheme::Staged,
            "below the descriptor-fetch floor"
        );
        assert_eq!(s.resolve(false, false, false, min), DataScheme::Staged);
        // Offload disabled (the default): never selected.
        let s = selector(SchemeSel::default());
        assert_eq!(s.resolve(false, false, true, min), DataScheme::Staged);
        assert!(!s.offload_enabled());
    }

    #[test]
    fn forcing_prefers_then_falls_back_staged() {
        let s = selector(SchemeSel::Force(DataScheme::NicOffload));
        assert!(s.offload_enabled());
        assert_eq!(s.resolve(true, true, true, 0), DataScheme::NicOffload);
        assert_eq!(s.resolve(true, true, false, 0), DataScheme::Staged);
        let s = selector(SchemeSel::Force(DataScheme::Staged));
        assert_eq!(s.resolve(true, true, true, usize::MAX), DataScheme::Staged);
        let s = selector(SchemeSel::Force(DataScheme::Direct));
        assert_eq!(s.resolve(true, true, true, 0), DataScheme::Direct);
        assert_eq!(s.resolve(true, false, true, 0), DataScheme::Staged);
    }
}
