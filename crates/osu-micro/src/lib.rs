//! # osu-micro — OSU-style micro-benchmarks on the simulated cluster
//!
//! The paper's MPI-level evaluation (§V) is "based on OSU Micro
//! Benchmarks", and its block-size tuning methodology is "detected ...
//! by using OSU micro-benchmarks" at installation time. This crate
//! reimplements the relevant benchmarks against the simulated stack:
//!
//! * [`latency`] — `osu_latency`: ping-pong round-trip / 2;
//! * [`bandwidth`] — `osu_bw`: a window of back-to-back nonblocking sends
//!   per handshake;
//! * [`bi_bandwidth`] — `osu_bibw`: both directions at once;
//! * each with host or device buffers ([`BufKind`]), contiguous or
//!   strided ([`Pattern`]) — the strided-device combination is the paper's
//!   headline case.
//!
//! Results are deterministic: one measured iteration per size after a
//! warm-up (the simulator has no noise to average away).

#![warn(missing_docs)]

use gpu_sim::{DevPtr, Loc};
use hostmem::HostBuf;
use mpi_sim::Datatype;
use mv2_gpu_nc::{GpuCluster, GpuRankEnv};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where the message buffers live.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BufKind {
    /// Host (CPU) memory — the classic OSU benchmarks.
    Host,
    /// GPU device memory — the `D D` mode of OSU's CUDA extensions.
    Device,
}

/// Memory layout of the message.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Pattern {
    /// One contiguous block.
    Contiguous,
    /// A vector of 4-byte elements with 4x pitch (the paper's Figure 5
    /// geometry).
    Strided,
}

/// One measurement row.
#[derive(Copy, Clone, Debug)]
pub struct Sample {
    /// Message size in bytes.
    pub bytes: usize,
    /// Latency in microseconds (for latency benchmarks) or elapsed time of
    /// the window (for bandwidth benchmarks).
    pub micros: f64,
    /// Bandwidth in MB/s (meaningful for bandwidth benchmarks; derived for
    /// latency too).
    pub mbps: f64,
}

/// A message buffer of either kind with a committed datatype describing it.
struct Msg {
    loc: Loc,
    count: usize,
    dtype: Datatype,
    _host: Option<HostBuf>,
    _dev: Option<DevPtr>,
}

fn make_msg(env: &GpuRankEnv, kind: BufKind, pattern: Pattern, bytes: usize) -> Msg {
    match pattern {
        Pattern::Contiguous => {
            let dtype = Datatype::byte();
            dtype.commit();
            match kind {
                BufKind::Host => {
                    let b = HostBuf::alloc(bytes.max(1));
                    Msg {
                        loc: Loc::Host(b.base()),
                        count: bytes,
                        dtype,
                        _host: Some(b),
                        _dev: None,
                    }
                }
                BufKind::Device => {
                    let d = env.gpu.malloc(bytes.max(1));
                    Msg {
                        loc: Loc::Device(d),
                        count: bytes,
                        dtype,
                        _host: None,
                        _dev: Some(d),
                    }
                }
            }
        }
        Pattern::Strided => {
            assert!(
                bytes.is_multiple_of(4),
                "strided pattern needs 4-byte multiples"
            );
            let rows = bytes / 4;
            let dtype = Datatype::hvector(rows, 1, 16, &Datatype::float());
            dtype.commit();
            let span = rows * 16;
            match kind {
                BufKind::Host => {
                    let b = HostBuf::alloc(span);
                    Msg {
                        loc: Loc::Host(b.base()),
                        count: 1,
                        dtype,
                        _host: Some(b),
                        _dev: None,
                    }
                }
                BufKind::Device => {
                    let d = env.gpu.malloc(span);
                    Msg {
                        loc: Loc::Device(d),
                        count: 1,
                        dtype,
                        _host: None,
                        _dev: Some(d),
                    }
                }
            }
        }
    }
}

fn run_pair(f: impl Fn(&GpuRankEnv) -> Option<f64> + Send + Sync + 'static) -> f64 {
    let out = Arc::new(AtomicU64::new(0));
    let out2 = Arc::clone(&out);
    GpuCluster::new(2).run(move |env| {
        if let Some(us) = f(env) {
            out2.store(us.to_bits(), Ordering::SeqCst);
        }
    });
    f64::from_bits(out.load(Ordering::SeqCst))
}

/// `osu_latency`: half the ping-pong round trip, after one warm-up
/// exchange.
pub fn latency(kind: BufKind, pattern: Pattern, bytes: usize) -> Sample {
    let micros = run_pair(move |env| {
        let msg = make_msg(env, kind, pattern, bytes);
        let me = env.comm.rank();
        let peer = 1 - me;
        for warm in 0..2 {
            let t0 = sim_core::now();
            if me == 0 {
                env.comm
                    .send(msg.loc.clone(), msg.count, &msg.dtype, peer, warm);
                env.comm
                    .recv(msg.loc.clone(), msg.count, &msg.dtype, peer, warm);
                if warm == 1 {
                    let rtt = (sim_core::now() - t0).as_micros_f64();
                    return Some(rtt / 2.0);
                }
            } else {
                env.comm
                    .recv(msg.loc.clone(), msg.count, &msg.dtype, peer, warm);
                env.comm
                    .send(msg.loc.clone(), msg.count, &msg.dtype, peer, warm);
            }
        }
        None
    });
    Sample {
        bytes,
        micros,
        mbps: bytes as f64 / micros,
    }
}

/// Window size used by the bandwidth benchmarks (OSU default is 64).
pub const BW_WINDOW: usize = 64;

/// `osu_bw`: `BW_WINDOW` messages in flight from rank 0 to rank 1, then a
/// zero-byte handshake; bandwidth over the whole window.
pub fn bandwidth(kind: BufKind, pattern: Pattern, bytes: usize) -> Sample {
    let micros = run_pair(move |env| {
        let me = env.comm.rank();
        let peer = 1 - me;
        let msgs: Vec<Msg> = (0..BW_WINDOW)
            .map(|_| make_msg(env, kind, pattern, bytes))
            .collect();
        let ack = make_msg(env, kind, Pattern::Contiguous, 0);
        // Warm-up round then measured round.
        let mut result = None;
        for round in 0..2u32 {
            env.comm.barrier();
            let t0 = sim_core::now();
            if me == 0 {
                let reqs = msgs
                    .iter()
                    .enumerate()
                    .map(|(i, m)| {
                        env.comm
                            .isend(m.loc.clone(), m.count, &m.dtype, peer, i as u32)
                    })
                    .collect();
                env.comm.waitall(reqs);
                env.comm.recv(ack.loc.clone(), 0, &ack.dtype, peer, 999);
                if round == 1 {
                    result = Some((sim_core::now() - t0).as_micros_f64());
                }
            } else {
                let reqs = msgs
                    .iter()
                    .enumerate()
                    .map(|(i, m)| {
                        env.comm
                            .irecv(m.loc.clone(), m.count, &m.dtype, peer, i as u32)
                    })
                    .collect();
                env.comm.waitall(reqs);
                env.comm.send(ack.loc.clone(), 0, &ack.dtype, peer, 999);
            }
        }
        if me == 0 {
            result
        } else {
            None
        }
    });
    Sample {
        bytes,
        micros,
        mbps: (bytes * BW_WINDOW) as f64 / micros,
    }
}

/// `osu_bibw`: both ranks stream a window to each other simultaneously;
/// reports the aggregate bandwidth.
pub fn bi_bandwidth(kind: BufKind, pattern: Pattern, bytes: usize) -> Sample {
    let micros = run_pair(move |env| {
        let me = env.comm.rank();
        let peer = 1 - me;
        let out: Vec<Msg> = (0..BW_WINDOW)
            .map(|_| make_msg(env, kind, pattern, bytes))
            .collect();
        let inb: Vec<Msg> = (0..BW_WINDOW)
            .map(|_| make_msg(env, kind, pattern, bytes))
            .collect();
        let mut result = None;
        for round in 0..2u32 {
            env.comm.barrier();
            let t0 = sim_core::now();
            let mut reqs: Vec<_> = inb
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    env.comm
                        .irecv(m.loc.clone(), m.count, &m.dtype, peer, i as u32)
                })
                .collect();
            reqs.extend(out.iter().enumerate().map(|(i, m)| {
                env.comm
                    .isend(m.loc.clone(), m.count, &m.dtype, peer, i as u32)
            }));
            env.comm.waitall(reqs);
            if round == 1 && me == 0 {
                result = Some((sim_core::now() - t0).as_micros_f64());
            }
        }
        result
    });
    Sample {
        bytes,
        micros,
        mbps: (2 * bytes * BW_WINDOW) as f64 / micros,
    }
}

/// The standard OSU size sweep: powers of two from `lo` to `hi` inclusive.
pub fn size_sweep(lo: usize, hi: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut s = lo.max(1);
    while s <= hi {
        v.push(s);
        s *= 2;
    }
    v
}

/// Shared entry point for the benchmark binaries.
pub fn run_cli(name: &str, f: impl Fn(BufKind, Pattern, usize) -> Sample) {
    let mut kind = BufKind::Host;
    let mut pattern = Pattern::Contiguous;
    let (mut lo, mut hi) = (4usize, 1 << 20);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--device" | "-d" => kind = BufKind::Device,
            "--host" => kind = BufKind::Host,
            "--strided" | "-v" => pattern = Pattern::Strided,
            "--min" => lo = args.next().unwrap().parse().unwrap(),
            "--max" => hi = args.next().unwrap().parse().unwrap(),
            other => panic!("unknown option {other} (try --device / --strided / --min / --max)"),
        }
    }
    println!("# {name}  buffers={kind:?}  pattern={pattern:?}");
    println!("{:>10}  {:>12}  {:>12}", "bytes", "time (us)", "MB/s");
    for bytes in size_sweep(lo, hi) {
        let s = f(kind, pattern, bytes);
        println!("{:>10}  {:>12.2}  {:>12.1}", s.bytes, s.micros, s.mbps);
    }
}

/// Pretty-print helper reused by tests and examples.
pub fn fmt_sample(s: &Sample) -> String {
    format!("{} B: {:.2} us, {:.1} MB/s", s.bytes, s.micros, s.mbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_size() {
        let small = latency(BufKind::Host, Pattern::Contiguous, 64);
        let big = latency(BufKind::Host, Pattern::Contiguous, 1 << 20);
        assert!(big.micros > small.micros);
        assert!(big.mbps > small.mbps, "big messages amortize overheads");
    }

    #[test]
    fn device_contiguous_latency_close_to_host_at_size() {
        // The pipelined device path adds PCIe hops; at 1 MB it should be
        // within a small factor of host latency, not orders of magnitude.
        let host = latency(BufKind::Host, Pattern::Contiguous, 1 << 20);
        let dev = latency(BufKind::Device, Pattern::Contiguous, 1 << 20);
        assert!(dev.micros > host.micros);
        assert!(dev.micros < host.micros * 4.0, "host {host:?} dev {dev:?}");
    }

    #[test]
    fn strided_device_latency_matches_fig5_shape() {
        // 4 KB: paper Figure 5(a) region — MV2-GPU-NC ~74 us in our
        // calibration.
        let s = latency(BufKind::Device, Pattern::Strided, 4 << 10);
        assert!(
            (40.0..120.0).contains(&s.micros),
            "4KB strided device latency {s:?}"
        );
    }

    #[test]
    fn bandwidth_saturates_toward_wire_speed() {
        let bw = bandwidth(BufKind::Host, Pattern::Contiguous, 1 << 20);
        // QDR model: 3.2 GB/s = 3200 MB/s wire; expect > 60% at 1 MB.
        assert!(bw.mbps > 2000.0, "got {}", bw.mbps);
        let small = bandwidth(BufKind::Host, Pattern::Contiguous, 4096);
        assert!(small.mbps < bw.mbps);
    }

    #[test]
    fn bidirectional_beats_unidirectional() {
        let uni = bandwidth(BufKind::Host, Pattern::Contiguous, 256 << 10);
        let bi = bi_bandwidth(BufKind::Host, Pattern::Contiguous, 256 << 10);
        assert!(
            bi.mbps > uni.mbps * 1.3,
            "bibw {} vs bw {}",
            bi.mbps,
            uni.mbps
        );
    }

    #[test]
    fn device_strided_bandwidth_is_pack_limited() {
        // Strided device messages are gated by the pack engine, not the
        // wire: bandwidth must be well below the contiguous device case.
        let contig = bandwidth(BufKind::Device, Pattern::Contiguous, 256 << 10);
        let strided = bandwidth(BufKind::Device, Pattern::Strided, 256 << 10);
        assert!(
            strided.mbps < contig.mbps,
            "strided {} vs contig {}",
            strided.mbps,
            contig.mbps
        );
    }

    #[test]
    fn sweep_is_powers_of_two() {
        assert_eq!(size_sweep(4, 64), vec![4, 8, 16, 32, 64]);
        assert_eq!(size_sweep(0, 2), vec![1, 2]);
    }

    #[test]
    fn deterministic_measurements() {
        let a = latency(BufKind::Device, Pattern::Strided, 64 << 10);
        let b = latency(BufKind::Device, Pattern::Strided, 64 << 10);
        assert_eq!(a.micros, b.micros);
    }
}
