//! `osu_bibw`: bidirectional windowed bandwidth, host or device buffers.
//!
//! `cargo run --release -p osu-micro --bin osu_bibw -- --device --strided`

fn main() {
    osu_micro::run_cli("osu_bibw", osu_micro::bi_bandwidth);
}
