//! `osu_bw`: unidirectional windowed bandwidth, host or device buffers.
//!
//! `cargo run --release -p osu-micro --bin osu_bw -- --device`

fn main() {
    osu_micro::run_cli("osu_bw", osu_micro::bandwidth);
}
