//! `osu_latency`: ping-pong latency, host or device buffers, contiguous or
//! strided. The strided-device mode reproduces the measurement behind the
//! paper's Figure 5 MV2-GPU-NC curve.
//!
//! `cargo run --release -p osu-micro --bin osu_latency -- --device --strided`

fn main() {
    osu_micro::run_cli("osu_latency", osu_micro::latency);
}
