//! # coll-apps — collective-driven application workloads
//!
//! Two applications that exercise the datatype-aware collectives end to
//! end, each guarded by a serial reference:
//!
//! * [`transpose`] — a distributed matrix transpose: each rank owns a
//!   block of rows and redistributes via **alltoallv of strided columns**
//!   (the send side gathers non-contiguous columns with a derived
//!   datatype, the receive side scatters row fragments), on host or
//!   device memory. A pure data-movement workload, so the result must be
//!   **bit-exact** against the serial transpose.
//! * [`gradient`] — data-parallel training steps: every rank computes a
//!   local gradient and the model is updated from the **allreduce** of
//!   all gradients. Gradients are integer-valued `f32`, so the reduction
//!   is exact in any fold order and the distributed weights must match
//!   the serial reference bit for bit — on every rank, every placement,
//!   every algorithm family, host or device.

#![warn(missing_docs)]

pub mod gradient;
pub mod transpose;

pub use gradient::{run_gradient, serial_gradient, GradOutcome, GradParams};
pub use transpose::{run_transpose, serial_transpose, TransposeOutcome, TransposeParams};

/// Where a workload keeps its working set.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Mem {
    /// Host buffers.
    Host,
    /// Device (GPU) buffers — the collective stack packs/unpacks through
    /// the staging pipeline.
    Device,
}
