//! Distributed matrix transpose over `alltoallv` of strided columns.
//!
//! The global N×N `f64` matrix A is row-block distributed: rank `i` owns
//! rows `[i·b, (i+1)·b)` with `b = N/P`, stored row-major. The transpose
//! Aᵀ is distributed the same way, so rank `i` must ship the tile at
//! columns `[j·b, (j+1)·b)` of its row block to every rank `j` — and the
//! elements of that tile are **non-contiguous columns** of the local
//! block. The send datatype gathers one tile column-major (an `hindexed`
//! of strided-column `hvector`s), which makes the packed wire stream land
//! on the receive side as contiguous row fragments (a single `hvector`
//! with blocklen `b`). No rank ever materializes a packed copy itself —
//! the datatype engine does the gather/scatter, on host memory or
//! straight out of device memory through the staging pipeline.
//!
//! Pure data movement: the result must be **bit-exact** against
//! [`serial_transpose`].

use std::sync::Arc;

use gpu_sim::Loc;
use hostmem::{bytes_to_scalars, scalars_to_bytes, HostBuf};
use mpi_sim::{CollAlgo, Datatype, MpiConfig};
use mv2_gpu_nc::GpuCluster;
use sim_core::lock::Mutex;
use sim_core::SimTime;

use crate::Mem;

/// Transpose workload configuration.
#[derive(Copy, Clone, Debug)]
pub struct TransposeParams {
    /// Global matrix dimension N (rows == columns).
    pub n: usize,
    /// Number of ranks P; must divide `n`.
    pub ranks: usize,
    /// Ranks per node (blocked placement); must divide `ranks`.
    pub ppn: usize,
    /// Collective algorithm family.
    pub algo: CollAlgo,
    /// Host or device working set.
    pub mem: Mem,
}

/// Result of a distributed transpose run.
#[derive(Clone, Debug)]
pub struct TransposeOutcome {
    /// Virtual completion time of the job.
    pub wall: SimTime,
    /// Rank `i`'s row block of Aᵀ (rows `[i·b, (i+1)·b)`, row-major).
    pub blocks: Vec<Vec<f64>>,
}

/// The deterministic test matrix: `A[g][k]` for global row `g`, column
/// `k`. Values are only moved, never combined, so any pattern works; this
/// one makes every element globally unique.
pub fn element(n: usize, g: usize, k: usize) -> f64 {
    (g * n + k) as f64 + 0.25
}

/// Row-major Aᵀ computed serially — the guard for [`run_transpose`].
pub fn serial_transpose(n: usize) -> Vec<f64> {
    let mut out = vec![0f64; n * n];
    for g in 0..n {
        for k in 0..n {
            out[k * n + g] = element(n, g, k);
        }
    }
    out
}

/// Per-rank results collected out of the simulation: `(rank, data)`.
type RankResults = Vec<(usize, Vec<f64>)>;

/// Run the distributed transpose; `blocks` concatenated in rank order is
/// row-major Aᵀ.
pub fn run_transpose(p: TransposeParams) -> TransposeOutcome {
    assert!(
        p.n.is_multiple_of(p.ranks),
        "matrix dimension {} must be divisible by {} ranks",
        p.n,
        p.ranks
    );
    let results: Arc<Mutex<RankResults>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&results);
    let mut cfg = MpiConfig {
        ppn: p.ppn,
        ..MpiConfig::default()
    };
    cfg.coll.algo = p.algo;
    let wall = GpuCluster::new(p.ranks).mpi_config(cfg).run(move |env| {
        let comm = &env.comm;
        let (me, np, n) = (comm.rank(), comm.size(), p.n);
        let b = n / np; // rows per rank
        let row_bytes = n * 8;

        // My row block of A, row-major b x n.
        let mine: Vec<f64> = (0..b)
            .flat_map(|r| (0..n).map(move |k| element(n, me * b + r, k)))
            .collect();
        let send_host = HostBuf::from_vec(scalars_to_bytes(&mine));
        let recv_host = HostBuf::alloc(b * row_bytes);

        let (send_loc, recv_loc, dev) = match p.mem {
            Mem::Host => (
                Loc::Host(send_host.base()),
                Loc::Host(recv_host.base()),
                None,
            ),
            Mem::Device => {
                let d_send = env.gpu.malloc(b * row_bytes);
                let d_recv = env.gpu.malloc(b * row_bytes);
                env.gpu.memcpy(d_send, send_host.base(), b * row_bytes);
                (
                    Loc::Device(d_send),
                    Loc::Device(d_recv),
                    Some((d_send, d_recv)),
                )
            }
        };

        let f64t = Datatype::double();
        f64t.commit();
        // One strided column of the destination tile: b elements, one per
        // local row, n*8 bytes apart.
        let col = Datatype::hvector(b, 1, row_bytes as isize, &f64t);
        // The whole tile for one destination, column-major: columns c =
        // 0..b, each starting 8 bytes after the previous.
        let tile_cols: Vec<(usize, isize)> = (0..b).map(|c| (1, (c * 8) as isize)).collect();
        let stile = Datatype::hindexed(&tile_cols, &col);
        stile.commit();
        // The packed stream (column-major tile) lands as b row fragments
        // of b contiguous elements, one per destination row.
        let rtile = Datatype::hvector(b, b, row_bytes as isize, &f64t);
        rtile.commit();

        let counts = vec![1usize; np];
        let displs: Vec<usize> = (0..np).map(|j| j * b * 8).collect();
        comm.barrier();
        comm.alltoallv(
            send_loc, &counts, &displs, &stile, recv_loc, &counts, &displs, &rtile,
        );

        if let Some((d_send, d_recv)) = dev {
            env.gpu.memcpy(recv_host.base(), d_recv, b * row_bytes);
            env.gpu.free(d_send);
            env.gpu.free(d_recv);
        }
        let block = bytes_to_scalars::<f64>(&recv_host.read(0, b * row_bytes));
        sink.lock().push((me, block));
    });
    let mut got = Arc::try_unwrap(results)
        .map(|m| m.into_inner())
        .unwrap_or_else(|a| a.lock().clone());
    got.sort_by_key(|(r, _)| *r);
    TransposeOutcome {
        wall,
        blocks: got.into_iter().map(|(_, v)| v).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(p: TransposeParams) {
        let out = run_transpose(p);
        let want = serial_transpose(p.n);
        let b = p.n / p.ranks;
        for (i, block) in out.blocks.iter().enumerate() {
            assert_eq!(
                block.as_slice(),
                &want[i * b * p.n..(i + 1) * b * p.n],
                "rank {i} block ({p:?})"
            );
        }
    }

    #[test]
    fn matches_serial_on_host_all_families() {
        for algo in [CollAlgo::Naive, CollAlgo::Flat, CollAlgo::Hier] {
            check(TransposeParams {
                n: 24,
                ranks: 6,
                ppn: 3,
                algo,
                mem: Mem::Host,
            });
        }
    }

    #[test]
    fn matches_serial_on_device_hier() {
        check(TransposeParams {
            n: 32,
            ranks: 8,
            ppn: 4,
            algo: CollAlgo::Hier,
            mem: Mem::Device,
        });
    }

    #[test]
    fn matches_serial_on_device_flat() {
        check(TransposeParams {
            n: 16,
            ranks: 4,
            ppn: 1,
            algo: CollAlgo::Flat,
            mem: Mem::Device,
        });
    }

    #[test]
    fn placements_agree_bitwise() {
        let base = run_transpose(TransposeParams {
            n: 24,
            ranks: 8,
            ppn: 1,
            algo: CollAlgo::Flat,
            mem: Mem::Host,
        });
        for (ppn, algo) in [
            (2, CollAlgo::Hier),
            (4, CollAlgo::Hier),
            (8, CollAlgo::Hier),
        ] {
            let out = run_transpose(TransposeParams {
                n: 24,
                ranks: 8,
                ppn,
                algo,
                mem: Mem::Host,
            });
            assert_eq!(base.blocks, out.blocks, "ppn {ppn}");
        }
    }
}
