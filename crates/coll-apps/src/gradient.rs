//! Data-parallel gradient allreduce.
//!
//! The canonical distributed-training loop: every rank computes a local
//! gradient over its shard, the gradients are summed with `allreduce`,
//! and every rank applies the identical update. The model lives on the
//! host or on the device; device gradients travel through the staging
//! pipeline (pack to host staging → fold → repack), exercising the
//! GPU-aware reduction path end to end.
//!
//! Gradients are **integer-valued** `f32` and updates scale by 1/8, so
//! every arithmetic step is exact in `f32` regardless of fold order: the
//! distributed weights must match [`serial_gradient`] bit for bit on
//! every rank, every placement, every algorithm family.

use std::sync::Arc;

use gpu_sim::Loc;
use hostmem::{bytes_to_scalars, scalars_to_bytes, HostBuf};
use mpi_sim::{CollAlgo, Datatype, MpiConfig, ReduceOp};
use mv2_gpu_nc::GpuCluster;
use sim_core::lock::Mutex;
use sim_core::SimTime;

use crate::Mem;

/// Gradient-allreduce workload configuration.
#[derive(Copy, Clone, Debug)]
pub struct GradParams {
    /// Model size (number of `f32` parameters).
    pub params: usize,
    /// Training steps (one allreduce per step).
    pub steps: usize,
    /// Number of ranks.
    pub ranks: usize,
    /// Ranks per node (blocked placement); must divide `ranks`.
    pub ppn: usize,
    /// Collective algorithm family.
    pub algo: CollAlgo,
    /// Host or device gradient buffers.
    pub mem: Mem,
}

/// Result of a data-parallel run.
#[derive(Clone, Debug)]
pub struct GradOutcome {
    /// Virtual completion time of the job.
    pub wall: SimTime,
    /// Each rank's final weights (must all be identical).
    pub weights: Vec<Vec<f32>>,
}

/// Rank `r`'s local gradient for parameter `k` at `step` — integer-valued
/// in [-11, 11], so sums stay exact in `f32` for any realistic rank
/// count.
pub fn local_grad(r: usize, step: usize, k: usize) -> f32 {
    ((k * 31 + step * 17 + r * 13) % 23) as f32 - 11.0
}

/// The serial reference: the same training loop with the gradient sum
/// computed directly.
pub fn serial_gradient(params: usize, steps: usize, ranks: usize) -> Vec<f32> {
    let mut w = vec![0f32; params];
    for step in 0..steps {
        for (k, wk) in w.iter_mut().enumerate() {
            let g: f32 = (0..ranks).map(|r| local_grad(r, step, k)).sum();
            *wk -= 0.125 * g;
        }
    }
    w
}

/// Per-rank results collected out of the simulation: `(rank, data)`.
type RankResults = Vec<(usize, Vec<f32>)>;

/// Run the distributed training loop.
pub fn run_gradient(p: GradParams) -> GradOutcome {
    let results: Arc<Mutex<RankResults>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&results);
    let mut cfg = MpiConfig {
        ppn: p.ppn,
        ..MpiConfig::default()
    };
    cfg.coll.algo = p.algo;
    let wall = GpuCluster::new(p.ranks).mpi_config(cfg).run(move |env| {
        let comm = &env.comm;
        let me = comm.rank();
        let bytes = p.params * 4;
        let f32t = Datatype::float();
        f32t.commit();

        let grad_host = HostBuf::alloc(bytes);
        let sum_host = HostBuf::alloc(bytes);
        let dev = match p.mem {
            Mem::Host => None,
            Mem::Device => Some((env.gpu.malloc(bytes), env.gpu.malloc(bytes))),
        };
        let (send_loc, recv_loc) = match dev {
            None => (Loc::Host(grad_host.base()), Loc::Host(sum_host.base())),
            Some((g, s)) => (Loc::Device(g), Loc::Device(s)),
        };

        let mut w = vec![0f32; p.params];
        comm.barrier();
        for step in 0..p.steps {
            let grad: Vec<f32> = (0..p.params).map(|k| local_grad(me, step, k)).collect();
            grad_host.write(0, &scalars_to_bytes(&grad));
            if let Some((g, _)) = dev {
                env.gpu.memcpy(g, grad_host.base(), bytes);
            }
            comm.allreduce(
                send_loc.clone(),
                recv_loc.clone(),
                p.params,
                &f32t,
                ReduceOp::Sum,
            );
            if let Some((_, s)) = dev {
                env.gpu.memcpy(sum_host.base(), s, bytes);
            }
            let summed = bytes_to_scalars::<f32>(&sum_host.read(0, bytes));
            for (wk, g) in w.iter_mut().zip(&summed) {
                *wk -= 0.125 * g;
            }
        }
        if let Some((g, s)) = dev {
            env.gpu.free(g);
            env.gpu.free(s);
        }
        sink.lock().push((me, w));
    });
    let mut got = Arc::try_unwrap(results)
        .map(|m| m.into_inner())
        .unwrap_or_else(|a| a.lock().clone());
    got.sort_by_key(|(r, _)| *r);
    GradOutcome {
        wall,
        weights: got.into_iter().map(|(_, v)| v).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(p: GradParams) {
        let out = run_gradient(p);
        let want = serial_gradient(p.params, p.steps, p.ranks);
        for (i, w) in out.weights.iter().enumerate() {
            assert_eq!(w.as_slice(), want.as_slice(), "rank {i} ({p:?})");
        }
    }

    #[test]
    fn matches_serial_on_host_all_families() {
        for algo in [CollAlgo::Naive, CollAlgo::Flat, CollAlgo::Hier] {
            check(GradParams {
                params: 3000,
                steps: 3,
                ranks: 8,
                ppn: 4,
                algo,
                mem: Mem::Host,
            });
        }
    }

    #[test]
    fn matches_serial_on_device_hier_pipelined() {
        // 256 KiB of f32 spans several pipeline_chunk segments.
        check(GradParams {
            params: 64 << 10,
            steps: 2,
            ranks: 8,
            ppn: 4,
            algo: CollAlgo::Hier,
            mem: Mem::Device,
        });
    }

    #[test]
    fn matches_serial_uneven_node_fill() {
        // 9 ranks at ppn 3: hierarchy with three nodes.
        check(GradParams {
            params: 1024,
            steps: 2,
            ranks: 9,
            ppn: 3,
            algo: CollAlgo::Hier,
            mem: Mem::Host,
        });
    }
}
