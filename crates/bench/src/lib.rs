//! Shared harness utilities for the figure/table regeneration binaries.
//!
//! Every binary prints a human-readable table (the same rows/series the
//! paper reports) and, with `--json`, a machine-readable record used to
//! update `EXPERIMENTS.md`.

use std::collections::BTreeMap;

pub use json::{Json, ToJson};

/// Minimal JSON tree + pretty printer, so the harness binaries can emit
/// machine-readable records without an external serialization crate.
pub mod json {
    use std::fmt;

    /// A JSON value.
    pub enum Json {
        Bool(bool),
        /// Integers are kept exact rather than routed through `f64`.
        Int(i64),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        /// Insertion-ordered key/value pairs.
        Obj(Vec<(String, Json)>),
    }

    /// Conversion into a [`Json`] tree. Implement by hand or with
    /// [`impl_to_json!`](crate::impl_to_json) for plain field structs.
    pub trait ToJson {
        fn to_json(&self) -> Json;
    }

    impl ToJson for Json {
        fn to_json(&self) -> Json {
            self.clone_tree()
        }
    }

    impl Json {
        fn clone_tree(&self) -> Json {
            match self {
                Json::Bool(b) => Json::Bool(*b),
                Json::Int(n) => Json::Int(*n),
                Json::Num(x) => Json::Num(*x),
                Json::Str(s) => Json::Str(s.clone()),
                Json::Arr(v) => Json::Arr(v.iter().map(Json::clone_tree).collect()),
                Json::Obj(kv) => Json::Obj(
                    kv.iter()
                        .map(|(k, v)| (k.clone(), v.clone_tree()))
                        .collect(),
                ),
            }
        }

        fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
            let pad = "  ".repeat(depth + 1);
            let close = "  ".repeat(depth);
            match self {
                Json::Bool(b) => write!(f, "{b}"),
                Json::Int(n) => write!(f, "{n}"),
                Json::Num(x) if x.is_finite() => {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                }
                Json::Num(_) => write!(f, "null"),
                Json::Str(s) => {
                    f.write_str("\"")?;
                    for c in s.chars() {
                        match c {
                            '"' => f.write_str("\\\"")?,
                            '\\' => f.write_str("\\\\")?,
                            '\n' => f.write_str("\\n")?,
                            '\t' => f.write_str("\\t")?,
                            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                            c => write!(f, "{c}")?,
                        }
                    }
                    f.write_str("\"")
                }
                Json::Arr(v) if v.is_empty() => f.write_str("[]"),
                Json::Arr(v) => {
                    f.write_str("[\n")?;
                    for (i, item) in v.iter().enumerate() {
                        f.write_str(&pad)?;
                        item.fmt_indented(f, depth + 1)?;
                        f.write_str(if i + 1 < v.len() { ",\n" } else { "\n" })?;
                    }
                    write!(f, "{close}]")
                }
                Json::Obj(kv) if kv.is_empty() => f.write_str("{}"),
                Json::Obj(kv) => {
                    f.write_str("{\n")?;
                    for (i, (k, v)) in kv.iter().enumerate() {
                        write!(f, "{pad}\"{k}\": ")?;
                        v.fmt_indented(f, depth + 1)?;
                        f.write_str(if i + 1 < kv.len() { ",\n" } else { "\n" })?;
                    }
                    write!(f, "{close}}}")
                }
            }
        }
    }

    /// Pretty-printed with two-space indentation.
    impl fmt::Display for Json {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.fmt_indented(f, 0)
        }
    }

    impl ToJson for bool {
        fn to_json(&self) -> Json {
            Json::Bool(*self)
        }
    }
    impl ToJson for f64 {
        fn to_json(&self) -> Json {
            Json::Num(*self)
        }
    }
    impl ToJson for usize {
        fn to_json(&self) -> Json {
            Json::Int(*self as i64)
        }
    }
    impl ToJson for u64 {
        fn to_json(&self) -> Json {
            Json::Int(*self as i64)
        }
    }
    impl ToJson for u32 {
        fn to_json(&self) -> Json {
            Json::Int(i64::from(*self))
        }
    }
    impl ToJson for i64 {
        fn to_json(&self) -> Json {
            Json::Int(*self)
        }
    }
    impl ToJson for String {
        fn to_json(&self) -> Json {
            Json::Str(self.clone())
        }
    }
    impl ToJson for &str {
        fn to_json(&self) -> Json {
            Json::Str((*self).to_string())
        }
    }
    impl<T: ToJson> ToJson for &T {
        fn to_json(&self) -> Json {
            (*self).to_json()
        }
    }
    impl<T: ToJson> ToJson for [T] {
        fn to_json(&self) -> Json {
            Json::Arr(self.iter().map(ToJson::to_json).collect())
        }
    }
    impl<T: ToJson> ToJson for Vec<T> {
        fn to_json(&self) -> Json {
            self.as_slice().to_json()
        }
    }
    impl<V: ToJson> ToJson for std::collections::BTreeMap<String, V> {
        fn to_json(&self) -> Json {
            Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
        }
    }
}

/// Implement [`ToJson`] for a struct by listing its fields, in the order
/// they should appear in the emitted object:
///
/// ```
/// struct Row {
///     bytes: usize,
///     latency_us: f64,
/// }
/// bench::impl_to_json!(Row { bytes, latency_us });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

/// Parsed command-line options shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Emit JSON instead of a table.
    pub json: bool,
    /// Matrix scale-down factor for the stencil experiments (1 = paper
    /// size).
    pub scale: usize,
    /// Stencil iterations per run.
    pub iters: usize,
    /// Free-form key=value extras.
    pub extra: BTreeMap<String, String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            json: false,
            scale: 1,
            iters: 5,
            extra: BTreeMap::new(),
        }
    }
}

impl HarnessArgs {
    /// Parse `std::env::args()`: `--json`, `--scale N`, `--iters N`,
    /// `--key value`.
    pub fn parse() -> Self {
        let mut out = HarnessArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => out.json = true,
                "--scale" => {
                    out.scale = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a positive integer");
                }
                "--iters" => {
                    out.iters = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--iters needs a positive integer");
                }
                other => {
                    let key = other.trim_start_matches("--").to_string();
                    let val = args.next().unwrap_or_default();
                    out.extra.insert(key, val);
                }
            }
        }
        out
    }
}

/// One experiment's machine-readable result.
pub struct ExperimentRecord<T: ToJson> {
    /// Experiment id ("fig2", "table2", ...).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The data series.
    pub data: T,
}

/// Print a record as pretty JSON.
pub fn emit_json<T: ToJson>(rec: &ExperimentRecord<T>) {
    let doc = Json::Obj(vec![
        ("id".to_string(), rec.id.to_json()),
        ("title".to_string(), rec.title.to_json()),
        ("data".to_string(), rec.data.to_json()),
    ]);
    println!("{doc}");
}

/// Format a byte count the way the paper's axes do (16, 1K, 64K, 4M).
pub fn fmt_size(bytes: usize) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

/// The paper's message-size sweep: 16 B to 4 MB in 4x steps.
pub fn paper_sizes() -> Vec<usize> {
    (0..10).map(|i| 16 << (2 * i)).collect()
}

/// Render an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_size_uses_paper_units() {
        assert_eq!(fmt_size(16), "16");
        assert_eq!(fmt_size(1 << 10), "1K");
        assert_eq!(fmt_size(64 << 10), "64K");
        assert_eq!(fmt_size(4 << 20), "4M");
        assert_eq!(fmt_size(100), "100");
    }

    #[test]
    fn json_pretty_printer_round_trips_structure() {
        struct Row {
            bytes: usize,
            us: f64,
        }
        impl_to_json!(Row { bytes, us });
        let rows = vec![Row { bytes: 16, us: 1.5 }, Row { bytes: 64, us: 2.0 }];
        let doc = Json::Obj(vec![
            ("id".to_string(), "t".to_json()),
            ("data".to_string(), rows.to_json()),
        ]);
        let text = doc.to_string();
        assert!(text.contains("\"id\": \"t\""));
        assert!(text.contains("\"bytes\": 16"));
        assert!(text.contains("\"us\": 1.5"));
        assert!(
            text.contains("\"us\": 2.0"),
            "whole floats keep a decimal: {text}"
        );
    }

    #[test]
    fn json_escapes_strings() {
        let j = Json::Str("a\"b\\c\nd".to_string());
        assert_eq!(j.to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn paper_sizes_span_16b_to_4mb() {
        let s = paper_sizes();
        assert_eq!(s.first(), Some(&16));
        assert_eq!(s.last(), Some(&(4 << 20)));
        assert_eq!(s.len(), 10);
    }
}

/// Shared driver for the Table II / Table III stencil experiments.
pub mod stencil_tables {
    use super::{print_table, HarnessArgs};
    use stencil2d::{run_stencil, Real, RunOptions, StencilParams, Variant};

    /// One process-grid row of Table II/III.
    pub struct GridRow {
        /// Grid label, e.g. "2x4 (8192x8192/proc)".
        pub grid: String,
        /// Stencil2D-Def execution time (virtual seconds).
        pub def_secs: f64,
        /// Stencil2D-MV2-GPU-NC execution time (virtual seconds).
        pub mv2_secs: f64,
        /// Relative improvement in percent.
        pub improvement_pct: f64,
    }

    crate::impl_to_json!(GridRow {
        grid,
        def_secs,
        mv2_secs,
        improvement_pct
    });

    /// Run all four paper grids in precision `T`.
    pub fn run_tables<T: Real>(args: &HarnessArgs) -> Vec<GridRow> {
        StencilParams::paper_grids(args.scale)
            .into_iter()
            .map(|mut p| {
                p.iters = args.iters;
                let def = run_stencil::<T>(p, Variant::Def, RunOptions::default());
                let mv2 = run_stencil::<T>(p, Variant::Mv2, RunOptions::default());
                assert_eq!(
                    def.checksum(),
                    mv2.checksum(),
                    "variants must compute identical results ({})",
                    p.label()
                );
                let (d, m) = (def.wall.as_secs_f64(), mv2.wall.as_secs_f64());
                GridRow {
                    grid: p.label(),
                    def_secs: d,
                    mv2_secs: m,
                    improvement_pct: (1.0 - m / d) * 100.0,
                }
            })
            .collect()
    }

    /// Print the table with the paper's improvement column for comparison.
    pub fn print_report(title: &str, paper: [u32; 4], rows: &[GridRow]) {
        println!("{title}\n");
        print_table(
            &[
                "grid (matrix/proc)",
                "Stencil2D-Def (s)",
                "Stencil2D-MV2-GPU-NC (s)",
                "improvement",
                "paper",
            ],
            &rows
                .iter()
                .zip(paper)
                .map(|(r, p)| {
                    vec![
                        r.grid.clone(),
                        format!("{:.6}", r.def_secs),
                        format!("{:.6}", r.mv2_secs),
                        format!("{:.0}%", r.improvement_pct),
                        format!("{p}%"),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }
}
