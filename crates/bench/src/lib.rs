//! Shared harness utilities for the figure/table regeneration binaries.
//!
//! Every binary prints a human-readable table (the same rows/series the
//! paper reports) and, with `--json`, a machine-readable record used to
//! update `EXPERIMENTS.md`.

use std::collections::BTreeMap;

use serde::Serialize;

/// Parsed command-line options shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Emit JSON instead of a table.
    pub json: bool,
    /// Matrix scale-down factor for the stencil experiments (1 = paper
    /// size).
    pub scale: usize,
    /// Stencil iterations per run.
    pub iters: usize,
    /// Free-form key=value extras.
    pub extra: BTreeMap<String, String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            json: false,
            scale: 1,
            iters: 5,
            extra: BTreeMap::new(),
        }
    }
}

impl HarnessArgs {
    /// Parse `std::env::args()`: `--json`, `--scale N`, `--iters N`,
    /// `--key value`.
    pub fn parse() -> Self {
        let mut out = HarnessArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => out.json = true,
                "--scale" => {
                    out.scale = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a positive integer");
                }
                "--iters" => {
                    out.iters = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--iters needs a positive integer");
                }
                other => {
                    let key = other.trim_start_matches("--").to_string();
                    let val = args.next().unwrap_or_default();
                    out.extra.insert(key, val);
                }
            }
        }
        out
    }
}

/// One experiment's machine-readable result.
#[derive(Serialize)]
pub struct ExperimentRecord<T: Serialize> {
    /// Experiment id ("fig2", "table2", ...).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The data series.
    pub data: T,
}

/// Print a record as pretty JSON.
pub fn emit_json<T: Serialize>(rec: &ExperimentRecord<T>) {
    println!("{}", serde_json::to_string_pretty(rec).expect("serialize"));
}

/// Format a byte count the way the paper's axes do (16, 1K, 64K, 4M).
pub fn fmt_size(bytes: usize) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

/// The paper's message-size sweep: 16 B to 4 MB in 4x steps.
pub fn paper_sizes() -> Vec<usize> {
    (0..10).map(|i| 16 << (2 * i)).collect()
}

/// Render an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>(),
    );
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_size_uses_paper_units() {
        assert_eq!(fmt_size(16), "16");
        assert_eq!(fmt_size(1 << 10), "1K");
        assert_eq!(fmt_size(64 << 10), "64K");
        assert_eq!(fmt_size(4 << 20), "4M");
        assert_eq!(fmt_size(100), "100");
    }

    #[test]
    fn paper_sizes_span_16b_to_4mb() {
        let s = paper_sizes();
        assert_eq!(s.first(), Some(&16));
        assert_eq!(s.last(), Some(&(4 << 20)));
        assert_eq!(s.len(), 10);
    }
}

/// Shared driver for the Table II / Table III stencil experiments.
pub mod stencil_tables {
    use super::{print_table, HarnessArgs};
    use serde::Serialize;
    use stencil2d::{run_stencil, Real, RunOptions, StencilParams, Variant};

    /// One process-grid row of Table II/III.
    #[derive(Serialize)]
    pub struct GridRow {
        /// Grid label, e.g. "2x4 (8192x8192/proc)".
        pub grid: String,
        /// Stencil2D-Def execution time (virtual seconds).
        pub def_secs: f64,
        /// Stencil2D-MV2-GPU-NC execution time (virtual seconds).
        pub mv2_secs: f64,
        /// Relative improvement in percent.
        pub improvement_pct: f64,
    }

    /// Run all four paper grids in precision `T`.
    pub fn run_tables<T: Real>(args: &HarnessArgs) -> Vec<GridRow> {
        StencilParams::paper_grids(args.scale)
            .into_iter()
            .map(|mut p| {
                p.iters = args.iters;
                let def = run_stencil::<T>(p, Variant::Def, RunOptions::default());
                let mv2 = run_stencil::<T>(p, Variant::Mv2, RunOptions::default());
                assert_eq!(
                    def.checksum(),
                    mv2.checksum(),
                    "variants must compute identical results ({})",
                    p.label()
                );
                let (d, m) = (def.wall.as_secs_f64(), mv2.wall.as_secs_f64());
                GridRow {
                    grid: p.label(),
                    def_secs: d,
                    mv2_secs: m,
                    improvement_pct: (1.0 - m / d) * 100.0,
                }
            })
            .collect()
    }

    /// Print the table with the paper's improvement column for comparison.
    pub fn print_report(title: &str, paper: [u32; 4], rows: &[GridRow]) {
        println!("{title}\n");
        print_table(
            &[
                "grid (matrix/proc)",
                "Stencil2D-Def (s)",
                "Stencil2D-MV2-GPU-NC (s)",
                "improvement",
                "paper",
            ],
            &rows
                .iter()
                .zip(paper)
                .map(|(r, p)| {
                    vec![
                        r.grid.clone(),
                        format!("{:.6}", r.def_secs),
                        format!("{:.6}", r.mv2_secs),
                        format!("{:.0}%", r.improvement_pct),
                        format!("{p}%"),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }
}
