//! Model-checking campaign: exhaustively explore every protocol scenario
//! and rediscover both reintroduced bugs.
//!
//! Runs the `simcheck` explorer over the four control-plane protocols
//! (staged, direct, shm-eager, D2D) plus the deferred-CTS contention
//! scenario, all of which must pass exhaustively within their budgets —
//! and over the two bug scenarios (finalize-quiesce, deferred-CTS
//! starvation), both of which must yield a minimized, replayable
//! counterexample. Exits nonzero on any unexpected verdict.
//!
//! Regenerate with:
//! `cargo run --release -p bench --bin modelcheck` (writes
//! `results/modelcheck.json`; `--out PATH` overrides). `--smoke` shrinks
//! every budget to the CI bounds.

use bench::{print_table, HarnessArgs, Json, ToJson};
use simcheck::{explore, scenarios, silence_expected_panics, Budget, Verdict};

fn verdict_json(v: &Verdict, expect_bug: bool, wall_ms: f64) -> Json {
    let mut kv = vec![
        ("scenario".to_string(), v.scenario.to_json()),
        ("expect_bug".to_string(), expect_bug.to_json()),
        ("schedules".to_string(), v.stats.schedules.to_json()),
        ("branched".to_string(), v.stats.branched.to_json()),
        ("pruned".to_string(), v.stats.pruned.to_json()),
        ("max_index".to_string(), v.stats.max_index.to_json()),
        ("truncated".to_string(), v.stats.truncated.to_json()),
        ("wall_ms".to_string(), wall_ms.to_json()),
        (
            "verdict".to_string(),
            if v.passed() { "pass" } else { "violation" }.to_json(),
        ),
    ];
    if let Some(c) = &v.counterexample {
        kv.push((
            "counterexample".to_string(),
            Json::Obj(vec![
                ("schedule".to_string(), c.schedule.to_string().to_json()),
                ("original".to_string(), c.original.to_string().to_json()),
                (
                    "divergences".to_string(),
                    c.schedule.divergences().to_json(),
                ),
                ("runs_to_find".to_string(), c.runs_to_find.to_json()),
                (
                    "message".to_string(),
                    c.message.lines().next().unwrap_or("").to_string().to_json(),
                ),
            ]),
        ));
    }
    Json::Obj(kv)
}

fn main() {
    silence_expected_panics();
    let args = HarnessArgs::parse();
    let smoke = args.extra.contains_key("smoke");

    let shrink = |mut s: simcheck::Scenario| -> simcheck::Scenario {
        if smoke {
            s.budget = Budget {
                allow_drops: s.budget.allow_drops,
                ..Budget::smoke()
            };
        }
        s
    };

    let t0 = std::time::Instant::now();
    let mut rows = Vec::new();
    let mut docs = Vec::new();
    let mut failures = Vec::new();
    let mut total = (0usize, 0usize, 0usize); // schedules, branched, pruned

    let jobs: Vec<(simcheck::Scenario, bool)> = scenarios::protocol_scenarios()
        .into_iter()
        .map(|s| (shrink(s), false))
        .chain(
            scenarios::bug_scenarios()
                .into_iter()
                .map(|s| (shrink(s), true)),
        )
        .collect();

    for (scenario, expect_bug) in jobs {
        let ts = std::time::Instant::now();
        let v = explore(&scenario);
        let wall_ms = ts.elapsed().as_secs_f64() * 1e3;
        total.0 += v.stats.schedules;
        total.1 += v.stats.branched;
        total.2 += v.stats.pruned;

        let ok = if expect_bug {
            v.counterexample.is_some()
        } else {
            v.passed() && !v.stats.truncated
        };
        if !ok {
            failures.push(match &v.counterexample {
                Some(c) => format!("{}: unexpected violation: {}", v.scenario, c.message),
                None if v.stats.truncated => {
                    format!("{}: exploration truncated at the schedule cap", v.scenario)
                }
                None => format!("{}: failed to find the seeded bug", v.scenario),
            });
        }
        rows.push(vec![
            v.scenario.to_string(),
            v.stats.schedules.to_string(),
            v.stats.branched.to_string(),
            v.stats.pruned.to_string(),
            v.stats.max_index.to_string(),
            match (&v.counterexample, expect_bug) {
                (None, false) => "pass (exhaustive)".to_string(),
                (Some(c), true) => format!("bug found: {}", c.schedule),
                (None, true) => "BUG MISSED".to_string(),
                (Some(_), false) => "UNEXPECTED VIOLATION".to_string(),
            },
        ]);
        docs.push(verdict_json(&v, expect_bug, wall_ms));
    }

    // POR reduction factor: of all branch candidates considered, the
    // fraction pruned tells how much of the naive interleaving space the
    // concurrency test collapsed.
    let candidates = total.1 + total.2;
    let por_factor = if total.1 > 0 {
        candidates as f64 / total.1 as f64
    } else {
        1.0
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let doc = Json::Obj(vec![
        ("id".to_string(), "modelcheck".to_json()),
        (
            "title".to_string(),
            "Exhaustive control-plane model checking".to_json(),
        ),
        ("smoke".to_string(), smoke.to_json()),
        ("scenarios".to_string(), Json::Arr(docs)),
        ("total_schedules".to_string(), total.0.to_json()),
        ("total_branched".to_string(), total.1.to_json()),
        ("total_pruned".to_string(), total.2.to_json()),
        ("por_reduction_factor".to_string(), por_factor.to_json()),
        ("wall_ms".to_string(), wall_ms.to_json()),
        ("ok".to_string(), failures.is_empty().to_json()),
    ]);

    let out_path = args
        .extra
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/modelcheck.json".to_string());
    std::fs::write(&out_path, format!("{doc}\n")).expect("write results file");

    if args.json {
        println!("{doc}");
    } else {
        println!("Model checking: {} schedules explored, POR reduction {por_factor:.2}x, {wall_ms:.0} ms\n", total.0);
        print_table(
            &[
                "scenario",
                "schedules",
                "branched",
                "pruned",
                "max idx",
                "verdict",
            ],
            &rows,
        );
        println!("\nwrote {out_path}");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
