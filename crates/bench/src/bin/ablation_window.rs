//! Ablation: pipeline window depth (vbuf slots granted per CTS).
//!
//! Two regimes, both measured here:
//!
//! * **Strided (vector) messages** — the GPU pack stage (~150 µs per 64 KB
//!   chunk) is slower than a chunk's whole post-pack journey (~110 µs of
//!   D2H + RDMA + H2D + credit), so even a single slot never stalls: the
//!   paper's pipeline is *pack-gated*, and the window size is irrelevant.
//! * **Contiguous device messages** — there is no pack stage, so with one
//!   slot every chunk serializes D2H → RDMA → H2D → credit; the window is
//!   precisely what lets the three engines stream. This is the paper's
//!   "8x1 grid benefits from pipelining alone" case.
//!
//! Regenerate with: `cargo run --release -p bench --bin ablation_window`

use bench::{emit_json, print_table, ExperimentRecord, HarnessArgs};
use mpi_sim::{Datatype, MpiConfig};
use mv2_gpu_nc::baselines::{fill_vector, recv_mv2, send_mv2, VectorXfer};
use mv2_gpu_nc::GpuCluster;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn measure(total: usize, window: usize, strided: bool) -> f64 {
    let out = Arc::new(AtomicU64::new(0));
    let out2 = Arc::clone(&out);
    let cfg = MpiConfig {
        window_slots: window,
        ..MpiConfig::default()
    };
    GpuCluster::new(2).mpi_config(cfg).run(move |env| {
        let me = env.comm.rank();
        if strided {
            let x = VectorXfer::paper(total);
            let dev = env.gpu.malloc(x.extent());
            if me == 0 {
                fill_vector(&env.gpu, dev, &x, 1);
                send_mv2(&env.comm, dev, x, 1, 9); // warm-up
            } else {
                recv_mv2(&env.comm, dev, x, 0, 9);
            }
            env.comm.barrier();
            let t0 = sim_core::now();
            if me == 0 {
                send_mv2(&env.comm, dev, x, 1, 0);
            } else {
                recv_mv2(&env.comm, dev, x, 0, 0);
                out2.store((sim_core::now() - t0).as_nanos(), Ordering::SeqCst);
            }
        } else {
            let t = Datatype::byte();
            t.commit();
            let dev = env.gpu.malloc(total);
            if me == 0 {
                env.comm.send(dev, total, &t, 1, 9); // warm-up
            } else {
                env.comm.recv(dev, total, &t, 0, 9);
            }
            env.comm.barrier();
            let t0 = sim_core::now();
            if me == 0 {
                env.comm.send(dev, total, &t, 1, 0);
            } else {
                env.comm.recv(dev, total, &t, 0, 0);
                out2.store((sim_core::now() - t0).as_nanos(), Ordering::SeqCst);
            }
        }
    });
    out.load(Ordering::SeqCst) as f64 / 1e3
}

struct Row {
    window_slots: usize,
    strided_us: f64,
    contiguous_us: f64,
}

bench::impl_to_json!(Row {
    window_slots,
    strided_us,
    contiguous_us
});

fn main() {
    let args = HarnessArgs::parse();
    let total = 4 << 20;
    let rows: Vec<Row> = [1usize, 2, 3, 4, 6, 8, 12, 16]
        .into_iter()
        .map(|w| Row {
            window_slots: w,
            strided_us: measure(total, w, true),
            contiguous_us: measure(total, w, false),
        })
        .collect();

    if args.json {
        emit_json(&ExperimentRecord {
            id: "ablation_window",
            title: "Pipeline window-depth ablation at 4 MB",
            data: &rows,
        });
        return;
    }

    println!("Window-depth ablation: 4 MB device transfer, 64 KB blocks (us)\n");
    print_table(
        &["window (vbuf slots)", "strided (pack-gated)", "contiguous"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}", r.window_slots),
                    format!("{:.0}", r.strided_us),
                    format!("{:.0}", r.contiguous_us),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!();
    println!(
        "contiguous depth-1 penalty vs depth-8: {:.2}x (pipelining alone)",
        rows[0].contiguous_us / rows[5].contiguous_us
    );
    println!(
        "strided depth-1 penalty vs depth-8: {:.2}x (pack-gated: window-insensitive)",
        rows[0].strided_us / rows[5].strided_us
    );
}
