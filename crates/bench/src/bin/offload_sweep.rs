//! Scheme-layer ablation: staged pipeline vs NIC scatter/gather offload
//! vs the Auto policy, across the canonical layout zoo.
//!
//! For every message size it measures a 2-rank host-to-host rendezvous of
//! four layouts — contiguous, single-level strided, two-level strided (64
//! fixed outer groups, so the descriptor constant stays put while the
//! payload grows) and an irregular block soup no bounded descriptor can
//! express — under `Force(Staged)`, `Force(NicOffload)` (regular layouts
//! only) and `Auto { offload: true }`. It reports best-iteration latencies
//! and the per-layout crossover size (smallest message where offload beats
//! staged), and fails loudly if:
//!
//! * any scheme delivers different bytes than the staged pipeline,
//! * offload does not beat staged on the two-level layout at >= 256 KiB,
//! * the two-level crossover lands above 256 KiB,
//! * the Auto policy on the irregular layout diverges from `Force(Staged)`
//!   by even one event (the fallback must be bit-identical).
//!
//! Regenerate with:
//! `cargo run --release -p bench --bin offload_sweep`
//! (`--out PATH` overrides the default `results/BENCH_offload.json`).

use std::sync::Arc;

use bench::{fmt_size, print_table, HarnessArgs, Json, ToJson};
use hostmem::HostBuf;
use mpi_sim::{DataScheme, Datatype, MpiConfig, MpiWorld, SchemeSel};
use sim_core::lock::Mutex;

/// The layout zoo, parameterized by payload bytes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Zoo {
    Contig,
    Strided1d,
    Strided2d,
    Irregular,
}

impl Zoo {
    fn name(self) -> &'static str {
        match self {
            Zoo::Contig => "contig",
            Zoo::Strided1d => "strided1d",
            Zoo::Strided2d => "strided2d",
            Zoo::Irregular => "irregular",
        }
    }

    /// `(datatype, count, buffer bytes)` for a `total`-byte payload.
    fn build(self, total: usize) -> (Datatype, usize, usize) {
        match self {
            Zoo::Contig => (Datatype::byte(), total, total),
            // Rows of 64 B every 128 B: a single descriptor entry.
            Zoo::Strided1d => {
                let rows = total / 64;
                (
                    Datatype::vector(rows, 16, 32, &Datatype::float()),
                    1,
                    rows * 128,
                )
            }
            // 64 outer groups of 64 B rows every 128 B: the descriptor is
            // always 64 entries — its fetch constant is independent of the
            // payload, which is what makes a crossover exist.
            Zoo::Strided2d => {
                let rows = total / (64 * 64);
                let row = Datatype::vector(rows, 16, 32, &Datatype::float());
                let group_stride = (rows * 128 + 256) as isize;
                (
                    Datatype::hvector(64, 1, group_stride, &row),
                    1,
                    64 * group_stride as usize,
                )
            }
            // Alternating 96/160 B blocks every 512 B: widths differ, so no
            // bounded two-level descriptor exists.
            Zoo::Irregular => {
                let blocks: Vec<(usize, isize)> = (0..total / 128)
                    .map(|i| (if i % 2 == 0 { 96 } else { 160 }, (i * 512) as isize))
                    .collect();
                let n = blocks.len();
                (Datatype::hindexed(&blocks, &Datatype::byte()), 1, n * 512)
            }
        }
    }
}

/// Best-of-`iters` one-way virtual latency (ns) of a rank-0 → rank-1
/// rendezvous of the layout under the scheme policy, plus the receiver's
/// final buffer (for the byte-identity guard) and the job's virtual end
/// time (for the bit-identical-fallback guard).
fn measure(
    z: Zoo,
    total: usize,
    scheme: SchemeSel,
    iters: u32,
) -> (u64, Vec<u8>, sim_core::SimTime) {
    type Out = (Vec<u64>, Vec<u8>);
    let out: Arc<Mutex<Out>> = Arc::new(Mutex::new((Vec::new(), Vec::new())));
    let sink = Arc::clone(&out);
    let cfg = MpiConfig {
        scheme,
        ..MpiConfig::default()
    };
    let end = MpiWorld::new(2).with_config(cfg).run(move |comm| {
        let (t, count, bufsize) = z.build(total);
        t.commit();
        if comm.rank() == 0 {
            let buf = HostBuf::from_vec((0..bufsize).map(|i| (i % 251) as u8).collect());
            // Untimed warm-up populates the staging pools and plan cache.
            comm.send(buf.base(), count, &t, 1, 99_999);
            for it in 0..iters {
                comm.barrier();
                comm.send(buf.base(), count, &t, 1, it);
            }
        } else {
            let buf = HostBuf::alloc(bufsize);
            comm.recv(buf.base(), count, &t, 0, 99_999);
            for it in 0..iters {
                comm.barrier();
                let t0 = sim_core::now();
                comm.recv(buf.base(), count, &t, 0, it);
                sink.lock().0.push((sim_core::now() - t0).as_nanos());
            }
            sink.lock().1 = buf.read(0, bufsize);
        }
    });
    let (lat, bytes) = std::mem::take(&mut *out.lock());
    (*lat.iter().min().expect("no iterations ran"), bytes, end)
}

struct Row {
    layout: &'static str,
    bytes: usize,
    staged_best_us: f64,
    offload_best_us: f64,
    auto_best_us: f64,
    offloadable: bool,
}

bench::impl_to_json!(Row {
    layout,
    bytes,
    staged_best_us,
    offload_best_us,
    auto_best_us,
    offloadable
});

fn main() {
    let args = HarnessArgs::parse();
    let iters = (args.iters as u32).max(3);
    let sizes = [16usize << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20];
    let layouts = [Zoo::Contig, Zoo::Strided1d, Zoo::Strided2d, Zoo::Irregular];

    let mut rows: Vec<Row> = Vec::new();
    let mut irregular_fallback_exact = true;
    for z in layouts {
        for &total in &sizes {
            let (s_ns, s_bytes, s_end) =
                measure(z, total, SchemeSel::Force(DataScheme::Staged), iters);
            let (a_ns, a_bytes, a_end) =
                measure(z, total, SchemeSel::Auto { offload: true }, iters);
            assert_eq!(
                s_bytes,
                a_bytes,
                "{} @ {}: Auto delivered different bytes than staged",
                z.name(),
                fmt_size(total)
            );
            let offloadable = z != Zoo::Irregular;
            let o_ns = if offloadable {
                let (o_ns, o_bytes, _) =
                    measure(z, total, SchemeSel::Force(DataScheme::NicOffload), iters);
                assert_eq!(
                    s_bytes,
                    o_bytes,
                    "{} @ {}: offload delivered different bytes than staged",
                    z.name(),
                    fmt_size(total)
                );
                o_ns
            } else {
                // No descriptor exists: the Auto policy *is* the staged
                // pipeline, and must replay it event-for-event.
                irregular_fallback_exact &= s_ns == a_ns && s_end == a_end;
                a_ns
            };
            rows.push(Row {
                layout: z.name(),
                bytes: total,
                staged_best_us: s_ns as f64 / 1e3,
                offload_best_us: o_ns as f64 / 1e3,
                auto_best_us: a_ns as f64 / 1e3,
                offloadable,
            });
        }
    }

    // Per-layout crossover: smallest size where the offload engine beats
    // the staged pipeline (the paper-style figure's annotation).
    let crossover = |name: &str| -> Option<usize> {
        rows.iter()
            .filter(|r| r.layout == name && r.offloadable)
            .find(|r| r.offload_best_us <= r.staged_best_us)
            .map(|r| r.bytes)
    };
    let crossovers: Vec<(String, Json)> = ["contig", "strided1d", "strided2d"]
        .iter()
        .map(|n| {
            (
                n.to_string(),
                crossover(n).map_or(Json::Int(-1), |b| b.to_json()),
            )
        })
        .collect();

    // Regression guards (run from scripts/ci.sh).
    for r in rows
        .iter()
        .filter(|r| r.layout == "strided2d" && r.bytes >= 256 << 10)
    {
        assert!(
            r.offload_best_us < r.staged_best_us,
            "offload must beat staged on strided2d at {}: {:.1} us vs {:.1} us",
            fmt_size(r.bytes),
            r.offload_best_us,
            r.staged_best_us
        );
    }
    let s2d_cross = crossover("strided2d").expect("strided2d never crossed over");
    assert!(
        s2d_cross <= 256 << 10,
        "strided2d crossover at {} — above the documented 256 KiB bound",
        fmt_size(s2d_cross)
    );
    assert!(
        irregular_fallback_exact,
        "Auto on the irregular layout diverged from Force(Staged) — the fallback must be bit-identical"
    );

    let doc = Json::Obj(vec![
        ("id".to_string(), "offload".to_json()),
        (
            "title".to_string(),
            "Data-path schemes: staged pipeline vs NIC scatter/gather offload".to_json(),
        ),
        ("iters_per_point".to_string(), (iters as usize).to_json()),
        ("crossover_bytes".to_string(), Json::Obj(crossovers)),
        ("data".to_string(), rows.to_json()),
    ]);

    let out_path = args
        .extra
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/BENCH_offload.json".to_string());
    std::fs::write(&out_path, format!("{doc}\n")).expect("write results file");

    if args.json {
        println!("{doc}");
    } else {
        println!("Scheme ablation: staged vs offload vs auto ({iters} iters/point)\n");
        print_table(
            &[
                "layout",
                "bytes",
                "staged (us)",
                "offload (us)",
                "auto (us)",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.layout.to_string(),
                        fmt_size(r.bytes),
                        format!("{:.1}", r.staged_best_us),
                        if r.offloadable {
                            format!("{:.1}", r.offload_best_us)
                        } else {
                            "-".to_string()
                        },
                        format!("{:.1}", r.auto_best_us),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        println!("\nstrided2d crossover: {}", fmt_size(s2d_cross));
        println!("wrote {out_path}");
    }
}
