//! Figure 5: GPU-to-GPU vector transfer latency for the three designs of
//! Figure 4 — "Cpy2D+Send" (blocking), "Cpy2DAsync+CpyAsync+Isend"
//! (hand-pipelined) and "MV2-GPU-NC" — 16 B to 4 MB, 4-byte elements.
//!
//! Paper headline: MV2-GPU-NC improves latency by up to 88% over
//! Cpy2D+Send at 4 MB, and tracks the hand-pipelined design closely.
//!
//! Regenerate with: `cargo run --release -p bench --bin fig5_vector_latency`

use bench::{emit_json, fmt_size, paper_sizes, print_table, ExperimentRecord, HarnessArgs};
use mv2_gpu_nc::baselines::{
    fill_vector, recv_cpy2d_blocking, recv_manual_pipeline, recv_mv2, send_cpy2d_blocking,
    send_manual_pipeline, send_mv2, verify_vector, VectorXfer,
};
use mv2_gpu_nc::GpuCluster;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Copy, Clone, PartialEq, Eq)]
enum Design {
    Blocking,
    Manual,
    Mv2,
}

impl Design {
    const ALL: [Design; 3] = [Design::Blocking, Design::Manual, Design::Mv2];
    fn label(&self) -> &'static str {
        match self {
            Design::Blocking => "Cpy2D+Send",
            Design::Manual => "Cpy2DAsync+CpyAsync+Isend",
            Design::Mv2 => "MV2-GPU-NC",
        }
    }
}

/// One-way latency of `design` for a `total`-byte vector message.
fn measure(design: Design, total: usize) -> f64 {
    let out = Arc::new(AtomicU64::new(0));
    let out2 = Arc::clone(&out);
    GpuCluster::new(2).run(move |env| {
        let x = VectorXfer::paper(total);
        let block = env.comm.config().chunk_size.min(total.next_power_of_two());
        let block = block.max(x.elem);
        let dev = env.gpu.malloc(x.extent());
        let me = env.comm.rank();
        // Warm-up transfer: populates staging pools on both sides.
        if me == 0 {
            fill_vector(&env.gpu, dev, &x, 11);
            send_mv2(&env.comm, dev, x, 1, 99);
        } else {
            recv_mv2(&env.comm, dev, x, 0, 99);
        }
        env.comm.barrier();
        let t0 = sim_core::now();
        match design {
            Design::Blocking => {
                if me == 0 {
                    send_cpy2d_blocking(env, dev, x, 1, 0);
                } else {
                    recv_cpy2d_blocking(env, dev, x, 0, 0);
                }
            }
            Design::Manual => {
                if me == 0 {
                    send_manual_pipeline(env, dev, x, 1, 1, block);
                } else {
                    recv_manual_pipeline(env, dev, x, 0, 1, block);
                }
            }
            Design::Mv2 => {
                if me == 0 {
                    send_mv2(&env.comm, dev, x, 1, 0);
                } else {
                    recv_mv2(&env.comm, dev, x, 0, 0);
                }
            }
        }
        if me == 1 {
            verify_vector(&env.gpu, dev, &x, 11);
            out2.store((sim_core::now() - t0).as_nanos(), Ordering::SeqCst);
        }
    });
    out.load(Ordering::SeqCst) as f64 / 1e3
}

struct Row {
    bytes: usize,
    cpy2d_send_us: f64,
    manual_pipeline_us: f64,
    mv2_gpu_nc_us: f64,
}

bench::impl_to_json!(Row {
    bytes,
    cpy2d_send_us,
    manual_pipeline_us,
    mv2_gpu_nc_us
});

fn main() {
    let args = HarnessArgs::parse();
    let rows: Vec<Row> = paper_sizes()
        .into_iter()
        .map(|total| {
            let mut us = [0.0f64; 3];
            for (i, d) in Design::ALL.iter().enumerate() {
                us[i] = measure(*d, total);
            }
            Row {
                bytes: total,
                cpy2d_send_us: us[0],
                manual_pipeline_us: us[1],
                mv2_gpu_nc_us: us[2],
            }
        })
        .collect();

    if args.json {
        emit_json(&ExperimentRecord {
            id: "fig5",
            title: "Vector communication latency (Figure 5)",
            data: &rows,
        });
        return;
    }

    println!("Figure 5: GPU-to-GPU vector latency (one-way, us)\n");
    print_table(
        &[
            "size",
            Design::Blocking.label(),
            Design::Manual.label(),
            Design::Mv2.label(),
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    fmt_size(r.bytes),
                    format!("{:.1}", r.cpy2d_send_us),
                    format!("{:.1}", r.manual_pipeline_us),
                    format!("{:.1}", r.mv2_gpu_nc_us),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let r4m = rows.iter().find(|r| r.bytes == 4 << 20).unwrap();
    println!();
    println!(
        "Improvement over Cpy2D+Send at 4MB (paper: 88%): {:.1}%",
        (1.0 - r4m.mv2_gpu_nc_us / r4m.cpy2d_send_us) * 100.0
    );
    println!(
        "MV2-GPU-NC vs hand-pipelined at 4MB (paper: similar): {:.2}x",
        r4m.mv2_gpu_nc_us / r4m.manual_pipeline_us
    );
}
