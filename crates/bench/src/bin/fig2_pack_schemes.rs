//! Figure 2 (+ the §I-A motivating numbers): latency of the three
//! non-contiguous pack schemes, 16 B – 4 MB, 4-byte vector elements.
//!
//! Paper reference points: at 4 KB — nc2nc 200 us, nc2c 281 us, D2D2H
//! 35 us; at 4 MB the offloaded scheme costs ~4.8% of nc2nc.
//!
//! Regenerate with: `cargo run --release -p bench --bin fig2_pack_schemes`

use bench::{emit_json, fmt_size, paper_sizes, print_table, ExperimentRecord, HarnessArgs};
use gpu_sim::Gpu;
use mv2_gpu_nc::schemes::{PackBench, PackScheme};
use sim_core::Sim;
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Row {
    bytes: usize,
    d2h_nc2nc_us: f64,
    d2h_nc2c_us: f64,
    d2d2h_us: f64,
}

bench::impl_to_json!(Row {
    bytes,
    d2h_nc2nc_us,
    d2h_nc2c_us,
    d2d2h_us
});

fn main() {
    let args = HarnessArgs::parse();
    let results: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));
    let out = Arc::clone(&results);
    let sim = Sim::new();
    sim.spawn("bench", move || {
        let gpu = Gpu::tesla_c2050(0);
        for total in paper_sizes() {
            let b = PackBench::new(&gpu, total, 4, 16);
            let mut us = [0.0f64; 3];
            for (i, s) in PackScheme::ALL.iter().enumerate() {
                us[i] = b.run(*s).as_micros_f64();
                b.verify(*s);
            }
            b.free();
            out.lock().unwrap().push(Row {
                bytes: total,
                d2h_nc2nc_us: us[0],
                d2h_nc2c_us: us[1],
                d2d2h_us: us[2],
            });
        }
    });
    sim.run();
    let rows = Arc::try_unwrap(results).unwrap().into_inner().unwrap();

    if args.json {
        emit_json(&ExperimentRecord {
            id: "fig2",
            title: "Non-contiguous data pack performance (Figure 2)",
            data: &rows,
        });
        return;
    }

    println!("Figure 2: Non-contiguous data pack performance (time in us)\n");
    print_table(
        &["size", "D2H nc2nc", "D2H nc2c", "D2D2H nc2c2c"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    fmt_size(r.bytes),
                    format!("{:.1}", r.d2h_nc2nc_us),
                    format!("{:.1}", r.d2h_nc2c_us),
                    format!("{:.1}", r.d2d2h_us),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let at = |bytes: usize| rows.iter().find(|r| r.bytes == bytes).unwrap();
    let r4k = at(4 << 10);
    let r4m = at(4 << 20);
    println!();
    println!(
        "4KB anchors  (paper: 200 / 281 / 35 us):   {:.0} / {:.0} / {:.0} us",
        r4k.d2h_nc2nc_us, r4k.d2h_nc2c_us, r4k.d2d2h_us
    );
    println!(
        "4MB ratio D2D2H/nc2nc (paper: 4.8%):       {:.1}%",
        r4m.d2d2h_us / r4m.d2h_nc2nc_us * 100.0
    );
}
