//! Observability report over the sim-trace subsystem: runs the paper's
//! 512 KB vector transfer plus small halo3d and stencil2d configurations
//! under an enabled recorder, and reports per-lane utilization, the
//! pipeline overlap factor and the critical path through the five stages
//! (pack → d2h → rdma → h2d → unpack). The vector workload's trace is also
//! exported as Chrome `trace_event` JSON, loadable in Perfetto.
//!
//! Regenerate with:
//! `cargo run --release -p bench --bin trace_report`
//! (writes `results/trace_report.json` and
//! `results/trace_vector512k.chrome.json`; `--out PATH` / `--chrome PATH`
//! override).

use bench::{emit_json, print_table, ExperimentRecord, HarnessArgs, Json, ToJson};
use halo3d::{run_halo3d_traced, Halo3dParams};
use mv2_gpu_nc::baselines::{fill_vector, recv_mv2, send_mv2, VectorXfer};
use mv2_gpu_nc::timeline::STAGE_ORDER;
use mv2_gpu_nc::{GpuCluster, Recorder};
use sim_core::SanitizerMode;
use sim_trace::analysis::{lane_utilization, overlap_factor, spans, stage_spans, window};
use sim_trace::LaneKind;
use stencil2d::{run_stencil_traced, RunOptions, StencilParams};

struct LaneRow {
    scope: String,
    name: String,
    kind: &'static str,
    spans: usize,
    busy_us: f64,
    utilization: f64,
}

bench::impl_to_json!(LaneRow {
    scope,
    name,
    kind,
    spans,
    busy_us,
    utilization
});

struct StageRow {
    stage: String,
    chunks: usize,
    period_us: f64,
}

bench::impl_to_json!(StageRow {
    stage,
    chunks,
    period_us
});

struct CritRow {
    stage: String,
    chunk: usize,
    start_us: f64,
    end_us: f64,
}

bench::impl_to_json!(CritRow {
    stage,
    chunk,
    start_us,
    end_us
});

/// Everything the report extracts from one workload's recorder.
struct Workload {
    name: &'static str,
    rec: Recorder,
    critical_path: bool,
}

fn analyze(w: &Workload) -> Json {
    let all = spans(&w.rec);
    let stg = stage_spans(&w.rec);
    let wall_us = window(&all)
        .map(|(a, b)| (b - a).as_micros_f64())
        .unwrap_or(0.0);
    let lanes: Vec<LaneRow> = lane_utilization(&all)
        .into_iter()
        .filter(|u| u.kind != LaneKind::Gauge)
        .map(|u| LaneRow {
            scope: u.scope,
            name: u.name,
            kind: u.kind.label(),
            spans: u.spans,
            busy_us: u.busy_us,
            utilization: u.utilization,
        })
        .collect();
    let pipeline = mv2_gpu_nc::timeline::analyze_spans(&stg);
    let stages: Vec<StageRow> = pipeline
        .stages
        .iter()
        .map(|s| StageRow {
            stage: s.stage.to_string(),
            chunks: s.chunks,
            period_us: s.period_us,
        })
        .collect();
    let rdma_util = lane_utilization(&stg)
        .iter()
        .filter(|u| u.name == "rdma")
        .map(|u| u.utilization)
        .sum::<f64>();
    let mut fields = vec![
        ("name".to_string(), w.name.to_json()),
        ("wall_us".to_string(), wall_us.to_json()),
        ("overlap_factor".to_string(), overlap_factor(&stg).to_json()),
        ("stage_overlap".to_string(), pipeline.overlap.to_json()),
        ("rdma_lane_utilization".to_string(), rdma_util.to_json()),
        ("stages".to_string(), stages.to_json()),
        ("lanes".to_string(), lanes.to_json()),
        ("dropped_events".to_string(), w.rec.dropped().to_json()),
    ];
    if w.critical_path {
        let path: Vec<CritRow> = sim_trace::analysis::critical_path(&stg, &STAGE_ORDER)
            .into_iter()
            .map(|s| CritRow {
                stage: s.stage,
                chunk: s.chunk,
                start_us: s.start.as_micros_f64(),
                end_us: s.end.as_micros_f64(),
            })
            .collect();
        fields.push(("critical_path".to_string(), path.to_json()));
    }
    // Recovery/plan-cache counters from the unified registry (non-zero
    // protocol counters only; raw CUDA call mixes stay in the counters API).
    let metrics: Vec<(String, Json)> = w
        .rec
        .metrics()
        .into_iter()
        .filter(|(k, v)| {
            *v > 0
                && k.split_once('.').is_some_and(|(_, rest)| {
                    ["retry.", "dup.", "fallback.", "reg_cache."]
                        .iter()
                        .any(|p| rest.starts_with(p))
                })
        })
        .map(|(k, v)| (k, v.to_json()))
        .collect();
    fields.push(("counters".to_string(), Json::Obj(metrics)));
    Json::Obj(fields)
}

fn run_vector(total: usize) -> Recorder {
    let rec = Recorder::new();
    GpuCluster::new(2).recorder(rec.clone()).run(move |env| {
        let x = VectorXfer::paper(total);
        let dev = env.gpu.malloc(x.extent());
        if env.comm.rank() == 0 {
            fill_vector(&env.gpu, dev, &x, 1);
            send_mv2(&env.comm, dev, x, 1, 0);
        } else {
            recv_mv2(&env.comm, dev, x, 0, 0);
        }
    });
    rec
}

fn main() {
    let args = HarnessArgs::parse();

    // The paper's 512 KB vector transfer (Figure 3: 8 chunks, 64 KB blocks).
    let vec_rec = run_vector(512 << 10);

    // halo3d: a 2x2 j/i-split whose faces are all above the eager limit.
    let halo_rec = Recorder::new();
    run_halo3d_traced::<f64>(
        Halo3dParams {
            grid: (2, 2, 1),
            local: (24, 32, 48),
            iters: 3,
        },
        halo3d::Variant::Mv2,
        false,
        SanitizerMode::Off,
        None,
        Some(halo_rec.clone()),
    );

    // stencil2d: staged east/west column halos, eager north/south rows.
    let sten_rec = Recorder::new();
    run_stencil_traced::<f32>(
        StencilParams {
            py: 2,
            px: 2,
            rows: 4096,
            cols: 256,
            iters: 2,
        },
        stencil2d::Variant::Mv2,
        RunOptions::default(),
        SanitizerMode::Off,
        None,
        Some(sten_rec.clone()),
    );

    let workloads = [
        Workload {
            name: "vector512k",
            rec: vec_rec,
            critical_path: true,
        },
        Workload {
            name: "halo3d_2x2x1",
            rec: halo_rec,
            critical_path: false,
        },
        Workload {
            name: "stencil2d_2x2",
            rec: sten_rec,
            critical_path: false,
        },
    ];

    // Acceptance guards (run from scripts/ci.sh): the vector transfer must
    // show Figure 3's steady-state overlap, with a busy RDMA lane.
    {
        let stg = stage_spans(&workloads[0].rec);
        let ov = overlap_factor(&stg);
        assert!(
            ov > 2.0,
            "512 KB vector transfer should overlap its five stages, got {ov:.2}"
        );
        let rdma = lane_utilization(&stg)
            .into_iter()
            .find(|u| u.name == "rdma")
            .expect("rdma stage lane missing");
        // §IV-B: the RDMA write is far cheaper than the device pack, so the
        // rdma lane is busy a minor (but non-trivial) fraction of the window.
        assert!(
            rdma.utilization > 0.05 && rdma.utilization < 0.5,
            "rdma lane utilization out of range: {:.3}",
            rdma.utilization
        );
        assert_eq!(workloads[0].rec.dropped(), 0, "ring dropped events");
    }

    let report: Vec<Json> = workloads.iter().map(analyze).collect();

    let out_path = args
        .extra
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/trace_report.json".to_string());
    let chrome_path = args
        .extra
        .get("chrome")
        .cloned()
        .unwrap_or_else(|| "results/trace_vector512k.chrome.json".to_string());

    let doc = Json::Obj(vec![
        ("id".to_string(), "trace_report".to_json()),
        (
            "title".to_string(),
            "Lane utilization, overlap factor and critical path".to_json(),
        ),
        ("workloads".to_string(), Json::Arr(report)),
    ]);
    std::fs::write(&out_path, format!("{doc}\n")).expect("write results file");
    let chrome = sim_trace::chrome_trace(&workloads[0].rec);
    std::fs::write(&chrome_path, &chrome).expect("write chrome trace");

    // Validate the export round-trips through a JSON parser and actually
    // contains events — a Perfetto-unloadable file should fail CI here,
    // not in a browser.
    let parsed = sim_trace::json::parse(&chrome).expect("chrome trace must be valid JSON");
    let n_events = parsed
        .get("traceEvents")
        .and_then(sim_trace::json::JsonValue::as_arr)
        .expect("chrome trace must carry a traceEvents array")
        .len();
    assert!(n_events > 0, "chrome trace exported zero events");

    if args.json {
        emit_json(&ExperimentRecord {
            id: "trace_report",
            title: "Lane utilization, overlap factor and critical path",
            data: &doc,
        });
        return;
    }

    for w in &workloads {
        let all = spans(&w.rec);
        let stg = stage_spans(&w.rec);
        println!(
            "== {}: overlap factor {:.2}, {} spans on {} lanes ==",
            w.name,
            overlap_factor(&stg),
            all.len(),
            lane_utilization(&all).len()
        );
        print_table(
            &["scope", "lane", "kind", "spans", "busy (us)", "util"],
            &lane_utilization(&all)
                .iter()
                .filter(|u| u.kind != LaneKind::Gauge)
                .map(|u| {
                    vec![
                        u.scope.clone(),
                        u.name.clone(),
                        u.kind.label().to_string(),
                        u.spans.to_string(),
                        format!("{:.1}", u.busy_us),
                        format!("{:.3}", u.utilization),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        if w.critical_path {
            let path = sim_trace::analysis::critical_path(&stg, &STAGE_ORDER);
            let steps: Vec<String> = path
                .iter()
                .map(|s| format!("{}[{}]", s.stage, s.chunk))
                .collect();
            println!("critical path: {}", steps.join(" -> "));
        }
        println!();
    }
    println!("wrote {out_path} and {chrome_path}");
}
