//! Fault-campaign smoke run: the rendezvous retry/recovery layer under a
//! seeded fault schedule.
//!
//! Runs the halo3d solver twice — once on a clean fabric, once on a
//! fault-injecting one ([`ib_sim::FaultSpec`] via `mv2_gpu_nc`) — and
//! checks the contract the fault layer is built around: the computed
//! fields must be byte-identical, only virtual time and the retransmit
//! counters may differ. Exits nonzero if any rank's field differs, or if
//! the schedule injected no faults / triggered no retransmissions (either
//! would make the smoke run vacuous).
//!
//! Regenerate with:
//! `cargo run --release -p bench --bin fault_campaign > results/fault_campaign.json`
//! (the binary also writes the file itself; `--out PATH` overrides).
//! Knobs: `--seed N`, `--drop P`, `--rdma-err P` (probabilities in [0,1]).

use bench::{print_table, HarnessArgs, Json, ToJson};
use halo3d::{run_halo3d_campaign, Halo3dParams, Variant};
use mv2_gpu_nc::FaultSpec;
use sim_core::SanitizerMode;

fn main() {
    let args = HarnessArgs::parse();
    let get = |key: &str, default: f64| -> f64 {
        args.extra
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} needs a number"))
            })
            .unwrap_or(default)
    };
    let seed = get("seed", 42.0) as u64;
    let drop = get("drop", 0.10);
    let rdma_err = get("rdma-err", 0.05);
    let spec = FaultSpec {
        ctrl_drop: drop,
        ctrl_delay: drop,
        delay_ns: 30_000,
        rdma_error: rdma_err,
        ..FaultSpec::seeded(seed)
    };

    // The i-faces (32x40 doubles) exceed the eager limit, so every
    // iteration pushes rendezvous traffic through the faulty control
    // plane; the j/k faces stay eager and uninjected.
    let p = Halo3dParams {
        grid: (2, 1, 2),
        local: (16, 32, 40),
        iters: 4,
    };
    let (clean, _) = run_halo3d_campaign::<f64>(p, Variant::Mv2, true, SanitizerMode::Off, None);
    let g = sim_core::instrument::global();
    let base = g.snapshot();
    let (faulty, _) =
        run_halo3d_campaign::<f64>(p, Variant::Mv2, true, SanitizerMode::Off, Some(spec));
    let delta = g.delta(&base);

    let mut mismatched = Vec::new();
    for (c, f) in clean.ranks.iter().zip(&faulty.ranks) {
        if c.interior != f.interior {
            mismatched.push(c.rank);
        }
    }
    let prefix_sum = |prefix: &str| -> u64 {
        delta
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    };
    let faults = prefix_sum("fault.");
    let retries = prefix_sum("retry.");
    let campaign: Vec<(&&str, &u64)> = delta
        .iter()
        .filter(|(k, _)| {
            ["fault.", "retry.", "dup.", "fallback.", "mpi."]
                .iter()
                .any(|p| k.starts_with(p))
        })
        .collect();

    let ok = mismatched.is_empty() && faults > 0 && retries > 0;
    let doc = Json::Obj(vec![
        ("id".to_string(), "fault_campaign".to_json()),
        (
            "title".to_string(),
            "Seeded fault campaign: halo3d under ctrl drop/delay + RDMA errors".to_json(),
        ),
        ("seed".to_string(), (seed as usize).to_json()),
        ("ctrl_drop".to_string(), drop.to_json()),
        ("ctrl_delay".to_string(), drop.to_json()),
        ("rdma_error".to_string(), rdma_err.to_json()),
        (
            "byte_identical".to_string(),
            mismatched.is_empty().to_json(),
        ),
        (
            "clean_wall_us".to_string(),
            (clean.wall.as_nanos() as f64 / 1e3).to_json(),
        ),
        (
            "faulty_wall_us".to_string(),
            (faulty.wall.as_nanos() as f64 / 1e3).to_json(),
        ),
        (
            "counters".to_string(),
            Json::Obj(
                campaign
                    .iter()
                    .map(|(k, v)| (k.to_string(), (**v as usize).to_json()))
                    .collect(),
            ),
        ),
        ("ok".to_string(), ok.to_json()),
    ]);

    let out_path = args
        .extra
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/fault_campaign.json".to_string());
    std::fs::write(&out_path, format!("{doc}\n")).expect("write results file");

    if args.json {
        println!("{doc}");
    } else {
        println!(
            "Fault campaign: halo3d 2x1x2, seed {seed}, ctrl drop/delay {drop}, rdma error {rdma_err}\n"
        );
        print_table(
            &["counter", "count"],
            &campaign
                .iter()
                .map(|(k, v)| vec![k.to_string(), v.to_string()])
                .collect::<Vec<_>>(),
        );
        println!(
            "\nclean wall {:.1} us, faulty wall {:.1} us",
            clean.wall.as_nanos() as f64 / 1e3,
            faulty.wall.as_nanos() as f64 / 1e3
        );
        println!("wrote {out_path}");
    }

    if !mismatched.is_empty() {
        eprintln!("FAIL: fault campaign corrupted the field on ranks {mismatched:?}");
        std::process::exit(1);
    }
    if faults == 0 || retries == 0 {
        eprintln!(
            "FAIL: vacuous campaign ({faults} faults injected, {retries} retransmissions) — \
             raise the rates or enlarge the workload"
        );
        std::process::exit(1);
    }
}
