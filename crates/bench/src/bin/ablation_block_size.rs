//! §IV-B ablation: pipeline block size (`MV2_CUDA_BLOCK_SIZE`). Sweeps the
//! block size for a 4 MB vector transfer and compares the measured
//! end-to-end latency against the paper's analytic model
//! `(n+2) * T_d2d_nc2c(N/n)`.
//!
//! Paper claim: 64 KB is the optimal block size on the calibrated testbed.
//!
//! Regenerate with: `cargo run --release -p bench --bin ablation_block_size`

use bench::{emit_json, fmt_size, print_table, ExperimentRecord, HarnessArgs};
use gpu_sim::CostModel;
use mv2_gpu_nc::baselines::{fill_vector, recv_mv2, send_mv2, VectorXfer};
use mv2_gpu_nc::{model, GpuCluster};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn measure(total: usize, block: usize) -> f64 {
    let out = Arc::new(AtomicU64::new(0));
    let out2 = Arc::clone(&out);
    GpuCluster::new(2).block_size(block).run(move |env| {
        let x = VectorXfer::paper(total);
        let dev = env.gpu.malloc(x.extent());
        let me = env.comm.rank();
        // Warm-up to populate pools.
        if me == 0 {
            fill_vector(&env.gpu, dev, &x, 1);
            send_mv2(&env.comm, dev, x, 1, 9);
        } else {
            recv_mv2(&env.comm, dev, x, 0, 9);
        }
        env.comm.barrier();
        let t0 = sim_core::now();
        if me == 0 {
            send_mv2(&env.comm, dev, x, 1, 0);
        } else {
            recv_mv2(&env.comm, dev, x, 0, 0);
            out2.store((sim_core::now() - t0).as_nanos(), Ordering::SeqCst);
        }
    });
    out.load(Ordering::SeqCst) as f64 / 1e3
}

struct Row {
    block_bytes: usize,
    measured_us: f64,
    model_us: f64,
}

bench::impl_to_json!(Row {
    block_bytes,
    measured_us,
    model_us
});

fn main() {
    let args = HarnessArgs::parse();
    let total = 4 << 20;
    let cost = CostModel::tesla_c2050();
    let rows: Vec<Row> = (12..=20)
        .map(|p| {
            let block = 1usize << p;
            Row {
                block_bytes: block,
                measured_us: measure(total, block),
                model_us: model::pipeline_latency_model(&cost, total, block, 4).as_micros_f64(),
            }
        })
        .collect();

    if args.json {
        emit_json(&ExperimentRecord {
            id: "ablation_block",
            title: "Pipeline block-size ablation at 4 MB (section IV-B)",
            data: &rows,
        });
        return;
    }

    println!("Block-size ablation: 4 MB vector transfer (us)\n");
    print_table(
        &["block", "measured", "model (n+2)*T(N/n)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    fmt_size(r.block_bytes),
                    format!("{:.0}", r.measured_us),
                    format!("{:.0}", r.model_us),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let best = rows
        .iter()
        .min_by(|a, b| a.measured_us.total_cmp(&b.measured_us))
        .unwrap();
    println!();
    println!(
        "measured optimum: {} (paper: 64K)",
        fmt_size(best.block_bytes)
    );
}
