//! Table II: Stencil2D execution times, single precision, on the paper's
//! four process grids (1x8, 8x1, 2x4, 4x2).
//!
//! Paper improvements: 42% / 19% / 27% / 22%.
//!
//! Regenerate with:
//! `cargo run --release -p bench --bin table2_stencil_single [--scale 8] [--iters 5]`
//! (`--scale 1` reproduces the paper's matrix sizes but computes ~4 GB of
//! real stencil data; larger scales shrink the matrices while keeping the
//! communication structure)

use bench::stencil_tables::{print_report, run_tables};
use bench::{emit_json, ExperimentRecord, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let rows = run_tables::<f32>(&args);
    if args.json {
        emit_json(&ExperimentRecord {
            id: "table2",
            title: "Stencil2D median execution times, single precision (Table II)",
            data: &rows,
        });
        return;
    }
    print_report(
        "Table II: Stencil2D execution times, single precision",
        [42, 19, 27, 22],
        &rows,
    );
}
