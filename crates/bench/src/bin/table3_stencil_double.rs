//! Table III: Stencil2D execution times, double precision, on the paper's
//! four process grids (1x8, 8x1, 2x4, 4x2).
//!
//! Paper improvements: 39% / 22% / 26% / 21%.
//!
//! Regenerate with:
//! `cargo run --release -p bench --bin table3_stencil_double [--scale 8] [--iters 5]`

use bench::stencil_tables::{print_report, run_tables};
use bench::{emit_json, ExperimentRecord, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let rows = run_tables::<f64>(&args);
    if args.json {
        emit_json(&ExperimentRecord {
            id: "table3",
            title: "Stencil2D median execution times, double precision (Table III)",
            data: &rows,
        });
        return;
    }
    print_report(
        "Table III: Stencil2D execution times, double precision",
        [39, 22, 26, 21],
        &rows,
    );
}
