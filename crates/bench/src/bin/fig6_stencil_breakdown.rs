//! Figure 6: dimension-wise communication breakdown of Stencil2D-Def at
//! rank 1 of a 2x4 process grid with an 8K x 8K single-precision matrix
//! per process.
//!
//! Paper shape: rank 1 has south/west/east neighbors; the non-contiguous
//! east/west staging (cudaMemcpy2D) dominates the communication time.
//!
//! Regenerate with:
//! `cargo run --release -p bench --bin fig6_stencil_breakdown [--scale 8]`
//! (scale divides the matrix in each dimension; 1 = paper size)

use bench::{emit_json, print_table, ExperimentRecord, HarnessArgs};
use stencil2d::{run_stencil, Dir, RunOptions, StencilParams, Variant};

struct Entry {
    component: String,
    micros: f64,
}

bench::impl_to_json!(Entry { component, micros });

fn main() {
    let args = HarnessArgs::parse();
    let p = StencilParams {
        py: 2,
        px: 4,
        rows: 8192 / args.scale.max(1),
        cols: 8192 / args.scale.max(1),
        iters: args.iters,
    };
    let out = run_stencil::<f32>(
        p,
        Variant::Def,
        RunOptions {
            timed_breakdown: true,
            collect_interiors: false,
        },
    );
    let bd = out.ranks[1].breakdown;
    let mut entries = Vec::new();
    for d in [Dir::South, Dir::West, Dir::East, Dir::North] {
        let t = bd.dir(d);
        entries.push(Entry {
            component: format!("{}_mpi", d.name()),
            micros: t.mpi.as_micros_f64(),
        });
        entries.push(Entry {
            component: format!("{}_cuda", d.name()),
            micros: t.cuda.as_micros_f64(),
        });
    }

    if args.json {
        emit_json(&ExperimentRecord {
            id: "fig6",
            title: "Stencil2D-Def communication breakdown at rank 1, 2x4 grid (Figure 6)",
            data: &entries,
        });
        return;
    }

    println!(
        "Figure 6: Stencil2D-Def comm breakdown at rank 1, 2x4 grid, \
         {}x{} f32/process, {} iters (us)\n",
        p.rows, p.cols, p.iters
    );
    print_table(
        &["component", "time (us)"],
        &entries
            .iter()
            .filter(|e| e.micros > 0.0 || !e.component.starts_with("north"))
            .map(|e| vec![e.component.clone(), format!("{:.1}", e.micros)])
            .collect::<Vec<_>>(),
    );
    let cuda_ew: f64 = entries
        .iter()
        .filter(|e| e.component == "west_cuda" || e.component == "east_cuda")
        .map(|e| e.micros)
        .sum();
    let total: f64 = entries.iter().map(|e| e.micros).sum();
    println!();
    println!(
        "east+west cuda share of comm time (paper: dominates): {:.0}%",
        cuda_ew / total * 100.0
    );
}
