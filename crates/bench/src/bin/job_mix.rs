//! Multi-job shared-cluster campaign: per-job slowdown distributions under
//! an open-loop Poisson arrival stream, the tail under 2x overload, the
//! HCA QoS weight shift between co-located tenants, the sole-tenant
//! bit-identity guard, and plan-cache / autotuner stability.
//!
//! Three campaigns run over the same seeded 5-kind job mix
//! ([`cluster_sim::generate`]):
//!
//! * `baseline` — exclusive placement: jobs queue for free nodes, slowdown
//!   is pure queueing delay over the isolated service time.
//! * `overload_2x` — the identical plan with every arrival instant halved
//!   (double the offered load). Guard (a): the p99 slowdown stays finite
//!   (the campaign completes) and does not drop below the baseline p99.
//! * `shared` — every job opts into node sharing; slowdown is HCA/GPU
//!   contention split by the per-job QoS weights.
//!
//! Standalone guards:
//!
//! * (b) QoS shift: two identical OSU jobs pinned to the same two nodes
//!   finish in weight order, and the 4:1 service-time ratio measurably
//!   exceeds the 1:1 control's.
//! * (c) Sole-tenant identity: one job through the fabric's multi-tenant
//!   arbitration path (forced by a phantom tenant) is bit-identical —
//!   timings *and* trace stream — to the dedicated fast path.
//! * Stability: every autotuner key that settles in isolation also settles
//!   in the mix, and no campaign ever evicts a pack plan (the per-type
//!   LRU never thrashes from interleaved jobs).
//!
//! Regenerate with:
//! `cargo run --release -p bench --bin job_mix`
//! (writes `results/BENCH_jobmix.json`; `--out PATH` overrides,
//! `--smoke true` runs the small CI plan).

use std::collections::BTreeMap;

use bench::{print_table, HarnessArgs, Json, ToJson};
use cluster_sim::{
    generate, run_isolated, run_mix, ClusterParams, JobKind, JobPlan, MixParams, Placement,
    SizedJob,
};
use ib_sim::JobQos;
use sim_trace::Recorder;

/// Process-wide plan-cache counter deltas across `f`.
fn cache_delta<T>(f: impl FnOnce() -> T) -> (T, (u64, u64, u64)) {
    let g = sim_core::instrument::global();
    let before = (
        g.get("plan_cache_hit"),
        g.get("plan_cache_miss"),
        g.get("plan_cache_evict"),
    );
    let out = f();
    let after = (
        g.get("plan_cache_hit"),
        g.get("plan_cache_miss"),
        g.get("plan_cache_evict"),
    );
    (
        out,
        (after.0 - before.0, after.1 - before.1, after.2 - before.2),
    )
}

/// Settled-autotuner counters from a recorder, keyed by the layout/size
/// suffix (e.g. `strided.64k`), summed across every rank of every job.
fn settled_keys(rec: &Recorder) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    for (k, v) in rec.metrics() {
        if let Some(suffix) = k.split(".tuner.settled.").nth(1) {
            *m.entry(suffix.to_string()).or_insert(0) += v;
        }
    }
    m
}

/// Nearest-rank percentile over an unsorted sample.
fn pct(samples: &[f64], p: f64) -> f64 {
    let mut v = samples.to_vec();
    v.sort_by(f64::total_cmp);
    let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
    v[idx]
}

/// Isolated-run reference for one (kind, scale): the slowdown denominator
/// plus the tuner keys that settle without any contention.
struct Iso {
    service_ns: u64,
    settled: BTreeMap<String, u64>,
}

struct JobRow {
    job: usize,
    kind: String,
    scale: u32,
    ranks: usize,
    arrive_us: f64,
    queue_us: f64,
    service_us: f64,
    response_us: f64,
    slowdown: f64,
}

bench::impl_to_json!(JobRow {
    job,
    kind,
    scale,
    ranks,
    arrive_us,
    queue_us,
    service_us,
    response_us,
    slowdown,
});

struct Campaign {
    label: &'static str,
    rows: Vec<JobRow>,
    p50: f64,
    p99: f64,
    mean: f64,
    max: f64,
    makespan_ms: f64,
    settled: BTreeMap<String, u64>,
    cache: (u64, u64, u64),
}

impl Campaign {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".to_string(), self.label.to_json()),
            ("p50_slowdown".to_string(), self.p50.to_json()),
            ("p99_slowdown".to_string(), self.p99.to_json()),
            ("mean_slowdown".to_string(), self.mean.to_json()),
            ("max_slowdown".to_string(), self.max.to_json()),
            ("makespan_ms".to_string(), self.makespan_ms.to_json()),
            (
                "tuner_settled".to_string(),
                Json::Obj(
                    self.settled
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v as i64)))
                        .collect(),
                ),
            ),
            (
                "plan_cache".to_string(),
                Json::Obj(vec![
                    ("hits".to_string(), Json::Int(self.cache.0 as i64)),
                    ("misses".to_string(), Json::Int(self.cache.1 as i64)),
                    ("evictions".to_string(), Json::Int(self.cache.2 as i64)),
                ]),
            ),
            ("jobs".to_string(), self.rows.to_json()),
        ])
    }
}

/// Run one campaign over `plans` and fold per-job outcomes into slowdowns
/// against the isolated references.
fn run_campaign(
    label: &'static str,
    phys_nodes: usize,
    placement: Placement,
    plans: &[JobPlan],
    iso: &BTreeMap<(&'static str, u32), Iso>,
) -> Campaign {
    let rec = Recorder::new();
    let params = ClusterParams {
        phys_nodes,
        placement,
        recorder: Some(rec.clone()),
        ..ClusterParams::default()
    };
    let (out, cache) = cache_delta(|| run_mix(&params, plans));
    let rows: Vec<JobRow> = out
        .jobs
        .iter()
        .enumerate()
        .map(|(j, o)| {
            let denom = iso[&(o.kind, o.scale)].service_ns as f64;
            let slowdown = o.response_ns() as f64 / denom;
            assert!(
                slowdown.is_finite() && slowdown >= 0.999,
                "{label} job {j} ({}) slowdown {slowdown} below 1 — \
                 contended run beat the isolated reference",
                o.kind
            );
            JobRow {
                job: j,
                kind: o.kind.to_string(),
                scale: o.scale,
                ranks: o.ranks,
                arrive_us: o.arrive_ns as f64 / 1e3,
                queue_us: (o.start_ns - o.arrive_ns) as f64 / 1e3,
                service_us: o.service_ns() as f64 / 1e3,
                response_us: o.response_ns() as f64 / 1e3,
                slowdown,
            }
        })
        .collect();
    let s: Vec<f64> = rows.iter().map(|r| r.slowdown).collect();
    Campaign {
        label,
        p50: pct(&s, 50.0),
        p99: pct(&s, 99.0),
        mean: s.iter().sum::<f64>() / s.len() as f64,
        max: s.iter().copied().fold(0.0, f64::max),
        makespan_ms: out.makespan_ns as f64 / 1e6,
        settled: settled_keys(&rec),
        cache,
        rows,
    }
}

/// Guard (c): one job at 100% share through the multi-tenant arbitration
/// path (a phantom tenant forces it) is bit-identical to the dedicated
/// fast path — same per-job timings, same makespan, same trace stream.
fn identity_guard() {
    let job = SizedJob {
        kind: JobKind::Gradient,
        scale: 2,
    };
    let run = |phantoms: usize| {
        let rec = Recorder::new();
        let params = ClusterParams {
            phys_nodes: job.ranks(),
            phantom_tenants: phantoms,
            recorder: Some(rec.clone()),
            ..ClusterParams::default()
        };
        let out = run_mix(
            &params,
            &[JobPlan {
                job,
                arrive_ns: 0,
                qos: JobQos::default(),
            }],
        );
        (
            out.jobs[0].clone(),
            out.makespan_ns,
            format!("{:?}", rec.events()),
        )
    };
    let (job_a, end_a, trace_a) = run(0);
    let (job_b, end_b, trace_b) = run(1);
    assert_eq!(job_a, job_b, "identity guard: per-job timings diverged");
    assert_eq!(end_a, end_b, "identity guard: makespan diverged");
    assert_eq!(trace_a, trace_b, "identity guard: trace streams diverged");
}

/// Guard (b): weighted HCA arbitration measurably shifts slowdown between
/// two identical tenants on the same nodes, against a 1:1 control.
struct QosShift {
    heavy_service_us: f64,
    light_service_us: f64,
    weighted_ratio: f64,
    equal_ratio: f64,
}

fn qos_shift_guard() -> QosShift {
    // Needs a bandwidth-bound host body: the GPU-staged kinds rarely
    // backlog a QDR link (the shared PCIe copy engine paces their chunks
    // below link rate, and the work-conserving arbiter hides the weights
    // on an idle engine), so the probe is the host-to-host stream.
    let job = SizedJob {
        kind: JobKind::Stream,
        scale: 8,
    };
    let run = |w0: u32, w1: u32| {
        let qos = |w| JobQos {
            hca_weight: w,
            share_nodes: true,
            ..JobQos::default()
        };
        let plans = vec![
            JobPlan {
                job,
                arrive_ns: 0,
                qos: qos(w0),
            },
            JobPlan {
                job,
                arrive_ns: 0,
                qos: qos(w1),
            },
        ];
        let params = ClusterParams {
            phys_nodes: job.ranks(),
            placement: Placement::Shared,
            recorder: Some(Recorder::off()),
            ..ClusterParams::default()
        };
        let out = run_mix(&params, &plans);
        assert_eq!(
            out.jobs[0].nodes, out.jobs[1].nodes,
            "tenants not co-located"
        );
        (out.jobs[0].service_ns(), out.jobs[1].service_ns())
    };
    let (heavy, light) = run(4, 1);
    let (a, b) = run(1, 1);
    assert!(
        heavy < light,
        "weight-4 tenant ({heavy} ns) did not beat weight-1 ({light} ns)"
    );
    let weighted_ratio = light as f64 / heavy as f64;
    let equal_ratio = a.max(b) as f64 / a.min(b) as f64;
    assert!(
        weighted_ratio > equal_ratio + 0.10,
        "QoS shift not measurable: 4:1 ratio {weighted_ratio:.3} vs \
         1:1 control {equal_ratio:.3}"
    );
    QosShift {
        heavy_service_us: heavy as f64 / 1e3,
        light_service_us: light as f64 / 1e3,
        weighted_ratio,
        equal_ratio,
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let smoke = args.extra.get("smoke").is_some_and(|v| v != "false");
    let phys_nodes = 8;
    let (njobs, gap_us) = if smoke { (6, 300.0) } else { (16, 400.0) };
    let seed = args
        .extra
        .get("seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20211);

    identity_guard();
    println!("identity guard OK: sole tenant bit-identical across fabric paths");
    let qos = qos_shift_guard();
    println!(
        "QoS shift guard OK: 4:1 weights -> {:.3}x service ratio ({:.3}x at 1:1)",
        qos.weighted_ratio, qos.equal_ratio
    );

    let plans = generate(&MixParams {
        seed,
        jobs: njobs,
        mean_interarrival_us: gap_us,
    });

    // Isolated references, one per distinct (kind, scale) in the plan.
    let mut iso: BTreeMap<(&'static str, u32), Iso> = BTreeMap::new();
    for p in &plans {
        iso.entry((p.job.kind.name(), p.job.scale))
            .or_insert_with(|| {
                let rec = Recorder::new();
                let out = run_isolated(p.job, Some(rec.clone()));
                Iso {
                    service_ns: out.service_ns(),
                    settled: settled_keys(&rec),
                }
            });
    }

    let baseline = run_campaign("baseline", phys_nodes, Placement::Exclusive, &plans, &iso);
    let overload_plans: Vec<JobPlan> = plans
        .iter()
        .map(|p| JobPlan {
            arrive_ns: p.arrive_ns / 2,
            ..p.clone()
        })
        .collect();
    let overload = run_campaign(
        "overload_2x",
        phys_nodes,
        Placement::Exclusive,
        &overload_plans,
        &iso,
    );
    let shared_plans: Vec<JobPlan> = plans
        .iter()
        .map(|p| JobPlan {
            qos: JobQos {
                share_nodes: true,
                ..p.qos.clone()
            },
            ..p.clone()
        })
        .collect();
    let shared = run_campaign("shared", phys_nodes, Placement::Shared, &shared_plans, &iso);

    // Guard (a): the overload tail is finite (the campaign completed) and
    // no better than the baseline tail.
    assert!(overload.p99.is_finite(), "overload p99 slowdown not finite");
    assert!(
        overload.p99 >= baseline.p99,
        "overload p99 {:.3} below baseline p99 {:.3}",
        overload.p99,
        baseline.p99
    );

    // Stability guards: every tuner key settled in isolation settles in
    // the baseline mix too, and no campaign evicts a pack plan.
    let iso_settled: BTreeMap<String, u64> = iso.values().fold(BTreeMap::new(), |mut m, i| {
        for (k, v) in &i.settled {
            *m.entry(k.clone()).or_insert(0) += v;
        }
        m
    });
    for k in iso_settled.keys() {
        assert!(
            baseline.settled.contains_key(k),
            "tuner key {k} settled in isolation but not in the mix"
        );
    }
    for c in [&baseline, &overload, &shared] {
        assert_eq!(
            c.cache.2, 0,
            "{}: interleaved jobs thrashed a plan cache ({} evictions)",
            c.label, c.cache.2
        );
    }

    let doc = Json::Obj(vec![
        ("id".to_string(), "jobmix".to_json()),
        (
            "title".to_string(),
            "multi-job shared-cluster campaigns: slowdown, overload tail, QoS shift".to_json(),
        ),
        ("phys_nodes".to_string(), Json::Int(phys_nodes as i64)),
        ("seed".to_string(), Json::Int(seed as i64)),
        ("jobs".to_string(), Json::Int(njobs as i64)),
        ("mean_interarrival_us".to_string(), gap_us.to_json()),
        (
            "isolated_service_us".to_string(),
            Json::Obj(
                iso.iter()
                    .map(|((k, s), i)| (format!("{k}.x{s}"), (i.service_ns as f64 / 1e3).to_json()))
                    .collect(),
            ),
        ),
        (
            "campaigns".to_string(),
            Json::Arr(vec![
                baseline.to_json(),
                overload.to_json(),
                shared.to_json(),
            ]),
        ),
        (
            "qos_shift".to_string(),
            Json::Obj(vec![
                (
                    "heavy_service_us".to_string(),
                    qos.heavy_service_us.to_json(),
                ),
                (
                    "light_service_us".to_string(),
                    qos.light_service_us.to_json(),
                ),
                ("weighted_ratio".to_string(), qos.weighted_ratio.to_json()),
                ("equal_ratio".to_string(), qos.equal_ratio.to_json()),
            ]),
        ),
        (
            "guards".to_string(),
            Json::Obj(vec![
                ("overload_p99_finite".to_string(), Json::Bool(true)),
                ("overload_p99_ge_baseline".to_string(), Json::Bool(true)),
                ("qos_shift_measurable".to_string(), Json::Bool(true)),
                ("sole_tenant_bit_identical".to_string(), Json::Bool(true)),
                ("tuner_settled_stable".to_string(), Json::Bool(true)),
                ("plan_cache_no_evictions".to_string(), Json::Bool(true)),
            ]),
        ),
    ]);
    let out_path = args
        .extra
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/BENCH_jobmix.json".to_string());
    std::fs::write(&out_path, format!("{doc}\n")).expect("write results file");

    println!("\n{njobs}-job mix (seed {seed}, mean gap {gap_us} us) on {phys_nodes} nodes\n");
    print_table(
        &[
            "campaign",
            "p50 slowdown",
            "p99 slowdown",
            "mean",
            "max",
            "makespan (ms)",
        ],
        &[&baseline, &overload, &shared]
            .iter()
            .map(|c| {
                vec![
                    c.label.to_string(),
                    format!("{:.3}", c.p50),
                    format!("{:.3}", c.p99),
                    format!("{:.3}", c.mean),
                    format!("{:.3}", c.max),
                    format!("{:.3}", c.makespan_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
