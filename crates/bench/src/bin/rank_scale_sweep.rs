//! Rank-count scaling sweep for the event-driven kernel: halo3d at
//! 8/64/256/1024 ranks, reporting virtual completion time, host
//! wall-clock per simulated rank and the peak OS thread count of the
//! process.
//!
//! Under [`ExecMode::Event`] every rank is a fiber on the single kernel
//! thread, so the thread count stays flat from 8 to 1024 ranks while the
//! legacy all-threads mode would need one OS thread per rank. Two guards
//! run on every full sweep (and from `scripts/ci.sh` via `--smoke`):
//!
//! * the 64-rank point must not regress: its wall-clock per rank must stay
//!   within a small factor of the 8-rank point (the sweep is roughly
//!   constant work per rank, so per-rank cost should be flat), and
//! * the peak thread count must stay bounded independent of rank count.
//!
//! `--smoke` instead runs the carrier cross-check: the same 8-rank halo3d
//! job under `ExecMode::Event` and `ExecMode::Threads` with the kernel's
//! wake-trace recorder armed, asserting the two scheduling-grant traces —
//! every `(seq, virtual time, pid)` the run queue ever granted — are
//! identical, along with the virtual completion times and checksums.
//!
//! Regenerate with:
//! `cargo run --release -p bench --bin rank_scale_sweep`
//! (writes `results/BENCH_rank_scale.json`; `--out PATH` overrides).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bench::{print_table, HarnessArgs, Json, ToJson};
use halo3d::{Halo3dParams, Halo3dRank, Variant};
use mv2_gpu_nc::{GpuCluster, WakeTraceSink};
use sim_core::lock::Mutex;
use sim_core::{ExecMode, SimDur};

/// Current OS thread count of this process (`Threads:` in
/// `/proc/self/status`); 0 where procfs is unavailable.
fn os_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Samples the process thread count every couple of milliseconds on its
/// own thread (which is itself part of the count it reports).
struct ThreadGauge {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<usize>,
}

impl ThreadGauge {
    fn start() -> ThreadGauge {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("thread-gauge".into())
            .spawn(move || {
                let mut peak = os_threads();
                while !flag.load(Ordering::Relaxed) {
                    peak = peak.max(os_threads());
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                peak.max(os_threads())
            })
            .expect("spawn gauge");
        ThreadGauge { stop, handle }
    }

    fn finish(self) -> usize {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().expect("gauge thread")
    }
}

/// One halo3d run: returns (virtual wall = slowest rank's barrier-to-
/// barrier time, global checksum).
fn run_halo(p: Halo3dParams, mode: ExecMode, sink: Option<WakeTraceSink>) -> (SimDur, f64) {
    let out: Arc<Mutex<Vec<(SimDur, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    let per_rank = Arc::clone(&out);
    let mut cluster = GpuCluster::new(p.nranks()).exec(mode);
    if let Some(s) = sink {
        cluster = cluster.wake_trace(s);
    }
    cluster.run(move |env| {
        let mut rk = Halo3dRank::<f32>::new(env, p);
        env.comm.barrier();
        let t0 = sim_core::now();
        for _ in 0..p.iters {
            rk.step(Variant::Mv2);
        }
        env.comm.barrier();
        let elapsed = sim_core::now() - t0;
        let checksum: f64 = rk.interior().iter().map(|v| f64::from(*v)).sum();
        per_rank.lock().push((elapsed, checksum));
        rk.free();
    });
    let v = out.lock();
    let wall = v.iter().map(|r| r.0).max().expect("at least one rank");
    let checksum = v.iter().map(|r| r.1).sum();
    (wall, checksum)
}

struct Row {
    ranks: usize,
    grid: String,
    virt_ms: f64,
    wall_s: f64,
    wall_ms_per_rank: f64,
    peak_threads: usize,
}

bench::impl_to_json!(Row {
    ranks,
    grid,
    virt_ms,
    wall_s,
    wall_ms_per_rank,
    peak_threads,
});

/// Carrier cross-check (run by `scripts/ci.sh`): Event and Threads must
/// produce identical wake traces, virtual times and checksums.
fn smoke() {
    let p = Halo3dParams {
        grid: (2, 2, 2),
        local: (8, 8, 8),
        iters: 2,
    };
    let event_sink: WakeTraceSink = Arc::default();
    let thread_sink: WakeTraceSink = Arc::default();
    let (event_wall, event_sum) = run_halo(p, ExecMode::Event, Some(Arc::clone(&event_sink)));
    let (thread_wall, thread_sum) = run_halo(p, ExecMode::Threads, Some(Arc::clone(&thread_sink)));

    assert_eq!(
        event_wall, thread_wall,
        "virtual wall diverged across carriers"
    );
    assert_eq!(event_sum, thread_sum, "checksum diverged across carriers");
    let ev = event_sink.lock().unwrap();
    let th = thread_sink.lock().unwrap();
    assert!(!ev.is_empty(), "event run recorded no wake trace");
    assert_eq!(ev.len(), th.len(), "wake trace lengths diverged");
    for (i, (a, b)) in ev.iter().zip(th.iter()).enumerate() {
        assert_eq!(a, b, "wake trace diverged at grant {i}: {a:?} vs {b:?}");
    }
    println!(
        "rank_scale_sweep smoke OK: {} grants bit-identical across carriers \
         (virtual wall {:.3} ms)",
        ev.len(),
        event_wall.as_millis_f64()
    );
}

fn main() {
    let args = HarnessArgs::parse();
    if args.extra.get("smoke").is_some_and(|v| v != "false") {
        smoke();
        return;
    }

    // Constant per-rank work: the local block stays fixed while the grid
    // grows, so per-rank wall-clock should be roughly flat if the kernel
    // scales.
    let local = (16, 16, 16);
    let mode = match args.extra.get("exec").map(String::as_str) {
        Some("threads") => ExecMode::Threads,
        _ => ExecMode::Event,
    };
    let max_ranks: usize = args
        .extra
        .get("max-ranks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX);
    let points: [(usize, usize, usize); 4] = [(2, 2, 2), (4, 4, 4), (8, 8, 4), (16, 8, 8)];
    let rows: Vec<Row> = points
        .into_iter()
        .filter(|g| g.0 * g.1 * g.2 <= max_ranks)
        .map(|grid| {
            let p = Halo3dParams {
                grid,
                local,
                iters: 2,
            };
            let gauge = ThreadGauge::start();
            let wall = Instant::now();
            let (virt, _) = run_halo(p, mode, None);
            let wall_s = wall.elapsed().as_secs_f64();
            let peak_threads = gauge.finish();
            let n = p.nranks();
            println!(
                "  {}x{}x{} ({n} ranks): virt {:.2} ms, wall {:.2} s, peak {} threads",
                grid.0,
                grid.1,
                grid.2,
                virt.as_millis_f64(),
                wall_s,
                peak_threads
            );
            Row {
                ranks: n,
                grid: format!("{}x{}x{}", grid.0, grid.1, grid.2),
                virt_ms: virt.as_millis_f64(),
                wall_s,
                wall_ms_per_rank: wall_s * 1e3 / n as f64,
                peak_threads,
            }
        })
        .collect();

    // Regression guards. Per-rank wall-clock at tiny scale is dominated by
    // fixed setup cost, so the 64-rank guard uses a floor alongside the
    // relative bound.
    let per_rank = |n: usize| {
        rows.iter()
            .find(|r| r.ranks == n)
            .map(|r| r.wall_ms_per_rank)
    };
    if let (Some(p8), Some(p64)) = (per_rank(8), per_rank(64)) {
        assert!(
            p64 <= (p8 * 4.0).max(25.0),
            "64-rank regression: {p64:.2} ms/rank vs {p8:.2} ms/rank at 8 ranks"
        );
    }
    for r in &rows {
        assert!(
            r.peak_threads <= 32,
            "thread budget not bounded: {} OS threads at {} ranks",
            r.peak_threads,
            r.ranks
        );
    }

    let doc = Json::Obj(vec![
        ("id".to_string(), "rank_scale".to_json()),
        (
            "title".to_string(),
            "halo3d rank-count scaling under the event-driven kernel".to_json(),
        ),
        ("exec".to_string(), "event".to_json()),
        (
            "local_block".to_string(),
            format!("{}x{}x{}", local.0, local.1, local.2).to_json(),
        ),
        ("data".to_string(), rows.to_json()),
    ]);
    let out_path = args
        .extra
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/BENCH_rank_scale.json".to_string());
    std::fs::write(&out_path, format!("{doc}\n")).expect("write results file");

    println!(
        "\nhalo3d scaling, MV2 variant, {}x{}x{} cells/rank, 2 iters\n",
        local.0, local.1, local.2
    );
    print_table(
        &[
            "ranks",
            "grid",
            "virtual (ms)",
            "wall (s)",
            "wall/rank (ms)",
            "peak threads",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.ranks.to_string(),
                    r.grid.clone(),
                    format!("{:.2}", r.virt_ms),
                    format!("{:.2}", r.wall_s),
                    format!("{:.2}", r.wall_ms_per_rank),
                    r.peak_threads.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
