//! Pipeline regression benchmark: the committed-plan cache and the
//! adaptive chunk autotuner against the paper's static pipeline.
//!
//! For every Figure 5 vector size it measures the staged MV2-GPU-NC
//! transfer under `ChunkPolicy::Fixed` (the paper's 64 KiB block) and
//! `ChunkPolicy::Adaptive`, reporting simulated one-way latency (best and
//! settled iteration) plus host wall-clock, and the process-wide plan-cache
//! counters for a halo3d run. It fails loudly if Adaptive regresses more
//! than 10% behind Fixed on any staged size, or if the halo3d plan-cache
//! hit rate drops below 90% — so a CI smoke run guards both optimizations.
//!
//! Regenerate with:
//! `cargo run --release -p bench --bin pipeline_bench > results/BENCH_pipeline.json`
//! (the binary also writes the file itself; `--out PATH` overrides,
//! `--iters N` sets the per-size iteration count).

use std::sync::Arc;
use std::time::Instant;

use bench::{paper_sizes, print_table, HarnessArgs, Json, ToJson};
use halo3d::{run_halo3d, Halo3dParams, Variant};
use mpi_sim::{ChunkPolicy, MpiConfig};
use mv2_gpu_nc::baselines::{fill_vector, verify_vector, VectorXfer};
use mv2_gpu_nc::GpuCluster;
use sim_core::lock::Mutex;

/// Latencies (virtual ns per iteration) of `iters` back-to-back transfers
/// of one vector message, plus the host wall-clock of the whole run.
fn measure(cfg: MpiConfig, total: usize, iters: u32) -> (Vec<u64>, f64) {
    let lat: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&lat);
    let wall = Instant::now();
    GpuCluster::new(2).mpi_config(cfg).run(move |env| {
        let x = VectorXfer::paper(total);
        let dt = x.dtype();
        let dev = env.gpu.malloc(x.extent());
        // Untimed warm-up: populates staging pools on both sides (and gives
        // the adaptive tuner its first observation).
        if env.comm.rank() == 0 {
            fill_vector(&env.gpu, dev, &x, 11);
            env.comm.send(dev, 1, &dt, 1, 99_999);
        } else {
            env.comm.recv(dev, 1, &dt, 0, 99_999);
        }
        for it in 0..iters {
            env.comm.barrier();
            let t0 = sim_core::now();
            if env.comm.rank() == 0 {
                env.comm.send(dev, 1, &dt, 1, it);
            } else {
                env.comm.recv(dev, 1, &dt, 0, it);
                sink.lock().push((sim_core::now() - t0).as_nanos());
            }
        }
        if env.comm.rank() == 1 {
            verify_vector(&env.gpu, dev, &x, 11);
        }
        env.gpu.free(dev);
    });
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let v = Arc::try_unwrap(lat)
        .map(|m| m.into_inner())
        .unwrap_or_else(|a| a.lock().clone());
    (v, wall_ms)
}

struct Row {
    bytes: usize,
    staged: bool,
    fixed_best_us: f64,
    adaptive_best_us: f64,
    adaptive_settled_us: f64,
    fixed_wall_ms: f64,
    adaptive_wall_ms: f64,
}

bench::impl_to_json!(Row {
    bytes,
    staged,
    fixed_best_us,
    adaptive_best_us,
    adaptive_settled_us,
    fixed_wall_ms,
    adaptive_wall_ms
});

fn main() {
    let args = HarnessArgs::parse();
    let iters = args.iters as u32;
    let fixed_cfg = MpiConfig {
        policy: ChunkPolicy::Fixed,
        ..MpiConfig::default()
    };
    let adaptive_cfg = MpiConfig::default(); // adaptive is the default policy

    let rows: Vec<Row> = paper_sizes()
        .into_iter()
        .map(|total| {
            let (f, f_wall) = measure(fixed_cfg.clone(), total, iters);
            let (a, a_wall) = measure(adaptive_cfg.clone(), total, iters);
            Row {
                bytes: total,
                staged: total > fixed_cfg.eager_limit,
                fixed_best_us: *f.iter().min().unwrap() as f64 / 1e3,
                adaptive_best_us: *a.iter().min().unwrap() as f64 / 1e3,
                adaptive_settled_us: *a.last().unwrap() as f64 / 1e3,
                fixed_wall_ms: f_wall,
                adaptive_wall_ms: a_wall,
            }
        })
        .collect();

    // Plan-cache effectiveness on a datatype-heavy application.
    let g = sim_core::instrument::global();
    let base = g.snapshot();
    run_halo3d::<f32>(
        Halo3dParams {
            grid: (1, 2, 2),
            local: (6, 8, 8),
            iters: 16,
        },
        Variant::Mv2,
        false,
    );
    let d = g.delta(&base);
    let hits = d.get("plan_cache_hit").copied().unwrap_or(0);
    let misses = d.get("plan_cache_miss").copied().unwrap_or(0);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;

    // Regression guards (run from scripts/ci.sh). The adaptive tuner needs
    // a few iterations to finish probing neighbor rungs and revisit its
    // best block size, so the guard requires at least 4 per size.
    assert!(iters >= 4, "--iters must be at least 4 for the guards");
    for r in rows.iter().filter(|r| r.staged) {
        assert!(
            r.adaptive_best_us <= r.fixed_best_us * 1.10,
            "adaptive policy regressed at {} bytes: {:.1} us vs fixed {:.1} us",
            r.bytes,
            r.adaptive_best_us,
            r.fixed_best_us
        );
    }
    assert!(
        hit_rate >= 0.9,
        "halo3d plan-cache hit rate {hit_rate:.3} below 90% ({hits} hits, {misses} misses)"
    );

    let doc = Json::Obj(vec![
        ("id".to_string(), "pipeline".to_json()),
        (
            "title".to_string(),
            "Plan cache + adaptive pipeline vs fixed block".to_json(),
        ),
        ("iters_per_size".to_string(), (iters as usize).to_json()),
        (
            "plan_cache".to_string(),
            Json::Obj(vec![
                ("workload".to_string(), "halo3d 1x2x2, 16 iters".to_json()),
                ("hits".to_string(), hits.to_json()),
                ("misses".to_string(), misses.to_json()),
                (
                    "evictions".to_string(),
                    d.get("plan_cache_evict").copied().unwrap_or(0).to_json(),
                ),
                ("hit_rate".to_string(), hit_rate.to_json()),
            ]),
        ),
        ("data".to_string(), rows.to_json()),
    ]);

    let out_path = args
        .extra
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/BENCH_pipeline.json".to_string());
    std::fs::write(&out_path, format!("{doc}\n")).expect("write results file");

    if args.json {
        println!("{doc}");
    } else {
        println!("Pipeline: Fixed vs Adaptive ({iters} iters/size)\n");
        print_table(
            &[
                "bytes",
                "path",
                "fixed best (us)",
                "adaptive best (us)",
                "adaptive settled (us)",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        bench::fmt_size(r.bytes),
                        if r.staged { "staged" } else { "eager" }.to_string(),
                        format!("{:.1}", r.fixed_best_us),
                        format!("{:.1}", r.adaptive_best_us),
                        format!("{:.1}", r.adaptive_settled_us),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        println!(
            "\nhalo3d plan cache: {hits} hits, {misses} misses, hit rate {:.1}%",
            hit_rate * 100.0
        );
        println!("wrote {out_path}");
    }
}
