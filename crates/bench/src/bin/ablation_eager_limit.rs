//! Ablation: eager/rendezvous threshold for device messages.
//!
//! Small GPU messages take a staged eager path (pack + D2H + eager send);
//! larger ones pay the RTS/CTS handshake but gain the chunked pipeline.
//! This sweep locates the crossover and shows the threshold (a library
//! tunable, like MVAPICH2's `MV2_IBA_EAGER_THRESHOLD`) is set sanely.
//!
//! Regenerate with: `cargo run --release -p bench --bin ablation_eager_limit`

use bench::{emit_json, fmt_size, print_table, ExperimentRecord, HarnessArgs};
use hostmem::HostBuf;
use mpi_sim::{Datatype, MpiConfig};
use mv2_gpu_nc::baselines::{fill_vector, recv_mv2, send_mv2, VectorXfer};
use mv2_gpu_nc::GpuCluster;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn measure(total: usize, eager_limit: usize) -> f64 {
    let out = Arc::new(AtomicU64::new(0));
    let out2 = Arc::clone(&out);
    let cfg = MpiConfig {
        eager_limit,
        ..MpiConfig::default()
    };
    GpuCluster::new(2).mpi_config(cfg).run(move |env| {
        let x = VectorXfer::paper(total);
        let dev = env.gpu.malloc(x.extent());
        let me = env.comm.rank();
        if me == 0 {
            fill_vector(&env.gpu, dev, &x, 1);
            send_mv2(&env.comm, dev, x, 1, 9); // warm-up
        } else {
            recv_mv2(&env.comm, dev, x, 0, 9);
        }
        env.comm.barrier();
        let t0 = sim_core::now();
        if me == 0 {
            send_mv2(&env.comm, dev, x, 1, 0);
        } else {
            recv_mv2(&env.comm, dev, x, 0, 0);
            out2.store((sim_core::now() - t0).as_nanos(), Ordering::SeqCst);
        }
    });
    out.load(Ordering::SeqCst) as f64 / 1e3
}

fn measure_host(total: usize, eager_limit: usize) -> f64 {
    let out = Arc::new(AtomicU64::new(0));
    let out2 = Arc::clone(&out);
    let cfg = MpiConfig {
        eager_limit,
        ..MpiConfig::default()
    };
    GpuCluster::new(2).mpi_config(cfg).run(move |env| {
        let t = Datatype::byte();
        t.commit();
        let buf = HostBuf::alloc(total.max(1));
        let me = env.comm.rank();
        if me == 0 {
            env.comm.send(buf.base(), total, &t, 1, 9); // warm-up (reg cache)
        } else {
            env.comm.recv(buf.base(), total, &t, 0, 9);
        }
        env.comm.barrier();
        let t0 = sim_core::now();
        if me == 0 {
            env.comm.send(buf.base(), total, &t, 1, 0);
        } else {
            env.comm.recv(buf.base(), total, &t, 0, 0);
            out2.store((sim_core::now() - t0).as_nanos(), Ordering::SeqCst);
        }
    });
    out.load(Ordering::SeqCst) as f64 / 1e3
}

struct Row {
    bytes: usize,
    eager_us: f64,
    rendezvous_us: f64,
    host_eager_us: f64,
    host_rendezvous_us: f64,
}

bench::impl_to_json!(Row {
    bytes,
    eager_us,
    rendezvous_us,
    host_eager_us,
    host_rendezvous_us,
});

fn main() {
    let args = HarnessArgs::parse();
    // Force each path by setting the threshold above / below the size.
    let rows: Vec<Row> = (4..=14)
        .map(|p| {
            let bytes = 1usize << p;
            Row {
                bytes,
                eager_us: measure(bytes, 64 << 10),
                rendezvous_us: measure(bytes, 1),
                host_eager_us: measure_host(bytes, 64 << 10),
                host_rendezvous_us: measure_host(bytes, 1),
            }
        })
        .collect();

    if args.json {
        emit_json(&ExperimentRecord {
            id: "ablation_eager",
            title: "Eager vs rendezvous for small device messages",
            data: &rows,
        });
        return;
    }

    println!("Eager vs rendezvous (us): strided device and contiguous host\n");
    print_table(
        &[
            "size",
            "dev eager",
            "dev rndv",
            "host eager",
            "host rndv (zero-copy)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    fmt_size(r.bytes),
                    format!("{:.1}", r.eager_us),
                    format!("{:.1}", r.rendezvous_us),
                    format!("{:.1}", r.host_eager_us),
                    format!("{:.1}", r.host_rendezvous_us),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let host_cross = rows
        .iter()
        .find(|r| r.host_rendezvous_us < r.host_eager_us)
        .map(|r| fmt_size(r.bytes))
        .unwrap_or_else(|| "beyond sweep".into());
    println!();
    println!("host zero-copy rendezvous wins from: {host_cross} (default threshold: 8K)");
    println!(
        "device messages: both paths stage through the GPU pipeline, so the \
         handshake is pure overhead — the threshold only bounds unexpected-\
         message buffering, as in MVAPICH2's larger GPU eager threshold"
    );
}
