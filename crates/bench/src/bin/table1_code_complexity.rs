//! Table I: code complexity of the Stencil2D main loop — function calls
//! per iteration (measured by instrumentation on a real run) and lines of
//! code (extracted from this repository's own halo-exchange source).
//!
//! Paper: Def = 4 MPI_Irecv / 4 MPI_Send / 2 MPI_Waitall / 4 cudaMemcpy /
//! 4 cudaMemcpy2D and 245 LoC; MV2-GPU-NC = same MPI mix, zero CUDA calls,
//! 158 LoC (-36%).
//!
//! Regenerate with: `cargo run --release -p bench --bin table1_code_complexity`

use bench::{emit_json, print_table, ExperimentRecord, HarnessArgs};
use std::collections::BTreeMap;
use stencil2d::{lines_of_code, run_stencil, RunOptions, StencilParams, Variant};

struct Complexity {
    calls_def: BTreeMap<String, u64>,
    calls_mv2: BTreeMap<String, u64>,
    loc_def: usize,
    loc_mv2: usize,
    loc_reduction_pct: f64,
}

bench::impl_to_json!(Complexity {
    calls_def,
    calls_mv2,
    loc_def,
    loc_mv2,
    loc_reduction_pct,
});

fn loop_calls(variant: Variant) -> BTreeMap<String, u64> {
    // A 3x3 grid's center rank has all four neighbors, like the paper's
    // measured rank.
    let p = StencilParams {
        py: 3,
        px: 3,
        rows: 32,
        cols: 32,
        iters: 3,
    };
    let out = run_stencil::<f32>(p, variant, RunOptions::default());
    let keep = [
        "MPI_Irecv",
        "MPI_Send",
        "MPI_Waitall",
        "cudaMemcpy",
        "cudaMemcpy2D",
    ];
    out.ranks[4]
        .loop_calls
        .iter()
        .filter(|(k, _)| keep.contains(&k.as_str()))
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

fn main() {
    let args = HarnessArgs::parse();
    let calls_def = loop_calls(Variant::Def);
    let calls_mv2 = loop_calls(Variant::Mv2);
    let loc_def = lines_of_code(Variant::Def);
    let loc_mv2 = lines_of_code(Variant::Mv2);
    let reduction = (1.0 - loc_mv2 as f64 / loc_def as f64) * 100.0;

    if args.json {
        emit_json(&ExperimentRecord {
            id: "table1",
            title: "Stencil2D main-loop code complexity (Table I)",
            data: Complexity {
                calls_def,
                calls_mv2,
                loc_def,
                loc_mv2,
                loc_reduction_pct: reduction,
            },
        });
        return;
    }

    println!("Table I: Stencil2D main-loop code complexity\n");
    let apis = [
        ("MPI_Irecv", 4u64, 4u64),
        ("MPI_Send", 4, 4),
        ("MPI_Waitall", 2, 2),
        ("cudaMemcpy", 4, 0),
        ("cudaMemcpy2D", 4, 0),
    ];
    let rows: Vec<Vec<String>> = apis
        .iter()
        .map(|(api, pd, pm)| {
            vec![
                api.to_string(),
                format!("{}", calls_def.get(*api).copied().unwrap_or(0)),
                format!("{}", calls_mv2.get(*api).copied().unwrap_or(0)),
                format!("{pd} / {pm}"),
            ]
        })
        .collect();
    print_table(
        &["call (per iteration)", "Def", "MV2-GPU-NC", "paper Def/MV2"],
        &rows,
    );
    println!();
    println!(
        "Lines of code: Def {loc_def}, MV2-GPU-NC {loc_mv2} \
         ({reduction:.0}% reduction; paper: 245 -> 158, 36%)"
    );
}
