//! Figure 3: the non-contiguous data pipeline in action. Runs one vector
//! transfer and renders each chunk's stage completions (device pack, D2H,
//! RDMA write, H2D, device unpack) as a timeline, demonstrating the stage
//! overlap the paper's design achieves.
//!
//! Regenerate with: `cargo run --release -p bench --bin pipeline_trace`

use bench::{emit_json, ExperimentRecord, HarnessArgs};
use mv2_gpu_nc::baselines::{fill_vector, recv_mv2, send_mv2, VectorXfer};
use mv2_gpu_nc::{GpuCluster, Recorder};
use sim_trace::analysis::stage_spans;

struct Event {
    stage: String,
    chunk: usize,
    done_us: f64,
}

bench::impl_to_json!(Event {
    stage,
    chunk,
    done_us
});

fn main() {
    let args = HarnessArgs::parse();
    let total = 512 << 10; // 8 chunks at the default 64 KB block size
    let rec = Recorder::new();
    GpuCluster::new(2).recorder(rec.clone()).run(move |env| {
        let x = VectorXfer::paper(total);
        let dev = env.gpu.malloc(x.extent());
        if env.comm.rank() == 0 {
            fill_vector(&env.gpu, dev, &x, 1);
            send_mv2(&env.comm, dev, x, 1, 0);
        } else {
            recv_mv2(&env.comm, dev, x, 0, 0);
        }
    });
    let spans = stage_spans(&rec);
    let mut evs: Vec<Event> = spans
        .iter()
        .map(|s| Event {
            stage: s.lane_name.clone(),
            chunk: s.chunk.unwrap_or(0),
            done_us: s.end.as_micros_f64(),
        })
        .collect();
    evs.sort_by(|a, b| a.done_us.total_cmp(&b.done_us));

    if args.json {
        emit_json(&ExperimentRecord {
            id: "fig3",
            title: "Pipeline stage completion trace (Figure 3)",
            data: &evs,
        });
        return;
    }

    println!(
        "Figure 3: pipeline trace of one {} KB vector transfer \
         (64 KB blocks)\n",
        total >> 10
    );
    let t0 = evs.first().map(|e| e.done_us).unwrap_or(0.0);
    let t1 = evs.last().map(|e| e.done_us).unwrap_or(1.0);
    let span = (t1 - t0).max(1.0);
    const COLS: f64 = 72.0;
    println!(
        "{:<8} {:>5}  {:>10}  timeline ({}..{} us)",
        "stage", "chunk", "done (us)", t0 as u64, t1 as u64
    );
    for e in &evs {
        let pos = ((e.done_us - t0) / span * (COLS - 1.0)) as usize;
        let mut bar = vec![b' '; COLS as usize];
        bar[pos] = b'#';
        println!(
            "{:<8} {:>5}  {:>10.1}  |{}|",
            e.stage,
            e.chunk,
            e.done_us,
            String::from_utf8(bar).unwrap()
        );
    }
    // Quantified overlap analysis.
    let stats = mv2_gpu_nc::timeline::analyze_spans(&spans);
    println!();
    println!(
        "pipeline span {:.0} us, stage-overlap factor {:.2} (1.0 = fully serialized)",
        stats.span_us, stats.overlap
    );
    for s in &stats.stages {
        println!(
            "  {:<7} {} chunks, steady-state period {:.1} us",
            s.stage, s.chunks, s.period_us
        );
    }
    if let Some(b) = mv2_gpu_nc::timeline::bottleneck(&stats) {
        println!(
            "  bottleneck stage: {} (the paper's (n+2)*T model assumes the device pack)",
            b.stage
        );
    }
    // The actual gating sequence through the five stages.
    let path = sim_trace::analysis::critical_path(&spans, &mv2_gpu_nc::timeline::STAGE_ORDER);
    if !path.is_empty() {
        let steps: Vec<String> = path
            .iter()
            .map(|s| format!("{}[{}]", s.stage, s.chunk))
            .collect();
        println!("  critical path: {}", steps.join(" -> "));
    }

    // Overlap proof: the last pack must finish well after the first d2h —
    // stages interleave instead of running phase by phase.
    let last_pack = evs
        .iter()
        .filter(|e| e.stage == "pack")
        .map(|e| e.done_us)
        .fold(0.0, f64::max);
    let first_h2d = evs
        .iter()
        .filter(|e| e.stage == "h2d")
        .map(|e| e.done_us)
        .fold(f64::INFINITY, f64::min);
    println!();
    if first_h2d < last_pack {
        println!(
            "overlap confirmed: first H2D completes at {first_h2d:.1} us, \
             before the last pack at {last_pack:.1} us"
        );
    } else {
        println!("no overlap detected (pipeline disabled?)");
    }
}
