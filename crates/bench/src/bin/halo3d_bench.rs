//! Extension benchmark: 3-D Jacobi halo exchange (the paper's "more
//! applications" future work), Def vs MV2-GPU-NC across decompositions
//! whose face mixes range from all-contiguous (split along i) to
//! pathologically strided (split along k).
//!
//! Regenerate with: `cargo run --release -p bench --bin halo3d_bench [--scale N]`

use bench::{emit_json, print_table, ExperimentRecord, HarnessArgs};
use halo3d::{run_halo3d, Halo3dParams, Variant};

struct Row {
    decomposition: String,
    faces: &'static str,
    def_ms: f64,
    mv2_ms: f64,
    improvement_pct: f64,
}

bench::impl_to_json!(Row {
    decomposition,
    faces,
    def_ms,
    mv2_ms,
    improvement_pct,
});

fn main() {
    let args = HarnessArgs::parse();
    let s = args.scale.max(1);
    // 8 ranks, 256^3 cells per rank at scale 1.
    let n = 256 / s;
    let configs: [((usize, usize, usize), &'static str); 4] = [
        ((8, 1, 1), "contiguous slabs only (i-split)"),
        ((1, 8, 1), "long strided rows (j-split)"),
        ((1, 1, 8), "single-element rows (k-split)"),
        ((2, 2, 2), "all three face kinds"),
    ];
    let rows: Vec<Row> = configs
        .into_iter()
        .map(|(grid, faces)| {
            let p = Halo3dParams {
                grid,
                local: (n, n, n),
                iters: args.iters.min(3),
            };
            let d = run_halo3d::<f32>(p, Variant::Def, false);
            let m = run_halo3d::<f32>(p, Variant::Mv2, false);
            assert_eq!(d.checksum(), m.checksum(), "variants must agree");
            Row {
                decomposition: format!("{}x{}x{} ({n}^3/proc)", grid.0, grid.1, grid.2),
                faces,
                def_ms: d.wall.as_millis_f64(),
                mv2_ms: m.wall.as_millis_f64(),
                improvement_pct: (1.0 - m.wall.as_secs_f64() / d.wall.as_secs_f64()) * 100.0,
            }
        })
        .collect();

    if args.json {
        emit_json(&ExperimentRecord {
            id: "halo3d",
            title: "3-D Jacobi halo exchange, Def vs MV2-GPU-NC",
            data: &rows,
        });
        return;
    }

    println!("3-D Jacobi (7-point), 8 ranks, f32 — Def vs MV2-GPU-NC\n");
    print_table(
        &[
            "decomposition",
            "halo faces",
            "Def (ms)",
            "MV2 (ms)",
            "improvement",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.decomposition.clone(),
                    r.faces.to_string(),
                    format!("{:.2}", r.def_ms),
                    format!("{:.2}", r.mv2_ms),
                    format!("{:.0}%", r.improvement_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!();
    println!(
        "expected shape: k-split (worst stride) gains the most, i-split \
         (contiguous) the least — the 3-D generalization of Table II"
    );
}
