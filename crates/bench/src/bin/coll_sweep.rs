//! Collective algorithm sweep: hierarchical node-leader trees vs the flat
//! single-level algorithms vs the naive p2p-loop control, for `allreduce`
//! and `alltoallv`, at 64–256 ranks with ppn ∈ {1, 4, 8}.
//!
//! Every cell runs the identical communication pattern and checks the
//! identical result; only `MpiConfig::coll.algo` and the placement change.
//! The naive family is the seed implementation kept as the control: a
//! root-funnel reduce + binomial bcast for allreduce, and a loop posting
//! 2·P requests per rank for alltoallv. The interesting comparison is on
//! fat nodes (ppn ≥ 4), where the hierarchical path fans in/out over the
//! shm channel and puts one aggregated message per node pair on the wire.
//!
//! Regenerate with: `cargo run --release -p bench --bin coll_sweep`
//! (`--out PATH` overrides the default `results/BENCH_coll.json`;
//! `--smoke true` runs the 64-rank column only, with the same guards).

use bench::{print_table, HarnessArgs, Json, ToJson};
use hostmem::{bytes_to_scalars, scalars_to_bytes, HostBuf};
use mpi_sim::{CollAlgo, Datatype, MpiConfig, MpiWorld, ReduceOp};
use sim_core::ExecMode;
use sim_trace::Recorder;

#[derive(Clone)]
struct Row {
    coll: String,
    ranks: usize,
    ppn: usize,
    algo: String,
    time_ms: f64,
    hca_tx_bytes: u64,
    shm_bytes: u64,
}

bench::impl_to_json!(Row {
    coll,
    ranks,
    ppn,
    algo,
    time_ms,
    hca_tx_bytes,
    shm_bytes,
});

const ALGOS: [(CollAlgo, &str); 3] = [
    (CollAlgo::Naive, "naive"),
    (CollAlgo::Flat, "flat"),
    (CollAlgo::Hier, "hier"),
];

/// Allreduce payload: 16 Ki f32 (64 KiB), several pipeline chunks.
const AR_COUNT: usize = 16 << 10;

fn fabric_bytes(rec: &Recorder, nodes: usize) -> (u64, u64) {
    let m = rec.metrics();
    let sum = |kind: &str| {
        (0..nodes)
            .map(|k| m.get(&format!("node{k}.{kind}")).copied().unwrap_or(0))
            .sum()
    };
    (sum("hca.tx_bytes"), sum("shm.bytes"))
}

fn world(n: usize, ppn: usize, algo: CollAlgo, rec: &Recorder) -> MpiWorld {
    let mut cfg = MpiConfig {
        ppn,
        ..MpiConfig::default()
    };
    cfg.coll.algo = algo;
    MpiWorld::new(n)
        .with_config(cfg)
        .with_exec(ExecMode::Event)
        .with_recorder(rec.clone())
}

/// Integer-valued contribution, exact in f32 for any fold order.
fn ar_term(rank: usize, k: usize) -> f32 {
    ((rank * 13 + k * 7) % 17) as f32 - 8.0
}

fn run_allreduce(n: usize, ppn: usize, algo: CollAlgo) -> Row {
    let rec = Recorder::new();
    let wall = world(n, ppn, algo, &rec).run(move |comm| {
        let me = comm.rank();
        let f32t = Datatype::float();
        f32t.commit();
        let vals: Vec<f32> = (0..AR_COUNT).map(|k| ar_term(me, k)).collect();
        let send = HostBuf::from_vec(scalars_to_bytes(&vals));
        let recv = HostBuf::alloc(AR_COUNT * 4);
        comm.barrier();
        comm.allreduce(send.base(), recv.base(), AR_COUNT, &f32t, ReduceOp::Sum);
        let got = bytes_to_scalars::<f32>(&recv.read(0, AR_COUNT * 4));
        for (k, g) in got.iter().enumerate().step_by(997) {
            let want: f32 = (0..comm.size()).map(|r| ar_term(r, k)).sum();
            assert_eq!(*g, want, "allreduce element {k} on rank {me}");
        }
    });
    let (hca_tx_bytes, shm_bytes) = fabric_bytes(&rec, n / ppn);
    Row {
        coll: "allreduce".into(),
        ranks: n,
        ppn,
        algo: algo_name(algo),
        time_ms: (wall.as_nanos() as f64) / 1e6,
        hca_tx_bytes,
        shm_bytes,
    }
}

/// Ragged per-pair element count (f32), same on both sides of the pair.
///
/// Small per-pair payloads (16–96 bytes) put the sweep in the
/// message-aggregation regime a transpose reaches at scale: tiles shrink
/// as 1/P² and per-message latency dominates, which is exactly where the
/// node-leader funnel earns its keep (one aggregated wire message per
/// node pair instead of ppn² rendezvous handshakes). With fat per-pair
/// payloads the wire is bandwidth-bound and the leader's extra shm
/// fan-in/fan-out copy can only lose — real MPI libraries switch to the
/// direct pairwise exchange there, and so should users of this sim.
fn a2a_cnt(src: usize, dst: usize) -> usize {
    4 + ((src * 5 + dst * 3) % 11) * 2
}

fn run_alltoallv(n: usize, ppn: usize, algo: CollAlgo) -> Row {
    let rec = Recorder::new();
    let wall = world(n, ppn, algo, &rec).run(move |comm| {
        let me = comm.rank();
        let f32t = Datatype::float();
        f32t.commit();
        let scounts: Vec<usize> = (0..n).map(|j| a2a_cnt(me, j)).collect();
        let rcounts: Vec<usize> = (0..n).map(|j| a2a_cnt(j, me)).collect();
        let displs = |c: &[usize]| {
            let mut d = Vec::with_capacity(n);
            let mut off = 0usize;
            for &cj in c {
                d.push(off);
                off += cj * 4;
            }
            (d, off)
        };
        let (sdispls, stot) = displs(&scounts);
        let (rdispls, rtot) = displs(&rcounts);
        let vals: Vec<f32> = (0..stot / 4).map(|k| ar_term(me, k)).collect();
        let send = HostBuf::from_vec(scalars_to_bytes(&vals));
        let recv = HostBuf::alloc(rtot);
        comm.barrier();
        comm.alltoallv(
            send.base(),
            &scounts,
            &sdispls,
            &f32t,
            recv.base(),
            &rcounts,
            &rdispls,
            &f32t,
        );
        // Spot-check: the block from peer j is j's send stream at my
        // send-offset within j's buffer.
        for j in (0..n).step_by((n / 7).max(1)) {
            let got = bytes_to_scalars::<f32>(&recv.read(rdispls[j], rcounts[j] * 4));
            let j_off: usize = (0..me).map(|d| a2a_cnt(j, d)).sum();
            let want: Vec<f32> = (0..rcounts[j]).map(|k| ar_term(j, j_off + k)).collect();
            assert_eq!(got, want, "alltoallv block from {j} on rank {me}");
        }
    });
    let (hca_tx_bytes, shm_bytes) = fabric_bytes(&rec, n / ppn);
    Row {
        coll: "alltoallv".into(),
        ranks: n,
        ppn,
        algo: algo_name(algo),
        time_ms: (wall.as_nanos() as f64) / 1e6,
        hca_tx_bytes,
        shm_bytes,
    }
}

fn algo_name(a: CollAlgo) -> String {
    ALGOS.iter().find(|(x, _)| *x == a).unwrap().1.to_string()
}

fn find<'a>(rows: &'a [Row], coll: &str, ranks: usize, ppn: usize, algo: &str) -> &'a Row {
    rows.iter()
        .find(|r| r.coll == coll && r.ranks == ranks && r.ppn == ppn && r.algo == algo)
        .expect("row missing")
}

fn main() {
    let args = HarnessArgs::parse();
    let smoke = args.extra.contains_key("smoke");
    let rank_counts: &[usize] = if smoke { &[64] } else { &[64, 128, 256] };
    let ppns: &[usize] = &[1, 4, 8];

    let mut rows: Vec<Row> = Vec::new();
    for &n in rank_counts {
        for &ppn in ppns {
            for (algo, _) in ALGOS {
                rows.push(run_allreduce(n, ppn, algo));
                rows.push(run_alltoallv(n, ppn, algo));
            }
        }
    }

    let doc = Json::Obj(vec![
        ("id".to_string(), "coll".to_json()),
        (
            "title".to_string(),
            "collective sweep: hier node-leader trees vs flat vs naive control".to_json(),
        ),
        (
            "workload".to_string(),
            format!(
                "allreduce {AR_COUNT} f32 + ragged alltoallv (~{}-{} f32/pair), \
                 barrier-synchronized, Event carrier",
                a2a_cnt_min(),
                a2a_cnt_max()
            )
            .to_json(),
        ),
        ("smoke".to_string(), smoke.to_json()),
        ("data".to_string(), rows.to_json()),
    ]);

    let out_path = args
        .extra
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/BENCH_coll.json".to_string());
    std::fs::write(&out_path, format!("{doc}\n")).expect("write results file");

    if args.json {
        println!("{doc}");
        return;
    }

    println!("collective sweep: hier vs flat vs naive control\n");
    print_table(
        &[
            "coll",
            "ranks",
            "ppn",
            "algo",
            "time (ms)",
            "HCA tx",
            "shm bytes",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.coll.clone(),
                    r.ranks.to_string(),
                    r.ppn.to_string(),
                    r.algo.clone(),
                    format!("{:.3}", r.time_ms),
                    r.hca_tx_bytes.to_string(),
                    r.shm_bytes.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!();
    println!("wrote {out_path}");

    // Regression guards (run from scripts/ci.sh via --smoke).
    for &n in rank_counts {
        for &ppn in ppns.iter().filter(|&&p| p >= 4) {
            for coll in ["allreduce", "alltoallv"] {
                let naive = find(&rows, coll, n, ppn, "naive");
                let flat = find(&rows, coll, n, ppn, "flat");
                let hier = find(&rows, coll, n, ppn, "hier");
                assert!(
                    hier.time_ms < naive.time_ms,
                    "hier {coll} ({:.3} ms) must beat the naive p2p-loop control \
                     ({:.3} ms) at {n} ranks ppn={ppn}",
                    hier.time_ms,
                    naive.time_ms
                );
                assert!(
                    hier.time_ms < flat.time_ms,
                    "hier {coll} ({:.3} ms) must beat the flat single-level path \
                     ({:.3} ms) at {n} ranks ppn={ppn}",
                    hier.time_ms,
                    flat.time_ms
                );
                assert!(
                    hier.hca_tx_bytes < naive.hca_tx_bytes,
                    "hier {coll} ({} HCA bytes) must put less on the wire than the \
                     naive control ({}) at {n} ranks ppn={ppn}",
                    hier.hca_tx_bytes,
                    naive.hca_tx_bytes
                );
                assert!(
                    hier.shm_bytes > 0,
                    "hier {coll} must route intra-node traffic over shm at ppn={ppn}"
                );
            }
            // The leader funnel shifts traffic from the wire to the shm
            // channel: HCA bytes must drop as ppn grows, in step with the
            // shm bytes picked up.
            let ar1 = find(&rows, "allreduce", n, 1, "hier");
            let arp = find(&rows, "allreduce", n, ppn, "hier");
            assert!(
                arp.hca_tx_bytes < ar1.hca_tx_bytes && arp.shm_bytes > ar1.shm_bytes,
                "hier allreduce at {n} ranks must shed HCA bytes ({} -> {}) onto \
                 the shm channel ({} -> {}) as ppn grows 1 -> {ppn}",
                ar1.hca_tx_bytes,
                arp.hca_tx_bytes,
                ar1.shm_bytes,
                arp.shm_bytes
            );
        }
        // Allreduce-specific proportionality: a node's members contribute
        // one aggregated vector instead of ppn individual ones, so the
        // hier wire traffic at ppn=4 is a small fraction of the naive
        // funnel's.
        let naive4 = find(&rows, "allreduce", n, 4, "naive");
        let hier4 = find(&rows, "allreduce", n, 4, "hier");
        assert!(
            2 * hier4.hca_tx_bytes <= naive4.hca_tx_bytes,
            "hier allreduce at {n} ranks ppn=4 should use at most half the naive \
             control's HCA bytes ({} vs {})",
            hier4.hca_tx_bytes,
            naive4.hca_tx_bytes
        );
    }
}

fn a2a_cnt_min() -> usize {
    4
}

fn a2a_cnt_max() -> usize {
    4 + 10 * 2
}
