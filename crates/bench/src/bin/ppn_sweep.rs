//! Topology sweep: the same 16-rank halo3d job laid out with 1, 2 and 4
//! ranks per node (blocked placement), plus an all-remote control at the
//! same node counts. Blocked placement turns the k-face exchanges — the
//! pathological single-element-row datatypes — into intra-node
//! shared-memory (or pure device-to-device) transfers; the control shares
//! GPUs identically but sends every halo over the HCA, isolating the
//! transport win from the device-sharing cost.
//!
//! Regenerate with: `cargo run --release -p bench --bin ppn_sweep`
//! (`--out PATH` overrides the default `results/BENCH_ppn.json`).

use bench::{print_table, HarnessArgs, Json, ToJson};
use halo3d::{run_halo3d_mapped, run_halo3d_topo, Halo3dParams, Variant};
use ib_sim::Topology;
use sim_core::SanitizerMode;
use sim_trace::Recorder;

struct Row {
    ppn: usize,
    nodes: usize,
    blocked_ms: f64,
    all_remote_ms: f64,
    hca_tx_bytes: u64,
    shm_bytes: u64,
}

bench::impl_to_json!(Row {
    ppn,
    nodes,
    blocked_ms,
    all_remote_ms,
    hca_tx_bytes,
    shm_bytes,
});

/// An all-remote placement with the same node count and GPU sharing as
/// blocked `ppn`: group ranks by the parity of their grid coordinates.
/// Equal-parity ranks are never face neighbours in a 7-point stencil, so
/// every halo crosses the wire.
fn all_remote(p: &Halo3dParams, ppn: usize) -> Topology {
    let n = p.nranks();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&r| {
        let (i, j, k) = p.coords(r);
        (i + j + k) % 2
    });
    let mut map = vec![0usize; n];
    for (pos, &r) in order.iter().enumerate() {
        map[r] = pos / ppn;
    }
    Topology::from_map(map)
}

fn fabric_bytes(rec: &Recorder, nodes: usize) -> (u64, u64) {
    let m = rec.metrics();
    let sum = |kind: &str| {
        (0..nodes)
            .map(|k| m.get(&format!("node{k}.{kind}")).copied().unwrap_or(0))
            .sum()
    };
    (sum("hca.tx_bytes"), sum("shm.bytes"))
}

fn main() {
    let args = HarnessArgs::parse();
    let s = args.scale.max(1);
    // 16 ranks in a 2x2x4 grid: k is split four ways, so the worst-layout
    // k-faces connect rank r to r±1 — exactly the pairs a blocked layout
    // co-locates.
    let p = Halo3dParams {
        grid: (2, 2, 4),
        local: (96 / s, 96 / s, 48 / s),
        iters: args.iters.min(3),
    };
    let n = p.nranks();

    let rows: Vec<Row> = [1usize, 2, 4]
        .into_iter()
        .map(|ppn| {
            let nodes = n / ppn;
            let rec = Recorder::new();
            let (blocked, _) = run_halo3d_topo::<f32>(
                p,
                Variant::Mv2,
                false,
                SanitizerMode::Off,
                None,
                Some(rec.clone()),
                ppn,
            );
            let (hca_tx_bytes, shm_bytes) = fabric_bytes(&rec, nodes);
            // Same node count and GPU sharing, but co-located ranks never
            // neighbour each other, so every halo crosses the wire.
            let (remote, _) = run_halo3d_mapped::<f32>(
                p,
                Variant::Mv2,
                false,
                SanitizerMode::Off,
                None,
                None,
                all_remote(&p, ppn),
            );
            assert_eq!(
                blocked.checksum(),
                remote.checksum(),
                "placement must not change the computed field (ppn {ppn})"
            );
            Row {
                ppn,
                nodes,
                blocked_ms: blocked.wall.as_millis_f64(),
                all_remote_ms: remote.wall.as_millis_f64(),
                hca_tx_bytes,
                shm_bytes,
            }
        })
        .collect();

    // Regression guards (run from scripts/ci.sh).
    let base = &rows[0];
    assert_eq!(
        base.shm_bytes, 0,
        "one rank per node must not use the shm channel"
    );
    for r in rows.iter().filter(|r| r.ppn > 1) {
        // Scaled-down runs shrink the k-faces into the eager regime where
        // the transport choice no longer moves the critical path, so the
        // placement guard only holds at full size.
        assert!(
            s > 1 || r.blocked_ms < r.all_remote_ms,
            "blocked ppn={} ({:.2} ms) must beat the all-remote control \
             placement on the same {} nodes ({:.2} ms)",
            r.ppn,
            r.blocked_ms,
            r.nodes,
            r.all_remote_ms
        );
        assert!(
            r.hca_tx_bytes < base.hca_tx_bytes,
            "co-locating ranks must shed wire traffic: ppn={} sent {} HCA \
             bytes vs {} at ppn=1",
            r.ppn,
            r.hca_tx_bytes,
            base.hca_tx_bytes
        );
        assert!(
            r.shm_bytes > 0,
            "ppn={} must route intra-node halos over shared memory",
            r.ppn
        );
    }

    let doc = Json::Obj(vec![
        ("id".to_string(), "ppn".to_json()),
        (
            "title".to_string(),
            "halo3d 16 ranks: blocked ppn placement vs all-remote control".to_json(),
        ),
        (
            "workload".to_string(),
            format!(
                "halo3d {}x{}x{}, {}^3-ish local, {} iters, f32",
                p.grid.0, p.grid.1, p.grid.2, p.local.0, p.iters
            )
            .to_json(),
        ),
        ("data".to_string(), rows.to_json()),
    ]);

    let out_path = args
        .extra
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/BENCH_ppn.json".to_string());
    std::fs::write(&out_path, format!("{doc}\n")).expect("write results file");

    if args.json {
        println!("{doc}");
        return;
    }

    println!("halo3d, 16 ranks, blocked ppn vs all-remote control\n");
    print_table(
        &[
            "ppn",
            "nodes",
            "blocked (ms)",
            "all-remote (ms)",
            "HCA tx",
            "shm bytes",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.ppn.to_string(),
                    r.nodes.to_string(),
                    format!("{:.2}", r.blocked_ms),
                    format!("{:.2}", r.all_remote_ms),
                    r.hca_tx_bytes.to_string(),
                    r.shm_bytes.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!();
    println!("wrote {out_path}");
}
