//! Micro-benchmarks of the hot paths under the simulator: datatype
//! flattening, CPU packing, the simulation kernel itself and the GPU data
//! plane. These guard the *real* performance of the library code
//! (wall-clock), complementing the virtual-time experiment harness.
//!
//! Plain `harness = false` main (no external bench framework): each case
//! runs a fixed iteration count and reports mean/min wall time.

use gpu_sim::Gpu;
use hostmem::HostBuf;
use mpi_sim::pack::PackCursor;
use mpi_sim::Datatype;
use sim_core::{Sim, SimDur};
use std::time::Instant;

/// Run `f` `iters` times and print per-iteration mean and min.
fn bench<R>(name: &str, iters: usize, mut f: impl FnMut() -> R) {
    f(); // warm-up
    let mut min = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        min = min.min(dt);
        total += dt;
    }
    println!(
        "{name:<40} mean {:>10.1} us   min {:>10.1} us   ({iters} iters)",
        total / iters as f64 * 1e6,
        min * 1e6
    );
}

fn bench_flatten() {
    for rows in [1usize << 10, 1 << 14, 1 << 17] {
        bench(&format!("datatype_flatten/{rows}"), 20, || {
            let dt = Datatype::vector(rows, 1, 4, &Datatype::float());
            dt.commit();
            dt.flat().segments().len()
        });
    }
}

fn bench_expand() {
    let dt = Datatype::vector(1 << 16, 1, 4, &Datatype::float());
    dt.commit();
    let flat = dt.flat();
    bench("expand_64k_segments", 20, || flat.expanded(1).len());
}

fn bench_cpu_pack() {
    let dt = Datatype::vector(1 << 16, 1, 4, &Datatype::float());
    dt.commit();
    let segs = dt.flat().expanded(1);
    let buf = HostBuf::alloc(1 << 20);
    bench("cpu_pack/gather_256k_over_64k_segments", 20, || {
        let mut cursor = PackCursor::new(buf.base(), segs.clone());
        cursor.pack_all().len()
    });
}

fn bench_sim_kernel() {
    bench("sim_10k_timer_events", 20, || {
        let sim = Sim::new();
        sim.spawn("p", || {
            for _ in 0..10_000 {
                sim_core::sleep(SimDur::from_nanos(10));
            }
        });
        sim.run()
    });
    bench("sim_spawn_join_8_processes", 20, || {
        let sim = Sim::new();
        for i in 0..8 {
            sim.spawn(format!("p{i}"), move || {
                for _ in 0..100 {
                    sim_core::sleep(SimDur::from_micros(1));
                }
            });
        }
        sim.run()
    });
}

fn bench_gpu_data_plane() {
    bench("gpu_copy/strided_2d_copy_1mb", 20, || {
        let sim = Sim::new();
        sim.spawn("p", || {
            let gpu = Gpu::tesla_c2050(0);
            let src = gpu.malloc(4 << 20);
            let dst = gpu.malloc(1 << 20);
            gpu.memcpy_2d(gpu_sim::Copy2d {
                dst: gpu_sim::Loc::Device(dst),
                dpitch: 4,
                src: gpu_sim::Loc::Device(src),
                spitch: 16,
                width: 4,
                height: 1 << 18,
            });
        });
        sim.run()
    });
}

fn main() {
    bench_flatten();
    bench_expand();
    bench_cpu_pack();
    bench_sim_kernel();
    bench_gpu_data_plane();
}
