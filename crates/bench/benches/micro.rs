//! Criterion micro-benchmarks of the hot paths under the simulator:
//! datatype flattening, CPU packing, the simulation kernel itself and the
//! GPU data plane. These guard the *real* performance of the library code
//! (wall-clock), complementing the virtual-time experiment harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::Gpu;
use hostmem::HostBuf;
use mpi_sim::pack::PackCursor;
use mpi_sim::Datatype;
use sim_core::{Sim, SimDur};

fn bench_flatten(c: &mut Criterion) {
    let mut g = c.benchmark_group("datatype_flatten");
    for rows in [1usize << 10, 1 << 14, 1 << 17] {
        g.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter(|| {
                let dt = Datatype::vector(rows, 1, 4, &Datatype::float());
                dt.commit();
                std::hint::black_box(dt.flat().segments().len())
            });
        });
    }
    g.finish();
}

fn bench_expand(c: &mut Criterion) {
    let dt = Datatype::vector(1 << 16, 1, 4, &Datatype::float());
    dt.commit();
    let flat = dt.flat();
    c.bench_function("expand_64k_segments", |b| {
        b.iter(|| std::hint::black_box(flat.expanded(1).len()));
    });
}

fn bench_cpu_pack(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_pack");
    let dt = Datatype::vector(1 << 16, 1, 4, &Datatype::float());
    dt.commit();
    let segs = dt.flat().expanded(1);
    let buf = HostBuf::alloc(1 << 20);
    g.throughput(Throughput::Bytes(256 << 10));
    g.bench_function("gather_256k_over_64k_segments", |b| {
        b.iter(|| {
            let mut cursor = PackCursor::new(buf.base(), segs.clone());
            std::hint::black_box(cursor.pack_all().len())
        });
    });
    g.finish();
}

fn bench_sim_kernel(c: &mut Criterion) {
    c.bench_function("sim_10k_timer_events", |b| {
        b.iter(|| {
            let sim = Sim::new();
            sim.spawn("p", || {
                for _ in 0..10_000 {
                    sim_core::sleep(SimDur::from_nanos(10));
                }
            });
            std::hint::black_box(sim.run())
        });
    });
    c.bench_function("sim_spawn_join_8_processes", |b| {
        b.iter(|| {
            let sim = Sim::new();
            for i in 0..8 {
                sim.spawn(format!("p{i}"), move || {
                    for _ in 0..100 {
                        sim_core::sleep(SimDur::from_micros(1));
                    }
                });
            }
            std::hint::black_box(sim.run())
        });
    });
}

fn bench_gpu_data_plane(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu_copy_data_plane");
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("strided_2d_copy_1mb", |b| {
        b.iter(|| {
            let sim = Sim::new();
            sim.spawn("p", || {
                let gpu = Gpu::tesla_c2050(0);
                let src = gpu.malloc(4 << 20);
                let dst = gpu.malloc(1 << 20);
                gpu.memcpy_2d(gpu_sim::Copy2d {
                    dst: gpu_sim::Loc::Device(dst),
                    dpitch: 4,
                    src: gpu_sim::Loc::Device(src),
                    spitch: 16,
                    width: 4,
                    height: 1 << 18,
                });
            });
            sim.run()
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_flatten, bench_expand, bench_cpu_pack, bench_sim_kernel, bench_gpu_data_plane
}
criterion_main!(benches);
