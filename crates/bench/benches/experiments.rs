//! Criterion entry points for the paper's experiments, at reduced scale so
//! `cargo bench` finishes quickly. Each benchmark runs one figure/table's
//! core measurement inside the deterministic simulator; the full-scale
//! regeneration binaries live in `src/bin/` (see DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::Gpu;
use mv2_gpu_nc::baselines::{
    fill_vector, recv_cpy2d_blocking, recv_mv2, send_cpy2d_blocking, send_mv2, VectorXfer,
};
use mv2_gpu_nc::schemes::{PackBench, PackScheme};
use mv2_gpu_nc::GpuCluster;
use sim_core::Sim;
use stencil2d::{run_stencil, RunOptions, StencilParams, Variant};

/// Figure 2 at the paper's 4 KB anchor: all three pack schemes.
fn fig2_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_pack_4k");
    for scheme in PackScheme::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let sim = Sim::new();
                    sim.spawn("p", move || {
                        let gpu = Gpu::tesla_c2050(0);
                        let pb = PackBench::new(&gpu, 4096, 4, 16);
                        std::hint::black_box(pb.run(scheme));
                        pb.free();
                    });
                    sim.run()
                });
            },
        );
    }
    g.finish();
}

/// Figure 5 at 256 KB: blocking baseline vs MV2-GPU-NC.
fn fig5_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_vector_256k");
    g.sample_size(10);
    g.bench_function("cpy2d_send", |b| {
        b.iter(|| {
            GpuCluster::new(2).run(|env| {
                let x = VectorXfer::paper(256 << 10);
                let dev = env.gpu.malloc(x.extent());
                if env.comm.rank() == 0 {
                    fill_vector(&env.gpu, dev, &x, 1);
                    send_cpy2d_blocking(env, dev, x, 1, 0);
                } else {
                    recv_cpy2d_blocking(env, dev, x, 0, 0);
                }
            })
        });
    });
    g.bench_function("mv2_gpu_nc", |b| {
        b.iter(|| {
            GpuCluster::new(2).run(|env| {
                let x = VectorXfer::paper(256 << 10);
                let dev = env.gpu.malloc(x.extent());
                if env.comm.rank() == 0 {
                    fill_vector(&env.gpu, dev, &x, 1);
                    send_mv2(&env.comm, dev, x, 1, 0);
                } else {
                    recv_mv2(&env.comm, dev, x, 0, 0);
                }
            })
        });
    });
    g.finish();
}

/// Tables II/III shape at reduced scale: both stencil variants on 2x4.
fn stencil_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("stencil_2x4_256");
    g.sample_size(10);
    let p = StencilParams {
        py: 2,
        px: 4,
        rows: 256,
        cols: 256,
        iters: 2,
    };
    for variant in [Variant::Def, Variant::Mv2] {
        g.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &variant| {
                b.iter(|| run_stencil::<f32>(p, variant, RunOptions::default()).wall);
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(20);
    targets = fig2_point, fig5_point, stencil_point
}
criterion_main!(experiments);
