//! Bench entry points for the paper's experiments, at reduced scale so
//! `cargo bench` finishes quickly. Each benchmark runs one figure/table's
//! core measurement inside the deterministic simulator; the full-scale
//! regeneration binaries live in `src/bin/` (see DESIGN.md).
//!
//! Plain `harness = false` main (no external bench framework): each case
//! runs a fixed iteration count and reports mean/min wall time.

use gpu_sim::Gpu;
use mv2_gpu_nc::baselines::{
    fill_vector, recv_cpy2d_blocking, recv_mv2, send_cpy2d_blocking, send_mv2, VectorXfer,
};
use mv2_gpu_nc::schemes::{PackBench, PackScheme};
use mv2_gpu_nc::GpuCluster;
use sim_core::Sim;
use std::time::Instant;
use stencil2d::{run_stencil, RunOptions, StencilParams, Variant};

/// Run `f` `iters` times and print per-iteration mean and min.
fn bench<R>(name: &str, iters: usize, mut f: impl FnMut() -> R) {
    f(); // warm-up
    let mut min = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        min = min.min(dt);
        total += dt;
    }
    println!(
        "{name:<40} mean {:>10.1} us   min {:>10.1} us   ({iters} iters)",
        total / iters as f64 * 1e6,
        min * 1e6
    );
}

/// Figure 2 at the paper's 4 KB anchor: all three pack schemes.
fn fig2_point() {
    for scheme in PackScheme::ALL {
        bench(&format!("fig2_pack_4k/{}", scheme.label()), 20, || {
            let sim = Sim::new();
            sim.spawn("p", move || {
                let gpu = Gpu::tesla_c2050(0);
                let pb = PackBench::new(&gpu, 4096, 4, 16);
                std::hint::black_box(pb.run(scheme));
                pb.free();
            });
            sim.run()
        });
    }
}

/// Figure 5 at 256 KB: blocking baseline vs MV2-GPU-NC.
fn fig5_point() {
    bench("fig5_vector_256k/cpy2d_send", 10, || {
        GpuCluster::new(2).run(|env| {
            let x = VectorXfer::paper(256 << 10);
            let dev = env.gpu.malloc(x.extent());
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, 1);
                send_cpy2d_blocking(env, dev, x, 1, 0);
            } else {
                recv_cpy2d_blocking(env, dev, x, 0, 0);
            }
        })
    });
    bench("fig5_vector_256k/mv2_gpu_nc", 10, || {
        GpuCluster::new(2).run(|env| {
            let x = VectorXfer::paper(256 << 10);
            let dev = env.gpu.malloc(x.extent());
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, 1);
                send_mv2(&env.comm, dev, x, 1, 0);
            } else {
                recv_mv2(&env.comm, dev, x, 0, 0);
            }
        })
    });
}

/// Tables II/III shape at reduced scale: both stencil variants on 2x4.
fn stencil_point() {
    let p = StencilParams {
        py: 2,
        px: 4,
        rows: 256,
        cols: 256,
        iters: 2,
    };
    for variant in [Variant::Def, Variant::Mv2] {
        bench(&format!("stencil_2x4_256/{}", variant.label()), 10, || {
            run_stencil::<f32>(p, variant, RunOptions::default()).wall
        });
    }
}

fn main() {
    fig2_point();
    fig5_point();
    stencil_point();
}
