//! # simcheck — exhaustive control-plane model checking
//!
//! Enumerates control-packet delivery interleavings of the simulated MPI
//! runtime and checks every run against the registered protocol
//! invariants (see `mpi_sim::invariants`) plus the workload's own data
//! verification.
//!
//! The pieces:
//!
//! * [`Schedule`] — a sparse choice-list (`decision index → deliver /
//!   delay / drop`) that fully determines a run. Serializes to a
//!   replayable text format.
//! * [`CheckScheduler`] — an `ib_sim::DeliveryScheduler` that answers the
//!   fabric's per-packet questions from a schedule and logs every
//!   decision point.
//! * [`explore`](explore()) — the breadth-first driver: runs the FIFO
//!   schedule, branches on logged decision points (with partial-order
//!   reduction: a delay branch only where a reordering is possible),
//!   stops at the first violation and returns it delta-minimized.
//! * [`scenarios`] — checkable workloads covering the staged, direct,
//!   shm-eager and D2D protocols, plus two scenarios with PR 3's
//!   liveness bugs reintroduced behind config toggles (the checker must
//!   rediscover both).
//!
//! ```no_run
//! use simcheck::{explore, scenarios};
//!
//! let verdict = explore(&scenarios::staged_2rank());
//! assert!(verdict.passed(), "{:?}", verdict.counterexample);
//! ```

#![warn(missing_docs)]

mod checker;
mod explore;
pub mod scenarios;
mod schedule;

pub use checker::{CheckScheduler, Decision};
pub use explore::{
    explore, silence_expected_panics, Budget, Counterexample, RunOutcome, Scenario, Stats, Verdict,
};
pub use schedule::{Action, Schedule};
