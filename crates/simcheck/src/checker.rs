//! The checker-controlled [`DeliveryScheduler`]: answers the fabric's
//! per-packet delivery questions from a [`Schedule`] and logs every
//! decision point for the explorer.

use std::collections::HashMap;
use std::sync::Arc;

use ib_sim::{CtrlAction, CtrlPoint, DeliveryScheduler};
use sim_core::lock::Mutex;
use sim_core::SimDur;

use crate::schedule::{Action, Schedule};

/// One decision point, as observed during a run.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Position in the run's decision sequence (the schedule's index).
    pub index: usize,
    /// Sending rank.
    pub src: usize,
    /// Destination rank.
    pub dst: usize,
    /// Travelled the intra-node shared-memory channel (reliable — cannot
    /// be dropped).
    pub shm: bool,
    /// Packet kind (`"Rts"`, `"Cts"`, `"Fin"`, ... — `"?"` if unknown).
    pub kind: &'static str,
    /// Fabric-modeled arrival instant, ns of virtual time.
    pub arrival_ns: u64,
    /// Another control packet to the same destination was still in flight
    /// when this decision was taken. This is the partial-order-reduction
    /// condition: only then can delaying this packet change the
    /// destination's arrival *order* — otherwise FIFO delivery is the
    /// canonical representative of every delivery-order interleaving.
    pub concurrent: bool,
    /// What the schedule chose here.
    pub action: Action,
}

struct Inner {
    schedule: Schedule,
    next: usize,
    log: Vec<Decision>,
    /// Control packets currently in flight, per destination rank.
    inflight: HashMap<usize, usize>,
}

/// A [`DeliveryScheduler`] that replays a [`Schedule`].
///
/// Build one per run — decision indices restart at zero only with a fresh
/// checker. After the run, [`log`](CheckScheduler::log) returns the full
/// decision sequence (the explorer's branch-point menu).
pub struct CheckScheduler {
    inner: Arc<Mutex<Inner>>,
}

impl CheckScheduler {
    /// A checker that answers from `schedule` (unlisted decisions deliver
    /// FIFO).
    pub fn new(schedule: Schedule) -> Arc<CheckScheduler> {
        Arc::new(CheckScheduler {
            inner: Arc::new(Mutex::new(Inner {
                schedule,
                next: 0,
                log: Vec::new(),
                inflight: HashMap::new(),
            })),
        })
    }

    /// The decision log of the run driven through this checker.
    pub fn log(&self) -> Vec<Decision> {
        self.inner.lock().log.clone()
    }
}

impl DeliveryScheduler for CheckScheduler {
    fn on_ctrl(&self, point: &CtrlPoint<'_>) -> CtrlAction {
        let mut g = self.inner.lock();
        let index = g.next;
        g.next += 1;
        let concurrent = g.inflight.get(&point.dst).copied().unwrap_or(0) > 0;
        let action = g.schedule.action_at(index);
        let kind = mpi_sim::packet_kind(point.payload).unwrap_or("?");
        g.log.push(Decision {
            index,
            src: point.src,
            dst: point.dst,
            shm: point.shm,
            kind,
            arrival_ns: point.arrival.as_nanos(),
            concurrent,
            action,
        });
        let (ret, lands_at) = match action {
            Action::Deliver => (CtrlAction::Deliver, Some(point.arrival)),
            Action::Delay(ns) => (
                CtrlAction::Delay(ns),
                Some(point.arrival + SimDur::from_nanos(ns)),
            ),
            Action::Drop => (CtrlAction::Drop, None),
        };
        if let Some(at) = lands_at {
            *g.inflight.entry(point.dst).or_insert(0) += 1;
            let inner = Arc::clone(&self.inner);
            let dst = point.dst;
            drop(g);
            // Un-count the packet when it lands. The timer fires at an
            // instant the mailbox delivery already occupies, so it adds no
            // new event times and cannot perturb the simulation.
            sim_core::schedule_at(at, move || {
                let mut g = inner.lock();
                if let Some(c) = g.inflight.get_mut(&dst) {
                    *c = c.saturating_sub(1);
                }
            });
        }
        ret
    }
}
