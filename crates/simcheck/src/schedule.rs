//! Schedules: sparse choice-lists over delivery decision points.
//!
//! Every control packet the fabric asks the checker about is one *decision
//! point*, numbered in the order the questions are asked. Because the
//! simulation is deterministic given the checker's answers, a schedule —
//! the list of decision points where the checker deviated from FIFO
//! delivery — fully determines a run. The empty schedule is the default
//! FIFO execution; a counterexample is a schedule whose run violates an
//! invariant, and it replays exactly from this representation.

use std::fmt;

/// What the checker does with one control packet.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Deliver at the fabric-modeled arrival instant (the FIFO default).
    Deliver,
    /// Deliver late by the given number of virtual nanoseconds, letting
    /// packets behind it (to the same destination) overtake it.
    Delay(u64),
    /// Never deliver. Only valid for wire control packets on a
    /// fault-tolerant fabric — the shared-memory channel is reliable by
    /// construction and the fabric panics on an shm drop.
    Drop,
}

/// A sparse choice-list: `(decision index, non-default action)` pairs,
/// strictly increasing in index. Every unlisted decision is
/// [`Action::Deliver`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    choices: Vec<(usize, Action)>,
}

impl Schedule {
    /// The empty (FIFO) schedule.
    pub fn empty() -> Schedule {
        Schedule::default()
    }

    /// Build from `(index, action)` pairs (sorted by index internally).
    pub fn from_choices(mut choices: Vec<(usize, Action)>) -> Schedule {
        choices.sort_by_key(|&(i, _)| i);
        Schedule { choices }
    }

    /// The choice list, sorted by decision index.
    pub fn choices(&self) -> &[(usize, Action)] {
        &self.choices
    }

    /// This schedule plus one more divergence at `idx`.
    pub fn with(&self, idx: usize, action: Action) -> Schedule {
        let mut c = self.choices.clone();
        c.push((idx, action));
        Schedule::from_choices(c)
    }

    /// The schedule with the `i`-th choice removed (delta minimization).
    pub fn without_nth(&self, i: usize) -> Schedule {
        let mut c = self.choices.clone();
        c.remove(i);
        Schedule { choices: c }
    }

    /// The action at decision `idx` ([`Action::Deliver`] if unlisted).
    pub fn action_at(&self, idx: usize) -> Action {
        self.choices
            .iter()
            .find(|&&(i, _)| i == idx)
            .map_or(Action::Deliver, |&(_, a)| a)
    }

    /// Highest decision index with a non-default choice.
    pub fn last_index(&self) -> Option<usize> {
        self.choices.last().map(|&(i, _)| i)
    }

    /// Number of non-default choices.
    pub fn divergences(&self) -> usize {
        self.choices.len()
    }

    /// Serialize to the replayable text format:
    ///
    /// ```text
    /// # simcheck schedule v1
    /// # scenario: direct-2rank
    /// 2 drop
    /// 5 delay 100000
    /// ```
    pub fn to_text(&self, scenario: &str) -> String {
        let mut out = String::from("# simcheck schedule v1\n");
        out.push_str(&format!("# scenario: {scenario}\n"));
        for &(idx, action) in &self.choices {
            match action {
                Action::Deliver => out.push_str(&format!("{idx} deliver\n")),
                Action::Delay(ns) => out.push_str(&format!("{idx} delay {ns}\n")),
                Action::Drop => out.push_str(&format!("{idx} drop\n")),
            }
        }
        out
    }

    /// Parse the text format written by [`to_text`](Schedule::to_text)
    /// (comment and blank lines are skipped).
    pub fn parse(text: &str) -> Result<Schedule, String> {
        let mut choices = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let idx: usize = parts
                .next()
                .ok_or_else(|| format!("line {}: missing index", lineno + 1))?
                .parse()
                .map_err(|e| format!("line {}: bad index: {e}", lineno + 1))?;
            let action = match parts.next() {
                Some("deliver") => Action::Deliver,
                Some("drop") => Action::Drop,
                Some("delay") => {
                    let ns: u64 = parts
                        .next()
                        .ok_or_else(|| format!("line {}: delay needs nanoseconds", lineno + 1))?
                        .parse()
                        .map_err(|e| format!("line {}: bad delay: {e}", lineno + 1))?;
                    Action::Delay(ns)
                }
                other => {
                    return Err(format!("line {}: unknown action {other:?}", lineno + 1));
                }
            };
            if action != Action::Deliver {
                choices.push((idx, action));
            }
        }
        Ok(Schedule::from_choices(choices))
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.choices.is_empty() {
            return write!(f, "FIFO");
        }
        let parts: Vec<String> = self
            .choices
            .iter()
            .map(|&(i, a)| match a {
                Action::Deliver => format!("deliver#{i}"),
                Action::Delay(ns) => format!("delay#{i}+{ns}ns"),
                Action::Drop => format!("drop#{i}"),
            })
            .collect();
        write!(f, "{}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trips() {
        let s = Schedule::from_choices(vec![(5, Action::Delay(100_000)), (2, Action::Drop)]);
        let text = s.to_text("unit");
        let back = Schedule::parse(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.choices()[0], (2, Action::Drop));
        assert_eq!(back.action_at(5), Action::Delay(100_000));
        assert_eq!(back.action_at(3), Action::Deliver);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Schedule::parse("1 teleport").is_err());
        assert!(Schedule::parse("x drop").is_err());
        assert!(Schedule::parse("1 delay").is_err());
    }

    #[test]
    fn display_names_fifo() {
        assert_eq!(Schedule::empty().to_string(), "FIFO");
        let s = Schedule::empty().with(3, Action::Drop);
        assert_eq!(s.to_string(), "drop#3");
    }
}
